//! Two-layer autoencoder with mini-batch SGD (Table 2: |batch|=512,
//! H1=500, H2=2, scaled down by the harness) — the dense compute-intensive
//! workload of Table 5.
//!
//! Forward/backward bodies are per-batch DAGs: sigmoid activations, `sprop`
//! derivative chains (Cell fusion), and dense matrix multiplies.

use crate::common::{bindv, AlgoResult, Stopwatch};
use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::ops::{self, BinaryOp, UnaryOp};
use fusedml_linalg::{generate, Matrix};
use fusedml_runtime::Engine;

/// Hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct AeConfig {
    pub h1: usize,
    pub h2: usize,
    pub batch: usize,
    pub epochs: usize,
    pub step: f64,
}

impl Default for AeConfig {
    fn default() -> Self {
        AeConfig { h1: 64, h2: 2, batch: 512, epochs: 1, step: 0.1 }
    }
}

/// Builds the per-batch forward+backward DAG. Outputs: loss, dW1..dW4.
/// Architecture: X → sigmoid(XW1) → sigmoid(H1W2) → sigmoid(H2W3) →
/// (H3W4 = X̂), squared reconstruction error.
fn build_batch_dag(bsz: usize, m: usize, h1: usize, h2: usize) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("Xb", bsz, m, 1.0);
    let w1 = b.read("W1", m, h1, 1.0);
    let w2 = b.read("W2", h1, h2, 1.0);
    let w3 = b.read("W3", h2, h1, 1.0);
    let w4 = b.read("W4", h1, m, 1.0);
    // Forward.
    let a1 = b.mm(x, w1);
    let z1 = b.sigmoid(a1);
    let a2 = b.mm(z1, w2);
    let z2 = b.sigmoid(a2);
    let a3 = b.mm(z2, w3);
    let z3 = b.sigmoid(a3);
    let xhat = b.mm(z3, w4);
    // Loss: 0.5·sum((X̂ − X)^2) / bsz
    let diff = b.sub(xhat, x);
    let sq = b.sq(diff);
    let se = b.sum(sq);
    let scale = b.lit(0.5 / bsz as f64);
    let loss = b.mult(scale, se);
    // Backward (sprop chains: z ⊙ (1 − z) fused Cell patterns).
    let dscale = b.lit(1.0 / bsz as f64);
    let dxhat = b.mult(diff, dscale);
    let z3t = b.t(z3);
    let dw4 = b.mm(z3t, dxhat);
    let w4t = b.t(w4);
    let dz3 = b.mm(dxhat, w4t);
    let s3 = b.unary(UnaryOp::Sprop, z3);
    let da3 = b.mult(dz3, s3);
    let z2t = b.t(z2);
    let dw3 = b.mm(z2t, da3);
    let w3t = b.t(w3);
    let dz2 = b.mm(da3, w3t);
    let s2 = b.unary(UnaryOp::Sprop, z2);
    let da2 = b.mult(dz2, s2);
    let z1t = b.t(z1);
    let dw2 = b.mm(z1t, da2);
    let w2t = b.t(w2);
    let dz1 = b.mm(da2, w2t);
    let s1 = b.unary(UnaryOp::Sprop, z1);
    let da1 = b.mult(dz1, s1);
    let xt = b.t(x);
    let dw1 = b.mm(xt, da1);
    b.build(vec![loss, dw1, dw2, dw3, dw4])
}

/// Trains the autoencoder for `epochs` passes of mini-batches.
pub fn run(exec: &Engine, x: &Matrix, cfg: &AeConfig) -> AlgoResult {
    // Driver-side updates/retires recycle through the engine pool.
    let _scope = exec.scope();
    let sw = Stopwatch::start();
    let (n, m) = (x.rows(), x.cols());
    let bsz = cfg.batch.min(n);
    let dag = build_batch_dag(bsz, m, cfg.h1, cfg.h2);
    let mut w1 = generate::rand_dense(m, cfg.h1, -0.1, 0.1, 0xae1);
    let mut w2 = generate::rand_dense(cfg.h1, cfg.h2, -0.1, 0.1, 0xae2);
    let mut w3 = generate::rand_dense(cfg.h2, cfg.h1, -0.1, 0.1, 0xae3);
    let mut w4 = generate::rand_dense(cfg.h1, m, -0.1, 0.1, 0xae4);
    let mut bindings = Bindings::new();
    let n_batches = n / bsz;
    let mut loss = f64::INFINITY;
    let mut iters = 0;
    for _ in 0..cfg.epochs {
        for bi in 0..n_batches.max(1) {
            iters += 1;
            let lo = bi * bsz;
            let xb = ops::index_range(x, lo..lo + bsz, 0..m);
            bindv(&mut bindings, "Xb", xb);
            bindv(&mut bindings, "W1", w1.clone());
            bindv(&mut bindings, "W2", w2.clone());
            bindv(&mut bindings, "W3", w3.clone());
            bindv(&mut bindings, "W4", w4.clone());
            let outs = exec.execute(&dag, &bindings);
            loss = outs[0].as_scalar();
            let upd = |w: &Matrix, g: &Matrix| {
                let s = ops::binary_scalar(g, cfg.step, BinaryOp::Mult);
                ops::binary(w, &s, BinaryOp::Sub)
            };
            w1 = upd(&w1, &outs[1].as_matrix());
            w2 = upd(&w2, &outs[2].as_matrix());
            w3 = upd(&w3, &outs[3].as_matrix());
            w4 = upd(&w4, &outs[4].as_matrix());
        }
    }
    AlgoResult {
        seconds: sw.seconds(),
        iterations: iters,
        objective: loss,
        model: vec![w1, w2, w3, w4],
    }
}

/// Synthetic dense input (Mnist1m-like scaled).
pub fn synthetic_data(n: usize, m: usize, seed: u64) -> Matrix {
    generate::rand_dense(n, m, 0.0, 1.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_runtime::FusionMode;

    #[test]
    fn modes_agree_on_loss() {
        let x = synthetic_data(256, 20, 1);
        let cfg = AeConfig { h1: 16, h2: 2, batch: 128, epochs: 1, step: 0.05 };
        let base = run(&Engine::new(FusionMode::Base), &x, &cfg);
        for mode in [FusionMode::Gen, FusionMode::GenFA] {
            let r = run(&Engine::new(mode), &x, &cfg);
            assert!(
                fusedml_linalg::approx_eq(r.objective, base.objective, 1e-6),
                "{mode:?}: {} vs {}",
                r.objective,
                base.objective
            );
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let x = synthetic_data(512, 16, 2);
        let exec = Engine::new(FusionMode::Gen);
        let one = run(&exec, &x, &AeConfig { epochs: 1, batch: 128, h1: 12, h2: 2, step: 0.2 });
        let five = run(&exec, &x, &AeConfig { epochs: 5, batch: 128, h1: 12, h2: 2, step: 0.2 });
        assert!(five.objective < one.objective);
    }
}
