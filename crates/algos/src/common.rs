//! Shared algorithm driver types.

use fusedml_hop::interp::Bindings;
use fusedml_linalg::Matrix;
use fusedml_runtime::Executor;
use std::time::Instant;

/// Algorithm identifiers (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    L2svm,
    MLogreg,
    Glm,
    KMeans,
    AlsCg,
    AutoEncoder,
}

impl Algorithm {
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::L2svm => "L2SVM",
            Algorithm::MLogreg => "MLogreg",
            Algorithm::Glm => "GLM",
            Algorithm::KMeans => "KMeans",
            Algorithm::AlsCg => "ALS-CG",
            Algorithm::AutoEncoder => "AutoEncoder",
        }
    }
}

/// Result of an end-to-end run.
#[derive(Clone, Debug)]
pub struct AlgoResult {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Outer iterations executed.
    pub iterations: usize,
    /// Final objective / loss value.
    pub objective: f64,
    /// The learned model (algorithm-specific matrices).
    pub model: Vec<Matrix>,
}

/// A stopwatch helper for end-to-end timing.
pub struct Stopwatch(Instant);

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Inserts a binding (shorthand).
pub fn bindv(b: &mut Bindings, name: &str, m: Matrix) {
    b.insert(name.to_string(), m);
}

/// Runs a single-root DAG and returns the root matrix.
pub fn run1(exec: &Executor, dag: &fusedml_hop::HopDag, b: &Bindings) -> Matrix {
    exec.execute(dag, b)[0].as_matrix()
}

/// Runs a single-root DAG and returns the root scalar.
pub fn run1s(exec: &Executor, dag: &fusedml_hop::HopDag, b: &Bindings) -> f64 {
    exec.execute(dag, b)[0].as_scalar()
}
