//! Shared algorithm driver types.

use fusedml_hop::interp::Bindings;
use fusedml_linalg::ops::{self, BinaryOp};
use fusedml_linalg::Matrix;
use fusedml_runtime::Engine;
use std::time::Instant;

/// Algorithm identifiers (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    L2svm,
    MLogreg,
    Glm,
    KMeans,
    AlsCg,
    AutoEncoder,
}

impl Algorithm {
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::L2svm => "L2SVM",
            Algorithm::MLogreg => "MLogreg",
            Algorithm::Glm => "GLM",
            Algorithm::KMeans => "KMeans",
            Algorithm::AlsCg => "ALS-CG",
            Algorithm::AutoEncoder => "AutoEncoder",
        }
    }
}

/// Result of an end-to-end run.
#[derive(Clone, Debug)]
pub struct AlgoResult {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Outer iterations executed.
    pub iterations: usize,
    /// Final objective / loss value.
    pub objective: f64,
    /// The learned model (algorithm-specific matrices).
    pub model: Vec<Matrix>,
}

/// A stopwatch helper for end-to-end timing.
pub struct Stopwatch(Instant);

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    pub fn seconds(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Inserts a binding (shorthand).
pub fn bindv(b: &mut Bindings, name: &str, m: Matrix) {
    b.insert(name.to_string(), m);
}

/// Runs a single-root DAG and returns the root matrix, *moved* out of the
/// engine (the driver keeps unique ownership of the buffer, so in-place
/// updates and pool recycling apply to it). The engine's script cache makes
/// repeated calls with the same DAG shape compile-free.
pub fn run1(exec: &Engine, dag: &fusedml_hop::HopDag, b: &Bindings) -> Matrix {
    exec.execute(dag, b).into_values().swap_remove(0).into_matrix()
}

/// Runs a single-root DAG and returns the root scalar.
pub fn run1s(exec: &Engine, dag: &fusedml_hop::HopDag, b: &Bindings) -> f64 {
    exec.execute(dag, b).into_values().swap_remove(0).as_scalar()
}

/// Iterative driver update `a = a op b`, reusing `a`'s buffer in place when
/// it is uniquely held (the allocating kernel is the fallback). Steady-state
/// algorithm iterations update their state vectors through this, so each
/// iteration allocates ~nothing fresh.
pub fn update(a: Matrix, b: &Matrix, op: BinaryOp) -> Matrix {
    match a.try_into_dense() {
        Ok(d) => ops::binary_assign(d, b, op),
        Err(m) => ops::binary(&m, b, op),
    }
}

/// Retires a dying intermediate, returning its dense buffer to the pool.
pub fn retire(m: Matrix) {
    m.recycle();
}
