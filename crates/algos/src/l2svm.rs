//! L2-regularized squared-hinge SVM (binary classification, Table 2).
//!
//! Inner-loop expressions per iteration (the data-intensive pattern of
//! Table 4): `out = 1 - y ⊙ (X w)`, masked squared hinge objective, and the
//! gradient `g = λw - t(X) %*% (y ⊙ (out > 0) ⊙ out)` — a Row-fusable
//! `t(X) %*% cellwise-chain` plus Cell aggregates.

use crate::common::{bindv, run1, run1s, AlgoResult, Stopwatch};
use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::ops::BinaryOp;
use fusedml_linalg::{generate, DenseMatrix, Matrix};
use fusedml_runtime::Engine;

/// Hyper-parameters (paper Table 2: λ=1e-3, ε=1e-12, maxiter 20).
#[derive(Clone, Copy, Debug)]
pub struct L2svmConfig {
    pub lambda: f64,
    pub epsilon: f64,
    pub max_iter: usize,
    pub step: f64,
}

impl Default for L2svmConfig {
    fn default() -> Self {
        L2svmConfig { lambda: 1e-3, epsilon: 1e-12, max_iter: 20, step: 0.1 }
    }
}

/// The per-iteration DAGs: objective and gradient.
fn build_dags(n: usize, m: usize, sp: f64) -> (HopDag, HopDag) {
    // Objective: 0.5·sum(max(1 - y⊙(Xw), 0)^2) + 0.5·λ·sum(w^2)
    let obj = {
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, sp);
        let y = b.read("y", n, 1, 1.0);
        let w = b.read("w", m, 1, 1.0);
        let lam = b.read("lambda", 1, 1, 1.0);
        let xw = b.mm(x, w);
        let yxw = b.mult(y, xw);
        let one = b.lit(1.0);
        let out = b.sub(one, yxw);
        let zero = b.lit(0.0);
        let hinge = b.max(out, zero);
        let sq = b.sq(hinge);
        let s = b.sum(sq);
        let wsq = b.sq(w);
        let sw = b.sum(wsq);
        let half = b.lit(0.5);
        let t1 = b.mult(half, s);
        let reg0 = b.mult(lam, sw);
        let reg = b.mult(half, reg0);
        let o = b.add(t1, reg);
        b.build(vec![o])
    };
    // Gradient: λw - t(X) %*% (y ⊙ (out > 0) ⊙ out)
    let grad = {
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, sp);
        let y = b.read("y", n, 1, 1.0);
        let w = b.read("w", m, 1, 1.0);
        let lam = b.read("lambda", 1, 1, 1.0);
        let xw = b.mm(x, w);
        let yxw = b.mult(y, xw);
        let one = b.lit(1.0);
        let out = b.sub(one, yxw);
        let zero = b.lit(0.0);
        let ind = b.gt(out, zero);
        let mask = b.mult(ind, out);
        let d = b.mult(y, mask);
        let xt = b.t(x);
        let xtd = b.mm(xt, d);
        let lw = b.mult(lam, w);
        let g = b.sub(lw, xtd);
        b.build(vec![g])
    };
    (obj, grad)
}

/// Trains the SVM with gradient descent over the squared hinge loss.
pub fn run(exec: &Engine, x: &Matrix, y: &Matrix, cfg: &L2svmConfig) -> AlgoResult {
    // Driver-side updates/retires recycle through the engine pool.
    let _scope = exec.scope();
    let sw = Stopwatch::start();
    let (n, m) = (x.rows(), x.cols());
    let (obj_dag, grad_dag) = build_dags(n, m, x.sparsity());
    let mut bindings = Bindings::new();
    bindv(&mut bindings, "X", x.clone());
    bindv(&mut bindings, "y", y.clone());
    bindv(&mut bindings, "lambda", Matrix::dense(DenseMatrix::filled(1, 1, cfg.lambda)));
    let mut w = Matrix::zeros(m, 1);
    let mut prev_obj = f64::INFINITY;
    let mut obj = prev_obj;
    let mut iters = 0;
    for _ in 0..cfg.max_iter {
        iters += 1;
        bindv(&mut bindings, "w", w.clone());
        obj = run1s(exec, &obj_dag, &bindings);
        let g = run1(exec, &grad_dag, &bindings);
        // w ← w − (α/n)·g — the loss is a sum over rows, so the step is
        // normalized by the number of examples.
        let step = fusedml_linalg::ops::binary_scalar(&g, cfg.step / n as f64, BinaryOp::Mult);
        w = fusedml_linalg::ops::binary(&w, &step, BinaryOp::Sub);
        if (prev_obj - obj).abs() < cfg.epsilon * prev_obj.abs().max(1.0) {
            break;
        }
        prev_obj = obj;
    }
    AlgoResult { seconds: sw.seconds(), iterations: iters, objective: obj, model: vec![w] }
}

/// Generates a synthetic L2SVM workload (dense features, ±1 labels).
pub fn synthetic_data(n: usize, m: usize, sparsity: f64, seed: u64) -> (Matrix, Matrix) {
    generate::classification_data(n, m, sparsity, 0.05, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_runtime::FusionMode;

    #[test]
    fn objective_decreases_and_modes_agree() {
        let (x, y) = synthetic_data(400, 10, 1.0, 42);
        let cfg = L2svmConfig { max_iter: 8, ..Default::default() };
        let base = run(&Engine::new(FusionMode::Base), &x, &y, &cfg);
        assert!(base.objective.is_finite());
        for mode in [FusionMode::Fused, FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR] {
            let r = run(&Engine::new(mode), &x, &y, &cfg);
            assert!(
                fusedml_linalg::approx_eq(r.objective, base.objective, 1e-6),
                "{mode:?}: {} vs {}",
                r.objective,
                base.objective
            );
            assert!(r.model[0].approx_eq(&base.model[0], 1e-6), "{mode:?} model diverged");
        }
    }

    #[test]
    fn training_reduces_hinge_loss() {
        let (x, y) = synthetic_data(600, 8, 1.0, 7);
        let exec = Engine::new(FusionMode::Gen);
        let short = run(&exec, &x, &y, &L2svmConfig { max_iter: 1, ..Default::default() });
        let long = run(&exec, &x, &y, &L2svmConfig { max_iter: 15, ..Default::default() });
        assert!(long.objective < short.objective, "{} < {}", long.objective, short.objective);
    }

    #[test]
    fn sparse_features_work() {
        let (x, y) = synthetic_data(500, 20, 0.1, 3);
        assert!(x.is_sparse());
        let base = run(&Engine::new(FusionMode::Base), &x, &y, &L2svmConfig::default());
        let gen = run(&Engine::new(FusionMode::Gen), &x, &y, &L2svmConfig::default());
        assert!(fusedml_linalg::approx_eq(gen.objective, base.objective, 1e-6));
    }
}
