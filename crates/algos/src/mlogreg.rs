//! Multinomial logistic regression (MLogreg, Table 2) with a Newton-CG
//! solver whose Hessian-vector product is the paper's Expression (2) —
//! the Figure 5 memo-table example:
//!
//! `Q = P[,1:k] ⊙ (X v);  H = t(X) %*% (Q − P[,1:k] ⊙ rowSums(Q))`

use crate::common::{bindv, retire, run1, update, AlgoResult, Stopwatch};
use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::ops::{self, AggDir, AggOp, BinaryOp};
use fusedml_linalg::{generate, DenseMatrix, Matrix};
use fusedml_runtime::Engine;

/// Hyper-parameters (paper Table 2: λ=1e-3, 20 outer / 10 inner iterations).
#[derive(Clone, Copy, Debug)]
pub struct MLogregConfig {
    pub classes: usize,
    pub lambda: f64,
    pub max_outer: usize,
    pub max_inner: usize,
}

impl Default for MLogregConfig {
    fn default() -> Self {
        MLogregConfig { classes: 2, lambda: 1e-3, max_outer: 20, max_inner: 10 }
    }
}

/// Probability DAG: `P = cbind(E, 1) / (rowSums(E) + 1)` with
/// `E = exp(X %*% B)` — n×k probabilities including the base class.
fn build_prob_dag(n: usize, m: usize, k1: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let beta = b.read("B", m, k1, 1.0);
    let eta = b.mm(x, beta);
    let e = b.exp(eta);
    let rs = b.row_sums(e);
    let one = b.lit(1.0);
    let denom = b.add(rs, one);
    let ones = b.read("ones", n, 1, 1.0);
    let full = b.cbind(e, ones);
    let p = b.div(full, denom);
    b.build(vec![p])
}

/// Gradient DAG: `G = t(X) %*% (P[,1:k1] − Y) + λB`.
fn build_grad_dag(n: usize, m: usize, k1: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let p = b.read("P", n, k1 + 1, 1.0);
    let y = b.read("Y", n, k1, 1.0);
    let beta = b.read("B", m, k1, 1.0);
    let lam = b.read("lambda", 1, 1, 1.0);
    let pk = b.rix(p, None, Some((0, k1)));
    let diff = b.sub(pk, y);
    let xt = b.t(x);
    let g0 = b.mm(xt, diff);
    let reg = b.mult(lam, beta);
    let g = b.add(g0, reg);
    b.build(vec![g])
}

/// The Hessian-vector product DAG — paper Expression (2) / Figure 5.
fn build_hvp_dag(n: usize, m: usize, k1: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let p = b.read("P", n, k1 + 1, 1.0);
    let v = b.read("v", m, k1, 1.0);
    let lam = b.read("lambda", 1, 1, 1.0);
    let xv = b.mm(x, v);
    let pk = b.rix(p, None, Some((0, k1)));
    let q = b.mult(pk, xv);
    let rs = b.row_sums(q);
    let prs = b.mult(pk, rs);
    let diff = b.sub(q, prs);
    let xt = b.t(x);
    let h0 = b.mm(xt, diff);
    let reg = b.mult(lam, v);
    let h = b.add(h0, reg);
    b.build(vec![h])
}

fn frob_dot(a: &Matrix, bm: &Matrix) -> f64 {
    ops::agg(&ops::binary(a, bm, BinaryOp::Mult), AggOp::Sum, AggDir::Full).get(0, 0)
}

/// Trains MLogreg with Newton-CG (outer Newton steps, inner CG solves using
/// the fused HVP).
pub fn run(exec: &Engine, x: &Matrix, y_labels: &Matrix, cfg: &MLogregConfig) -> AlgoResult {
    // Driver-side updates/retires recycle through the engine pool.
    let _scope = exec.scope();
    let sw = Stopwatch::start();
    let (n, m) = (x.rows(), x.cols());
    let k1 = cfg.classes - 1; // #classes − 1 coefficient columns
    let sp = x.sparsity();
    let prob_dag = build_prob_dag(n, m, k1, sp);
    let grad_dag = build_grad_dag(n, m, k1, sp);
    let hvp_dag = build_hvp_dag(n, m, k1, sp);

    // One-hot Y (first k1 classes; class k is the base).
    let mut yv = vec![0.0f64; n * k1];
    for r in 0..n {
        let label = y_labels.get(r, 0) as usize;
        if label >= 1 && label <= k1 {
            yv[r * k1 + (label - 1)] = 1.0;
        }
    }
    let y = Matrix::dense(DenseMatrix::new(n, k1, yv));

    let mut bindings = Bindings::new();
    bindv(&mut bindings, "X", x.clone());
    bindv(&mut bindings, "Y", y.clone());
    bindv(&mut bindings, "ones", Matrix::dense(DenseMatrix::filled(n, 1, 1.0)));
    bindv(&mut bindings, "lambda", Matrix::dense(DenseMatrix::filled(1, 1, cfg.lambda)));

    let mut beta = Matrix::zeros(m, k1);
    let mut iters = 0;
    for _ in 0..cfg.max_outer {
        iters += 1;
        bindv(&mut bindings, "B", beta.clone());
        let p = run1(exec, &prob_dag, &bindings);
        bindv(&mut bindings, "P", p);
        let g = run1(exec, &grad_dag, &bindings);
        // CG solve H d = −g. State vectors (d, r, pdir) update in place and
        // dying intermediates return to the buffer pool, so steady-state CG
        // iterations allocate ~zero fresh memory.
        let mut d = Matrix::zeros(m, k1);
        let mut r = ops::binary_scalar(&g, -1.0, BinaryOp::Mult);
        retire(g);
        let mut pdir = r.clone();
        let mut rs_old = frob_dot(&r, &r);
        for _ in 0..cfg.max_inner {
            if rs_old < 1e-12 {
                break;
            }
            bindv(&mut bindings, "v", pdir.clone());
            let hp = run1(exec, &hvp_dag, &bindings);
            let alpha = rs_old / frob_dot(&pdir, &hp).max(1e-12);
            let step = ops::binary_scalar(&pdir, alpha, BinaryOp::Mult);
            d = update(d, &step, BinaryOp::Add);
            retire(step);
            let hstep = ops::binary_scalar(&hp, alpha, BinaryOp::Mult);
            retire(hp);
            r = update(r, &hstep, BinaryOp::Sub);
            retire(hstep);
            let rs_new = frob_dot(&r, &r);
            let beta_cg = rs_new / rs_old;
            // pdir ← r + beta·pdir, reusing the dying scaled-direction buffer.
            let pb = ops::binary_scalar(&pdir, beta_cg, BinaryOp::Mult);
            pdir = update(pb, &r, BinaryOp::Add);
            rs_old = rs_new;
        }
        retire(r);
        retire(pdir);
        let d_norm = frob_dot(&d, &d).sqrt();
        // Drop the stale model binding so `beta` is uniquely held and the
        // update really happens in place (it is re-bound next iteration).
        bindings.remove("B");
        beta = update(beta, &d, BinaryOp::Add);
        retire(d);
        if d_norm < 1e-8 {
            break;
        }
    }
    // Objective: negative log-likelihood.
    bindv(&mut bindings, "B", beta.clone());
    let p = run1(exec, &prob_dag, &bindings);
    let mut nll = 0.0;
    for r in 0..n {
        let label = y_labels.get(r, 0) as usize;
        let col = if (1..=k1).contains(&label) { label - 1 } else { k1 };
        nll -= p.get(r, col).max(1e-15).ln();
    }
    AlgoResult { seconds: sw.seconds(), iterations: iters, objective: nll, model: vec![beta] }
}

/// Synthetic MLogreg workload with `k` classes.
pub fn synthetic_data(n: usize, m: usize, k: usize, sparsity: f64, seed: u64) -> (Matrix, Matrix) {
    generate::multiclass_data(n, m, k, sparsity, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_runtime::FusionMode;

    #[test]
    fn modes_agree_on_model() {
        let (x, y) = synthetic_data(300, 12, 3, 1.0, 1);
        let cfg = MLogregConfig { classes: 3, max_outer: 3, max_inner: 4, ..Default::default() };
        let base = run(&Engine::new(FusionMode::Base), &x, &y, &cfg);
        for mode in [FusionMode::Gen, FusionMode::GenFA] {
            let r = run(&Engine::new(mode), &x, &y, &cfg);
            assert!(r.model[0].approx_eq(&base.model[0], 1e-5), "{mode:?} model diverged");
        }
    }

    /// Steady-state iterations must draw their intermediates from the buffer
    /// pool: after a warm-up run, further training runs on the same executor
    /// serve allocations from retired buffers (near-zero fresh allocation).
    #[test]
    fn steady_state_iterations_reuse_pool() {
        let (x, y) = synthetic_data(400, 16, 3, 1.0, 3);
        let cfg = MLogregConfig { classes: 3, max_outer: 2, max_inner: 4, ..Default::default() };
        let exec = Engine::new(FusionMode::Gen);
        let _ = run(&exec, &x, &y, &cfg); // warm-up: cold misses fill the pool
        let before = exec.stats().scheduler_snapshot();
        let _ = run(&exec, &x, &y, &cfg);
        let after = exec.stats().scheduler_snapshot();
        let hits = after.pool_hits - before.pool_hits;
        assert!(hits > 0, "warm iterations must hit the pool (hits {hits})");
        // Early frees are what feed the pool: the scheduler must have
        // released intermediates before their DAGs finished.
        assert!(after.bytes_freed_early > 0);
    }

    #[test]
    fn training_reduces_nll() {
        let (x, y) = synthetic_data(400, 10, 2, 1.0, 2);
        let exec = Engine::new(FusionMode::Gen);
        let short =
            run(&exec, &x, &y, &MLogregConfig { max_outer: 1, max_inner: 2, ..Default::default() });
        let long =
            run(&exec, &x, &y, &MLogregConfig { max_outer: 6, max_inner: 5, ..Default::default() });
        assert!(long.objective <= short.objective + 1e-9);
    }
}
