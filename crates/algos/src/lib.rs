// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]
//! # fusedml-algos
//!
//! The six ML algorithms of the paper's evaluation (Table 2), written
//! against the HOP builder API and executed through the runtime under any
//! fusion mode (`Base` / `Fused` / `Gen` / `Gen-FA` / `Gen-FNR`).
//!
//! Control flow (outer iterations, convergence checks) lives in Rust; the
//! linear-algebra bodies are HOP DAGs built once per shape and re-executed
//! with updated bindings — mirroring SystemML's per-statement-block DAG
//! compilation with dynamic recompilation (plan caches make repeated
//! optimization cheap, paper §5.3).
//!
//! Documented deviations from the exact SystemML scripts (DESIGN.md §7):
//! gradient/CG solvers replace trust-region machinery where the paper's
//! evaluation only depends on the inner-loop expression patterns.

pub mod alscg;
pub mod autoencoder;
pub mod common;
pub mod glm;
pub mod kmeans;
pub mod l2svm;
pub mod mlogreg;

pub use common::{AlgoResult, Algorithm};
