//! Binomial GLM (Table 2) solved with iteratively reweighted least squares
//! (IRLS), the normal equations solved by CG with the fused
//! Hessian-vector product `t(X) %*% (w ⊙ (X v))` — the weighted mmchain
//! pattern.
//!
//! Deviation (DESIGN.md §7): the logit link replaces the paper's probit
//! (no erf in the operator vocabulary); the workload characteristics —
//! matrix-vector chains over X per IRLS iteration — are identical.

use crate::common::{bindv, retire, run1, update, AlgoResult, Stopwatch};
use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::ops::{self, AggDir, AggOp, BinaryOp};
use fusedml_linalg::{generate, Matrix};
use fusedml_runtime::Engine;

/// Hyper-parameters (paper Table 2: λ=1e-3, 20 outer / 10 inner).
#[derive(Clone, Copy, Debug)]
pub struct GlmConfig {
    pub lambda: f64,
    pub max_outer: usize,
    pub max_inner: usize,
}

impl Default for GlmConfig {
    fn default() -> Self {
        GlmConfig { lambda: 1e-3, max_outer: 20, max_inner: 10 }
    }
}

/// Per-iteration DAG computing `mu`, the IRLS weights `w = mu⊙(1−mu)`
/// (the `sprop` pattern) and the gradient `t(X)(y − mu) − λb`.
fn build_irls_dag(n: usize, m: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let y = b.read("y", n, 1, 1.0);
    let beta = b.read("b", m, 1, 1.0);
    let lam = b.read("lambda", 1, 1, 1.0);
    let eta = b.mm(x, beta);
    let mu = b.sigmoid(eta);
    let w = b.unary(fusedml_linalg::ops::UnaryOp::Sprop, mu);
    let resid = b.sub(y, mu);
    let xt = b.t(x);
    let g0 = b.mm(xt, resid);
    let reg = b.mult(lam, beta);
    let g = b.sub(g0, reg);
    b.build(vec![g, w])
}

/// HVP DAG: `t(X) %*% (w ⊙ (X v)) + λv` — the weighted mmchain.
fn build_hvp_dag(n: usize, m: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let w = b.read("w", n, 1, 1.0);
    let v = b.read("v", m, 1, 1.0);
    let lam = b.read("lambda", 1, 1, 1.0);
    let xv = b.mm(x, v);
    let wxv = b.mult(w, xv);
    let xt = b.t(x);
    let h0 = b.mm(xt, wxv);
    let reg = b.mult(lam, v);
    let h = b.add(h0, reg);
    b.build(vec![h])
}

fn dot(a: &Matrix, bm: &Matrix) -> f64 {
    ops::agg(&ops::binary(a, bm, BinaryOp::Mult), AggOp::Sum, AggDir::Full).get(0, 0)
}

/// Trains the binomial GLM. `y` holds 0/1 responses.
pub fn run(exec: &Engine, x: &Matrix, y: &Matrix, cfg: &GlmConfig) -> AlgoResult {
    // Driver-side updates/retires recycle through the engine pool.
    let _scope = exec.scope();
    let sw = Stopwatch::start();
    let (n, m) = (x.rows(), x.cols());
    let sp = x.sparsity();
    let irls_dag = build_irls_dag(n, m, sp);
    let hvp_dag = build_hvp_dag(n, m, sp);
    let mut bindings = Bindings::new();
    bindv(&mut bindings, "X", x.clone());
    bindv(&mut bindings, "y", y.clone());
    bindv(
        &mut bindings,
        "lambda",
        Matrix::dense(fusedml_linalg::DenseMatrix::filled(1, 1, cfg.lambda)),
    );
    let mut beta = Matrix::zeros(m, 1);
    let mut iters = 0;
    for _ in 0..cfg.max_outer {
        iters += 1;
        bindv(&mut bindings, "b", beta.clone());
        let mut outs = exec.execute(&irls_dag, &bindings).into_values();
        let w = outs.pop().expect("w root").into_matrix();
        let g = outs.pop().expect("g root").into_matrix();
        bindv(&mut bindings, "w", w);
        // CG solve (X'WX + λI) d = g. State vectors update in place; dying
        // intermediates return to the buffer pool (steady-state iterations
        // allocate ~zero fresh memory).
        let mut d = Matrix::zeros(m, 1);
        let mut r = g;
        let mut p = r.clone();
        let mut rs_old = dot(&r, &r);
        for _ in 0..cfg.max_inner {
            if rs_old < 1e-14 {
                break;
            }
            bindv(&mut bindings, "v", p.clone());
            let hp = run1(exec, &hvp_dag, &bindings);
            let alpha = rs_old / dot(&p, &hp).max(1e-14);
            let step = ops::binary_scalar(&p, alpha, BinaryOp::Mult);
            d = update(d, &step, BinaryOp::Add);
            retire(step);
            let hstep = ops::binary_scalar(&hp, alpha, BinaryOp::Mult);
            retire(hp);
            r = update(r, &hstep, BinaryOp::Sub);
            retire(hstep);
            let rs_new = dot(&r, &r);
            let pb = ops::binary_scalar(&p, rs_new / rs_old, BinaryOp::Mult);
            p = update(pb, &r, BinaryOp::Add);
            rs_old = rs_new;
        }
        retire(r);
        retire(p);
        let d_norm = dot(&d, &d).sqrt();
        // Drop the stale model binding so `beta` is uniquely held and the
        // update really happens in place (it is re-bound next iteration).
        bindings.remove("b");
        beta = update(beta, &d, BinaryOp::Add);
        retire(d);
        if d_norm < 1e-8 {
            break;
        }
    }
    // Deviance objective.
    bindv(&mut bindings, "b", beta.clone());
    let outs = exec.execute(&irls_dag, &bindings);
    let g = outs[0].as_matrix();
    let obj = dot(&g, &g).sqrt();
    AlgoResult { seconds: sw.seconds(), iterations: iters, objective: obj, model: vec![beta] }
}

/// Synthetic GLM workload: 0/1 responses from a logistic model.
pub fn synthetic_data(n: usize, m: usize, sparsity: f64, seed: u64) -> (Matrix, Matrix) {
    let (x, pm1) = generate::classification_data(n, m, sparsity, 0.05, seed);
    // Map ±1 labels to 0/1.
    let y = ops::binary_scalar(&ops::binary_scalar(&pm1, 1.0, BinaryOp::Add), 0.5, BinaryOp::Mult);
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_runtime::FusionMode;

    #[test]
    fn modes_agree() {
        let (x, y) = synthetic_data(300, 10, 1.0, 5);
        let cfg = GlmConfig { max_outer: 3, max_inner: 4, ..Default::default() };
        let base = run(&Engine::new(FusionMode::Base), &x, &y, &cfg);
        for mode in [FusionMode::Fused, FusionMode::Gen, FusionMode::GenFNR] {
            let r = run(&Engine::new(mode), &x, &y, &cfg);
            assert!(r.model[0].approx_eq(&base.model[0], 1e-5), "{mode:?}");
        }
    }

    #[test]
    fn gradient_norm_shrinks() {
        let (x, y) = synthetic_data(400, 8, 1.0, 6);
        let exec = Engine::new(FusionMode::Gen);
        let short =
            run(&exec, &x, &y, &GlmConfig { max_outer: 1, max_inner: 3, ..Default::default() });
        let long =
            run(&exec, &x, &y, &GlmConfig { max_outer: 8, max_inner: 6, ..Default::default() });
        assert!(long.objective < short.objective);
    }
}
