//! ALS-CG matrix factorization (Table 2: rank 20, weighted-L2) — the
//! compute-intensive sparsity-exploitation showcase of Table 5.
//!
//! The update rules and loss are the paper's Expression (1) / Figure 1(d)
//! patterns, compiled to sparsity-exploiting Outer operators:
//!
//! * `GU = ((X != 0) ⊙ (U V^T)) %*% V − X %*% V + λU`
//! * `GV = t((X != 0) ⊙ (U V^T)) %*% U − t(X) %*% U + λV`
//! * `loss = sum((X != 0) ⊙ sq(U V^T)) − 2·sum(X ⊙ (U V^T)) + sum(X^2)`
//!
//! Under `Base`/`Gen-FA`/`Gen-FNR` the dense n×m plane materializes; the
//! driver reports an out-of-memory guard instead of running for large
//! inputs (the `N/A` entries of Table 5).

use crate::common::{bindv, run1, run1s, AlgoResult, Stopwatch};
use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::ops::{self, BinaryOp};
use fusedml_linalg::{generate, Matrix};
use fusedml_runtime::Engine;

/// Hyper-parameters (paper Table 2: rank 20, λ=1e-3).
#[derive(Clone, Copy, Debug)]
pub struct AlsConfig {
    pub rank: usize,
    pub lambda: f64,
    pub max_iter: usize,
    pub step: f64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig { rank: 20, lambda: 1e-3, max_iter: 10, step: 1e-3 }
    }
}

fn build_grad_u(n: usize, m: usize, r: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let u = b.read("U", n, r, 1.0);
    let v = b.read("V", m, r, 1.0);
    let lam = b.read("lambda", 1, 1, 1.0);
    let vt = b.t(v);
    let uvt = b.mm(u, vt);
    let zero = b.lit(0.0);
    let mask = b.neq(x, zero);
    let w = b.mult(mask, uvt);
    let wv = b.mm(w, v); // Outer right-mm
    let xv = b.mm(x, v); // sparse-dense basic mm
    let diff = b.sub(wv, xv);
    let reg = b.mult(lam, u);
    let g = b.add(diff, reg);
    b.build(vec![g])
}

fn build_grad_v(n: usize, m: usize, r: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let u = b.read("U", n, r, 1.0);
    let v = b.read("V", m, r, 1.0);
    let lam = b.read("lambda", 1, 1, 1.0);
    let vt = b.t(v);
    let uvt = b.mm(u, vt);
    let zero = b.lit(0.0);
    let mask = b.neq(x, zero);
    let w = b.mult(mask, uvt);
    let wt = b.t(w);
    let wu = b.mm(wt, u); // Outer left-mm
    let xt = b.t(x);
    let xu = b.mm(xt, u);
    let diff = b.sub(wu, xu);
    let reg = b.mult(lam, v);
    let g = b.add(diff, reg);
    b.build(vec![g])
}

fn build_loss(n: usize, m: usize, r: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let u = b.read("U", n, r, 1.0);
    let v = b.read("V", m, r, 1.0);
    let vt = b.t(v);
    let uvt = b.mm(u, vt);
    let zero = b.lit(0.0);
    let mask = b.neq(x, zero);
    let plane_sq = b.sq(uvt);
    let t1m = b.mult(mask, plane_sq);
    let t1 = b.sum(t1m); // sum((X!=0) ⊙ (UV')^2)  — Outer full-agg
    let xp = b.mult(x, uvt);
    let t2 = b.sum(xp); // sum(X ⊙ UV')            — Outer full-agg
    let xsq = b.sq(x);
    let t3 = b.sum(xsq); // sum(X^2)                — Cell
    let two = b.lit(2.0);
    let t22 = b.mult(two, t2);
    let part = b.sub(t1, t22);
    let loss = b.add(part, t3);
    b.build(vec![loss])
}

/// Estimated bytes to materialize the dense n×m plane — the OOM guard for
/// non-sparsity-exploiting modes (Table 5's `N/A` entries).
pub fn dense_plane_bytes(n: usize, m: usize) -> f64 {
    8.0 * n as f64 * m as f64
}

/// Trains the factorization by alternating gradient steps with the fused
/// update rules.
pub fn run(exec: &Engine, x: &Matrix, cfg: &AlsConfig) -> AlgoResult {
    // Driver-side updates/retires recycle through the engine pool.
    let _scope = exec.scope();
    let sw = Stopwatch::start();
    let (n, m) = (x.rows(), x.cols());
    let r = cfg.rank;
    let sp = x.sparsity();
    let gu_dag = build_grad_u(n, m, r, sp);
    let gv_dag = build_grad_v(n, m, r, sp);
    let loss_dag = build_loss(n, m, r, sp);
    let mut bindings = Bindings::new();
    bindv(&mut bindings, "X", x.clone());
    bindv(
        &mut bindings,
        "lambda",
        Matrix::dense(fusedml_linalg::DenseMatrix::filled(1, 1, cfg.lambda)),
    );
    let mut u = generate::rand_dense(n, r, 0.0, 0.1, 0xa15);
    let mut v = generate::rand_dense(m, r, 0.0, 0.1, 0xa16);
    let mut loss = f64::INFINITY;
    let mut iters = 0;
    for _ in 0..cfg.max_iter {
        iters += 1;
        bindv(&mut bindings, "U", u.clone());
        bindv(&mut bindings, "V", v.clone());
        let gu = run1(exec, &gu_dag, &bindings);
        let ustep = ops::binary_scalar(&gu, cfg.step, BinaryOp::Mult);
        u = ops::binary(&u, &ustep, BinaryOp::Sub);
        bindv(&mut bindings, "U", u.clone());
        let gv = run1(exec, &gv_dag, &bindings);
        let vstep = ops::binary_scalar(&gv, cfg.step, BinaryOp::Mult);
        v = ops::binary(&v, &vstep, BinaryOp::Sub);
        bindv(&mut bindings, "V", v.clone());
        loss = run1s(exec, &loss_dag, &bindings);
    }
    AlgoResult { seconds: sw.seconds(), iterations: iters, objective: loss, model: vec![u, v] }
}

/// Synthetic sparse ratings matrix (paper: sparsity 0.01 for synthetic runs).
pub fn synthetic_data(n: usize, m: usize, sparsity: f64, seed: u64) -> Matrix {
    generate::rand_matrix(n, m, 1.0, 5.0, sparsity, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_runtime::FusionMode;

    #[test]
    fn modes_agree_on_loss() {
        let x = synthetic_data(150, 120, 0.05, 1);
        let cfg = AlsConfig { rank: 6, max_iter: 3, ..Default::default() };
        let base = run(&Engine::new(FusionMode::Base), &x, &cfg);
        for mode in [FusionMode::Fused, FusionMode::Gen] {
            let r = run(&Engine::new(mode), &x, &cfg);
            assert!(
                fusedml_linalg::approx_eq(r.objective, base.objective, 1e-6),
                "{mode:?}: {} vs {}",
                r.objective,
                base.objective
            );
        }
    }

    #[test]
    fn loss_decreases() {
        let x = synthetic_data(200, 150, 0.05, 2);
        let exec = Engine::new(FusionMode::Gen);
        let one = run(&exec, &x, &AlsConfig { rank: 8, max_iter: 1, ..Default::default() });
        let ten = run(&exec, &x, &AlsConfig { rank: 8, max_iter: 10, ..Default::default() });
        assert!(ten.objective < one.objective);
    }

    #[test]
    fn gen_runs_fused_operators() {
        let x = synthetic_data(200, 150, 0.05, 3);
        let exec = Engine::new(FusionMode::Gen);
        let _ = run(&exec, &x, &AlsConfig { rank: 6, max_iter: 2, ..Default::default() });
        let (fused, _, _) = exec.stats().snapshot();
        assert!(fused >= 4, "Outer operators must execute: {fused}");
    }
}
