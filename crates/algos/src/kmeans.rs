//! K-Means clustering via Lloyd's algorithm (Table 2: 1 run, k=5).
//!
//! The distance DAG `D = rowSums(X^2) − 2·X%*%t(C) + rowSums(C^2)'` with the
//! assignment indicator `A = (D == rowMins(D))` is the hybrid workload of
//! Figure 13(b): memory-bound for small k, compute-bound as k grows.

use crate::common::{bindv, retire, run1, AlgoResult, Stopwatch};
use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::ops::{self, AggDir, AggOp, BinaryOp};
use fusedml_linalg::{generate, DenseMatrix, Matrix};
use fusedml_runtime::Engine;

/// Hyper-parameters (paper Table 2: ε=1e-12, 20 iterations, k centroids).
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    pub k: usize,
    pub max_iter: usize,
    pub epsilon: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 5, max_iter: 20, epsilon: 1e-12 }
    }
}

/// Per-iteration DAG: assignment matrix `A`, within-cluster sum of squares,
/// and the new centroid numerator `t(A) %*% X` plus counts `colSums(A)`.
fn build_iter_dag(n: usize, m: usize, k: usize, sp: f64) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, sp);
    let c = b.read("C", k, m, 1.0);
    // D = −2·X%*%t(C) + rowSums(C^2)'  (row norms of X constant for argmin)
    let ct = b.t(c);
    let xc = b.mm(x, ct);
    let neg2 = b.lit(-2.0);
    let xc2 = b.mult(xc, neg2);
    let csq = b.sq(c);
    let cn = b.agg(AggOp::Sum, AggDir::Row, csq); // k×1
    let cnt = b.t(cn); // 1×k row vector
    let d = b.add(xc2, cnt);
    // A = (D == rowMins(D)) — ties broken later by normalization.
    let dmin = b.agg(AggOp::Min, AggDir::Row, d);
    let a = b.binary(BinaryOp::Eq, d, dmin);
    // wcss partial: sum(rowMins(D))
    let wcss = b.sum(dmin);
    // centroid update pieces
    let at = b.t(a);
    let num = b.mm(at, x); // k×m
    let counts = b.col_sums(a); // 1×k
    b.build(vec![a, wcss, num, counts])
}

/// Runs Lloyd's algorithm from a deterministic sample initialization.
pub fn run(exec: &Engine, x: &Matrix, cfg: &KMeansConfig) -> AlgoResult {
    // Driver-side updates/retires recycle through the engine pool.
    let _scope = exec.scope();
    let sw = Stopwatch::start();
    let (n, m) = (x.rows(), x.cols());
    let dag = build_iter_dag(n, m, cfg.k, x.sparsity());
    // Initialize centroids from evenly spaced rows.
    let mut cvals = Vec::with_capacity(cfg.k * m);
    for i in 0..cfg.k {
        let r = i * n / cfg.k;
        for c in 0..m {
            cvals.push(x.get(r, c));
        }
    }
    let mut centroids = Matrix::dense(DenseMatrix::new(cfg.k, m, cvals));
    let mut bindings = Bindings::new();
    bindv(&mut bindings, "X", x.clone());
    let mut wcss = f64::INFINITY;
    let mut iters = 0;
    for _ in 0..cfg.max_iter {
        iters += 1;
        bindv(&mut bindings, "C", centroids.clone());
        let mut outs = exec.execute(&dag, &bindings).into_values();
        let counts = outs.pop().expect("counts root").into_matrix();
        let num = outs.pop().expect("numerator root").into_matrix();
        let new_wcss = outs.pop().expect("wcss root").as_scalar();
        // The assignment matrix is only an explain/debug output: recycle it.
        outs.pop().expect("assignment root").recycle();
        // Normalize in place: the numerator root is uniquely owned, so its
        // buffer becomes the new centroid matrix without a copy.
        let mut cv = match num.try_into_dense() {
            Ok(d) => d.into_values(),
            Err(m) => m.to_dense().into_values(),
        };
        for ki in 0..cfg.k {
            let cnt = counts.get(0, ki).max(1.0);
            for c in 0..m {
                cv[ki * m + c] /= cnt;
            }
        }
        retire(counts);
        centroids = Matrix::dense(DenseMatrix::new(cfg.k, m, cv));
        if (wcss - new_wcss).abs() < cfg.epsilon * wcss.abs().max(1.0) {
            wcss = new_wcss;
            break;
        }
        wcss = new_wcss;
    }
    // Full WCSS including the constant X term for reporting.
    let xsq =
        ops::agg(&ops::unary(x, fusedml_linalg::ops::UnaryOp::Pow2), AggOp::Sum, AggDir::Full)
            .get(0, 0);
    let _ = run1; // (single-root helper unused here)
    AlgoResult {
        seconds: sw.seconds(),
        iterations: iters,
        objective: wcss + xsq,
        model: vec![centroids],
    }
}

/// Synthetic clustered data.
pub fn synthetic_data(n: usize, m: usize, sparsity: f64, seed: u64) -> Matrix {
    generate::rand_matrix(n, m, 0.0, 1.0, sparsity, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_runtime::FusionMode;

    #[test]
    fn modes_agree_on_centroids() {
        let x = synthetic_data(400, 8, 1.0, 11);
        let cfg = KMeansConfig { k: 4, max_iter: 5, ..Default::default() };
        let base = run(&Engine::new(FusionMode::Base), &x, &cfg);
        for mode in [FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR] {
            let r = run(&Engine::new(mode), &x, &cfg);
            assert!(r.model[0].approx_eq(&base.model[0], 1e-6), "{mode:?}");
        }
    }

    #[test]
    fn wcss_decreases_with_iterations() {
        let x = synthetic_data(600, 6, 1.0, 13);
        let exec = Engine::new(FusionMode::Gen);
        let one = run(&exec, &x, &KMeansConfig { k: 5, max_iter: 1, ..Default::default() });
        let ten = run(&exec, &x, &KMeansConfig { k: 5, max_iter: 10, ..Default::default() });
        assert!(ten.objective <= one.objective + 1e-6);
    }
}
