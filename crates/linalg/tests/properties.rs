#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Property-based tests: dense and sparse kernels must agree on every
//! operation, and algebraic invariants must hold across formats.

use fusedml_linalg::ops::{self, AggDir, AggOp, BinaryOp, UnaryOp};
use fusedml_linalg::{DenseMatrix, Matrix, SparseMatrix};
use proptest::prelude::*;

/// Strategy: a small matrix as (rows, cols, values) with ~50% zeros so both
/// formats are exercised meaningfully.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = DenseMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(prop_oneof![3 => Just(0.0), 2 => -5.0..5.0f64], r * c)
            .prop_map(move |data| DenseMatrix::new(r, c, data))
    })
}

fn both_formats(d: &DenseMatrix) -> (Matrix, Matrix) {
    (Matrix::dense(d.clone()), Matrix::sparse(SparseMatrix::from_dense(d)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_roundtrip_is_identity(d in matrix_strategy(12)) {
        let s = SparseMatrix::from_dense(&d);
        prop_assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn transpose_involution(d in matrix_strategy(12)) {
        let (dd, ss) = both_formats(&d);
        let t2 = ops::transpose(&ops::transpose(&dd));
        prop_assert!(t2.approx_eq(&dd, 0.0));
        let t2s = ops::transpose(&ops::transpose(&ss));
        prop_assert!(t2s.approx_eq(&ss, 0.0));
    }

    #[test]
    fn binary_dense_sparse_agree(a in matrix_strategy(10), op_ix in 0usize..5) {
        let op = [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mult, BinaryOp::Min, BinaryOp::Max][op_ix];
        let (ad, asp) = both_formats(&a);
        let r1 = ops::binary(&ad, &ad, op);
        let r2 = ops::binary(&asp, &asp, op);
        prop_assert!(r1.approx_eq(&r2, 1e-12));
    }

    #[test]
    fn unary_dense_sparse_agree(a in matrix_strategy(10), op_ix in 0usize..4) {
        let op = [UnaryOp::Abs, UnaryOp::Pow2, UnaryOp::Sign, UnaryOp::Neg][op_ix];
        let (ad, asp) = both_formats(&a);
        prop_assert!(ops::unary(&ad, op).approx_eq(&ops::unary(&asp, op), 1e-12));
    }

    #[test]
    fn agg_dense_sparse_agree(a in matrix_strategy(10), op_ix in 0usize..4, dir_ix in 0usize..3) {
        let op = [AggOp::Sum, AggOp::SumSq, AggOp::Min, AggOp::Max][op_ix];
        let dir = [AggDir::Full, AggDir::Row, AggDir::Col][dir_ix];
        let (ad, asp) = both_formats(&a);
        prop_assert!(ops::agg(&ad, op, dir).approx_eq(&ops::agg(&asp, op, dir), 1e-12));
    }

    #[test]
    fn matmult_formats_agree(a in matrix_strategy(8), b in matrix_strategy(8)) {
        // Make the shapes compatible by multiplying a with t(b) when needed.
        let bt = if a.cols() == b.rows() {
            Matrix::dense(b.clone())
        } else {
            // reshape-free fallback: multiply a (r×c) with c×2 slice of b's data
            let cols = 2usize;
            let data: Vec<f64> = (0..a.cols() * cols).map(|i| b.values().get(i).copied().unwrap_or(1.0)).collect();
            Matrix::dense(DenseMatrix::new(a.cols(), cols, data))
        };
        let (ad, asp) = both_formats(&a);
        let r1 = ops::matmult(&ad, &bt);
        let r2 = ops::matmult(&asp, &bt.to_sparse().into());
        prop_assert!(r1.approx_eq(&r2, 1e-9));
    }

    #[test]
    fn tsmm_matches_transpose_matmult(a in matrix_strategy(8), b in matrix_strategy(8)) {
        // Use equal row counts: tie b's rows to a's rows via truncation/padding.
        let rows = a.rows();
        let cols = b.cols();
        let data: Vec<f64> = (0..rows * cols).map(|i| b.values().get(i).copied().unwrap_or(0.5)).collect();
        let y = Matrix::dense(DenseMatrix::new(rows, cols, data));
        let x = Matrix::dense(a.clone());
        let expect = ops::matmult(&ops::transpose(&x), &y);
        let got = ops::tsmm_left(&x, &y);
        prop_assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn mult_add_distributes(a in matrix_strategy(8)) {
        // (a + a) == 2 * a
        let (ad, _) = both_formats(&a);
        let doubled = ops::binary(&ad, &ad, BinaryOp::Add);
        let scaled = ops::binary_scalar(&ad, 2.0, BinaryOp::Mult);
        prop_assert!(doubled.approx_eq(&scaled, 1e-12));
    }

    #[test]
    fn row_col_sums_consistent_with_full(a in matrix_strategy(10)) {
        let (ad, _) = both_formats(&a);
        let full = ops::agg(&ad, AggOp::Sum, AggDir::Full).get(0, 0);
        let via_rows = ops::agg(&ops::agg(&ad, AggOp::Sum, AggDir::Row), AggOp::Sum, AggDir::Full).get(0, 0);
        let via_cols = ops::agg(&ops::agg(&ad, AggOp::Sum, AggDir::Col), AggOp::Sum, AggDir::Full).get(0, 0);
        prop_assert!(fusedml_linalg::approx_eq(full, via_rows, 1e-9));
        prop_assert!(fusedml_linalg::approx_eq(full, via_cols, 1e-9));
    }

    #[test]
    fn indexing_matches_cellwise(a in matrix_strategy(10)) {
        let (ad, asp) = both_formats(&a);
        let (r, c) = (a.rows(), a.cols());
        let rr = 0..r.div_ceil(2);
        let cc = (c / 2)..c;
        if !rr.is_empty() && !cc.is_empty() {
            let i1 = ops::index_range(&ad, rr.clone(), cc.clone());
            let i2 = ops::index_range(&asp, rr.clone(), cc.clone());
            prop_assert!(i1.approx_eq(&i2, 0.0));
            for (oi, i) in rr.clone().enumerate() {
                for (oj, j) in cc.clone().enumerate() {
                    prop_assert_eq!(i1.get(oi, oj), a.get(i, j));
                }
            }
        }
    }
}
