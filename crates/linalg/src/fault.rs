//! Deterministic, seeded fault injection for the execution stack.
//!
//! Production resilience claims are only as good as the failure paths that
//! were actually exercised. A [`FaultPlan`] is an engine-owned chaos harness:
//! it names the *sites* where the runtime is allowed to fail
//! ([`FaultSite`]) and decides — deterministically, from a seed — whether
//! the n-th visit to a site injects a failure. The decision for the n-th
//! draw at a site depends only on `(seed, site, n)`, never on wall-clock
//! time or thread interleaving, so a fault schedule is reproducible: the
//! same seed injects the same decisions per site-visit index on every run.
//!
//! What an injected fault *means* is up to the site:
//!
//! * [`FaultSite::SpillWrite`] / [`FaultSite::SpillRead`] — the spill tier
//!   returns an `io::Error` instead of touching the file (transient: a
//!   retry draws a fresh decision),
//! * [`FaultSite::Alloc`] — the scheduler's budget reservation fails
//!   (surfaced as a typed budget-exhaustion error),
//! * [`FaultSite::TaskExec`] — a task reports failure without running,
//! * [`FaultSite::TaskPanic`] — a task panics mid-execution, exercising the
//!   scheduler's panic-isolation path end to end,
//! * [`FaultSite::ShardExec`] — one shard of a sharded fused operator panics
//!   mid-kernel, exercising cross-shard cancellation and the rule that a
//!   shard failure fails only its own request.
//!
//! A plan can be *disarmed* at runtime ([`FaultPlan::disarm`]): the chaos
//! property tests inject faults, observe a clean typed error, disarm, and
//! then require a fault-free re-execute on the same engine to be
//! bitwise-correct.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A place in the runtime where a [`FaultPlan`] may inject a failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Serializing a value out to the spill tier.
    SpillWrite,
    /// Reading a spilled value back from disk.
    SpillRead,
    /// The scheduler's pre-dispatch budget reservation / pool allocation.
    Alloc,
    /// Task execution (fails cleanly, without running the kernel).
    TaskExec,
    /// Task execution (panics mid-kernel, exercising panic isolation).
    TaskPanic,
    /// A shard request's kernel execution panics mid-run (one worker shard of
    /// a sharded fused operator), exercising first-failure-wins cancellation
    /// across sibling shards.
    ShardExec,
}

/// All injectable sites, in counter order.
pub const FAULT_SITES: [FaultSite; 6] = [
    FaultSite::SpillWrite,
    FaultSite::SpillRead,
    FaultSite::Alloc,
    FaultSite::TaskExec,
    FaultSite::TaskPanic,
    FaultSite::ShardExec,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::SpillWrite => 0,
            FaultSite::SpillRead => 1,
            FaultSite::Alloc => 2,
            FaultSite::TaskExec => 3,
            FaultSite::TaskPanic => 4,
            FaultSite::ShardExec => 5,
        }
    }
}

const N_SITES: usize = FAULT_SITES.len();

/// A deterministic, seeded fault schedule shared by every component of one
/// engine. Construct with [`FaultPlan::seeded`], give each site a rate with
/// [`FaultPlan::rate`], optionally cap the total injections with
/// [`FaultPlan::max_faults`], and hand it to
/// `EngineBuilder::fault_plan`.
///
/// All methods take `&self`; the plan is shared behind an `Arc` between the
/// engine, its spill tier, and the test that wants to [`disarm`] it or read
/// the injection counters.
///
/// [`disarm`]: FaultPlan::disarm
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; N_SITES],
    max_faults: u64,
    armed: AtomicBool,
    draws: [AtomicU64; N_SITES],
    injected: [AtomicU64; N_SITES],
    budget_used: AtomicU64,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero (injects nothing until
    /// sites are given rates).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0.0; N_SITES],
            max_faults: u64::MAX,
            armed: AtomicBool::new(true),
            draws: Default::default(),
            injected: Default::default(),
            budget_used: AtomicU64::new(0),
        }
    }

    /// Sets the injection probability of one site (clamped to `[0, 1]`).
    /// `1.0` makes every visit to the site fail while the plan is armed.
    pub fn rate(mut self, site: FaultSite, p: f64) -> Self {
        self.rates[site.index()] = p.clamp(0.0, 1.0);
        self
    }

    /// Caps the total number of injections across all sites — e.g.
    /// `rate(TaskPanic, 1.0).max_faults(1)` fails exactly the first task
    /// that executes and nothing after it.
    pub fn max_faults(mut self, n: u64) -> Self {
        self.max_faults = n;
        self
    }

    /// Stops all injection (draw counters keep advancing, so decisions stay
    /// aligned if the plan is re-armed).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }

    /// Re-enables injection after [`FaultPlan::disarm`].
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Whether the plan currently injects faults.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// The n-th visit to `site` asks: should it fail? Deterministic in
    /// `(seed, site, n)`; respects [`FaultPlan::disarm`] and the
    /// [`FaultPlan::max_faults`] budget.
    pub fn should_inject(&self, site: FaultSite) -> bool {
        let i = site.index();
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        let rate = self.rates[i];
        if rate <= 0.0 || !self.is_armed() {
            return false;
        }
        // One splitmix64 step over (seed, site, draw index) → uniform in
        // [0, 1). Pure function of the inputs: the schedule is reproducible.
        let h = splitmix64(
            self.seed
                ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ n.wrapping_mul(0xff51_afd7_ed55_8ccd),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= rate {
            return false;
        }
        // Charge the global budget last, so rate misses never consume it.
        if self.budget_used.fetch_add(1, Ordering::Relaxed) >= self.max_faults {
            return false;
        }
        self.injected[i].fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Faults injected at one site so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The plan's seed (identifies the schedule in failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_draw_index() {
        let a = FaultPlan::seeded(42).rate(FaultSite::TaskExec, 0.5);
        let b = FaultPlan::seeded(42).rate(FaultSite::TaskExec, 0.5);
        let da: Vec<bool> = (0..256).map(|_| a.should_inject(FaultSite::TaskExec)).collect();
        let db: Vec<bool> = (0..256).map(|_| b.should_inject(FaultSite::TaskExec)).collect();
        assert_eq!(da, db, "same seed, same site ⇒ same schedule");
        assert!(da.iter().any(|&x| x) && da.iter().any(|&x| !x), "rate 0.5 mixes outcomes");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::seeded(1).rate(FaultSite::SpillWrite, 0.5);
        let b = FaultPlan::seeded(2).rate(FaultSite::SpillWrite, 0.5);
        let da: Vec<bool> = (0..256).map(|_| a.should_inject(FaultSite::SpillWrite)).collect();
        let db: Vec<bool> = (0..256).map(|_| b.should_inject(FaultSite::SpillWrite)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn max_faults_caps_total_injections() {
        let p = FaultPlan::seeded(7).rate(FaultSite::TaskPanic, 1.0).max_faults(1);
        let fired: usize = (0..64).filter(|_| p.should_inject(FaultSite::TaskPanic)).count();
        assert_eq!(fired, 1, "budget of one fault");
        assert_eq!(p.total_injected(), 1);
        assert_eq!(p.injected(FaultSite::TaskPanic), 1);
    }

    #[test]
    fn disarm_stops_injection() {
        let p = FaultPlan::seeded(9).rate(FaultSite::SpillRead, 1.0);
        assert!(p.should_inject(FaultSite::SpillRead));
        p.disarm();
        assert!(!p.should_inject(FaultSite::SpillRead));
        assert!(!p.is_armed());
        p.arm();
        assert!(p.should_inject(FaultSite::SpillRead));
        assert_eq!(p.total_injected(), 2);
    }

    #[test]
    fn unconfigured_sites_never_inject() {
        let p = FaultPlan::seeded(3).rate(FaultSite::TaskExec, 1.0);
        assert!(!p.should_inject(FaultSite::SpillWrite));
        assert!(!p.should_inject(FaultSite::Alloc));
    }
}
