//! Matrix multiplication kernels: dense×dense (ikj order, parallel over row
//! bands), sparse×dense, dense×sparse, sparse×sparse, and the fused
//! `t(X) %*% Y` (tsmm-style) kernel that avoids materializing the transpose.

use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::par;
use crate::sparse::SparseMatrix;

/// `C = A %*% B`. Panics on an inner-dimension mismatch.
pub fn matmult(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmult inner dimension mismatch: {}x{} %*% {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    match (a, b) {
        (Matrix::Dense(x), Matrix::Dense(y)) => Matrix::dense(dense_dense(x, y)),
        (Matrix::Sparse(x), Matrix::Dense(y)) => Matrix::dense(sparse_dense(x, y)),
        (Matrix::Dense(x), Matrix::Sparse(y)) => Matrix::dense(dense_sparse(x, y)),
        (Matrix::Sparse(x), Matrix::Sparse(y)) => sparse_sparse(x, y),
    }
}

/// `C = t(X) %*% Y` computed as `Σ_r outer(X[r,:], Y[r,:])` without forming
/// `t(X)`. When `x` and `y` are the same matrix this is SystemML's `tsmm`.
/// Parallelized over row bands with per-thread partial outputs.
pub fn tsmm_left(x: &Matrix, y: &Matrix) -> Matrix {
    assert_eq!(x.rows(), y.rows(), "tsmm_left requires equal row counts");
    let (m, n) = (x.cols(), y.cols());
    let rows = x.rows();
    let acc = par::par_map_reduce(
        rows,
        m * n,
        crate::pool::take_zeroed(m * n),
        |lo, hi| {
            let mut c = crate::pool::take_zeroed(m * n);
            match (x, y) {
                (Matrix::Dense(xd), Matrix::Dense(yd)) => {
                    for r in lo..hi {
                        let xr = xd.row(r);
                        let yr = yd.row(r);
                        for (i, &xv) in xr.iter().enumerate() {
                            if xv != 0.0 {
                                let crow = &mut c[i * n..(i + 1) * n];
                                for (j, &yv) in yr.iter().enumerate() {
                                    crow[j] += xv * yv;
                                }
                            }
                        }
                    }
                }
                (Matrix::Sparse(xs), Matrix::Dense(yd)) => {
                    for r in lo..hi {
                        let yr = yd.row(r);
                        for (i, xv) in xs.row_iter(r) {
                            let crow = &mut c[i * n..(i + 1) * n];
                            for (j, &yv) in yr.iter().enumerate() {
                                crow[j] += xv * yv;
                            }
                        }
                    }
                }
                _ => {
                    for r in lo..hi {
                        for i in 0..m {
                            let xv = x.get(r, i);
                            if xv != 0.0 {
                                for j in 0..n {
                                    c[i * n + j] += xv * y.get(r, j);
                                }
                            }
                        }
                    }
                }
            }
            c
        },
        |mut a, b| {
            for (av, bv) in a.iter_mut().zip(b.iter()) {
                *av += bv;
            }
            crate::pool::give(b);
            a
        },
    );
    Matrix::dense(DenseMatrix::new(m, n, acc))
}

fn dense_dense(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = crate::pool::take_zeroed(m * n);
    par::par_rows_mut(&mut out, m, n.max(1), k * n.max(1), |r, crow| {
        let arow = a.row(r);
        // ikj loop order: stream through B rows, accumulate into the C row.
        for (ki, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let brow = b.row(ki);
                for (j, &bv) in brow.iter().enumerate() {
                    crow[j] += av * bv;
                }
            }
        }
    });
    DenseMatrix::new(m, n, out)
}

fn sparse_dense(a: &SparseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut out = crate::pool::take_zeroed(m * n);
    par::par_rows_mut(&mut out, m, n.max(1), n.max(1).max(a.nnz() / m.max(1)), |r, crow| {
        for (ki, av) in a.row_iter(r) {
            let brow = b.row(ki);
            for (j, &bv) in brow.iter().enumerate() {
                crow[j] += av * bv;
            }
        }
    });
    DenseMatrix::new(m, n, out)
}

fn dense_sparse(a: &DenseMatrix, b: &SparseMatrix) -> DenseMatrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = crate::pool::take_zeroed(m * n);
    par::par_rows_mut(&mut out, m, n.max(1), k.max(1), |r, crow| {
        let arow = a.row(r);
        for (ki, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                for (j, bv) in b.row_iter(ki) {
                    crow[j] += av * bv;
                }
            }
        }
    });
    DenseMatrix::new(m, n, out)
}

fn sparse_sparse(a: &SparseMatrix, b: &SparseMatrix) -> Matrix {
    let (m, n) = (a.rows(), b.cols());
    // Row-at-a-time with a dense accumulator row; output format decided from
    // the observed density, as SystemML does with its output sparsity
    // estimator.
    let mut triples: Vec<(usize, usize, f64)> = Vec::new();
    let mut accum = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    for r in 0..m {
        for (ki, av) in a.row_iter(r) {
            for (j, bv) in b.row_iter(ki) {
                if accum[j] == 0.0 {
                    touched.push(j);
                }
                accum[j] += av * bv;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            if accum[j] != 0.0 {
                triples.push((r, j, accum[j]));
            }
            accum[j] = 0.0;
        }
        touched.clear();
    }
    let nnz = triples.len();
    let sp = SparseMatrix::from_triples(m, n, triples);
    if nnz * 2 > m * n {
        Matrix::dense(sp.to_dense())
    } else {
        Matrix::sparse(sp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Matrix, b: &Matrix) -> DenseMatrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn rnd_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        // Small deterministic LCG to avoid pulling rand into unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            data.push(if v.abs() < 0.3 { 0.0 } else { v });
        }
        DenseMatrix::new(rows, cols, data)
    }

    #[test]
    fn dense_dense_matches_naive() {
        let a = Matrix::dense(rnd_dense(7, 5, 1));
        let b = Matrix::dense(rnd_dense(5, 9, 2));
        let c = matmult(&a, &b);
        assert!(c.approx_eq(&Matrix::dense(naive(&a, &b)), 1e-10));
    }

    #[test]
    fn all_format_combinations_agree() {
        let ad = rnd_dense(8, 6, 3);
        let bd = rnd_dense(6, 4, 4);
        let combos: Vec<(Matrix, Matrix)> = vec![
            (Matrix::dense(ad.clone()), Matrix::dense(bd.clone())),
            (Matrix::sparse(SparseMatrix::from_dense(&ad)), Matrix::dense(bd.clone())),
            (Matrix::dense(ad.clone()), Matrix::sparse(SparseMatrix::from_dense(&bd))),
            (
                Matrix::sparse(SparseMatrix::from_dense(&ad)),
                Matrix::sparse(SparseMatrix::from_dense(&bd)),
            ),
        ];
        let expect = Matrix::dense(naive(&combos[0].0, &combos[0].1));
        for (a, b) in &combos {
            let c = matmult(a, b);
            assert!(c.approx_eq(&expect, 1e-10));
        }
    }

    #[test]
    fn tsmm_left_matches_explicit_transpose() {
        let x = rnd_dense(10, 4, 5);
        let y = rnd_dense(10, 3, 6);
        let expect = {
            let xt = super::super::reorg::transpose(&Matrix::dense(x.clone()));
            matmult(&xt, &Matrix::dense(y.clone()))
        };
        let got = tsmm_left(&Matrix::dense(x.clone()), &Matrix::dense(y));
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn tsmm_left_sparse_input() {
        let x = rnd_dense(12, 5, 7);
        let y = rnd_dense(12, 2, 8);
        let expect = tsmm_left(&Matrix::dense(x.clone()), &Matrix::dense(y.clone()));
        let got = tsmm_left(&Matrix::sparse(SparseMatrix::from_dense(&x)), &Matrix::dense(y));
        assert!(got.approx_eq(&expect, 1e-10));
    }

    #[test]
    fn matrix_vector() {
        let a = Matrix::dense(DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let v = Matrix::dense(DenseMatrix::col_vector(&[1.0, 1.0]));
        let c = matmult(&a, &v);
        assert_eq!((c.rows(), c.cols()), (2, 1));
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.get(1, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        matmult(&a, &b);
    }

    #[test]
    fn sparse_sparse_output_format() {
        // Nearly-empty product stays sparse.
        let a = Matrix::sparse(SparseMatrix::from_triples(100, 100, vec![(0, 0, 1.0)]));
        let b = Matrix::sparse(SparseMatrix::from_triples(100, 100, vec![(0, 5, 2.0)]));
        let c = matmult(&a, &b);
        assert!(c.is_sparse());
        assert_eq!(c.get(0, 5), 2.0);
        assert_eq!(c.nnz(), 1);
    }
}
