//! Operator kernels over [`Matrix`] values.
//!
//! Each logical operation (element-wise binary, unary map, ternary,
//! aggregation, matrix multiply, reorg/indexing) has dense and sparse
//! implementations with an automatic output-format decision, mirroring
//! SystemML's physical operator library. These kernels are what the `Base`
//! (no fusion) execution mode runs, and what fused operators are validated
//! against in tests.

use crate::matrix::Matrix;

pub mod agg;
pub mod elementwise;
pub mod matmult;
pub mod reorg;
pub mod ternary;
pub mod unary;

pub use agg::{agg, cum_agg};
pub use elementwise::{binary, binary_assign, binary_scalar};
pub use matmult::{matmult, tsmm_left};
pub use reorg::{cbind, diag, index_range, rbind, seq, transpose};
pub use ternary::ternary;
pub use unary::{unary, unary_assign};

/// Element-wise binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mult,
    Div,
    Min,
    Max,
    Pow,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    /// Applies the scalar semantics of the operator. Comparison and logical
    /// operators produce 0/1 indicators, as in SystemML.
    #[inline(always)]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mult => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Pow => a.powf(b),
            BinaryOp::Eq => f64::from(a == b),
            BinaryOp::Neq => f64::from(a != b),
            BinaryOp::Lt => f64::from(a < b),
            BinaryOp::Le => f64::from(a <= b),
            BinaryOp::Gt => f64::from(a > b),
            BinaryOp::Ge => f64::from(a >= b),
            BinaryOp::And => f64::from(a != 0.0 && b != 0.0),
            BinaryOp::Or => f64::from(a != 0.0 || b != 0.0),
        }
    }

    /// True if `0 op x == 0` for all finite `x` — i.e. zero cells of the
    /// *left* input can be skipped regardless of the right value. This is the
    /// paper's notion of a sparse-safe operation with a left sparse driver.
    pub fn sparse_safe_left(self) -> bool {
        matches!(self, BinaryOp::Mult | BinaryOp::And)
    }

    /// True if `x op 0 == 0` for all finite `x` (right sparse driver).
    pub fn sparse_safe_right(self) -> bool {
        matches!(self, BinaryOp::Mult | BinaryOp::And)
    }

    /// True if `0 op 0 == 0`, so a cell that is zero in *both* inputs stays
    /// zero (e.g. add/sub preserve joint sparsity even though a single-sided
    /// zero does not).
    pub fn zero_zero_is_zero(self) -> bool {
        self.apply(0.0, 0.0) == 0.0
    }

    /// Short mnemonic used in rendered fused-operator source code.
    pub fn name(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mult => "*",
            BinaryOp::Div => "/",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
            BinaryOp::Pow => "^",
            BinaryOp::Eq => "==",
            BinaryOp::Neq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
        }
    }
}

/// Element-wise unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Exp,
    Log,
    Sqrt,
    Abs,
    Sign,
    Round,
    Floor,
    Ceil,
    Neg,
    /// Logistic function `1 / (1 + exp(-x))`.
    Sigmoid,
    /// `x^2` — distinct from `Pow` so sparse-safety is visible statically.
    Pow2,
    /// Sample proportion `x * (1 - x)` (used by neural-network backprop).
    Sprop,
    /// Numerically robust `log(x + eps)`-style guard is modelled via binary
    /// add before log; plain `1/x`.
    Recip,
}

impl UnaryOp {
    /// Scalar semantics.
    #[inline(always)]
    pub fn apply(self, a: f64) -> f64 {
        match self {
            UnaryOp::Exp => a.exp(),
            UnaryOp::Log => a.ln(),
            UnaryOp::Sqrt => a.sqrt(),
            UnaryOp::Abs => a.abs(),
            UnaryOp::Sign => {
                if a > 0.0 {
                    1.0
                } else if a < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Round => a.round(),
            UnaryOp::Floor => a.floor(),
            UnaryOp::Ceil => a.ceil(),
            UnaryOp::Neg => -a,
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-a).exp()),
            UnaryOp::Pow2 => a * a,
            UnaryOp::Sprop => a * (1.0 - a),
            UnaryOp::Recip => 1.0 / a,
        }
    }

    /// True if `f(0) == 0`, i.e. the operation can run over non-zeros only.
    pub fn sparse_safe(self) -> bool {
        matches!(
            self,
            UnaryOp::Sqrt
                | UnaryOp::Abs
                | UnaryOp::Sign
                | UnaryOp::Round
                | UnaryOp::Floor
                | UnaryOp::Ceil
                | UnaryOp::Neg
                | UnaryOp::Pow2
                | UnaryOp::Sprop
        )
    }

    /// Mnemonic for rendered source.
    pub fn name(self) -> &'static str {
        match self {
            UnaryOp::Exp => "exp",
            UnaryOp::Log => "log",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Abs => "abs",
            UnaryOp::Sign => "sign",
            UnaryOp::Round => "round",
            UnaryOp::Floor => "floor",
            UnaryOp::Ceil => "ceil",
            UnaryOp::Neg => "neg",
            UnaryOp::Sigmoid => "sigmoid",
            UnaryOp::Pow2 => "sq",
            UnaryOp::Sprop => "sprop",
            UnaryOp::Recip => "recip",
        }
    }
}

/// Ternary fused scalar operators (SystemML's `+*`, `-*`, `ifelse`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TernaryOp {
    /// `a + b * c`
    PlusMult,
    /// `a - b * c`
    MinusMult,
    /// `if a != 0 then b else c`
    IfElse,
}

impl TernaryOp {
    /// Scalar semantics.
    #[inline(always)]
    pub fn apply(self, a: f64, b: f64, c: f64) -> f64 {
        match self {
            TernaryOp::PlusMult => a + b * c,
            TernaryOp::MinusMult => a - b * c,
            TernaryOp::IfElse => {
                if a != 0.0 {
                    b
                } else {
                    c
                }
            }
        }
    }

    /// Mnemonic for rendered source.
    pub fn name(self) -> &'static str {
        match self {
            TernaryOp::PlusMult => "+*",
            TernaryOp::MinusMult => "-*",
            TernaryOp::IfElse => "ifelse",
        }
    }
}

/// Aggregation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggOp {
    Sum,
    SumSq,
    Min,
    Max,
    Mean,
}

impl AggOp {
    /// The fold identity for this aggregate.
    pub fn identity(self) -> f64 {
        match self {
            AggOp::Sum | AggOp::SumSq | AggOp::Mean => 0.0,
            AggOp::Min => f64::INFINITY,
            AggOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Folds one value into the accumulator.
    #[inline(always)]
    pub fn fold(self, acc: f64, v: f64) -> f64 {
        match self {
            AggOp::Sum | AggOp::Mean => acc + v,
            AggOp::SumSq => acc + v * v,
            AggOp::Min => acc.min(v),
            AggOp::Max => acc.max(v),
        }
    }

    /// Combines two partial accumulators.
    #[inline(always)]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            AggOp::Sum | AggOp::SumSq | AggOp::Mean => a + b,
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
        }
    }

    /// True if zero cells contribute the identity (so an aggregation over
    /// non-zeros plus a zero-count correction is exact).
    pub fn sparse_safe(self) -> bool {
        matches!(self, AggOp::Sum | AggOp::SumSq)
    }
}

/// Aggregation direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggDir {
    /// Full aggregation to a 1×1 result.
    Full,
    /// Row-wise aggregation to an n×1 column vector (e.g. `rowSums`).
    Row,
    /// Column-wise aggregation to a 1×m row vector (e.g. `colSums`).
    Col,
}

/// Resolved broadcasting relationship between two operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Broadcast {
    /// Identical geometry.
    Cellwise,
    /// Right operand is an n×1 column vector replicated across columns.
    ColVector,
    /// Right operand is a 1×m row vector replicated across rows.
    RowVector,
    /// Right operand is 1×1.
    Scalar,
}

/// Determines how `rhs` broadcasts against an `rows`×`cols` left operand;
/// panics on incompatible shapes (shape errors are compile-time bugs in this
/// system, caught by HOP size propagation before execution).
pub fn resolve_broadcast(rows: usize, cols: usize, m: &Matrix) -> Broadcast {
    if m.rows() == 1 && m.cols() == 1 {
        Broadcast::Scalar
    } else if m.rows() == rows && m.cols() == cols {
        Broadcast::Cellwise
    } else if m.rows() == rows && m.cols() == 1 {
        Broadcast::ColVector
    } else if m.rows() == 1 && m.cols() == cols {
        Broadcast::RowVector
    } else {
        panic!("incompatible shapes for broadcast: {}x{} vs {}x{}", rows, cols, m.rows(), m.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_semantics() {
        assert_eq!(BinaryOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinaryOp::Pow.apply(2.0, 10.0), 1024.0);
        assert_eq!(BinaryOp::Neq.apply(1.0, 0.0), 1.0);
        assert_eq!(BinaryOp::And.apply(2.0, 0.0), 0.0);
        assert_eq!(BinaryOp::Or.apply(0.0, 3.0), 1.0);
    }

    #[test]
    fn sparse_safety_flags() {
        assert!(BinaryOp::Mult.sparse_safe_left());
        assert!(!BinaryOp::Add.sparse_safe_left());
        assert!(BinaryOp::Add.zero_zero_is_zero());
        assert!(!BinaryOp::Eq.zero_zero_is_zero());
        assert!(UnaryOp::Pow2.sparse_safe());
        assert!(!UnaryOp::Exp.sparse_safe());
        assert!(AggOp::Sum.sparse_safe());
        assert!(!AggOp::Min.sparse_safe());
    }

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Sign.apply(-3.0), -1.0);
        assert_eq!(UnaryOp::Pow2.apply(3.0), 9.0);
        assert!((UnaryOp::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(UnaryOp::Sprop.apply(0.25), 0.1875);
    }

    #[test]
    fn ternary_semantics() {
        assert_eq!(TernaryOp::PlusMult.apply(1.0, 2.0, 3.0), 7.0);
        assert_eq!(TernaryOp::MinusMult.apply(1.0, 2.0, 3.0), -5.0);
        assert_eq!(TernaryOp::IfElse.apply(1.0, 2.0, 3.0), 2.0);
        assert_eq!(TernaryOp::IfElse.apply(0.0, 2.0, 3.0), 3.0);
    }

    #[test]
    fn agg_identities() {
        assert_eq!(AggOp::Min.identity(), f64::INFINITY);
        assert_eq!(AggOp::Sum.fold(1.0, 2.0), 3.0);
        assert_eq!(AggOp::SumSq.fold(1.0, 2.0), 5.0);
        assert_eq!(AggOp::Max.combine(1.0, 2.0), 2.0);
    }

    #[test]
    fn broadcast_resolution() {
        use crate::dense::DenseMatrix;
        let col = Matrix::dense(DenseMatrix::zeros(4, 1));
        let row = Matrix::dense(DenseMatrix::zeros(1, 5));
        let full = Matrix::dense(DenseMatrix::zeros(4, 5));
        let sc = Matrix::dense(DenseMatrix::zeros(1, 1));
        assert_eq!(resolve_broadcast(4, 5, &col), Broadcast::ColVector);
        assert_eq!(resolve_broadcast(4, 5, &row), Broadcast::RowVector);
        assert_eq!(resolve_broadcast(4, 5, &full), Broadcast::Cellwise);
        assert_eq!(resolve_broadcast(4, 5, &sc), Broadcast::Scalar);
    }

    #[test]
    #[should_panic(expected = "incompatible shapes")]
    fn broadcast_mismatch_panics() {
        use crate::dense::DenseMatrix;
        let bad = Matrix::dense(DenseMatrix::zeros(3, 2));
        resolve_broadcast(4, 5, &bad);
    }
}
