//! Aggregations: full, row-wise, and column-wise, over dense and sparse
//! matrices, plus cumulative aggregates.

use super::{AggDir, AggOp};
use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::par;
use crate::sparse::SparseMatrix;

/// Aggregates `a` in direction `dir` with function `op`.
///
/// * `Full` → 1×1, `Row` → n×1 (`rowSums` et al.), `Col` → 1×m (`colSums`).
/// * Sparse inputs use non-zero iteration; for `Min`/`Max` the implicit
///   zeros are folded in whenever a row/column has fewer non-zeros than
///   cells, preserving exact semantics.
pub fn agg(a: &Matrix, op: AggOp, dir: AggDir) -> Matrix {
    match a {
        Matrix::Dense(d) => agg_dense(d, op, dir),
        Matrix::Sparse(s) => agg_sparse(s, op, dir),
    }
}

fn finalize_mean(op: AggOp, acc: f64, count: usize) -> f64 {
    if op == AggOp::Mean {
        acc / count as f64
    } else {
        acc
    }
}

fn agg_dense(a: &DenseMatrix, op: AggOp, dir: AggDir) -> Matrix {
    let (rows, cols) = (a.rows(), a.cols());
    match dir {
        AggDir::Full => {
            let acc = par::par_map_reduce(
                rows,
                cols.max(1),
                op.identity(),
                |lo, hi| {
                    let mut acc = op.identity();
                    for r in lo..hi {
                        for &v in a.row(r) {
                            acc = op.fold(acc, v);
                        }
                    }
                    acc
                },
                |x, y| op.combine(x, y),
            );
            Matrix::dense(DenseMatrix::filled(1, 1, finalize_mean(op, acc, rows * cols)))
        }
        AggDir::Row => {
            let mut out = crate::pool::take_zeroed(rows);
            par::par_rows_mut(&mut out, rows, 1, cols.max(1), |r, slot| {
                let mut acc = op.identity();
                for &v in a.row(r) {
                    acc = op.fold(acc, v);
                }
                slot[0] = finalize_mean(op, acc, cols);
            });
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        AggDir::Col => {
            let mut acc = vec![op.identity(); cols];
            for r in 0..rows {
                for (c, &v) in a.row(r).iter().enumerate() {
                    acc[c] = op.fold(acc[c], v);
                }
            }
            for v in acc.iter_mut() {
                *v = finalize_mean(op, *v, rows);
            }
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
    }
}

fn agg_sparse(a: &SparseMatrix, op: AggOp, dir: AggDir) -> Matrix {
    let (rows, cols) = (a.rows(), a.cols());
    match dir {
        AggDir::Full => {
            let mut acc = op.identity();
            for &v in a.values() {
                acc = op.fold(acc, v);
            }
            if !op.sparse_safe() && a.nnz() < rows * cols {
                acc = op.fold(acc, 0.0);
            }
            Matrix::dense(DenseMatrix::filled(1, 1, finalize_mean(op, acc, rows * cols)))
        }
        AggDir::Row => {
            let mut out = crate::pool::take_zeroed(rows);
            for (r, slot) in out.iter_mut().enumerate() {
                let mut acc = op.identity();
                for &v in a.row_values(r) {
                    acc = op.fold(acc, v);
                }
                if !op.sparse_safe() && a.row_nnz(r) < cols {
                    acc = op.fold(acc, 0.0);
                }
                *slot = finalize_mean(op, acc, cols);
            }
            Matrix::dense(DenseMatrix::new(rows, 1, out))
        }
        AggDir::Col => {
            let mut acc = vec![op.identity(); cols];
            let mut counts = vec![0usize; cols];
            for r in 0..rows {
                for (c, v) in a.row_iter(r) {
                    acc[c] = op.fold(acc[c], v);
                    counts[c] += 1;
                }
            }
            for c in 0..cols {
                if !op.sparse_safe() && counts[c] < rows {
                    acc[c] = op.fold(acc[c], 0.0);
                }
                acc[c] = finalize_mean(op, acc[c], rows);
            }
            Matrix::dense(DenseMatrix::new(1, cols, acc))
        }
    }
}

/// Cumulative aggregate down the rows (SystemML's `cumsum`), dense output.
/// Only `Sum` is required by the evaluation workloads.
pub fn cum_agg(a: &Matrix, op: AggOp) -> Matrix {
    assert_eq!(op, AggOp::Sum, "only cumsum is supported");
    let d = a.to_dense();
    let (rows, cols) = (d.rows(), d.cols());
    let mut out = d.into_values();
    for r in 1..rows {
        for c in 0..cols {
            out[r * cols + c] += out[(r - 1) * cols + c];
        }
    }
    Matrix::dense(DenseMatrix::new(rows, cols, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::dense(DenseMatrix::from_rows(&[&[1.0, -2.0, 3.0], &[0.0, 5.0, -6.0]]))
    }

    fn sample_sparse() -> Matrix {
        Matrix::sparse(SparseMatrix::from_dense(sample_dense().as_dense()))
    }

    #[test]
    fn full_sum() {
        assert_eq!(agg(&sample_dense(), AggOp::Sum, AggDir::Full).get(0, 0), 1.0);
        assert_eq!(agg(&sample_sparse(), AggOp::Sum, AggDir::Full).get(0, 0), 1.0);
    }

    #[test]
    fn full_sumsq() {
        let expect = 1.0 + 4.0 + 9.0 + 25.0 + 36.0;
        assert_eq!(agg(&sample_dense(), AggOp::SumSq, AggDir::Full).get(0, 0), expect);
        assert_eq!(agg(&sample_sparse(), AggOp::SumSq, AggDir::Full).get(0, 0), expect);
    }

    #[test]
    fn row_sums() {
        let r = agg(&sample_dense(), AggOp::Sum, AggDir::Row);
        assert_eq!((r.rows(), r.cols()), (2, 1));
        assert_eq!(r.get(0, 0), 2.0);
        assert_eq!(r.get(1, 0), -1.0);
    }

    #[test]
    fn col_sums() {
        let c = agg(&sample_dense(), AggOp::Sum, AggDir::Col);
        assert_eq!((c.rows(), c.cols()), (1, 3));
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 3.0);
        assert_eq!(c.get(0, 2), -3.0);
    }

    #[test]
    fn sparse_min_includes_implicit_zeros() {
        // All stored values positive, but there are implicit zeros, so min=0.
        let s = Matrix::sparse(SparseMatrix::from_triples(2, 2, vec![(0, 0, 5.0)]));
        assert_eq!(agg(&s, AggOp::Min, AggDir::Full).get(0, 0), 0.0);
        let rm = agg(&s, AggOp::Min, AggDir::Row);
        assert_eq!(rm.get(0, 0), 0.0);
        let cm = agg(&s, AggOp::Max, AggDir::Col);
        assert_eq!(cm.get(0, 0), 5.0);
        assert_eq!(cm.get(0, 1), 0.0);
    }

    #[test]
    fn sparse_dense_agree_on_all_ops_dirs() {
        for op in [AggOp::Sum, AggOp::SumSq, AggOp::Min, AggOp::Max, AggOp::Mean] {
            for dir in [AggDir::Full, AggDir::Row, AggDir::Col] {
                let d = agg(&sample_dense(), op, dir);
                let s = agg(&sample_sparse(), op, dir);
                assert!(d.approx_eq(&s, 1e-12), "{op:?}/{dir:?} disagree");
            }
        }
    }

    #[test]
    fn mean_divides() {
        let m = agg(&sample_dense(), AggOp::Mean, AggDir::Full);
        assert!((m.get(0, 0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn cumsum_runs_down_rows() {
        let a = Matrix::dense(DenseMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 3.0], &[4.0, 5.0]]));
        let c = cum_agg(&a, AggOp::Sum);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 0), 3.0);
        assert_eq!(c.get(2, 1), 9.0);
    }
}
