//! Reorganization and indexing operations: transpose, right indexing,
//! cbind/rbind, diag, seq.

use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::par;

/// `t(a)`. Dense transpose is cache-blocked; sparse transpose uses the CSR
/// counting algorithm.
pub fn transpose(a: &Matrix) -> Matrix {
    match a {
        Matrix::Dense(d) => Matrix::dense(transpose_dense(d)),
        Matrix::Sparse(s) => Matrix::sparse(s.transpose()),
    }
}

const BLOCK: usize = 64;

fn transpose_dense(a: &DenseMatrix) -> DenseMatrix {
    let (rows, cols) = (a.rows(), a.cols());
    let mut out = crate::pool::take_zeroed(rows * cols);
    // Parallel over output row bands (output rows = input columns).
    let src = a.values();
    par::par_rows_mut(&mut out, cols, rows.max(1), rows.max(1), |oc, orow| {
        // orow is output row `oc`, i.e. input column `oc`, of length `rows`.
        let mut r = 0;
        while r < rows {
            let rend = (r + BLOCK).min(rows);
            for (ri, slot) in orow[r..rend].iter_mut().enumerate() {
                *slot = src[(r + ri) * cols + oc];
            }
            r = rend;
        }
    });
    DenseMatrix::new(cols, rows, out)
}

/// Right indexing `a[rl:ru, cl:cu]` with half-open ranges (0-based).
pub fn index_range(
    a: &Matrix,
    row_range: std::ops::Range<usize>,
    col_range: std::ops::Range<usize>,
) -> Matrix {
    assert!(row_range.end <= a.rows() && col_range.end <= a.cols(), "index out of range");
    let (orows, ocols) = (row_range.len(), col_range.len());
    match a {
        Matrix::Dense(d) => {
            let mut out = Vec::with_capacity(orows * ocols);
            for r in row_range {
                out.extend_from_slice(&d.row(r)[col_range.clone()]);
            }
            Matrix::dense(DenseMatrix::new(orows, ocols, out))
        }
        Matrix::Sparse(s) => {
            let mut triples = Vec::new();
            for (ri, r) in row_range.enumerate() {
                for (c, v) in s.row_iter(r) {
                    if col_range.contains(&c) {
                        triples.push((ri, c - col_range.start, v));
                    }
                }
            }
            Matrix::sparse(crate::sparse::SparseMatrix::from_triples(orows, ocols, triples))
        }
    }
}

/// Column binding `cbind(a, b)` (dense output).
pub fn cbind(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "cbind row mismatch");
    let (rows, ac, bc) = (a.rows(), a.cols(), b.cols());
    let ad = a.to_dense();
    let bd = b.to_dense();
    let mut out = Vec::with_capacity(rows * (ac + bc));
    for r in 0..rows {
        out.extend_from_slice(ad.row(r));
        out.extend_from_slice(bd.row(r));
    }
    Matrix::dense(DenseMatrix::new(rows, ac + bc, out))
}

/// Row binding `rbind(a, b)` (dense output).
pub fn rbind(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "rbind col mismatch");
    let ad = a.to_dense();
    let bd = b.to_dense();
    let mut out = ad.into_values();
    out.extend_from_slice(bd.values());
    Matrix::dense(DenseMatrix::new(a.rows() + b.rows(), a.cols(), out))
}

/// `diag(v)`: a column vector becomes a diagonal matrix; a square matrix
/// yields its diagonal as a column vector.
pub fn diag(a: &Matrix) -> Matrix {
    if a.cols() == 1 {
        let n = a.rows();
        let triples: Vec<_> = (0..n)
            .filter_map(|i| {
                let v = a.get(i, 0);
                (v != 0.0).then_some((i, i, v))
            })
            .collect();
        Matrix::sparse(crate::sparse::SparseMatrix::from_triples(n, n, triples))
    } else {
        assert_eq!(a.rows(), a.cols(), "diag of non-square matrix");
        let n = a.rows();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(a.get(i, i));
        }
        Matrix::dense(DenseMatrix::new(n, 1, out))
    }
}

/// `seq(from, to, incr)` as a column vector (inclusive bounds, SystemML
/// semantics).
pub fn seq(from: f64, to: f64, incr: f64) -> Matrix {
    assert!(incr != 0.0, "seq increment must be non-zero");
    let n = if (incr > 0.0 && from > to) || (incr < 0.0 && from < to) {
        0
    } else {
        ((to - from) / incr).floor() as usize + 1
    };
    let data: Vec<f64> = (0..n).map(|i| from + incr * i as f64).collect();
    Matrix::dense(DenseMatrix::new(n, 1, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseMatrix;

    #[test]
    fn dense_transpose() {
        let a = Matrix::dense(DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        let t = transpose(&a);
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.get(2, 0), 3.0);
        assert!(transpose(&t).approx_eq(&a, 0.0));
    }

    #[test]
    fn sparse_transpose_via_matrix() {
        let s = Matrix::sparse(SparseMatrix::from_triples(2, 3, vec![(0, 2, 7.0)]));
        let t = transpose(&s);
        assert!(t.is_sparse());
        assert_eq!(t.get(2, 0), 7.0);
    }

    #[test]
    fn indexing_dense_and_sparse_agree() {
        let d = DenseMatrix::from_rows(&[
            &[1.0, 0.0, 3.0, 0.0],
            &[0.0, 5.0, 0.0, 7.0],
            &[8.0, 0.0, 9.0, 0.0],
        ]);
        let dd = Matrix::dense(d.clone());
        let ss = Matrix::sparse(SparseMatrix::from_dense(&d));
        let i1 = index_range(&dd, 1..3, 1..4);
        let i2 = index_range(&ss, 1..3, 1..4);
        assert_eq!((i1.rows(), i1.cols()), (2, 3));
        assert!(i1.approx_eq(&i2, 0.0));
        assert_eq!(i1.get(0, 0), 5.0);
        assert_eq!(i1.get(1, 1), 9.0);
    }

    #[test]
    fn cbind_rbind() {
        let a = Matrix::dense(DenseMatrix::from_rows(&[&[1.0], &[2.0]]));
        let b = Matrix::dense(DenseMatrix::from_rows(&[&[3.0], &[4.0]]));
        let c = cbind(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 2));
        assert_eq!(c.get(0, 1), 3.0);
        let r = rbind(&a, &b);
        assert_eq!((r.rows(), r.cols()), (4, 1));
        assert_eq!(r.get(3, 0), 4.0);
    }

    #[test]
    fn diag_roundtrip() {
        let v = Matrix::dense(DenseMatrix::col_vector(&[1.0, 0.0, 3.0]));
        let d = diag(&v);
        assert!(d.is_sparse());
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(2, 2), 3.0);
        assert_eq!(d.nnz(), 2);
        let back = diag(&d);
        assert!(back.approx_eq(&v, 0.0));
    }

    #[test]
    fn seq_inclusive() {
        let s = seq(1.0, 5.0, 2.0);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.get(2, 0), 5.0);
        let e = seq(5.0, 1.0, 1.0);
        assert_eq!(e.rows(), 0);
        let d = seq(5.0, 1.0, -2.0);
        assert_eq!(d.rows(), 3);
        assert_eq!(d.get(2, 0), 1.0);
    }
}
