//! Element-wise binary operations with matrix/vector/scalar broadcasting.

use super::{resolve_broadcast, BinaryOp, Broadcast};
use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::par;
use crate::sparse::SparseMatrix;

/// `out = a op scalar`, preserving sparsity when the operator allows it.
pub fn binary_scalar(a: &Matrix, s: f64, op: BinaryOp) -> Matrix {
    match a {
        Matrix::Sparse(sp) if op.apply(0.0, s) == 0.0 => {
            // Zero cells stay zero: operate on stored values only.
            let mut out = (**sp).clone();
            for v in out.values_mut() {
                *v = op.apply(*v, s);
            }
            out.compact();
            Matrix::sparse(out)
        }
        _ => {
            let (rows, cols) = (a.rows(), a.cols());
            let mut data = match a {
                Matrix::Dense(d) => crate::pool::take_copy(d.values()),
                Matrix::Sparse(_) => a.to_dense().into_values(),
            };
            par::par_rows_mut(&mut data, rows, cols.max(1), cols.max(1), |_, row| {
                for v in row.iter_mut() {
                    *v = op.apply(*v, s);
                }
            });
            Matrix::dense(DenseMatrix::new(rows, cols, data))
        }
    }
}

/// `out = scalar op a` (scalar on the left).
pub fn scalar_binary(s: f64, a: &Matrix, op: BinaryOp) -> Matrix {
    match a {
        Matrix::Sparse(sp) if op.apply(s, 0.0) == 0.0 => {
            let mut out = (**sp).clone();
            for v in out.values_mut() {
                *v = op.apply(s, *v);
            }
            out.compact();
            Matrix::sparse(out)
        }
        _ => {
            let (rows, cols) = (a.rows(), a.cols());
            let mut data = match a {
                Matrix::Dense(d) => crate::pool::take_copy(d.values()),
                Matrix::Sparse(_) => a.to_dense().into_values(),
            };
            par::par_rows_mut(&mut data, rows, cols.max(1), cols.max(1), |_, row| {
                for v in row.iter_mut() {
                    *v = op.apply(s, *v);
                }
            });
            Matrix::dense(DenseMatrix::new(rows, cols, data))
        }
    }
}

/// General element-wise `a op b` with broadcasting of `b` (cellwise, column
/// vector, row vector, or scalar). Sparse fast paths:
///
/// * left-sparse-safe op (`*`, `&`) with sparse `a`: iterate non-zeros of `a`
///   only — the sparsity-exploitation primitive of the paper,
/// * sparse ∘ sparse for `0 op 0 == 0` ops: row-wise merge join.
pub fn binary(a: &Matrix, b: &Matrix, op: BinaryOp) -> Matrix {
    // Symmetric scalar promotion (1x1 matrices act as scalars).
    if b.is_scalar_shaped() && !a.is_scalar_shaped() {
        return binary_scalar(a, b.get(0, 0), op);
    }
    if a.is_scalar_shaped() && !b.is_scalar_shaped() {
        return scalar_binary(a.get(0, 0), b, op);
    }
    let (rows, cols) = (a.rows(), a.cols());
    let bc = resolve_broadcast(rows, cols, b);

    match (a, bc) {
        (Matrix::Sparse(sa), _) if op.sparse_safe_left() => sparse_left_driver(sa, b, bc, op),
        (Matrix::Sparse(sa), Broadcast::Cellwise) if b.is_sparse() && op.zero_zero_is_zero() => {
            sparse_sparse_merge(sa, b.as_sparse(), op)
        }
        _ => dense_binary(&a.to_dense(), b, bc, op),
    }
}

/// Sparse left input with a sparse-safe operator: output non-zeros are a
/// subset of `a`'s non-zeros.
fn sparse_left_driver(a: &SparseMatrix, b: &Matrix, bc: Broadcast, op: BinaryOp) -> Matrix {
    let mut triples = Vec::with_capacity(a.nnz());
    for r in 0..a.rows() {
        for (c, v) in a.row_iter(r) {
            let bv = match bc {
                Broadcast::Cellwise => b.get(r, c),
                Broadcast::ColVector => b.get(r, 0),
                Broadcast::RowVector => b.get(0, c),
                Broadcast::Scalar => b.get(0, 0),
            };
            let out = op.apply(v, bv);
            if out != 0.0 {
                triples.push((r, c, out));
            }
        }
    }
    Matrix::sparse(SparseMatrix::from_triples(a.rows(), a.cols(), triples))
}

/// Row-wise merge join of two aligned CSR matrices for ops where `0 op 0 == 0`.
fn sparse_sparse_merge(a: &SparseMatrix, b: &SparseMatrix, op: BinaryOp) -> Matrix {
    let mut triples = Vec::with_capacity(a.nnz() + b.nnz());
    for r in 0..a.rows() {
        let (ac, av) = (a.row_cols(r), a.row_values(r));
        let (bc, bv) = (b.row_cols(r), b.row_values(r));
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let (c, x, y) = if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                let t = (ac[i], av[i], 0.0);
                i += 1;
                t
            } else if i >= ac.len() || bc[j] < ac[i] {
                let t = (bc[j], 0.0, bv[j]);
                j += 1;
                t
            } else {
                let t = (ac[i], av[i], bv[j]);
                i += 1;
                j += 1;
                t
            };
            let out = op.apply(x, y);
            if out != 0.0 {
                triples.push((r, c, out));
            }
        }
    }
    Matrix::sparse(SparseMatrix::from_triples(a.rows(), a.cols(), triples))
}

/// In-place `a = a op b`, reusing `a`'s (uniquely owned, typically dying)
/// buffer as the output. Bitwise-identical to [`binary`] for a dense left
/// operand: it mirrors `binary`'s dispatch arm-for-arm, only writing into
/// `a`'s buffer instead of a fresh one. When the output shape differs from
/// `a` (1×1 left operand against a matrix), it falls back to [`binary`].
pub fn binary_assign(mut a: DenseMatrix, b: &Matrix, op: BinaryOp) -> Matrix {
    let (rows, cols) = (a.rows(), a.cols());
    if a.is_empty() || (rows == 1 && cols == 1 && !b.is_scalar_shaped()) {
        return binary(&Matrix::dense(a), b, op);
    }
    if b.is_scalar_shaped() && !(rows == 1 && cols == 1) {
        // binary_scalar's dense path, in place.
        let s = b.get(0, 0);
        par::par_rows_mut(a.values_mut(), rows, cols.max(1), cols.max(1), |_, row| {
            for v in row.iter_mut() {
                *v = op.apply(*v, s);
            }
        });
        return Matrix::dense(a);
    }
    let bc = resolve_broadcast(rows, cols, b);
    let bd;
    let b_dense: Option<&DenseMatrix> = match b {
        Matrix::Dense(d) => Some(d),
        Matrix::Sparse(s) => {
            if bc != Broadcast::Cellwise {
                bd = s.to_dense();
                Some(&bd)
            } else {
                None
            }
        }
    };
    par::par_rows_mut(a.values_mut(), rows, cols.max(1), cols.max(1), |r, row| {
        match (b_dense, bc) {
            (Some(bm), Broadcast::Cellwise) => {
                let brow = bm.row(r);
                for c in 0..cols {
                    row[c] = op.apply(row[c], brow[c]);
                }
            }
            (Some(bm), Broadcast::ColVector) => {
                let bv = bm.get(r, 0);
                for v in row.iter_mut() {
                    *v = op.apply(*v, bv);
                }
            }
            (Some(bm), Broadcast::RowVector) => {
                let brow = bm.row(0);
                for c in 0..cols {
                    row[c] = op.apply(row[c], brow[c]);
                }
            }
            (Some(bm), Broadcast::Scalar) => {
                let bv = bm.get(0, 0);
                for v in row.iter_mut() {
                    *v = op.apply(*v, bv);
                }
            }
            (None, _) => {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = op.apply(*v, b.get(r, c));
                }
            }
        }
    });
    Matrix::dense(a)
}

/// Dense fallback; parallel over row bands.
fn dense_binary(a: &DenseMatrix, b: &Matrix, bc: Broadcast, op: BinaryOp) -> Matrix {
    let (rows, cols) = (a.rows(), a.cols());
    let mut out = crate::pool::take_zeroed(rows * cols);
    let bd;
    let b_dense: Option<&DenseMatrix> = match b {
        Matrix::Dense(d) => Some(d),
        Matrix::Sparse(s) => {
            // Densify small broadcast operands; large cellwise sparse operands
            // are handled cell-by-cell to avoid a big intermediate.
            if bc != Broadcast::Cellwise {
                bd = s.to_dense();
                Some(&bd)
            } else {
                None
            }
        }
    };
    {
        let out_slice = &mut out[..];
        par::par_rows_mut(out_slice, rows, cols.max(1), cols.max(1), |r, orow| {
            let arow = a.row(r);
            match (b_dense, bc) {
                (Some(bm), Broadcast::Cellwise) => {
                    let brow = bm.row(r);
                    for c in 0..cols {
                        orow[c] = op.apply(arow[c], brow[c]);
                    }
                }
                (Some(bm), Broadcast::ColVector) => {
                    let bv = bm.get(r, 0);
                    for c in 0..cols {
                        orow[c] = op.apply(arow[c], bv);
                    }
                }
                (Some(bm), Broadcast::RowVector) => {
                    let brow = bm.row(0);
                    for c in 0..cols {
                        orow[c] = op.apply(arow[c], brow[c]);
                    }
                }
                (Some(bm), Broadcast::Scalar) => {
                    let bv = bm.get(0, 0);
                    for c in 0..cols {
                        orow[c] = op.apply(arow[c], bv);
                    }
                }
                (None, _) => {
                    for c in 0..cols {
                        orow[c] = op.apply(arow[c], b.get(r, c));
                    }
                }
            }
        });
    }
    Matrix::dense(DenseMatrix::new(rows, cols, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(rows: &[&[f64]]) -> Matrix {
        Matrix::dense(DenseMatrix::from_rows(rows))
    }

    #[test]
    fn dense_add() {
        let a = dm(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = dm(&[&[10.0, 20.0], &[30.0, 40.0]]);
        let c = binary(&a, &b, BinaryOp::Add);
        assert_eq!(c.get(0, 0), 11.0);
        assert_eq!(c.get(1, 1), 44.0);
    }

    #[test]
    fn col_vector_broadcast() {
        let a = dm(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = dm(&[&[10.0], &[100.0]]);
        let c = binary(&a, &v, BinaryOp::Mult);
        assert_eq!(c.get(0, 1), 20.0);
        assert_eq!(c.get(1, 0), 300.0);
    }

    #[test]
    fn row_vector_broadcast() {
        let a = dm(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = dm(&[&[10.0, 100.0]]);
        let c = binary(&a, &v, BinaryOp::Add);
        assert_eq!(c.get(0, 0), 11.0);
        assert_eq!(c.get(1, 1), 104.0);
    }

    #[test]
    fn scalar_promotion_both_sides() {
        let a = dm(&[&[2.0, 4.0]]);
        let s = dm(&[&[2.0]]);
        assert_eq!(binary(&a, &s, BinaryOp::Div).get(0, 1), 2.0);
        assert_eq!(binary(&s, &a, BinaryOp::Div).get(0, 1), 0.5);
    }

    #[test]
    fn sparse_mult_stays_sparse() {
        let a = Matrix::sparse(SparseMatrix::from_triples(3, 3, vec![(0, 0, 2.0), (2, 2, 3.0)]));
        let b = dm(&[&[5.0, 1.0, 1.0], &[1.0, 1.0, 1.0], &[1.0, 1.0, 7.0]]);
        let c = binary(&a, &b, BinaryOp::Mult);
        assert!(c.is_sparse());
        assert_eq!(c.get(0, 0), 10.0);
        assert_eq!(c.get(2, 2), 21.0);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn sparse_sparse_add_merges() {
        let a = Matrix::sparse(SparseMatrix::from_triples(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0)]));
        let b = Matrix::sparse(SparseMatrix::from_triples(2, 3, vec![(0, 0, 5.0), (1, 1, 3.0)]));
        let c = binary(&a, &b, BinaryOp::Add);
        assert!(c.is_sparse());
        assert_eq!(c.get(0, 0), 6.0);
        assert_eq!(c.get(0, 2), 2.0);
        assert_eq!(c.get(1, 1), 3.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn sparse_sub_cancellation_drops_entry() {
        let a = Matrix::sparse(SparseMatrix::from_triples(1, 2, vec![(0, 0, 2.0)]));
        let b = Matrix::sparse(SparseMatrix::from_triples(1, 2, vec![(0, 0, 2.0)]));
        let c = binary(&a, &b, BinaryOp::Sub);
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn scalar_op_on_sparse_preserves_format_when_safe() {
        let a = Matrix::sparse(SparseMatrix::from_triples(2, 2, vec![(0, 0, 4.0)]));
        let c = binary_scalar(&a, 2.0, BinaryOp::Mult);
        assert!(c.is_sparse());
        assert_eq!(c.get(0, 0), 8.0);
        // x^1 keeps zeros zero as well (0^2=0): pow with positive exponent safe
        let p = binary_scalar(&a, 2.0, BinaryOp::Pow);
        assert!(p.is_sparse());
        assert_eq!(p.get(0, 0), 16.0);
        // add densifies
        let d = binary_scalar(&a, 1.0, BinaryOp::Add);
        assert!(!d.is_sparse());
        assert_eq!(d.get(1, 1), 1.0);
    }

    #[test]
    fn comparison_produces_indicator() {
        let a = dm(&[&[1.0, -2.0], &[0.0, 4.0]]);
        let c = binary_scalar(&a, 0.0, BinaryOp::Neq);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(1, 0), 0.0);
    }

    /// The in-place variant must be *bitwise* identical to `binary` — it is
    /// substituted for dying inputs on the scheduled execution path, which is
    /// differentially tested against the sequential oracle.
    #[test]
    fn binary_assign_bitwise_equals_binary() {
        let a = DenseMatrix::from_rows(&[&[1.5, -2.0, 0.0], &[0.25, 4.0, -1.0]]);
        let cell = dm(&[&[2.0, 3.0, 4.0], &[5.0, 6.0, 7.0]]);
        let colv = dm(&[&[10.0], &[20.0]]);
        let rowv = dm(&[&[1.0, 2.0, 3.0]]);
        let sc = dm(&[&[0.5]]);
        let sp = Matrix::sparse(SparseMatrix::from_triples(2, 3, vec![(0, 1, 2.0), (1, 2, 3.0)]));
        for b in [&cell, &colv, &rowv, &sc, &sp] {
            for op in [BinaryOp::Add, BinaryOp::Div, BinaryOp::Pow, BinaryOp::Max] {
                let expect = binary(&Matrix::dense(a.clone()), b, op);
                let got = binary_assign(a.clone(), b, op);
                assert_eq!((got.rows(), got.cols()), (expect.rows(), expect.cols()));
                for r in 0..got.rows() {
                    for c in 0..got.cols() {
                        assert!(
                            got.get(r, c).to_bits() == expect.get(r, c).to_bits(),
                            "{op:?} at ({r},{c}): {} vs {}",
                            got.get(r, c),
                            expect.get(r, c)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn binary_assign_scalar_left_falls_back() {
        let a = DenseMatrix::filled(1, 1, 2.0);
        let b = dm(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let got = binary_assign(a, &b, BinaryOp::Mult);
        let expect = binary(&dm(&[&[2.0]]), &b, BinaryOp::Mult);
        assert!(got.approx_eq(&expect, 0.0));
        assert_eq!((got.rows(), got.cols()), (2, 2));
    }

    #[test]
    fn dense_vs_sparse_agree() {
        let d = DenseMatrix::from_rows(&[&[1.0, 0.0, 3.0], &[0.0, 5.0, 0.0]]);
        let s = Matrix::sparse(SparseMatrix::from_dense(&d));
        let dd = Matrix::dense(d);
        for op in [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mult, BinaryOp::Min, BinaryOp::Max] {
            let r1 = binary(&dd, &dd, op);
            let r2 = binary(&s, &s, op);
            assert!(r1.approx_eq(&r2, 1e-12), "op {op:?} disagrees");
        }
    }
}
