//! Ternary fused scalar operations (`+*`, `-*`, `ifelse`).

use super::{resolve_broadcast, Broadcast, TernaryOp};
use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::par;

/// `out = op(a, b, c)` cell-wise, with each of `b` and `c` independently
/// broadcast (cellwise / column vector / row vector / scalar) against `a`'s
/// geometry. Always produces a dense output: ternary operators are not
/// sparse-safe in general (`0 + b*c != 0`).
pub fn ternary(a: &Matrix, b: &Matrix, c: &Matrix, op: TernaryOp) -> Matrix {
    let (rows, cols) = (a.rows(), a.cols());
    let bcb = resolve_broadcast(rows, cols, b);
    let bcc = resolve_broadcast(rows, cols, c);
    let ad = a.to_dense();
    let bd = b.to_dense();
    let cd = c.to_dense();
    let mut out = crate::pool::take_zeroed(rows * cols);
    par::par_rows_mut(&mut out, rows, cols.max(1), cols.max(1), |r, orow| {
        let arow = ad.row(r);
        for col in 0..cols {
            let bv = bcast_get(&bd, bcb, r, col);
            let cv = bcast_get(&cd, bcc, r, col);
            orow[col] = op.apply(arow[col], bv, cv);
        }
    });
    Matrix::dense(DenseMatrix::new(rows, cols, out))
}

#[inline(always)]
fn bcast_get(m: &DenseMatrix, bc: Broadcast, r: usize, c: usize) -> f64 {
    match bc {
        Broadcast::Cellwise => m.get(r, c),
        Broadcast::ColVector => m.get(r, 0),
        Broadcast::RowVector => m.get(0, c),
        Broadcast::Scalar => m.get(0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(rows: &[&[f64]]) -> Matrix {
        Matrix::dense(DenseMatrix::from_rows(rows))
    }

    #[test]
    fn plus_mult() {
        let a = dm(&[&[1.0, 2.0]]);
        let b = dm(&[&[3.0, 4.0]]);
        let c = dm(&[&[5.0, 6.0]]);
        let r = ternary(&a, &b, &c, TernaryOp::PlusMult);
        assert_eq!(r.get(0, 0), 16.0);
        assert_eq!(r.get(0, 1), 26.0);
    }

    #[test]
    fn minus_mult_with_scalar_broadcast() {
        let a = dm(&[&[10.0, 20.0]]);
        let b = dm(&[&[2.0]]);
        let c = dm(&[&[3.0, 4.0]]);
        let r = ternary(&a, &b, &c, TernaryOp::MinusMult);
        assert_eq!(r.get(0, 0), 4.0);
        assert_eq!(r.get(0, 1), 12.0);
    }

    #[test]
    fn ifelse_selects() {
        let cond = dm(&[&[1.0, 0.0]]);
        let b = dm(&[&[7.0, 7.0]]);
        let c = dm(&[&[9.0, 9.0]]);
        let r = ternary(&cond, &b, &c, TernaryOp::IfElse);
        assert_eq!(r.get(0, 0), 7.0);
        assert_eq!(r.get(0, 1), 9.0);
    }

    #[test]
    fn col_vector_broadcast_in_b_and_c() {
        let a = dm(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = dm(&[&[10.0], &[20.0]]);
        let c = dm(&[&[0.5, 1.5]]);
        let r = ternary(&a, &b, &c, TernaryOp::PlusMult);
        assert_eq!(r.get(0, 0), 6.0);
        assert_eq!(r.get(1, 1), 32.0);
    }
}
