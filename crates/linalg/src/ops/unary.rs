//! Element-wise unary operations.

use super::UnaryOp;
use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::par;

/// Applies `op` to every element of `row`, four elements per iteration.
///
/// The 4-wide manual unroll keeps four independent `op.apply` chains in
/// flight, which matters for the cheap ops (`Neg`, `Abs`, `Pow2`) whose
/// per-element latency is otherwise dominated by the loop-carried index
/// update; the tail (< 4 elements) runs scalar.
fn apply_unrolled(row: &mut [f64], op: UnaryOp) {
    let n = row.len();
    let base = row.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: `base` points at `n` contiguous initialized f64s owned
        // exclusively through `row`; the loop condition guarantees
        // `i + 3 < n`, so all four offsets are in bounds and distinct.
        unsafe {
            let p0 = base.add(i);
            let p1 = base.add(i + 1);
            let p2 = base.add(i + 2);
            let p3 = base.add(i + 3);
            *p0 = op.apply(*p0);
            *p1 = op.apply(*p1);
            *p2 = op.apply(*p2);
            *p3 = op.apply(*p3);
        }
        i += 4;
    }
    for v in &mut row[i..] {
        *v = op.apply(*v);
    }
}

/// `out = f(a)` cell-wise. Sparse-safe functions (`f(0)=0`) run over stored
/// non-zeros only and keep the CSR format.
pub fn unary(a: &Matrix, op: UnaryOp) -> Matrix {
    match a {
        Matrix::Sparse(s) if op.sparse_safe() => {
            let mut out = (**s).clone();
            for v in out.values_mut() {
                *v = op.apply(*v);
            }
            out.compact();
            Matrix::sparse(out)
        }
        _ => {
            let (rows, cols) = (a.rows(), a.cols());
            let mut data = match a {
                Matrix::Dense(d) => crate::pool::take_copy(d.values()),
                Matrix::Sparse(_) => a.to_dense().into_values(),
            };
            par::par_rows_mut(&mut data, rows, cols.max(1), cols.max(1), |_, row| {
                apply_unrolled(row, op);
            });
            Matrix::dense(DenseMatrix::new(rows, cols, data))
        }
    }
}

/// In-place `a = f(a)`, reusing a uniquely owned dense (typically dying)
/// input buffer as the output. Bitwise-identical to [`unary`]'s dense path.
pub fn unary_assign(mut a: DenseMatrix, op: UnaryOp) -> Matrix {
    let (rows, cols) = (a.rows(), a.cols());
    par::par_rows_mut(a.values_mut(), rows, cols.max(1), cols.max(1), |_, row| {
        apply_unrolled(row, op);
    });
    Matrix::dense(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseMatrix;

    #[test]
    fn dense_exp() {
        let a = Matrix::dense(DenseMatrix::from_rows(&[&[0.0, 1.0]]));
        let e = unary(&a, UnaryOp::Exp);
        assert!((e.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((e.get(0, 1) - std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn sparse_safe_stays_sparse() {
        let a = Matrix::sparse(SparseMatrix::from_triples(3, 3, vec![(1, 1, -4.0)]));
        let r = unary(&a, UnaryOp::Abs);
        assert!(r.is_sparse());
        assert_eq!(r.get(1, 1), 4.0);
        assert_eq!(r.nnz(), 1);
    }

    #[test]
    fn sparse_unsafe_densifies() {
        let a = Matrix::sparse(SparseMatrix::from_triples(2, 2, vec![(0, 0, 1.0)]));
        let r = unary(&a, UnaryOp::Exp);
        assert!(!r.is_sparse());
        assert!((r.get(1, 1) - 1.0).abs() < 1e-12, "exp(0) = 1 must appear");
    }

    #[test]
    fn sign_can_compact() {
        // sign of positive values stays 1.0; no zeros introduced here, but
        // round can introduce zeros from values in (-0.5, 0.5).
        let a = Matrix::sparse(SparseMatrix::from_triples(1, 2, vec![(0, 0, 0.2)]));
        let r = unary(&a, UnaryOp::Round);
        assert_eq!(r.nnz(), 0);
    }

    #[test]
    fn all_ops_match_scalar_semantics_on_dense() {
        let vals = [-1.5, -0.3, 0.0, 0.4, 2.0];
        let a = Matrix::dense(DenseMatrix::row_vector(&vals));
        for op in [
            UnaryOp::Exp,
            UnaryOp::Sqrt,
            UnaryOp::Abs,
            UnaryOp::Sign,
            UnaryOp::Round,
            UnaryOp::Floor,
            UnaryOp::Ceil,
            UnaryOp::Neg,
            UnaryOp::Sigmoid,
            UnaryOp::Pow2,
            UnaryOp::Sprop,
        ] {
            let r = unary(&a, op);
            for (i, &v) in vals.iter().enumerate() {
                let expect = op.apply(v);
                let got = r.get(0, i);
                assert!(
                    crate::approx_eq(expect, got, 1e-12),
                    "{op:?}({v}) = {got}, expected {expect}"
                );
            }
        }
    }
}
