//! Vector-primitive library for generated fused operators, mirroring
//! SystemML's `LibSpoofPrimitives`.
//!
//! Fused operators produced by the code generator do not materialize matrix
//! intermediates; instead they call these primitives on row slices and
//! scalars. Separating primitives from generated code keeps the per-operator
//! instruction footprint small (paper §5.2, Figure 10). Dense primitives take
//! `(&[f64], offset, len)` triples exactly like the Java originals; sparse
//! primitives additionally take the non-zero index array `aix`.
//!
//! All loops are written with exact-size slices so the compiler elides bounds
//! checks; the hot kernels use 4-fold manual unrolling like the originals'
//! 8-fold unrolling (sized for typical row lengths in the benchmarks).

/// `sum(a[ai..ai+len] * b[bi..bi+len])` — dispatches to the AVX2+FMA path
/// when available (see [`crate::simd`]).
#[inline]
pub fn dot_product(a: &[f64], b: &[f64], ai: usize, bi: usize, len: usize) -> f64 {
    crate::simd::dot(&a[ai..ai + len], &b[bi..bi + len])
}

/// Sparse dot product: `sum(avals * b[bi + aix])` over the non-zeros of `a`.
#[inline]
pub fn dot_product_sparse(avals: &[f64], aix: &[usize], b: &[f64], bi: usize) -> f64 {
    let mut acc = 0.0;
    for (v, &ix) in avals.iter().zip(aix.iter()) {
        acc += v * b[bi + ix];
    }
    acc
}

/// `c[ci..ci+len] += a[ai..ai+len] * bval` — SIMD axpy (see [`crate::simd`]).
#[inline]
pub fn vect_mult_add(a: &[f64], bval: f64, c: &mut [f64], ai: usize, ci: usize, len: usize) {
    crate::simd::axpy(&a[ai..ai + len], bval, &mut c[ci..ci + len]);
}

/// Sparse variant: `c[ci + aix[k]] += avals[k] * bval`.
#[inline]
pub fn vect_mult_add_sparse(avals: &[f64], aix: &[usize], bval: f64, c: &mut [f64], ci: usize) {
    for (v, &ix) in avals.iter().zip(aix.iter()) {
        c[ci + ix] += v * bval;
    }
}

/// `out[i] = a[ai+i] * b[bi+i]` into a fresh vector.
#[inline]
pub fn vect_mult_write(a: &[f64], b: &[f64], ai: usize, bi: usize, len: usize) -> Vec<f64> {
    let a = &a[ai..ai + len];
    let b = &b[bi..bi + len];
    let mut out = vec![0.0; len];
    for i in 0..len {
        out[i] = a[i] * b[i];
    }
    out
}

/// `out[i] = a[ai+i] * s` into a fresh vector.
#[inline]
pub fn vect_mult_scalar_write(a: &[f64], s: f64, ai: usize, len: usize) -> Vec<f64> {
    let a = &a[ai..ai + len];
    let mut out = vec![0.0; len];
    for i in 0..len {
        out[i] = a[i] * s;
    }
    out
}

/// `out[i] = a[i] + b[i]`.
#[inline]
pub fn vect_add_write(a: &[f64], b: &[f64], ai: usize, bi: usize, len: usize) -> Vec<f64> {
    let a = &a[ai..ai + len];
    let b = &b[bi..bi + len];
    let mut out = vec![0.0; len];
    for i in 0..len {
        out[i] = a[i] + b[i];
    }
    out
}

/// `out[i] = a[i] - b[i]`.
#[inline]
pub fn vect_minus_write(a: &[f64], b: &[f64], ai: usize, bi: usize, len: usize) -> Vec<f64> {
    let a = &a[ai..ai + len];
    let b = &b[bi..bi + len];
    let mut out = vec![0.0; len];
    for i in 0..len {
        out[i] = a[i] - b[i];
    }
    out
}

/// `out[i] = a[i] / b[i]`.
#[inline]
pub fn vect_div_write(a: &[f64], b: &[f64], ai: usize, bi: usize, len: usize) -> Vec<f64> {
    let a = &a[ai..ai + len];
    let b = &b[bi..bi + len];
    let mut out = vec![0.0; len];
    for i in 0..len {
        out[i] = a[i] / b[i];
    }
    out
}

/// `sum(a[ai..ai+len])` — SIMD horizontal reduction (see [`crate::simd`]).
#[inline]
pub fn vect_sum(a: &[f64], ai: usize, len: usize) -> f64 {
    crate::simd::sum(&a[ai..ai + len])
}

/// `sum(a^2)` — SIMD horizontal reduction (see [`crate::simd`]).
#[inline]
pub fn vect_sum_sq(a: &[f64], ai: usize, len: usize) -> f64 {
    crate::simd::sum_sq(&a[ai..ai + len])
}

/// `max(a)`.
#[inline]
pub fn vect_max(a: &[f64], ai: usize, len: usize) -> f64 {
    let a = &a[ai..ai + len];
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// `min(a)`.
#[inline]
pub fn vect_min(a: &[f64], ai: usize, len: usize) -> f64 {
    let a = &a[ai..ai + len];
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Outer-product accumulation `C[ci + i*n + j] += a[ai+i] * b[j]` for the
/// row-major `m×n` output block; used by Row-template column aggregations
/// (`vectOuterMultAdd`).
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors SystemML's LibSpoofPrimitives (array, offset, length) calling convention
pub fn vect_outer_mult_add(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    ai: usize,
    bi: usize,
    ci: usize,
    alen: usize,
    blen: usize,
) {
    let a = &a[ai..ai + alen];
    let b = &b[bi..bi + blen];
    for (i, &av) in a.iter().enumerate() {
        if av != 0.0 {
            let crow = &mut c[ci + i * blen..ci + (i + 1) * blen];
            for (j, &bv) in b.iter().enumerate() {
                crow[j] += av * bv;
            }
        }
    }
}

/// Row-vector × matrix: `out[j] = sum_i a[ai+i] * b[i*n + j]` where `b` is a
/// row-major `len×n` block (`vectMatrixMult` in the Java library).
#[inline]
pub fn vect_mat_mult(a: &[f64], b: &[f64], ai: usize, len: usize, n: usize) -> Vec<f64> {
    let a = &a[ai..ai + len];
    let mut out = vec![0.0f64; n];
    for (i, &av) in a.iter().enumerate() {
        if av != 0.0 {
            let brow = &b[i * n..(i + 1) * n];
            for (j, &bv) in brow.iter().enumerate() {
                out[j] += av * bv;
            }
        }
    }
    out
}

/// Sparse row-vector × matrix over non-zeros of `a`.
#[inline]
pub fn vect_mat_mult_sparse(avals: &[f64], aix: &[usize], b: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    for (&av, &i) in avals.iter().zip(aix.iter()) {
        let brow = &b[i * n..(i + 1) * n];
        for (j, &bv) in brow.iter().enumerate() {
            out[j] += av * bv;
        }
    }
    out
}

/// Matrix × column-vector segment: `out[i] = dot(b_row_i, a)` where `b` is a
/// row-major `m×len` block; used for `Xv` inside Row templates.
#[inline]
pub fn mat_vect_mult(b: &[f64], a: &[f64], m: usize, len: usize, ai: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; m];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = dot_product(&b[i * len..(i + 1) * len], a, 0, ai, len);
    }
    out
}

/// Element-wise unary application into a fresh vector.
#[inline]
pub fn vect_unary_write(a: &[f64], ai: usize, len: usize, f: impl Fn(f64) -> f64) -> Vec<f64> {
    let a = &a[ai..ai + len];
    let mut out = vec![0.0; len];
    for i in 0..len {
        out[i] = f(a[i]);
    }
    out
}

/// `c[ci..] += a[ai..]` (accumulate a full vector).
#[inline]
pub fn vect_add(a: &[f64], c: &mut [f64], ai: usize, ci: usize, len: usize) {
    let a = &a[ai..ai + len];
    let c = &mut c[ci..ci + len];
    for i in 0..len {
        c[i] += a[i];
    }
}

/// Scatter-accumulate sparse vector into dense: `c[ci+aix[k]] += avals[k]`.
#[inline]
pub fn vect_add_sparse(avals: &[f64], aix: &[usize], c: &mut [f64], ci: usize) {
    for (v, &ix) in avals.iter().zip(aix.iter()) {
        c[ci + ix] += v;
    }
}

/// Cumulative sum over a row vector, in place.
#[inline]
pub fn vect_cumsum_inplace(a: &mut [f64]) {
    let mut acc = 0.0;
    for v in a.iter_mut() {
        acc += *v;
        *v = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_matches_naive() {
        let a: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..17).map(|i| (i * 2) as f64).collect();
        let expect: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot_product(&a, &b, 0, 0, 17), expect);
        // Offsets:
        let expect2: f64 = a[3..10].iter().zip(&b[5..12]).map(|(x, y)| x * y).sum();
        assert_eq!(dot_product(&a, &b, 3, 5, 7), expect2);
    }

    #[test]
    fn sparse_dot() {
        let avals = [2.0, 3.0];
        let aix = [1usize, 4];
        let b = [1.0, 10.0, 1.0, 1.0, 100.0];
        assert_eq!(dot_product_sparse(&avals, &aix, &b, 0), 320.0);
    }

    #[test]
    fn mult_add_accumulates() {
        let a = [1.0, 2.0, 3.0];
        let mut c = [10.0, 10.0, 10.0];
        vect_mult_add(&a, 2.0, &mut c, 0, 0, 3);
        assert_eq!(c, [12.0, 14.0, 16.0]);
    }

    #[test]
    fn sparse_mult_add_scatters() {
        let avals = [5.0];
        let aix = [2usize];
        let mut c = [0.0; 4];
        vect_mult_add_sparse(&avals, &aix, 3.0, &mut c, 0);
        assert_eq!(c, [0.0, 0.0, 15.0, 0.0]);
    }

    #[test]
    fn write_variants() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(vect_mult_write(&a, &b, 0, 0, 2), vec![3.0, 8.0]);
        assert_eq!(vect_add_write(&a, &b, 0, 0, 2), vec![4.0, 6.0]);
        assert_eq!(vect_minus_write(&a, &b, 0, 0, 2), vec![-2.0, -2.0]);
        assert_eq!(vect_div_write(&b, &a, 0, 0, 2), vec![3.0, 2.0]);
        assert_eq!(vect_mult_scalar_write(&a, 10.0, 0, 2), vec![10.0, 20.0]);
    }

    #[test]
    fn sums_and_extrema() {
        let a: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(vect_sum(&a, 0, 10), 55.0);
        assert_eq!(vect_sum_sq(&a, 0, 10), 385.0);
        assert_eq!(vect_max(&a, 0, 10), 10.0);
        assert_eq!(vect_min(&a, 2, 5), 3.0);
    }

    #[test]
    fn outer_mult_add() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0, 30.0];
        let mut c = vec![0.0; 6];
        vect_outer_mult_add(&a, &b, &mut c, 0, 0, 0, 2, 3);
        assert_eq!(c, vec![10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    fn vect_mat_and_mat_vect() {
        // b = [[1,2],[3,4],[5,6]] row-major, 3x2
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let a = [1.0, 0.0, 2.0];
        assert_eq!(vect_mat_mult(&a, &b, 0, 3, 2), vec![11.0, 14.0]);
        let avals = [1.0, 2.0];
        let aix = [0usize, 2];
        assert_eq!(vect_mat_mult_sparse(&avals, &aix, &b, 2), vec![11.0, 14.0]);
        // mat_vect: rows of 2x3 block dot a
        let m = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let v = [1.0, 1.0, 1.0];
        assert_eq!(mat_vect_mult(&m, &v, 2, 3, 0), vec![6.0, 15.0]);
    }

    #[test]
    fn unary_and_cumsum() {
        let a = [1.0, 4.0, 9.0];
        assert_eq!(vect_unary_write(&a, 0, 3, f64::sqrt), vec![1.0, 2.0, 3.0]);
        let mut c = [1.0, 2.0, 3.0];
        vect_cumsum_inplace(&mut c);
        assert_eq!(c, [1.0, 3.0, 6.0]);
    }

    #[test]
    fn add_and_scatter() {
        let a = [1.0, 2.0];
        let mut c = [1.0, 1.0];
        vect_add(&a, &mut c, 0, 0, 2);
        assert_eq!(c, [2.0, 3.0]);
        let mut d = [0.0; 3];
        vect_add_sparse(&[7.0], &[1], &mut d, 0);
        assert_eq!(d, [0.0, 7.0, 0.0]);
    }
}
