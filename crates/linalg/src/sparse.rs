//! CSR (compressed sparse row) matrices.
//!
//! Value and index buffers of freshly built CSR matrices are drawn from the
//! current scope's buffer pool ([`crate::pool`]) and return to it when the
//! matrix is recycled, so sparse fused-operator outputs reach the same
//! steady-state zero-allocation behaviour as dense ones.

use crate::dense::DenseMatrix;
use crate::pool;

/// A CSR sparse matrix of `f64` values.
///
/// `row_ptr` has `rows + 1` entries; row `r`'s non-zeros live at positions
/// `row_ptr[r]..row_ptr[r+1]` of `col_idx` / `values`, with `col_idx` strictly
/// increasing within each row. Zero-valued explicit entries are not stored.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Creates a CSR matrix from raw parts, validating the invariants.
    pub fn from_csr(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.last().unwrap_or(&0), values.len(), "row_ptr tail");
        debug_assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr monotone");
        debug_assert!(
            (0..rows).all(|r| {
                let s = &col_idx[row_ptr[r]..row_ptr[r + 1]];
                s.windows(2).all(|w| w[0] < w[1]) && s.iter().all(|&c| c < cols)
            }),
            "col_idx sorted and in range"
        );
        SparseMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Creates an empty (all-zero) sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from (row, col, value) triples; duplicates are
    /// summed, zeros dropped. Buffers come from the scoped pool.
    pub fn from_triples(rows: usize, cols: usize, mut triples: Vec<(usize, usize, f64)>) -> Self {
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut counts = vec![0usize; rows + 1];
        let mut col_idx = pool::take_indices(triples.len());
        let mut values = pool::take_values(triples.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triples {
            assert!(r < rows && c < cols, "triple out of range");
            if last == Some((r, c)) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                counts[r + 1] += 1;
                last = Some((r, c));
            }
        }
        // Drop explicit zeros produced by cancellation.
        let mut keep_col = pool::take_indices(col_idx.len());
        let mut keep_val = pool::take_values(values.len());
        let mut ptr = pool::take_indices(rows + 1);
        ptr.push(0);
        let mut pos = 0usize;
        for r in 0..rows {
            let cnt = counts[r + 1];
            for _ in 0..cnt {
                if values[pos] != 0.0 {
                    keep_col.push(col_idx[pos]);
                    keep_val.push(values[pos]);
                }
                pos += 1;
            }
            ptr.push(keep_col.len());
        }
        pool::give_indices(col_idx);
        pool::give(values);
        SparseMatrix { rows, cols, row_ptr: ptr, col_idx: keep_col, values: keep_val }
    }

    /// Converts a dense matrix to CSR, skipping zero cells. Buffers come from
    /// the scoped pool.
    pub fn from_dense(d: &DenseMatrix) -> Self {
        let rows = d.rows();
        let cols = d.cols();
        let mut row_ptr = pool::take_indices(rows + 1);
        row_ptr.push(0);
        let nnz = d.count_nnz();
        let mut col_idx = pool::take_indices(nnz);
        let mut values = pool::take_values(nnz);
        for r in 0..rows {
            for (c, &v) in d.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        SparseMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Decomposes into the raw CSR buffers `(row_ptr, col_idx, values)` —
    /// the recycling path back into the buffer pool.
    pub fn into_raw(self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        (self.row_ptr, self.col_idx, self.values)
    }

    /// Materializes as a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let row = out.row_mut(r);
            for (c, v) in self.row_iter(r) {
                row[c] = v;
            }
        }
        out
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of non-zero cells.
    pub fn sparsity(&self) -> f64 {
        let cells = self.rows * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// The non-zero column indices of row `r`.
    #[inline]
    pub fn row_cols(&self, r: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// The non-zero values of row `r`.
    #[inline]
    pub fn row_values(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Mutable values of row `r` (indices fixed).
    #[inline]
    pub fn row_values_mut(&mut self, r: usize) -> &mut [f64] {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        &mut self.values[s..e]
    }

    /// Number of non-zeros in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_cols(r).iter().copied().zip(self.row_values(r).iter().copied())
    }

    /// All raw values (across rows).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// All raw values, mutable. Callers must not write zeros (they would
    /// remain stored); use [`SparseMatrix::compact`] afterwards if they might.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Raw CSR row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw CSR column index array.
    #[inline]
    pub fn col_indices(&self) -> &[usize] {
        &self.col_idx
    }

    /// Point lookup via binary search within the row (O(log nnz(r))).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        match self.row_cols(r).binary_search(&c) {
            Ok(pos) => self.row_values(r)[pos],
            Err(_) => 0.0,
        }
    }

    /// Removes stored zeros (after value mutation that may have produced
    /// them), preserving CSR invariants.
    pub fn compact(&mut self) {
        let mut w = 0usize;
        let mut new_ptr = vec![0usize; self.rows + 1];
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            for p in s..e {
                if self.values[p] != 0.0 {
                    self.values[w] = self.values[p];
                    self.col_idx[w] = self.col_idx[p];
                    w += 1;
                }
            }
            new_ptr[r + 1] = w;
        }
        self.values.truncate(w);
        self.col_idx.truncate(w);
        self.row_ptr = new_ptr;
    }

    /// Transposes via a two-pass counting strategy (O(nnz + rows + cols)).
    pub fn transpose(&self) -> SparseMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let pos = next[c];
                next[c] += 1;
                col_idx[pos] = r;
                values[pos] = v;
            }
        }
        SparseMatrix { rows: self.cols, cols: self.rows, row_ptr, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        SparseMatrix::from_triples(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)])
    }

    #[test]
    fn triples_roundtrip() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    fn duplicate_triples_are_summed() {
        let m = SparseMatrix::from_triples(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn cancelling_triples_are_dropped() {
        let m = SparseMatrix::from_triples(2, 2, vec![(0, 0, 1.0), (0, 0, -1.0)]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dense_roundtrip() {
        let d = DenseMatrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 0.0, 0.0], &[3.0, 4.0, 0.0]]);
        let s = SparseMatrix::from_dense(&d);
        assert_eq!(s, sample());
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn transpose_is_involution() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn compact_removes_zeros() {
        let mut m = sample();
        m.row_values_mut(0)[0] = 0.0;
        m.compact();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
    }

    #[test]
    fn row_views() {
        let m = sample();
        assert_eq!(m.row_cols(2), &[0, 1]);
        assert_eq!(m.row_values(2), &[3.0, 4.0]);
        assert_eq!(m.row_nnz(1), 0);
    }
}
