//! Explicit SIMD tile primitives for the fused block engine (DESIGN.md
//! substitution X10).
//!
//! The default x86-64 target only assumes SSE2, so the portable primitives
//! in [`crate::primitives`] autovectorize to 128-bit code at best. The
//! kernels here carry explicit `std::arch` AVX2+FMA paths behind runtime
//! feature detection: 256-bit lanes, fused multiply-add chains for the
//! reduction accumulators, and masked tail loads instead of scalar
//! remainder loops. Every kernel has a portable scalar twin and the public
//! entry points dispatch per call, so non-AVX2 hosts (and the
//! `FUSEDML_FORCE_SCALAR` CI leg) run identical semantics through the
//! fallback.
//!
//! **Rounding policy** (pinned; see DESIGN.md §4 X10): elementwise *map*
//! kernels (`mul2_into`, `mul3_into`, `gather_into`) perform exactly the
//! operations of their scalar twins in the same order — no FMA contraction,
//! bitwise-identical output on every backend. *Reductions* (`dot*`, `sum`,
//! `sum_sq`, `axpy` accumulation order per element is preserved but lane
//! association differs and FMA is permitted), so reduction results are
//! backend-defined within ~1e-12 relative error; differential tests pin
//! that bound against the scalar oracle. `min`/`max` folds are deliberately
//! *not* implemented here: `_mm256_min_pd` does not match Rust's
//! `f64::min` on NaN and ±0.0, and the portable fold in `primitives` is
//! already cheap.
//!
//! Feature detection runs once (`std::arch::is_x86_feature_detected!`) and
//! is cached; [`force_scalar`] flips a process-wide override so
//! differential tests exercise the scalar twins in the same process, and
//! the `FUSEDML_FORCE_SCALAR` environment variable does the same for whole
//! test-suite runs (the CI scalar-fallback leg).

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set level the dispatchers select.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar twins (also the non-x86 and forced-fallback path).
    Scalar,
    /// 256-bit AVX2 + FMA kernels.
    Avx2,
}

/// Cached detection state: 0 = undetected, 1 = scalar, 2 = avx2.
static LEVEL: AtomicU8 = AtomicU8::new(0);
/// Runtime override: 0 = off, 1 = force scalar (differential tests).
static FORCE_SCALAR: AtomicU8 = AtomicU8::new(0);

#[cold]
fn detect() -> u8 {
    let lvl = if std::env::var_os("FUSEDML_FORCE_SCALAR").is_some_and(|v| v != "0" && !v.is_empty())
    {
        1
    } else {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                2
            } else {
                1
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            1
        }
    };
    LEVEL.store(lvl, Ordering::Relaxed);
    lvl
}

/// The SIMD level the dispatchers currently select (detection cached after
/// the first call; [`force_scalar`] overrides it at any time).
#[inline]
pub fn level() -> SimdLevel {
    if FORCE_SCALAR.load(Ordering::Relaxed) != 0 {
        return SimdLevel::Scalar;
    }
    let l = LEVEL.load(Ordering::Relaxed);
    let l = if l == 0 { detect() } else { l };
    if l == 2 {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

/// Forces every dispatcher onto the portable scalar twins (`true`) or
/// restores runtime detection (`false`). Process-wide; used by the
/// differential property tests to compare both paths in one process.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(u8::from(on), Ordering::Relaxed);
}

/// Whether the scalar override is currently active (env var or
/// [`force_scalar`]).
pub fn forced_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed) != 0 || level() == SimdLevel::Scalar
}

// ===========================================================================
// Portable scalar twins
// ===========================================================================
// 4-fold unrolled like the seed primitives: one accumulator per lane of a
// 256-bit register, so scalar and AVX2 paths share the same association
// shape (4 partial sums combined at the end) and stay within the pinned
// 1e-12 differential bound.

fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * b[k];
        acc[1] += a[k + 1] * b[k + 1];
        acc[2] += a[k + 2] * b[k + 2];
        acc[3] += a[k + 3] * b[k + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..n {
        s += a[i] * b[i];
    }
    s
}

fn dot3_scalar(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    let n = a.len().min(b.len()).min(c.len());
    let mut acc = [0.0f64; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * b[k] * c[k];
        acc[1] += a[k + 1] * b[k + 1] * c[k + 1];
        acc[2] += a[k + 2] * b[k + 2] * c[k + 2];
        acc[3] += a[k + 3] * b[k + 3] * c[k + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..n {
        s += a[i] * b[i] * c[i];
    }
    s
}

fn dot4_scalar(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> f64 {
    let n = a.len().min(b.len()).min(c.len()).min(d.len());
    let mut acc = [0.0f64; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * b[k] * c[k] * d[k];
        acc[1] += a[k + 1] * b[k + 1] * c[k + 1] * d[k + 1];
        acc[2] += a[k + 2] * b[k + 2] * c[k + 2] * d[k + 2];
        acc[3] += a[k + 3] * b[k + 3] * c[k + 3] * d[k + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..n {
        s += a[i] * b[i] * c[i] * d[i];
    }
    s
}

fn sum_scalar(a: &[f64]) -> f64 {
    let n = a.len();
    let mut acc = [0.0f64; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k];
        acc[1] += a[k + 1];
        acc[2] += a[k + 2];
        acc[3] += a[k + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &v in &a[chunks * 4..] {
        s += v;
    }
    s
}

fn sum_sq_scalar(a: &[f64]) -> f64 {
    let n = a.len();
    let mut acc = [0.0f64; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * a[k];
        acc[1] += a[k + 1] * a[k + 1];
        acc[2] += a[k + 2] * a[k + 2];
        acc[3] += a[k + 3] * a[k + 3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &v in &a[chunks * 4..] {
        s += v * v;
    }
    s
}

fn axpy_scalar(a: &[f64], alpha: f64, c: &mut [f64]) {
    let n = a.len().min(c.len());
    for i in 0..n {
        c[i] += a[i] * alpha;
    }
}

fn mul2_scalar(dst: &mut [f64], a: &[f64], b: &[f64]) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = a[i] * b[i];
    }
}

fn mul3_scalar(dst: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = a[i] * b[i] * c[i];
    }
}

fn gather_scalar(dst: &mut [f64], src: &[f64], idx: &[usize]) {
    for (d, &i) in dst.iter_mut().zip(idx.iter()) {
        *d = src[i];
    }
}

// ===========================================================================
// AVX2 + FMA kernels
// ===========================================================================

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Lane masks for ragged tails: entry `r` activates the first `r` lanes
    /// of a 256-bit masked load (high bit of each 64-bit lane selects).
    const TAIL_MASKS: [[i64; 4]; 4] =
        [[0, 0, 0, 0], [-1, 0, 0, 0], [-1, -1, 0, 0], [-1, -1, -1, 0]];

    /// Masked load of the `r`-element tail at `p` (`r < 4`): inactive lanes
    /// read as +0.0, which is the identity for the add/mul-add reductions
    /// these tails feed.
    ///
    /// # Safety
    /// Caller guarantees `p` points at `r` readable `f64`s and the CPU
    /// supports AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn tail_load(p: *const f64, r: usize) -> __m256d {
        debug_assert!(r < 4);
        // SAFETY: TAIL_MASKS[r] is 32 aligned-enough bytes (loadu); the
        // masked load touches only the first `r` lanes of `p`, which the
        // caller guarantees are readable.
        unsafe {
            let m = _mm256_loadu_si256(TAIL_MASKS[r].as_ptr().cast());
            _mm256_maskload_pd(p, m)
        }
    }

    #[inline]
    fn hsum(v: __m256d) -> f64 {
        // (lane0+lane2) + (lane1+lane3), matching the scalar twin's
        // pairwise combination of its four accumulators.
        let mut lanes = [0.0f64; 4];
        // SAFETY: `lanes` is 4 f64s; storeu has no alignment requirement.
        unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), v) };
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let r = n % 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n bounds both loads.
            unsafe {
                let va = _mm256_loadu_pd(a.as_ptr().add(i * 4));
                let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
                acc = _mm256_fmadd_pd(va, vb, acc);
            }
        }
        if r != 0 {
            // SAFETY: the masked tail reads exactly the last `r` elements.
            unsafe {
                let va = tail_load(a.as_ptr().add(chunks * 4), r);
                let vb = tail_load(b.as_ptr().add(chunks * 4), r);
                acc = _mm256_fmadd_pd(va, vb, acc);
            }
        }
        hsum(acc)
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot3(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
        let n = a.len().min(b.len()).min(c.len());
        let chunks = n / 4;
        let r = n % 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n bounds all three loads.
            unsafe {
                let va = _mm256_loadu_pd(a.as_ptr().add(i * 4));
                let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
                let vc = _mm256_loadu_pd(c.as_ptr().add(i * 4));
                acc = _mm256_fmadd_pd(_mm256_mul_pd(va, vb), vc, acc);
            }
        }
        if r != 0 {
            // SAFETY: masked tails read exactly the last `r` elements.
            unsafe {
                let va = tail_load(a.as_ptr().add(chunks * 4), r);
                let vb = tail_load(b.as_ptr().add(chunks * 4), r);
                let vc = tail_load(c.as_ptr().add(chunks * 4), r);
                acc = _mm256_fmadd_pd(_mm256_mul_pd(va, vb), vc, acc);
            }
        }
        hsum(acc)
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot4(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> f64 {
        let n = a.len().min(b.len()).min(c.len()).min(d.len());
        let chunks = n / 4;
        let r = n % 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n bounds all four loads.
            unsafe {
                let va = _mm256_loadu_pd(a.as_ptr().add(i * 4));
                let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
                let vc = _mm256_loadu_pd(c.as_ptr().add(i * 4));
                let vd = _mm256_loadu_pd(d.as_ptr().add(i * 4));
                acc = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_mul_pd(va, vb), vc), vd, acc);
            }
        }
        if r != 0 {
            // SAFETY: masked tails read exactly the last `r` elements.
            unsafe {
                let va = tail_load(a.as_ptr().add(chunks * 4), r);
                let vb = tail_load(b.as_ptr().add(chunks * 4), r);
                let vc = tail_load(c.as_ptr().add(chunks * 4), r);
                let vd = tail_load(d.as_ptr().add(chunks * 4), r);
                acc = _mm256_fmadd_pd(_mm256_mul_pd(_mm256_mul_pd(va, vb), vc), vd, acc);
            }
        }
        hsum(acc)
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sum(a: &[f64]) -> f64 {
        let n = a.len();
        let chunks = n / 4;
        let r = n % 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n bounds the load.
            unsafe { acc = _mm256_add_pd(acc, _mm256_loadu_pd(a.as_ptr().add(i * 4))) };
        }
        if r != 0 {
            // SAFETY: masked tail reads exactly the last `r` elements.
            unsafe { acc = _mm256_add_pd(acc, tail_load(a.as_ptr().add(chunks * 4), r)) };
        }
        hsum(acc)
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sum_sq(a: &[f64]) -> f64 {
        let n = a.len();
        let chunks = n / 4;
        let r = n % 4;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n bounds the load.
            unsafe {
                let v = _mm256_loadu_pd(a.as_ptr().add(i * 4));
                acc = _mm256_fmadd_pd(v, v, acc);
            }
        }
        if r != 0 {
            // SAFETY: masked tail reads exactly the last `r` elements.
            unsafe {
                let v = tail_load(a.as_ptr().add(chunks * 4), r);
                acc = _mm256_fmadd_pd(v, v, acc);
            }
        }
        hsum(acc)
    }

    /// `c += alpha * a`. The vector body uses FMA; the stored values match
    /// the scalar twin within one rounding (reduction-class kernel: `c` is
    /// an accumulator, not a map output).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(a: &[f64], alpha: f64, c: &mut [f64]) {
        let n = a.len().min(c.len());
        let chunks = n / 4;
        let va = _mm256_set1_pd(alpha);
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n bounds the loads and the store.
            unsafe {
                let x = _mm256_loadu_pd(a.as_ptr().add(i * 4));
                let y = _mm256_loadu_pd(c.as_ptr().add(i * 4));
                _mm256_storeu_pd(c.as_mut_ptr().add(i * 4), _mm256_fmadd_pd(x, va, y));
            }
        }
        for i in chunks * 4..n {
            c[i] = a[i].mul_add(alpha, c[i]);
        }
    }

    /// Elementwise `dst = a * b` — map-class kernel: plain multiply, no
    /// contraction, bitwise equal to the scalar twin.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul2_into(dst: &mut [f64], a: &[f64], b: &[f64]) {
        let n = dst.len();
        debug_assert!(a.len() >= n && b.len() >= n);
        let chunks = n / 4;
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n ≤ len of every slice.
            unsafe {
                let va = _mm256_loadu_pd(a.as_ptr().add(i * 4));
                let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
                _mm256_storeu_pd(dst.as_mut_ptr().add(i * 4), _mm256_mul_pd(va, vb));
            }
        }
        for i in chunks * 4..n {
            dst[i] = a[i] * b[i];
        }
    }

    /// Elementwise `dst = a * b * c` — map-class kernel (no contraction).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul3_into(dst: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
        let n = dst.len();
        debug_assert!(a.len() >= n && b.len() >= n && c.len() >= n);
        let chunks = n / 4;
        for i in 0..chunks {
            // SAFETY: i*4 + 4 <= n ≤ len of every slice.
            unsafe {
                let va = _mm256_loadu_pd(a.as_ptr().add(i * 4));
                let vb = _mm256_loadu_pd(b.as_ptr().add(i * 4));
                let vc = _mm256_loadu_pd(c.as_ptr().add(i * 4));
                _mm256_storeu_pd(
                    dst.as_mut_ptr().add(i * 4),
                    _mm256_mul_pd(_mm256_mul_pd(va, vb), vc),
                );
            }
        }
        for i in chunks * 4..n {
            dst[i] = a[i] * b[i] * c[i];
        }
    }

    /// CSR-band gather: `dst[k] = src[idx[k]]` via `vgatherqpd`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2 and every `idx[k] <
    /// src.len()` (checked by the dispatcher's debug assertion and by the
    /// lowering invariants of gather operands).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_into(dst: &mut [f64], src: &[f64], idx: &[usize]) {
        let n = dst.len().min(idx.len());
        let chunks = n / 4;
        for i in 0..chunks {
            // SAFETY: idx holds usize == u64 on x86-64; loadu reads 4 of
            // them, and every index is in bounds for `src` per the caller
            // contract, so the gather touches only valid elements.
            unsafe {
                let vi = _mm256_loadu_si256(idx.as_ptr().add(i * 4).cast());
                let v = _mm256_i64gather_pd::<8>(src.as_ptr(), vi);
                _mm256_storeu_pd(dst.as_mut_ptr().add(i * 4), v);
            }
        }
        for k in chunks * 4..n {
            dst[k] = src[idx[k]];
        }
    }
}

// ===========================================================================
// Dispatchers
// ===========================================================================

/// `Σ a[i]·b[i]` (reduction class: lane association backend-defined).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2+FMA support.
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// `Σ a[i]·b[i]·c[i]` — the 3-factor product-chain sum (fig 8a).
#[inline]
pub fn dot3_sum(a: &[f64], b: &[f64], c: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2+FMA support.
        return unsafe { avx2::dot3(a, b, c) };
    }
    dot3_scalar(a, b, c)
}

/// `Σ a[i]·b[i]·c[i]·d[i]` — the 4-factor product-chain sum.
#[inline]
pub fn dot4_sum(a: &[f64], b: &[f64], c: &[f64], d: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2+FMA support.
        return unsafe { avx2::dot4(a, b, c, d) };
    }
    dot4_scalar(a, b, c, d)
}

/// `Σ a[i]` (reduction class).
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2+FMA support.
        return unsafe { avx2::sum(a) };
    }
    sum_scalar(a)
}

/// `Σ a[i]²` (reduction class).
#[inline]
pub fn sum_sq(a: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2+FMA support.
        return unsafe { avx2::sum_sq(a) };
    }
    sum_sq_scalar(a)
}

/// `c[i] += alpha·a[i]` over `min(a.len, c.len)` (reduction class: `c`
/// accumulates).
#[inline]
pub fn axpy(a: &[f64], alpha: f64, c: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2+FMA support.
        unsafe { avx2::axpy(a, alpha, c) };
        return;
    }
    axpy_scalar(a, alpha, c)
}

/// `dst[i] = a[i]·b[i]` over `dst.len()` (map class: bitwise identical on
/// every backend). `a` and `b` must be at least as long as `dst`.
#[inline]
pub fn mul2_into(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert!(a.len() >= dst.len() && b.len() >= dst.len());
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2 support; lengths
        // checked above.
        unsafe { avx2::mul2_into(dst, a, b) };
        return;
    }
    mul2_scalar(dst, a, b)
}

/// `dst[i] = a[i]·b[i]·c[i]` over `dst.len()` (map class).
#[inline]
pub fn mul3_into(dst: &mut [f64], a: &[f64], b: &[f64], c: &[f64]) {
    assert!(a.len() >= dst.len() && b.len() >= dst.len() && c.len() >= dst.len());
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        // SAFETY: level() == Avx2 implies runtime AVX2 support; lengths
        // checked above.
        unsafe { avx2::mul3_into(dst, a, b, c) };
        return;
    }
    mul3_scalar(dst, a, b, c)
}

/// Sparse gather over a CSR band: `dst[k] = src[idx[k]]` for
/// `min(dst.len, idx.len)` elements (map class).
#[inline]
pub fn gather_into(dst: &mut [f64], src: &[f64], idx: &[usize]) {
    let n = dst.len().min(idx.len());
    debug_assert!(idx[..n].iter().all(|&i| i < src.len()));
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        assert!(idx[..n].iter().all(|&i| i < src.len()), "gather index out of bounds");
        // SAFETY: level() == Avx2 implies runtime AVX2 support; every index
        // was just checked in bounds for `src`.
        unsafe { avx2::gather_into(dst, src, idx) };
        return;
    }
    gather_scalar(dst, src, idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
    }

    fn data(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic pseudo-random values in [-1, 1].
        (0..n)
            .map(|i| {
                let x =
                    (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64 * 2654435761))
                        >> 11;
                (x % 20001) as f64 / 10000.0 - 1.0
            })
            .collect()
    }

    /// Every ragged length 0..40 (covers n % 4 ∈ {0..3} many times over)
    /// through both dispatch paths.
    #[test]
    fn reductions_match_naive_across_ragged_lengths() {
        for force in [false, true] {
            force_scalar(force);
            for n in 0..40usize {
                let a = data(n, 1);
                let b = data(n, 2);
                let c = data(n, 3);
                let d = data(n, 4);
                assert!(close(dot(&a, &b), naive_dot(&a, &b)), "dot n={n} force={force}");
                let e3: f64 = (0..n).map(|i| a[i] * b[i] * c[i]).sum();
                assert!(close(dot3_sum(&a, &b, &c), e3), "dot3 n={n} force={force}");
                let e4: f64 = (0..n).map(|i| a[i] * b[i] * c[i] * d[i]).sum();
                assert!(close(dot4_sum(&a, &b, &c, &d), e4), "dot4 n={n} force={force}");
                assert!(close(sum(&a), a.iter().sum()), "sum n={n} force={force}");
                let esq: f64 = a.iter().map(|v| v * v).sum();
                assert!(close(sum_sq(&a), esq), "sum_sq n={n} force={force}");
            }
        }
        force_scalar(false);
    }

    #[test]
    fn axpy_matches_scalar_within_rounding() {
        for force in [false, true] {
            force_scalar(force);
            for n in [0usize, 1, 3, 4, 7, 33] {
                let a = data(n, 5);
                let mut c = data(n, 6);
                let mut expect = c.clone();
                for i in 0..n {
                    expect[i] = a[i].mul_add(0.75, expect[i]);
                }
                axpy(&a, 0.75, &mut c);
                for i in 0..n {
                    assert!(close(c[i], expect[i]), "axpy n={n} i={i} force={force}");
                }
            }
        }
        force_scalar(false);
    }

    /// Map-class kernels are pinned *bitwise* across both dispatch paths.
    #[test]
    fn map_kernels_bitwise_identical_across_paths() {
        for n in [0usize, 1, 5, 8, 13, 31] {
            let a = data(n, 7);
            let b = data(n, 8);
            let c = data(n, 9);
            let mut d1 = vec![0.0; n];
            let mut d2 = vec![0.0; n];
            force_scalar(false);
            mul2_into(&mut d1, &a, &b);
            force_scalar(true);
            mul2_into(&mut d2, &a, &b);
            assert_eq!(d1, d2, "mul2 n={n}");
            force_scalar(false);
            mul3_into(&mut d1, &a, &b, &c);
            force_scalar(true);
            mul3_into(&mut d2, &a, &b, &c);
            assert_eq!(d1, d2, "mul3 n={n}");
        }
        force_scalar(false);
    }

    #[test]
    fn gather_matches_indexing() {
        let src = data(50, 10);
        let idx: Vec<usize> = vec![0, 7, 49, 3, 3, 21, 48, 9, 11];
        for force in [false, true] {
            force_scalar(force);
            let mut dst = vec![0.0; idx.len()];
            gather_into(&mut dst, &src, &idx);
            for (k, &i) in idx.iter().enumerate() {
                assert_eq!(dst[k], src[i], "force={force}");
            }
        }
        force_scalar(false);
    }

    /// NaN and signed zeros flow through unchanged: map kernels propagate
    /// them bitwise; reductions poison the sum like the scalar twin.
    #[test]
    fn nan_and_signed_zero_semantics() {
        let a = [1.0, f64::NAN, -0.0, 0.0, 2.0];
        let b = [2.0, 1.0, 5.0, -3.0, 0.5];
        for force in [false, true] {
            force_scalar(force);
            let mut d = [0.0; 5];
            mul2_into(&mut d, &a, &b);
            assert!(d[1].is_nan());
            assert!(d[2] == 0.0 && d[2].is_sign_negative());
            assert!(dot(&a, &b).is_nan());
            assert!(sum(&a).is_nan());
        }
        force_scalar(false);
    }
}
