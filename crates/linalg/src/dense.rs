//! Row-major dense `f64` matrices.

use std::fmt;

/// A row-major dense matrix of `f64` values.
///
/// This is the workhorse value type of the runtime. Row-major layout is
/// load-bearing: the Row template binds fused operators to contiguous row
/// slices, and the vector-primitive library operates on `&[f64]` row views.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from a row-major buffer. Panics if the buffer length
    /// does not match `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense buffer geometry mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an all-zero matrix whose buffer is drawn from the buffer pool
    /// (and returns to it when the matrix is recycled).
    pub fn zeros_pooled(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: crate::pool::take_zeroed(rows * cols) }
    }

    /// Creates a matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        DenseMatrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        DenseMatrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Creates a row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        DenseMatrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Builds a matrix from a nested-array literal (row slices).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        DenseMatrix { rows: r, cols: c, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw row-major value buffer.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major value buffer.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_values(self) -> Vec<f64> {
        self.data
    }

    /// Cell accessor (bounds-checked in debug builds only on the multiply).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Cell mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Contiguous view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable contiguous view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Number of non-zero cells (exact scan).
    pub fn count_nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Fraction of non-zero cells in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.count_nnz() as f64 / self.len() as f64
    }

    /// Reinterprets the geometry without copying (`rows*cols` must be
    /// preserved). Used by reshape-style operations.
    pub fn reshaped(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(rows * cols, self.len(), "reshape must preserve cell count");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// In-place map over all cells.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        let cols = self.cols.max(1);
        let rows = self.rows;
        crate::par::par_rows_mut(&mut self.data, rows, cols, cols, |_, row| {
            for v in row.iter_mut() {
                *v = f(*v);
            }
        });
    }

    /// True if this is a column vector (n×1) or row vector (1×n).
    pub fn is_vector(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for r in 0..show_rows {
            let row = self.row(r);
            let shown: Vec<String> = row.iter().take(8).map(|v| format!("{v:.4}")).collect();
            writeln!(f, "  [{}{}]", shown.join(", "), if self.cols > 8 { ", …" } else { "" })?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = DenseMatrix::identity(4);
        assert_eq!(m.count_nnz(), 4);
        for i in 0..4 {
            assert_eq!(m.get(i, i), 1.0);
        }
    }

    #[test]
    fn set_and_nnz() {
        let mut m = DenseMatrix::zeros(3, 3);
        assert_eq!(m.count_nnz(), 0);
        m.set(1, 2, 5.0);
        assert_eq!(m.count_nnz(), 1);
        assert!((m.sparsity() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut m = DenseMatrix::filled(10, 10, 2.0);
        m.map_inplace(|v| v * v);
        assert!(m.values().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let r = m.reshaped(3, 2);
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(2, 1), 6.0);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn bad_geometry_panics() {
        let _ = DenseMatrix::new(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn vectors() {
        assert!(DenseMatrix::col_vector(&[1.0, 2.0]).is_vector());
        assert!(DenseMatrix::row_vector(&[1.0, 2.0]).is_vector());
        assert!(!DenseMatrix::zeros(2, 2).is_vector());
    }
}
