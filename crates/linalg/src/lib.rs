//! # fusedml-linalg
//!
//! Dense and sparse linear-algebra substrate for the `fusedml` workspace.
//!
//! This crate provides the runtime data structures and kernels that the
//! SystemML-style fusion optimizer generates code against:
//!
//! * [`DenseMatrix`] — row-major dense `f64` matrices,
//! * [`SparseMatrix`] — CSR sparse matrices,
//! * [`Matrix`] — a format-polymorphic wrapper with automatic output-format
//!   decisions, mirroring SystemML's `MatrixBlock`,
//! * [`ops`] — element-wise, unary, ternary, aggregation, matrix-multiply,
//!   reorg and indexing kernels (each with dense and sparse implementations),
//! * [`primitives`] — the vector-primitive library (`dotProduct`,
//!   `vectMultAdd`, …) that generated fused operators call, mirroring
//!   SystemML's `LibSpoofPrimitives`,
//! * [`generate`] — seeded random/structured matrix generators used by the
//!   benchmark workloads,
//! * [`par`] — minimal scoped-thread parallelization helpers,
//! * [`pool`] — the size-class keyed buffer pool standing in for SystemML's
//!   buffer-pool-managed intermediates (dense outputs draw from and return
//!   to it, so steady-state iterations allocate near zero),
//! * [`spill`] — the second tier under the pool: a budgeted [`spill::TieredStore`]
//!   that serializes cold live values to engine-owned temp files and reloads
//!   them bit-exactly, making the engine's memory budget a real contract.

// Every unsafe block in this crate must discharge its obligations locally:
// `unsafe fn` bodies get no blanket license, and each block carries a
// `// SAFETY:` comment (enforced by the CI unsafe-audit grep gate).
#![deny(unsafe_op_in_unsafe_fn)]
// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]

pub mod dense;
pub mod fault;
pub mod generate;
pub mod matrix;
pub mod ops;
pub mod par;
pub mod pool;
pub mod primitives;
pub mod scoped;
pub mod simd;
pub mod sparse;
pub mod spill;

pub use dense::DenseMatrix;
pub use matrix::Matrix;
pub use ops::{AggDir, AggOp, BinaryOp, TernaryOp, UnaryOp};
pub use sparse::SparseMatrix;

/// Relative tolerance used by approximate comparisons in tests and validation.
pub const EPS: f64 = 1e-9;

/// Returns true if `a` and `b` are equal within a combined absolute/relative
/// tolerance. Used pervasively in tests comparing fused vs. unfused results.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
