//! Minimal scoped-thread parallelization helpers.
//!
//! The fused-operator skeletons and the large dense kernels parallelize over
//! row ranges. We deliberately avoid a work-stealing runtime: static row
//! partitioning matches SystemML's executor model and keeps the
//! time-measurement behaviour of the benchmarks deterministic.
//!
//! Every helper propagates the caller's scoped buffer pool
//! ([`crate::pool::current`]) into its band threads, so kernels that draw
//! per-band scratch from the pool keep hitting the engine's pool when they
//! run under internal parallelism.

use crate::pool;
use std::sync::atomic::{AtomicUsize, Ordering};

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override of the parallelism degree (0 = defer to the
    /// global setting). Shard workers cap their internal band parallelism
    /// with this so `shards × shard_threads` threads never oversubscribe
    /// the machine, without perturbing the process-wide configuration.
    static THREAD_NUM_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Returns the configured degree of parallelism: the calling thread's
/// [`limit_current_thread`] override if set, else the global
/// [`set_num_threads`] value, else the number of hardware threads.
pub fn num_threads() -> usize {
    let t = THREAD_NUM_THREADS.with(|c| c.get());
    if t != 0 {
        return t;
    }
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Restores the previous per-thread parallelism limit on drop.
pub struct ThreadLimitGuard {
    prev: usize,
}

impl Drop for ThreadLimitGuard {
    fn drop(&mut self) {
        THREAD_NUM_THREADS.with(|c| c.set(self.prev));
    }
}

/// Caps the parallelism seen by kernels on the *calling thread only* until
/// the returned guard drops (0 removes the cap). Band threads spawned by the
/// helpers below do not inherit the cap — they only run leaf work and never
/// re-split — so the cap bounds fan-out where it matters: at the split point.
pub fn limit_current_thread(n: usize) -> ThreadLimitGuard {
    let prev = THREAD_NUM_THREADS.with(|c| c.replace(n));
    ThreadLimitGuard { prev }
}

/// Overrides the degree of parallelism used by all parallel kernels
/// (0 restores the hardware default). Used by benchmarks to pin thread counts.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Minimum number of "work items" per thread before we bother spawning.
pub const PAR_THRESHOLD: usize = 4096;

/// Splits `0..n` into at most [`num_threads`] contiguous ranges and runs `f`
/// on each range in parallel. `f(lo, hi)` must handle the half-open range
/// `[lo, hi)`. Falls back to a single inline call for small `n`.
pub fn par_range<F>(n: usize, work_per_item: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let k = num_threads();
    if k <= 1 || n * work_per_item.max(1) < PAR_THRESHOLD || n < 2 {
        f(0, n);
        return;
    }
    let k = k.min(n);
    let chunk = n.div_ceil(k);
    let cur = pool::current_scope();
    std::thread::scope(|s| {
        for t in 0..k {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let fref = &f;
            let cur = &cur;
            s.spawn(move || {
                let _pool = cur.as_ref().map(pool::reenter);
                fref(lo, hi)
            });
        }
    });
}

/// Parallel map-reduce over `0..n`: each thread folds its range with `map`
/// starting from `identity`, then the per-thread results are combined with
/// `reduce` on the calling thread.
pub fn par_map_reduce<T, M, R>(n: usize, work_per_item: usize, identity: T, map: M, reduce: R) -> T
where
    T: Send,
    M: Fn(usize, usize) -> T + Sync,
    R: Fn(T, T) -> T,
{
    let k = num_threads();
    if k <= 1 || n * work_per_item.max(1) < PAR_THRESHOLD || n < 2 {
        return reduce(identity, map(0, n));
    }
    let k = k.min(n);
    let chunk = n.div_ceil(k);
    let cur = pool::current_scope();
    let mut results: Vec<Option<T>> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(k);
        for t in 0..k {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let mref = &map;
            let cur = &cur;
            handles.push(s.spawn(move || {
                let _pool = cur.as_ref().map(pool::reenter);
                mref(lo, hi)
            }));
        }
        for h in handles {
            results.push(Some(h.join().expect("worker thread panicked")));
        }
    });
    let mut acc = identity;
    for r in results.iter_mut() {
        acc = reduce(acc, r.take().expect("result present"));
    }
    acc
}

/// Splits a mutable slice into per-thread row bands and runs `f` on each band
/// in parallel. `rows * row_len` must equal `data.len()`.
pub fn par_rows_mut<F>(data: &mut [f64], rows: usize, row_len: usize, work_per_row: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert_eq!(data.len(), rows * row_len, "slice/row geometry mismatch");
    let k = num_threads();
    if k <= 1 || rows * work_per_row.max(1) < PAR_THRESHOLD || rows < 2 {
        for (r, row) in data.chunks_exact_mut(row_len.max(1)).enumerate() {
            f(r, row);
        }
        return;
    }
    let k = k.min(rows);
    let band = rows.div_ceil(k);
    let cur = pool::current_scope();
    std::thread::scope(|s| {
        for (t, chunk) in data.chunks_mut(band * row_len).enumerate() {
            let fref = &f;
            let cur = &cur;
            s.spawn(move || {
                let _pool = cur.as_ref().map(pool::reenter);
                for (i, row) in chunk.chunks_exact_mut(row_len).enumerate() {
                    fref(t * band + i, row);
                }
            });
        }
    });
}

/// Splits a mutable slice into per-thread row bands and runs `f` once per
/// band with `(first_row, band)` — unlike [`par_rows_mut`], workers see their
/// whole contiguous band, so per-thread state (scratch buffers, evaluator
/// register files) can be set up once per band instead of once per row.
pub fn par_row_bands_mut<F>(
    data: &mut [f64],
    rows: usize,
    row_len: usize,
    work_per_row: usize,
    f: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert_eq!(data.len(), rows * row_len, "slice/row geometry mismatch");
    let k = num_threads();
    if k <= 1 || rows * work_per_row.max(1) < PAR_THRESHOLD || rows < 2 {
        f(0, data);
        return;
    }
    let k = k.min(rows);
    let band = rows.div_ceil(k);
    let cur = pool::current_scope();
    std::thread::scope(|s| {
        for (t, chunk) in data.chunks_mut(band * row_len).enumerate() {
            let fref = &f;
            let cur = &cur;
            s.spawn(move || {
                let _pool = cur.as_ref().map(pool::reenter);
                fref(t * band, chunk)
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_range_covers_all_indices() {
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_range(n, 1, |lo, hi| {
            for h in &hits[lo..hi] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_map_reduce_sums() {
        let n = 1_000_000usize;
        let s = par_map_reduce(n, 1, 0u64, |lo, hi| (lo..hi).map(|i| i as u64).sum(), |a, b| a + b);
        assert_eq!(s, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn par_rows_mut_writes_each_row_once() {
        let rows = 1000;
        let cols = 8;
        let mut data = vec![0.0; rows * cols];
        par_rows_mut(&mut data, rows, cols, cols, |r, row| {
            for v in row.iter_mut() {
                *v += r as f64;
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(data[r * cols + c], r as f64);
            }
        }
    }

    #[test]
    fn par_row_bands_cover_all_rows_once() {
        let rows = 3000;
        let cols = 4;
        let mut data = vec![0.0; rows * cols];
        par_row_bands_mut(&mut data, rows, cols, cols, |r0, band| {
            for (i, row) in band.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (r0 + i) as f64;
                }
            }
        });
        for r in 0..rows {
            for c in 0..cols {
                assert_eq!(data[r * cols + c], r as f64);
            }
        }
    }

    #[test]
    fn set_num_threads_roundtrip() {
        set_num_threads(2);
        assert_eq!(num_threads(), 2);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn thread_limit_overrides_and_restores() {
        let base = num_threads();
        {
            let _g = limit_current_thread(1);
            assert_eq!(num_threads(), 1);
            {
                let _inner = limit_current_thread(3);
                assert_eq!(num_threads(), 3);
            }
            assert_eq!(num_threads(), 1, "inner guard restores outer cap");
        }
        assert_eq!(num_threads(), base, "guard restores prior state");
        // The cap is thread-local: a fresh thread sees the global default.
        let seen = std::thread::scope(|s| {
            let _g = limit_current_thread(1);
            s.spawn(num_threads).join().expect("thread ok")
        });
        assert_eq!(seen, base);
    }
}
