//! Format-polymorphic matrix wrapper (the analogue of SystemML's
//! `MatrixBlock`), plus scalar values.

use crate::dense::DenseMatrix;
use crate::sparse::SparseMatrix;
use std::sync::Arc;

/// Threshold below which matrices are kept dense regardless of sparsity.
pub const SPARSE_THRESHOLD: f64 = 0.4;
/// Minimum cell count before the sparse format is considered.
pub const SPARSE_MIN_CELLS: usize = 4096;

/// A matrix in either dense or CSR-sparse representation.
///
/// Values are cheap to clone: the payload is reference-counted, matching the
/// copy-on-write behaviour of SystemML's buffer pool (intermediates are
/// logically immutable once produced by an operator).
#[derive(Clone, Debug)]
pub enum Matrix {
    Dense(Arc<DenseMatrix>),
    Sparse(Arc<SparseMatrix>),
}

impl Matrix {
    /// Wraps a dense matrix.
    pub fn dense(m: DenseMatrix) -> Self {
        Matrix::Dense(Arc::new(m))
    }

    /// Wraps a sparse matrix.
    pub fn sparse(m: SparseMatrix) -> Self {
        Matrix::Sparse(Arc::new(m))
    }

    /// Chooses the storage format by SystemML's rule of thumb: CSR iff the
    /// matrix is large and sparsity is below [`SPARSE_THRESHOLD`].
    pub fn auto(m: DenseMatrix) -> Self {
        if m.len() >= SPARSE_MIN_CELLS && m.sparsity() < SPARSE_THRESHOLD {
            Matrix::sparse(SparseMatrix::from_dense(&m))
        } else {
            Matrix::dense(m)
        }
    }

    /// An all-zeros matrix in dense format.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix::dense(DenseMatrix::zeros(rows, cols))
    }

    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.rows(),
            Matrix::Sparse(m) => m.rows(),
        }
    }

    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.cols(),
            Matrix::Sparse(m) => m.cols(),
        }
    }

    /// Total cell count.
    pub fn len(&self) -> usize {
        self.rows() * self.cols()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_sparse(&self) -> bool {
        matches!(self, Matrix::Sparse(_))
    }

    /// Exact number of non-zero cells.
    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.count_nnz(),
            Matrix::Sparse(m) => m.nnz(),
        }
    }

    /// Fraction of non-zeros.
    pub fn sparsity(&self) -> f64 {
        match self {
            Matrix::Dense(m) => m.sparsity(),
            Matrix::Sparse(m) => m.sparsity(),
        }
    }

    /// Point lookup.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            Matrix::Dense(m) => m.get(r, c),
            Matrix::Sparse(m) => m.get(r, c),
        }
    }

    /// Materializes a dense copy (no-op copy-out for dense inputs).
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(m) => (**m).clone(),
            Matrix::Sparse(m) => m.to_dense(),
        }
    }

    /// Borrows the dense payload, panicking for sparse matrices (used where
    /// the caller has already guaranteed density, e.g. side inputs of Outer).
    pub fn as_dense(&self) -> &DenseMatrix {
        match self {
            Matrix::Dense(m) => m,
            Matrix::Sparse(_) => panic!("expected dense matrix"),
        }
    }

    /// Borrows the sparse payload, panicking for dense matrices.
    pub fn as_sparse(&self) -> &SparseMatrix {
        match self {
            Matrix::Sparse(m) => m,
            Matrix::Dense(_) => panic!("expected sparse matrix"),
        }
    }

    /// Converts to CSR (no-op for sparse inputs).
    pub fn to_sparse(&self) -> SparseMatrix {
        match self {
            Matrix::Dense(m) => SparseMatrix::from_dense(m),
            Matrix::Sparse(m) => (**m).clone(),
        }
    }

    /// True for n×1 or 1×n matrices.
    pub fn is_vector(&self) -> bool {
        self.rows() == 1 || self.cols() == 1
    }

    /// True for 1×1 matrices.
    pub fn is_scalar_shaped(&self) -> bool {
        self.rows() == 1 && self.cols() == 1
    }

    /// True when this handle is the only reference to the payload — the
    /// precondition for spilling (dropping a shared payload frees nothing)
    /// and for in-place reuse.
    pub fn is_uniquely_owned(&self) -> bool {
        match self {
            Matrix::Dense(m) => Arc::strong_count(m) == 1,
            Matrix::Sparse(m) => Arc::strong_count(m) == 1,
        }
    }

    /// In-memory size estimate in bytes (8B/cell dense; 16B/nnz + row
    /// pointers sparse), mirroring SystemML's memory estimates.
    pub fn size_in_bytes(&self) -> usize {
        match self {
            Matrix::Dense(m) => 8 * m.len(),
            Matrix::Sparse(m) => 16 * m.nnz() + 8 * (m.rows() + 1),
        }
    }

    /// Consumes a dying matrix, returning its buffers to the scoped buffer
    /// pool when this is the last reference (shared payloads are simply
    /// dropped). Dense matrices recycle their value buffer; sparse matrices
    /// recycle the CSR value and index buffers. Call sites that know a value
    /// is dead use this instead of `drop` so the next allocation is a pool
    /// hit.
    pub fn recycle(self) {
        match self {
            Matrix::Dense(a) => {
                if let Some(d) = Arc::into_inner(a) {
                    crate::pool::give(d.into_values());
                }
            }
            Matrix::Sparse(a) => {
                if let Some(s) = Arc::into_inner(a) {
                    let (row_ptr, col_idx, values) = s.into_raw();
                    crate::pool::give_indices(row_ptr);
                    crate::pool::give_indices(col_idx);
                    crate::pool::give(values);
                }
            }
        }
    }

    /// Attempts to take sole ownership of the dense payload (for in-place
    /// reuse of a dying input as an operator output). Returns the matrix
    /// unchanged when it is sparse or the payload is shared.
    pub fn try_into_dense(self) -> Result<DenseMatrix, Matrix> {
        match self {
            Matrix::Dense(a) => Arc::try_unwrap(a).map_err(Matrix::Dense),
            other => Err(other),
        }
    }

    /// Extracts rows `[r0, r1)` as a new matrix, preserving the storage
    /// format. Dense slices copy the row band; CSR slices rebase the row
    /// pointers and copy the covered triples. This is the shard partitioner:
    /// a row-partitioned plan slices the main (and any row-aligned sides)
    /// with it, so per-shard execution sees ordinary matrices.
    pub fn row_slice(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows(), "row slice out of range");
        match self {
            Matrix::Dense(m) => {
                let c = m.cols();
                Matrix::dense(DenseMatrix::new(r1 - r0, c, m.values()[r0 * c..r1 * c].to_vec()))
            }
            Matrix::Sparse(m) => {
                let lo = m.row_ptr()[r0];
                let hi = m.row_ptr()[r1];
                let row_ptr: Vec<usize> = m.row_ptr()[r0..=r1].iter().map(|&p| p - lo).collect();
                Matrix::sparse(SparseMatrix::from_csr(
                    r1 - r0,
                    m.cols(),
                    row_ptr,
                    m.col_indices()[lo..hi].to_vec(),
                    m.values()[lo..hi].to_vec(),
                ))
            }
        }
    }

    /// Vertically concatenates row-partition results back into one matrix —
    /// the inverse of [`Matrix::row_slice`] over a full partitioning. Format
    /// is preserved exactly: all-sparse parts concatenate in CSR (the triples
    /// are copied verbatim, so a sliced-then-merged sparse value is bitwise
    /// identical to the unsliced one), any dense part densifies the result.
    pub fn concat_rows(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat of zero parts");
        let cols = parts[0].cols();
        assert!(parts.iter().all(|p| p.cols() == cols), "column mismatch in row concat");
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        if parts.iter().all(|p| p.is_sparse()) {
            let nnz: usize = parts.iter().map(|p| p.nnz()).sum();
            let mut row_ptr = Vec::with_capacity(rows + 1);
            let mut col_idx = Vec::with_capacity(nnz);
            let mut values = Vec::with_capacity(nnz);
            row_ptr.push(0usize);
            let mut base = 0usize;
            for p in parts {
                let s = p.as_sparse();
                row_ptr.extend(s.row_ptr()[1..].iter().map(|&p| p + base));
                col_idx.extend_from_slice(s.col_indices());
                values.extend_from_slice(s.values());
                base += s.nnz();
            }
            Matrix::sparse(SparseMatrix::from_csr(rows, cols, row_ptr, col_idx, values))
        } else {
            let mut values = Vec::with_capacity(rows * cols);
            for p in parts {
                match p {
                    Matrix::Dense(m) => values.extend_from_slice(m.values()),
                    Matrix::Sparse(_) => values.extend_from_slice(p.to_dense().values()),
                }
            }
            Matrix::dense(DenseMatrix::new(rows, cols, values))
        }
    }

    /// Structural + numeric equality within tolerance, independent of format.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if self.rows() != other.rows() || self.cols() != other.cols() {
            return false;
        }
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                if !crate::approx_eq(self.get(r, c), other.get(r, c), tol) {
                    return false;
                }
            }
        }
        true
    }
}

impl From<DenseMatrix> for Matrix {
    fn from(m: DenseMatrix) -> Self {
        Matrix::dense(m)
    }
}

impl From<SparseMatrix> for Matrix {
    fn from(m: SparseMatrix) -> Self {
        Matrix::sparse(m)
    }
}

/// A runtime value: matrix or scalar (SystemML scripts freely mix both).
#[derive(Clone, Debug)]
pub enum Value {
    Matrix(Matrix),
    Scalar(f64),
}

impl Value {
    /// The scalar payload; panics on matrices (callers check kinds upstream).
    pub fn as_scalar(&self) -> f64 {
        match self {
            Value::Scalar(v) => *v,
            Value::Matrix(m) if m.is_scalar_shaped() => m.get(0, 0),
            Value::Matrix(_) => panic!("expected scalar value"),
        }
    }

    /// The matrix payload; a scalar is promoted to 1×1.
    pub fn as_matrix(&self) -> Matrix {
        match self {
            Value::Matrix(m) => m.clone(),
            Value::Scalar(v) => Matrix::dense(DenseMatrix::filled(1, 1, *v)),
        }
    }

    /// Moves the matrix payload out without touching the reference count
    /// (callers that own the value keep unique ownership of the buffer).
    pub fn into_matrix(self) -> Matrix {
        match self {
            Value::Matrix(m) => m,
            Value::Scalar(v) => Matrix::dense(DenseMatrix::filled(1, 1, v)),
        }
    }

    pub fn is_scalar(&self) -> bool {
        matches!(self, Value::Scalar(_))
    }

    /// In-memory size in bytes (scalars charge one cell).
    pub fn size_in_bytes(&self) -> usize {
        match self {
            Value::Scalar(_) => 8,
            Value::Matrix(m) => m.size_in_bytes(),
        }
    }

    /// Recycles a dying value's buffer into the pool (see [`Matrix::recycle`]).
    pub fn recycle(self) {
        if let Value::Matrix(m) = self {
            m.recycle();
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Scalar(v)
    }
}

impl From<Matrix> for Value {
    fn from(m: Matrix) -> Self {
        Value::Matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_picks_sparse_for_sparse_data() {
        let mut d = DenseMatrix::zeros(100, 100);
        d.set(0, 0, 1.0);
        let m = Matrix::auto(d);
        assert!(m.is_sparse());
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn auto_keeps_dense_for_dense_data() {
        let m = Matrix::auto(DenseMatrix::filled(100, 100, 1.0));
        assert!(!m.is_sparse());
    }

    #[test]
    fn small_matrices_stay_dense() {
        let m = Matrix::auto(DenseMatrix::zeros(4, 4));
        assert!(!m.is_sparse());
    }

    #[test]
    fn approx_eq_across_formats() {
        let d = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let a = Matrix::dense(d.clone());
        let b = Matrix::sparse(SparseMatrix::from_dense(&d));
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn value_promotions() {
        let v = Value::Scalar(3.0);
        assert_eq!(v.as_scalar(), 3.0);
        let m = v.as_matrix();
        assert_eq!((m.rows(), m.cols()), (1, 1));
        assert_eq!(Value::Matrix(m).as_scalar(), 3.0);
    }

    #[test]
    fn sparse_recycle_returns_csr_buffers_to_pool() {
        let pool = crate::pool::BufferPool::handle();
        let _scope = crate::pool::enter(&pool);
        // Large enough that values/col_idx/row_ptr all clear the pooling
        // threshold.
        let mut d = DenseMatrix::zeros(100, 100);
        for i in 0..100 {
            for j in 0..100 {
                if (i + j) % 7 == 0 {
                    d.set(i, j, 1.0 + i as f64);
                }
            }
        }
        let m = Matrix::sparse(SparseMatrix::from_dense(&d));
        let returns_before = pool.stats().returns;
        m.recycle();
        assert!(pool.stats().returns > returns_before, "CSR buffers must shelve");
        // The next sparse construction is served from the recycled buffers.
        let hits_before = pool.stats().hits;
        let _again = SparseMatrix::from_dense(&d);
        assert!(pool.stats().hits > hits_before, "rebuild reuses recycled CSR buffers");
    }

    #[test]
    fn row_slice_then_concat_is_identity_dense() {
        let d = DenseMatrix::new(7, 3, (0..21).map(|i| i as f64).collect());
        let m = Matrix::dense(d);
        let parts = [m.row_slice(0, 3), m.row_slice(3, 5), m.row_slice(5, 7)];
        let back = Matrix::concat_rows(&parts);
        assert!(!back.is_sparse());
        for r in 0..7 {
            for c in 0..3 {
                assert_eq!(back.get(r, c), m.get(r, c));
            }
        }
    }

    #[test]
    fn row_slice_then_concat_is_identity_sparse() {
        let mut d = DenseMatrix::zeros(9, 5);
        for i in 0..9 {
            d.set(i, (i * 2) % 5, 1.0 + i as f64);
        }
        let m = Matrix::sparse(SparseMatrix::from_dense(&d));
        let parts = [m.row_slice(0, 2), m.row_slice(2, 2), m.row_slice(2, 9)];
        let back = Matrix::concat_rows(&parts);
        assert!(back.is_sparse(), "all-sparse parts stay CSR");
        assert_eq!(back.nnz(), m.nnz());
        for r in 0..9 {
            for c in 0..5 {
                assert_eq!(back.get(r, c), m.get(r, c));
            }
        }
    }

    #[test]
    fn concat_mixed_formats_densifies() {
        let d = Matrix::dense(DenseMatrix::filled(2, 2, 1.0));
        let s = Matrix::sparse(SparseMatrix::from_dense(&DenseMatrix::filled(3, 2, 2.0)));
        let back = Matrix::concat_rows(&[d, s]);
        assert!(!back.is_sparse());
        assert_eq!((back.rows(), back.cols()), (5, 2));
        assert_eq!(back.get(0, 0), 1.0);
        assert_eq!(back.get(4, 1), 2.0);
    }

    #[test]
    fn size_estimates() {
        let d = Matrix::dense(DenseMatrix::zeros(10, 10));
        assert_eq!(d.size_in_bytes(), 800);
        let s = Matrix::sparse(SparseMatrix::zeros(10, 10));
        assert_eq!(s.size_in_bytes(), 88);
    }
}
