//! Seeded random and structured matrix generators for benchmark workloads.
//!
//! The paper's evaluation uses synthetic `rand` matrices plus real datasets
//! (Airline78, Mnist, Netflix, Amazon). The real datasets are substituted by
//! structured generators matching their shapes and sparsity characteristics
//! (DESIGN.md substitution X3).

use crate::dense::DenseMatrix;
use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform dense matrix in `[min, max)`.
pub fn rand_dense(rows: usize, cols: usize, min: f64, max: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(min..max)).collect();
    Matrix::dense(DenseMatrix::new(rows, cols, data))
}

/// Uniform sparse matrix: each cell is non-zero with probability `sparsity`,
/// values in `[min, max)`. Output is CSR when sparse enough, dense otherwise
/// (SystemML `rand` semantics).
pub fn rand_matrix(
    rows: usize,
    cols: usize,
    min: f64,
    max: f64,
    sparsity: f64,
    seed: u64,
) -> Matrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity in [0,1]");
    if sparsity >= 1.0 {
        return rand_dense(rows, cols, min, max, seed);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if sparsity > crate::matrix::SPARSE_THRESHOLD {
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| if rng.gen::<f64>() < sparsity { rng.gen_range(min..max) } else { 0.0 })
            .collect();
        return Matrix::dense(DenseMatrix::new(rows, cols, data));
    }
    // Geometric skipping for low densities: expected O(nnz) work.
    let total = rows * cols;
    let expected = (total as f64 * sparsity) as usize;
    let mut triples = Vec::with_capacity(expected + 16);
    if sparsity > 0.0 {
        let mut pos = 0usize;
        loop {
            // Sample the gap to the next non-zero from a geometric
            // distribution via inverse transform.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let gap = (u.ln() / (1.0 - sparsity).ln()).floor() as usize;
            pos = match pos.checked_add(gap) {
                Some(p) if p < total => p,
                _ => break,
            };
            let mut v = rng.gen_range(min..max);
            if v == 0.0 {
                v = (min + max) / 2.0; // keep the cell non-zero
            }
            triples.push((pos / cols, pos % cols, v));
            pos += 1;
            if pos >= total {
                break;
            }
        }
    }
    Matrix::sparse(SparseMatrix::from_triples(rows, cols, triples))
}

/// Standard-normal dense matrix (Box–Muller).
pub fn randn_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let t = 2.0 * std::f64::consts::PI * u2;
        data.push(r * t.cos());
        if data.len() < n {
            data.push(r * t.sin());
        }
    }
    Matrix::dense(DenseMatrix::new(rows, cols, data))
}

/// A two-class classification dataset: features plus ±1 labels generated from
/// a random hyperplane with label noise. Returns `(X, y)`.
pub fn classification_data(
    rows: usize,
    cols: usize,
    sparsity: f64,
    noise: f64,
    seed: u64,
) -> (Matrix, Matrix) {
    let x = rand_matrix(rows, cols, -1.0, 1.0, sparsity, seed);
    let w = rand_dense(cols, 1, -1.0, 1.0, seed ^ 0x5eed);
    let scores = crate::ops::matmult(&x, &w);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xface);
    let mut y = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut label = if scores.get(r, 0) >= 0.0 { 1.0 } else { -1.0 };
        if rng.gen::<f64>() < noise {
            label = -label;
        }
        y.push(label);
    }
    (x, Matrix::dense(DenseMatrix::new(rows, 1, y)))
}

/// Multi-class labels in `{1..k}` from feature clusters. Returns `(X, y)`.
pub fn multiclass_data(
    rows: usize,
    cols: usize,
    k: usize,
    sparsity: f64,
    seed: u64,
) -> (Matrix, Matrix) {
    let x = rand_matrix(rows, cols, 0.0, 1.0, sparsity, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc1a55);
    let y: Vec<f64> = (0..rows).map(|_| (rng.gen_range(0..k) + 1) as f64).collect();
    (x, Matrix::dense(DenseMatrix::new(rows, 1, y)))
}

/// "Airline-like" dense matrix: low per-column cardinality (categorical
/// codes), which is what makes CLA compress it ~7x (substitution X3).
pub fn airline_like(rows: usize, cols: usize, cardinality: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = vec![0.0f64; rows * cols];
    for c in 0..cols {
        // Per-column dictionaries of `cardinality` distinct values.
        let dict: Vec<f64> = (0..cardinality).map(|_| rng.gen_range(0.0..100.0)).collect();
        for r in 0..rows {
            data[r * cols + c] = dict[rng.gen_range(0..cardinality)];
        }
    }
    Matrix::dense(DenseMatrix::new(rows, cols, data))
}

/// "Mnist-like" sparse matrix: per-row bands of non-zeros (pen strokes) with
/// the given overall sparsity and values in `(0, 1]`.
pub fn mnist_like(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let nnz_per_row = ((cols as f64) * sparsity).round().max(1.0) as usize;
    let mut triples = Vec::with_capacity(rows * nnz_per_row);
    for r in 0..rows {
        // A contiguous band with jitter, mimicking stroke locality.
        let start = rng.gen_range(0..cols.saturating_sub(nnz_per_row).max(1));
        for i in 0..nnz_per_row {
            let c = (start + i) % cols;
            // Quantized intensities like 8-bit grayscale / 255.
            let v = (rng.gen_range(1..=255) as f64) / 255.0;
            triples.push((r, c, v));
        }
    }
    Matrix::sparse(SparseMatrix::from_triples(rows, cols, triples))
}

/// "Netflix/Amazon-like" ultra-sparse ratings matrix with zipf-ish row
/// popularity skew; values in `{1..5}`.
pub fn ratings_like(rows: usize, cols: usize, sparsity: f64, skew: f64, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let total_nnz = ((rows * cols) as f64 * sparsity).round() as usize;
    let mut seen = std::collections::HashSet::with_capacity(total_nnz * 2);
    let mut triples = Vec::with_capacity(total_nnz);
    let mut attempts = 0usize;
    while triples.len() < total_nnz && attempts < total_nnz * 20 {
        attempts += 1;
        // Power-law row/col selection: u^skew concentrates mass at low ids.
        let r = ((rng.gen::<f64>().powf(skew)) * rows as f64) as usize % rows;
        let c = ((rng.gen::<f64>().powf(skew)) * cols as f64) as usize % cols;
        if seen.insert((r, c)) {
            let v = rng.gen_range(1..=5) as f64;
            triples.push((r, c, v));
        }
    }
    Matrix::sparse(SparseMatrix::from_triples(rows, cols, triples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_dense_in_range() {
        let m = rand_dense(10, 10, -2.0, 3.0, 42);
        assert!(m.as_dense().values().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn rand_matrix_respects_sparsity() {
        let m = rand_matrix(1000, 100, 0.0, 1.0, 0.1, 7);
        assert!(m.is_sparse());
        let sp = m.sparsity();
        assert!((sp - 0.1).abs() < 0.02, "sparsity {sp} too far from 0.1");
    }

    #[test]
    fn rand_matrix_deterministic() {
        let a = rand_matrix(50, 50, 0.0, 1.0, 0.2, 99);
        let b = rand_matrix(50, 50, 0.0, 1.0, 0.2, 99);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn rand_matrix_dense_path() {
        let m = rand_matrix(100, 10, 0.0, 1.0, 0.9, 5);
        assert!(!m.is_sparse());
        let sp = m.sparsity();
        assert!((sp - 0.9).abs() < 0.05);
    }

    #[test]
    fn randn_moments() {
        let m = randn_dense(200, 200, 11);
        let vals = m.as_dense().values();
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn classification_labels_pm_one() {
        let (x, y) = classification_data(100, 5, 1.0, 0.05, 3);
        assert_eq!(x.rows(), 100);
        assert!((0..100).all(|r| y.get(r, 0).abs() == 1.0));
    }

    #[test]
    fn multiclass_labels_in_range() {
        let (_, y) = multiclass_data(100, 5, 4, 1.0, 3);
        assert!((0..100).all(|r| (1.0..=4.0).contains(&y.get(r, 0))));
    }

    #[test]
    fn airline_like_has_low_cardinality() {
        let m = airline_like(1000, 3, 10, 17);
        let d = m.as_dense();
        for c in 0..3 {
            let mut distinct: Vec<u64> = (0..1000).map(|r| d.get(r, c).to_bits()).collect();
            distinct.sort_unstable();
            distinct.dedup();
            assert!(distinct.len() <= 10, "col {c} cardinality {}", distinct.len());
        }
    }

    #[test]
    fn mnist_like_sparsity() {
        let m = mnist_like(500, 784, 0.25, 23);
        assert!(m.is_sparse());
        assert!((m.sparsity() - 0.25).abs() < 0.02);
    }

    #[test]
    fn ratings_like_values() {
        let m = ratings_like(1000, 500, 0.001, 2.0, 31);
        assert!(m.is_sparse());
        assert!(m.as_sparse().values().iter().all(|&v| (1.0..=5.0).contains(&v)));
    }
}
