//! A scoped thread-local stack: the one RAII push/pop-with-LIFO-check
//! mechanism shared by every "install a handle around this region" pattern
//! (the buffer-pool scope here in `linalg`, the kernel-cache scope in the
//! runtime). Callers own the `thread_local!` storage and pass its
//! `LocalKey`; this module owns the guard discipline so the semantics can
//! never drift between copies.

use std::cell::RefCell;
use std::thread::LocalKey;

/// The thread-local storage a scoped stack lives in.
pub type Stack<T> = RefCell<Vec<T>>;

/// RAII guard returned by [`push`]; removes the pushed entry on drop.
/// Guards must drop in LIFO order (the natural lexical-scope usage);
/// out-of-order drops would leave the wrong handle installed and are caught
/// by a debug assertion.
pub struct Guard<T: 'static> {
    key: &'static LocalKey<Stack<T>>,
    /// Stack depth right after this entry was pushed (LIFO check).
    depth: usize,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Pushes `value` onto the thread's stack until the returned guard drops.
pub fn push<T: 'static>(key: &'static LocalKey<Stack<T>>, value: T) -> Guard<T> {
    let depth = key.with(|c| {
        let mut st = c.borrow_mut();
        st.push(value);
        st.len()
    });
    Guard { key, depth, _not_send: std::marker::PhantomData }
}

/// The innermost entry on the thread's stack, if any.
pub fn top<T: 'static + Clone>(key: &'static LocalKey<Stack<T>>) -> Option<T> {
    key.with(|c| c.borrow().last().cloned())
}

impl<T: 'static> Drop for Guard<T> {
    fn drop(&mut self) {
        self.key.with(|c| {
            let mut st = c.borrow_mut();
            debug_assert_eq!(
                st.len(),
                self.depth,
                "scopes must drop in LIFO order (a later scope is still alive)"
            );
            st.pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    thread_local! {
        static STACK: Stack<u32> = const { RefCell::new(Vec::new()) };
    }

    #[test]
    fn push_top_pop_nest() {
        assert_eq!(top(&STACK), None);
        let a = push(&STACK, 1);
        assert_eq!(top(&STACK), Some(1));
        {
            let _b = push(&STACK, 2);
            assert_eq!(top(&STACK), Some(2), "innermost wins");
        }
        assert_eq!(top(&STACK), Some(1));
        drop(a);
        assert_eq!(top(&STACK), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "LIFO order")]
    fn out_of_order_drop_is_caught() {
        let a = push(&STACK, 1);
        let _b = push(&STACK, 2);
        drop(a); // drops out of order: the debug assertion must fire
    }
}
