//! The spill tier: engine-owned temp-file storage for cold live values.
//!
//! The buffer pool ([`crate::pool`]) recycles *free* buffers; this module
//! adds the second tier that makes an engine's memory budget a real
//! contract for *live* values. A [`TieredStore`] pairs the engine's
//! `BufferPool` with a spill directory: when the executor's resident bytes
//! would exceed the budget, it serializes cold slots (dense and CSR) to
//! engine-owned temp files through [`TieredStore::spill`] and faults them
//! back in with [`TieredStore::reload`]. SystemML's buffer pool does the
//! same on the JVM (evict-to-local-FS under memory pressure); here the
//! executor picks victims from its liveness facts (farthest next use first)
//! and the store only does the byte movement.
//!
//! Serialization is **bit-exact**: `f64` payloads round-trip through
//! little-endian byte encoding, so an execution that spills is bitwise
//! identical to one that never does — the property the
//! `spill_vs_resident_property` differential test pins.
//!
//! The byte counts and cost constants here are also the model the simulated
//! distributed backend charges its `disk_bw` eviction against
//! ([`serialized_bytes`], [`SPILL_ROUNDTRIP_FACTOR`]), so modeled and
//! measured spill costs cannot drift apart.

// Spill I/O runs on scheduler workers; a stray unwrap here turns a
// recoverable disk hiccup into a worker death. The workspace bans
// `unwrap`/`expect` via `clippy.toml` (disallowed-methods); this module opts
// into enforcement at deny level.
#![deny(clippy::disallowed_methods)]

use crate::dense::DenseMatrix;
use crate::fault::{FaultPlan, FaultSite};
use crate::matrix::Matrix;
use crate::pool::PoolHandle;
use crate::sparse::SparseMatrix;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Eviction writes a value and reads it back exactly once in the common
/// case: the modeled cost of one spill is `roundtrip × bytes / disk_bw`.
/// Shared with the simulated cluster so model and measurement agree.
pub const SPILL_ROUNDTRIP_FACTOR: f64 = 2.0;

/// Values below this in-memory size are never worth spilling: a file
/// round-trip costs more than the bytes they would free.
pub const MIN_SPILL_BYTES: usize = 4096;

/// File-format header: `[tag][rows][cols]` as `u64`s (sparse adds `[nnz]`).
const DENSE_TAG: u64 = 1;
const SPARSE_TAG: u64 = 2;
const HEADER_BYTES: usize = 3 * 8;

/// The exact on-disk byte count of a spilled matrix — also the byte count
/// the distributed simulation charges for modeled eviction.
pub fn serialized_bytes(m: &Matrix) -> usize {
    match m {
        Matrix::Dense(d) => HEADER_BYTES + 8 * d.len(),
        Matrix::Sparse(s) => HEADER_BYTES + 8 + 8 * (s.rows() + 1) + 16 * s.nnz(),
    }
}

/// A receipt for one spilled value: where it lives on disk and what it will
/// cost to bring back. The executor stores this in the slot the value left.
#[derive(Debug)]
pub struct SpillToken {
    path: PathBuf,
    /// The store-wide file sequence number (keys the live-file registry the
    /// orphan sweep consults).
    seq: u64,
    /// In-memory size of the value (what reloading adds to the resident set).
    mem_bytes: usize,
    /// On-disk size (what the write/read actually moved).
    file_bytes: usize,
}

impl SpillToken {
    /// In-memory bytes the reloaded value will occupy.
    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    /// Serialized on-disk bytes.
    pub fn file_bytes(&self) -> usize {
        self.file_bytes
    }
}

/// Monotonic counters for the spill tier (engine-wide, across runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Values written to the spill tier.
    pub spill_events: u64,
    /// Values read back from the spill tier.
    pub reload_events: u64,
    /// Serialized bytes written.
    pub bytes_spilled: u64,
    /// Serialized bytes read back.
    pub bytes_reloaded: u64,
    /// Spilled values discarded unread (failed runs sweep their tokens).
    pub discard_events: u64,
    /// Files deleted by [`TieredStore::sweep_orphans`] (present on disk but
    /// not owned by any outstanding token).
    pub orphans_swept: u64,
}

#[derive(Debug, Default)]
struct SpillCounters {
    spill_events: AtomicU64,
    reload_events: AtomicU64,
    bytes_spilled: AtomicU64,
    bytes_reloaded: AtomicU64,
    discard_events: AtomicU64,
    orphans_swept: AtomicU64,
}

/// Process-global sequence so two engines (or two test runs in one process)
/// never collide on a spill directory name.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// The two-tier store an engine owns: the recycled-buffer pool plus a
/// budgeted spill tier of temp files. `threshold` is the resident-bytes
/// budget the executor enforces ([`usize::MAX`] disables spilling — the
/// pre-spill behaviour). The spill directory is created lazily on first
/// spill and removed (with any remaining files) when the store drops.
pub struct TieredStore {
    pool: PoolHandle,
    threshold: usize,
    parent: PathBuf,
    dir: Mutex<Option<PathBuf>>,
    file_seq: AtomicU64,
    counters: SpillCounters,
    /// Sequence numbers of files owned by an outstanding [`SpillToken`].
    /// A file in the spill dir whose sequence is *not* here is an orphan
    /// (its run failed before discarding it) and is fair game for
    /// [`TieredStore::sweep_orphans`].
    live: Mutex<HashSet<u64>>,
    /// Optional chaos harness: injects `io::Error`s at the
    /// [`FaultSite::SpillWrite`]/[`FaultSite::SpillRead`] sites.
    faults: Option<Arc<FaultPlan>>,
}

impl TieredStore {
    /// A store over `pool` with resident budget `threshold`, spilling under
    /// `dir` (defaults to the OS temp directory).
    pub fn new(pool: PoolHandle, threshold: usize, dir: Option<PathBuf>) -> Self {
        TieredStore {
            pool,
            threshold,
            parent: dir.unwrap_or_else(std::env::temp_dir),
            dir: Mutex::new(None),
            file_seq: AtomicU64::new(0),
            counters: SpillCounters::default(),
            live: Mutex::new(HashSet::new()),
            faults: None,
        }
    }

    /// Attaches a fault plan: spill writes and reads consult it and fail
    /// with an injected `io::Error` when it fires (before touching disk, so
    /// injected failures never leave partial files behind).
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    fn injected(&self, site: FaultSite) -> bool {
        self.faults.as_ref().is_some_and(|f| f.should_inject(site))
    }

    /// The resident-bytes budget ([`usize::MAX`] = spilling disabled).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Whether the executor should enforce the budget at all.
    pub fn enabled(&self) -> bool {
        self.threshold != usize::MAX
    }

    /// The recycled-buffer tier.
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// The spill directory, if anything has spilled yet.
    pub fn spill_dir(&self) -> Option<PathBuf> {
        self.dir.lock().clone()
    }

    /// Snapshot of the spill counters.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            spill_events: self.counters.spill_events.load(Ordering::Relaxed),
            reload_events: self.counters.reload_events.load(Ordering::Relaxed),
            bytes_spilled: self.counters.bytes_spilled.load(Ordering::Relaxed),
            bytes_reloaded: self.counters.bytes_reloaded.load(Ordering::Relaxed),
            discard_events: self.counters.discard_events.load(Ordering::Relaxed),
            orphans_swept: self.counters.orphans_swept.load(Ordering::Relaxed),
        }
    }

    fn ensure_dir(&self) -> io::Result<PathBuf> {
        let mut guard = self.dir.lock();
        if let Some(d) = guard.as_ref() {
            return Ok(d.clone());
        }
        let name = format!(
            "fusedml-spill-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let d = self.parent.join(name);
        fs::create_dir_all(&d)?;
        *guard = Some(d.clone());
        Ok(d)
    }

    /// Serializes `m` to a fresh temp file and returns the receipt. The
    /// caller drops its reference afterwards — that is what actually frees
    /// the memory (the executor only spills uniquely held values).
    ///
    /// A failed write (real or injected) never leaves a partial file behind:
    /// the path is removed best-effort before the error propagates, so the
    /// only cleanup a failed run owes is discarding the tokens it *did* get.
    pub fn spill(&self, m: &Matrix) -> io::Result<SpillToken> {
        if self.injected(FaultSite::SpillWrite) {
            return Err(io::Error::other("injected spill-write fault"));
        }
        let dir = self.ensure_dir()?;
        let seq = self.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("slot-{seq}.bin"));
        // Register before creating the file so a concurrent orphan sweep
        // never deletes a file that is still being written.
        self.live.lock().insert(seq);
        let file_bytes = match write_matrix(&path, m) {
            Ok(n) => n,
            Err(e) => {
                self.live.lock().remove(&seq);
                let _ = fs::remove_file(&path);
                return Err(e);
            }
        };
        self.counters.spill_events.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_spilled.fetch_add(file_bytes as u64, Ordering::Relaxed);
        Ok(SpillToken { path, seq, mem_bytes: m.size_in_bytes(), file_bytes })
    }

    /// Reads a spilled value back (bit-exact) and deletes its file. Buffers
    /// are drawn from the store's pool, so steady-state spill/reload cycles
    /// allocate nothing fresh.
    ///
    /// The token is borrowed, not consumed: on `Err` the file (and the
    /// token's claim on it) survives, so the caller can retry a transient
    /// failure or [`TieredStore::discard`] the token when it gives up.
    pub fn reload(&self, token: &SpillToken) -> io::Result<Matrix> {
        if self.injected(FaultSite::SpillRead) {
            return Err(io::Error::other("injected spill-read fault"));
        }
        let m = read_matrix(&token.path, &self.pool)?;
        self.live.lock().remove(&token.seq);
        let _ = fs::remove_file(&token.path); // best-effort; Drop sweeps the dir
        self.counters.reload_events.fetch_add(1, Ordering::Relaxed);
        self.counters.bytes_reloaded.fetch_add(token.file_bytes as u64, Ordering::Relaxed);
        Ok(m)
    }

    /// Releases a spilled value without reading it back: deletes the file
    /// and the token's live-registry claim. Failed runs call this for every
    /// token they still hold, so an error leaves no temp files behind.
    pub fn discard(&self, token: &SpillToken) {
        self.live.lock().remove(&token.seq);
        let _ = fs::remove_file(&token.path);
        self.counters.discard_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Deletes every file in the spill directory not owned by an outstanding
    /// token and returns how many were removed. Safe under concurrent
    /// executions: in-flight spills register their sequence number *before*
    /// creating the file, so the sweep only ever touches files whose run
    /// lost track of them (e.g. a process that was killed mid-run in a
    /// previous life of the directory).
    pub fn sweep_orphans(&self) -> usize {
        let Some(dir) = self.spill_dir() else { return 0 };
        let Ok(entries) = fs::read_dir(&dir) else { return 0 };
        // Hold the registry lock across the scan so no spill can register
        // between the liveness check and the deletion.
        let live = self.live.lock();
        let mut swept = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(seq) = name
                .to_str()
                .and_then(|s| s.strip_prefix("slot-"))
                .and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            if !live.contains(&seq) && fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
        self.counters.orphans_swept.fetch_add(swept as u64, Ordering::Relaxed);
        swept
    }

    /// Number of files currently present in the spill directory (0 when the
    /// directory was never created). Test hook for the no-leak invariant.
    pub fn spill_file_count(&self) -> usize {
        self.spill_dir()
            .and_then(|d| fs::read_dir(d).ok())
            .map(|entries| entries.flatten().count())
            .unwrap_or(0)
    }
}

impl Drop for TieredStore {
    fn drop(&mut self) {
        if let Some(d) = self.dir.get_mut().take() {
            let _ = fs::remove_dir_all(d);
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-exact little-endian (de)serialization, chunked through a small stack
// buffer so no format-width allocation is needed.
// ---------------------------------------------------------------------------

const CHUNK: usize = 1024;

fn write_u64s(w: &mut impl Write, vals: impl Iterator<Item = u64>) -> io::Result<()> {
    let mut buf = [0u8; CHUNK * 8];
    let mut n = 0usize;
    for v in vals {
        buf[n * 8..n * 8 + 8].copy_from_slice(&v.to_le_bytes());
        n += 1;
        if n == CHUNK {
            w.write_all(&buf)?;
            n = 0;
        }
    }
    if n > 0 {
        w.write_all(&buf[..n * 8])?;
    }
    Ok(())
}

fn write_f64s(w: &mut impl Write, vals: &[f64]) -> io::Result<()> {
    write_u64s(w, vals.iter().map(|v| v.to_bits()))
}

fn read_u64s(r: &mut impl Read, n: usize, mut sink: impl FnMut(u64)) -> io::Result<()> {
    let mut buf = [0u8; CHUNK * 8];
    let mut left = n;
    while left > 0 {
        let take = left.min(CHUNK);
        r.read_exact(&mut buf[..take * 8])?;
        for i in 0..take {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[i * 8..i * 8 + 8]);
            sink(u64::from_le_bytes(b));
        }
        left -= take;
    }
    Ok(())
}

/// Writes `m` to `path`; returns the serialized byte count.
fn write_matrix(path: &Path, m: &Matrix) -> io::Result<usize> {
    let mut w = BufWriter::new(File::create(path)?);
    match m {
        Matrix::Dense(d) => {
            write_u64s(&mut w, [DENSE_TAG, d.rows() as u64, d.cols() as u64].into_iter())?;
            write_f64s(&mut w, d.values())?;
        }
        Matrix::Sparse(s) => {
            write_u64s(&mut w, [SPARSE_TAG, s.rows() as u64, s.cols() as u64].into_iter())?;
            write_u64s(&mut w, std::iter::once(s.nnz() as u64))?;
            write_u64s(&mut w, s.row_ptr().iter().map(|&p| p as u64))?;
            write_u64s(&mut w, s.col_indices().iter().map(|&c| c as u64))?;
            write_f64s(&mut w, s.values())?;
        }
    }
    w.flush()?;
    Ok(serialized_bytes(m))
}

/// Reads a matrix written by [`write_matrix`], drawing buffers from `pool`.
fn read_matrix(path: &Path, pool: &PoolHandle) -> io::Result<Matrix> {
    let mut r = BufReader::new(File::open(path)?);
    let mut header = [0u64; 3];
    {
        let mut i = 0;
        read_u64s(&mut r, 3, |v| {
            header[i] = v;
            i += 1;
        })?;
    }
    let (tag, rows, cols) = (header[0], header[1] as usize, header[2] as usize);
    match tag {
        DENSE_TAG => {
            let len = rows * cols;
            let mut values = pool.take_zeroed(len);
            {
                let mut i = 0;
                read_u64s(&mut r, len, |v| {
                    values[i] = f64::from_bits(v);
                    i += 1;
                })?;
            }
            Ok(Matrix::dense(DenseMatrix::new(rows, cols, values)))
        }
        SPARSE_TAG => {
            let mut nnz = 0usize;
            read_u64s(&mut r, 1, |v| nnz = v as usize)?;
            let mut row_ptr = pool.take_indices(rows + 1);
            read_u64s(&mut r, rows + 1, |v| row_ptr.push(v as usize))?;
            let mut col_idx = pool.take_indices(nnz);
            read_u64s(&mut r, nnz, |v| col_idx.push(v as usize))?;
            let mut values = pool.take_values(nnz);
            read_u64s(&mut r, nnz, |v| values.push(f64::from_bits(v)))?;
            Ok(Matrix::sparse(SparseMatrix::from_csr(rows, cols, row_ptr, col_idx, values)))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown spill tag {other} in {}", path.display()),
        )),
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap freely
mod tests {
    use super::*;
    use crate::pool::BufferPool;

    fn store() -> TieredStore {
        TieredStore::new(BufferPool::handle(), 1 << 20, None)
    }

    #[test]
    fn dense_round_trip_is_bitwise() {
        let s = store();
        let d = DenseMatrix::new(
            7,
            13,
            (0..7 * 13).map(|i| (i as f64).sin() * 1e300 + f64::MIN_POSITIVE).collect(),
        );
        let m = Matrix::dense(d.clone());
        let tok = s.spill(&m).unwrap();
        assert_eq!(tok.mem_bytes(), m.size_in_bytes());
        assert_eq!(tok.file_bytes(), serialized_bytes(&m));
        let path = tok.path.clone();
        assert!(path.exists());
        let back = s.reload(&tok).unwrap();
        assert!(!path.exists(), "reload deletes the file");
        match back {
            Matrix::Dense(b) => assert!(
                d.values().iter().zip(b.values()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "dense payload must round-trip bit-exactly"
            ),
            _ => panic!("dense in, dense out"),
        }
    }

    #[test]
    fn sparse_round_trip_preserves_structure() {
        let s = store();
        let mut d = DenseMatrix::zeros(50, 40);
        for i in 0..50 {
            d.set(i, (i * 7) % 40, -(i as f64) / 3.0);
        }
        let m = Matrix::sparse(SparseMatrix::from_dense(&d));
        let tok = s.spill(&m).unwrap();
        let back = s.reload(&tok).unwrap();
        assert!(back.is_sparse());
        assert_eq!(back.nnz(), m.nnz());
        for i in 0..50 {
            let c = (i * 7) % 40;
            assert_eq!(back.get(i, c).to_bits(), m.get(i, c).to_bits());
        }
    }

    #[test]
    fn special_values_round_trip() {
        let s = store();
        let d = DenseMatrix::new(1, 6, vec![f64::NAN, f64::INFINITY, -0.0, 0.0, -1e-308, 1e308]);
        let m = Matrix::dense(d.clone());
        let back = s.reload(&s.spill(&m).unwrap()).unwrap();
        for (a, b) in d.values().iter().zip(back.as_dense().values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn drop_removes_spill_dir() {
        let s = store();
        let m = Matrix::dense(DenseMatrix::filled(10, 10, 2.5));
        let _tok = s.spill(&m).unwrap();
        let dir = s.spill_dir().expect("dir created on first spill");
        assert!(dir.exists());
        drop(s);
        assert!(!dir.exists(), "TieredStore drop must sweep its temp files");
    }

    #[test]
    fn counters_track_bytes() {
        let s = store();
        let m = Matrix::dense(DenseMatrix::filled(16, 16, 1.0));
        let expect = serialized_bytes(&m) as u64;
        let tok = s.spill(&m).unwrap();
        let _ = s.reload(&tok).unwrap();
        let st = s.stats();
        assert_eq!(st.spill_events, 1);
        assert_eq!(st.reload_events, 1);
        assert_eq!(st.bytes_spilled, expect);
        assert_eq!(st.bytes_reloaded, expect);
    }

    #[test]
    fn reload_draws_from_pool() {
        let pool = BufferPool::handle();
        let s = TieredStore::new(std::sync::Arc::clone(&pool), 1 << 20, None);
        let m = Matrix::dense(DenseMatrix::filled(64, 64, 3.0));
        // Prime the pool with a right-sized buffer, then reload: it must hit.
        pool.give(pool.take_zeroed(64 * 64));
        let hits_before = pool.stats().hits;
        let _back = s.reload(&s.spill(&m).unwrap()).unwrap();
        assert!(pool.stats().hits > hits_before, "reload buffers come from the pool");
    }

    #[test]
    fn disabled_threshold_reports_disabled() {
        let s = TieredStore::new(BufferPool::handle(), usize::MAX, None);
        assert!(!s.enabled());
        assert!(TieredStore::new(BufferPool::handle(), 1024, None).enabled());
    }
}
