//! Pooled buffer allocator — the stand-in for SystemML's buffer pool.
//!
//! SystemML's control program manages intermediates through a buffer pool:
//! operator outputs are acquired from and released back to a managed region,
//! so iterative algorithms reach a steady state with near-zero fresh
//! allocation. This module provides the same behaviour for the dense `f64`
//! buffers that dominate this runtime's allocation volume, and for the
//! `usize` index buffers of CSR sparse outputs.
//!
//! Design:
//!
//! * **Engine-owned.** There is no process-wide pool. Each
//!   `fusedml_runtime::Engine` owns a [`BufferPool`] (behind a
//!   [`PoolHandle`]) sized by its memory budget, so two engines with
//!   different configurations coexist in one process without sharing
//!   retention state. Kernels reach the pool through a *scoped* thread-local
//!   handle ([`enter`]): the executor installs its engine's pool around each
//!   task, and the parallel helpers in [`crate::par`] propagate the handle
//!   into their band threads. Outside any scope the free functions degrade
//!   to plain allocation — correct, just unpooled.
//! * **Size-class keyed.** Buffers are binned by the power-of-two class of
//!   their capacity (`⌊log2 cap⌋`, so a class-`k` shelf only holds buffers
//!   with capacity ≥ `2^k`). A request of length `len` drains the
//!   guaranteed-fit class `⌈log2 len⌉` first and then scans the class below
//!   for a large-enough entry. Fresh allocations are exact-size: the pool
//!   never inflates a live buffer beyond its logical length, so physical
//!   memory matches the tracked footprint byte-for-byte.
//! * **Epoch-bounded.** The executor advances the pool epoch after each DAG
//!   execution; buffers that have sat unused for more than
//!   [`BufferPool::MAX_AGE`] epochs are released to the allocator. This
//!   bounds retained memory across workload changes without a background
//!   thread.

use crate::scoped;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Buffers below this length are not worth pooling (allocator fast paths
/// beat the pool lock for tiny vectors).
const MIN_POOL_LEN: usize = 64;
/// Default maximum retained buffers per size class.
const DEFAULT_MAX_PER_CLASS: usize = 32;
/// Default maximum total bytes retained by a pool (beyond this, `give`
/// drops).
const DEFAULT_MAX_POOL_BYTES: usize = 1 << 30;

/// A shared, thread-safe handle to an engine-owned buffer pool.
pub type PoolHandle = Arc<BufferPool>;

/// A pooled buffer with the epoch at which it was returned.
struct Shelved<T> {
    buf: Vec<T>,
    epoch: u64,
}

/// Size-class shelves for one element type.
struct Shelves<T> {
    /// `classes[k]` holds buffers with capacity in `[2^k, 2^(k+1))`.
    classes: Vec<Vec<Shelved<T>>>,
}

impl<T> Default for Shelves<T> {
    fn default() -> Self {
        Shelves { classes: Vec::new() }
    }
}

impl<T> Shelves<T> {
    /// The size class a request of `len` draws from: the exponent of the next
    /// power of two ≥ `len`. Buffers shelved under class `k` have capacity
    /// ≥ `2^k`, so any class-`k` request fits.
    fn class_of(len: usize) -> usize {
        len.next_power_of_two().trailing_zeros() as usize
    }

    /// Pops a buffer with capacity ≥ `len`, if one is shelved.
    fn pop(&mut self, len: usize) -> Option<Vec<T>> {
        let cls = Self::class_of(len);
        let mut popped = self.classes.get_mut(cls).and_then(|shelf| shelf.pop());
        if popped.is_none() && cls > 0 {
            if let Some(shelf) = self.classes.get_mut(cls - 1) {
                if let Some(i) = shelf.iter().rposition(|s| s.buf.capacity() >= len) {
                    popped = Some(shelf.swap_remove(i));
                }
            }
        }
        popped.map(|s| s.buf)
    }

    /// Shelves a buffer under the floor-log2 class of its capacity (so a
    /// class-`k` shelf only holds buffers with capacity ≥ `2^k`). Returns
    /// `false` when the class is full.
    fn push(&mut self, buf: Vec<T>, epoch: u64, max_per_class: usize) -> bool {
        let cls = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        if self.classes.len() <= cls {
            self.classes.resize_with(cls + 1, Vec::new);
        }
        let shelf = &mut self.classes[cls];
        if shelf.len() >= max_per_class {
            return false;
        }
        shelf.push(Shelved { buf, epoch });
        true
    }

    /// Drops buffers older than `cutoff`; returns the freed element count.
    fn retire_older_than(&mut self, cutoff: u64) -> usize {
        let mut freed = 0usize;
        for shelf in self.classes.iter_mut() {
            shelf.retain(|s| {
                if s.epoch < cutoff {
                    freed += s.buf.capacity();
                    false
                } else {
                    true
                }
            });
        }
        freed
    }
}

#[derive(Default)]
struct PoolState {
    /// Dense `f64` value buffers.
    values: Shelves<f64>,
    /// CSR `usize` index buffers (column indices / row pointers).
    indices: Shelves<usize>,
    epoch: u64,
    retained_bytes: usize,
}

/// Counters describing pool behaviour (monotonic; see [`PoolStats`]).
#[derive(Debug, Default)]
struct PoolCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    drops: AtomicU64,
}

/// A point-in-time snapshot of the pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a retired buffer.
    pub hits: u64,
    /// Requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
    /// Buffers rejected at return time (too small / class full / over cap).
    pub drops: u64,
    /// Bytes currently shelved in the pool.
    pub retained_bytes: usize,
}

impl PoolStats {
    /// Fraction of requests served from the pool, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Per-execution tally of pool requests: the scheduler installs one per
/// `execute` call (see [`enter_tallied`]), and every pooled request made
/// inside that scope — including from kernel band threads, which re-enter
/// the caller's scope via [`crate::par`] — counts here as well as in the
/// engine-wide pool counters. This is what makes per-call `SchedSnapshot`
/// deltas exact under concurrent executions on one engine.
#[derive(Debug, Default)]
pub struct PoolTally {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PoolTally {
    /// Requests served from the pool within this scope.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that fell through to fresh allocation within this scope.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

fn bump(counter: &AtomicU64, tally: Option<&PoolTally>, hit: bool) {
    counter.fetch_add(1, Ordering::Relaxed);
    if let Some(t) = tally {
        let c = if hit { &t.hits } else { &t.misses };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// A size-class keyed, epoch-bounded pool of dense `f64` value buffers and
/// CSR `usize` index buffers.
pub struct BufferPool {
    state: Mutex<PoolState>,
    counters: PoolCounters,
    /// Maximum total bytes retained (beyond this, returns drop).
    max_bytes: usize,
    /// Maximum retained buffers per size class.
    max_per_class: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl BufferPool {
    /// Buffers unused for more than this many epochs are released.
    pub const MAX_AGE: u64 = 8;

    /// A pool with the default retention limits (1 GiB, 32 buffers/class).
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_MAX_POOL_BYTES, DEFAULT_MAX_PER_CLASS)
    }

    /// A pool with explicit retention limits: `max_bytes` caps the total
    /// shelved bytes (an engine's memory budget for recycled buffers);
    /// `max_per_class` caps the buffers kept per power-of-two size class.
    pub fn with_limits(max_bytes: usize, max_per_class: usize) -> Self {
        BufferPool {
            state: Mutex::new(PoolState::default()),
            counters: PoolCounters::default(),
            max_bytes,
            max_per_class: max_per_class.max(1),
        }
    }

    /// A shareable handle to a fresh default pool.
    pub fn handle() -> PoolHandle {
        Arc::new(BufferPool::new())
    }

    /// The configured retention cap in bytes.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    #[cfg(test)]
    fn class_of(len: usize) -> usize {
        Shelves::<f64>::class_of(len)
    }

    /// Takes a zeroed buffer of exactly `len` elements, reusing a shelved
    /// buffer when one fits. Fresh allocations are *exact-size* (no
    /// power-of-two slack, so physical memory matches the accounted bytes);
    /// reuse first drains the guaranteed-fit class `⌈log2 len⌉`, then scans
    /// the class below for an entry whose capacity happens to fit (that is
    /// where exact-size non-power-of-two buffers retire to).
    pub fn take_zeroed(&self, len: usize) -> Vec<f64> {
        self.take_zeroed_tallied(len, None)
    }

    fn take_zeroed_tallied(&self, len: usize, tally: Option<&PoolTally>) -> Vec<f64> {
        if len < MIN_POOL_LEN {
            return vec![0.0; len];
        }
        let reused = {
            let mut st = self.state.lock();
            let popped = st.values.pop(len);
            if let Some(b) = &popped {
                st.retained_bytes -= b.capacity() * 8;
            }
            popped
        };
        match reused {
            Some(mut buf) => {
                bump(&self.counters.hits, tally, true);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                bump(&self.counters.misses, tally, false);
                vec![0.0; len]
            }
        }
    }

    /// Takes a buffer initialized as a copy of `src` (pool-backed `to_vec`).
    pub fn take_copy(&self, src: &[f64]) -> Vec<f64> {
        self.take_copy_tallied(src, None)
    }

    fn take_copy_tallied(&self, src: &[f64], tally: Option<&PoolTally>) -> Vec<f64> {
        if src.len() < MIN_POOL_LEN {
            return src.to_vec();
        }
        let mut buf = self.take_zeroed_tallied(src.len(), tally);
        buf.copy_from_slice(src);
        buf
    }

    /// Returns a value buffer to the pool. Tiny buffers, overfull classes,
    /// and anything beyond the retention cap are dropped instead.
    pub fn give(&self, buf: Vec<f64>) {
        if buf.capacity() < MIN_POOL_LEN {
            return;
        }
        let bytes = buf.capacity() * 8;
        let mut st = self.state.lock();
        if st.retained_bytes + bytes > self.max_bytes {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let epoch = st.epoch;
        let max_per_class = self.max_per_class;
        if st.values.push(buf, epoch, max_per_class) {
            st.retained_bytes += bytes;
            self.counters.returns.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Takes an *empty* `f64` buffer with capacity ≥ `cap` for push-based
    /// construction (CSR values). The `f64` twin of
    /// [`BufferPool::take_indices`].
    pub fn take_values(&self, cap: usize) -> Vec<f64> {
        self.take_values_tallied(cap, None)
    }

    fn take_values_tallied(&self, cap: usize, tally: Option<&PoolTally>) -> Vec<f64> {
        if cap < MIN_POOL_LEN {
            return Vec::with_capacity(cap);
        }
        let reused = {
            let mut st = self.state.lock();
            let popped = st.values.pop(cap);
            if let Some(b) = &popped {
                st.retained_bytes -= b.capacity() * 8;
            }
            popped
        };
        match reused {
            Some(mut buf) => {
                bump(&self.counters.hits, tally, true);
                buf.clear();
                buf
            }
            None => {
                bump(&self.counters.misses, tally, false);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Takes an *empty* `usize` buffer with capacity ≥ `cap` for CSR index
    /// construction (column indices, row pointers). The caller pushes into
    /// it; return it with [`BufferPool::give_indices`] when the sparse value
    /// dies.
    pub fn take_indices(&self, cap: usize) -> Vec<usize> {
        self.take_indices_tallied(cap, None)
    }

    fn take_indices_tallied(&self, cap: usize, tally: Option<&PoolTally>) -> Vec<usize> {
        if cap < MIN_POOL_LEN {
            return Vec::with_capacity(cap);
        }
        let reused = {
            let mut st = self.state.lock();
            let popped = st.indices.pop(cap);
            if let Some(b) = &popped {
                st.retained_bytes -= b.capacity() * std::mem::size_of::<usize>();
            }
            popped
        };
        match reused {
            Some(mut buf) => {
                bump(&self.counters.hits, tally, true);
                buf.clear();
                buf
            }
            None => {
                bump(&self.counters.misses, tally, false);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Returns an index buffer to the pool (the `usize` twin of
    /// [`BufferPool::give`]).
    pub fn give_indices(&self, buf: Vec<usize>) {
        if buf.capacity() < MIN_POOL_LEN {
            return;
        }
        let bytes = buf.capacity() * std::mem::size_of::<usize>();
        let mut st = self.state.lock();
        if st.retained_bytes + bytes > self.max_bytes {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let epoch = st.epoch;
        let max_per_class = self.max_per_class;
        if st.indices.push(buf, epoch, max_per_class) {
            st.retained_bytes += bytes;
            self.counters.returns.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Advances the pool epoch and releases buffers unused for more than
    /// [`BufferPool::MAX_AGE`] epochs. Called by the executor after each DAG.
    pub fn advance_epoch(&self) {
        let mut st = self.state.lock();
        st.epoch += 1;
        let cutoff = st.epoch.saturating_sub(Self::MAX_AGE);
        let freed = st.values.retire_older_than(cutoff) * 8
            + st.indices.retire_older_than(cutoff) * std::mem::size_of::<usize>();
        st.retained_bytes -= freed;
    }

    /// Releases every shelved buffer.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.values.classes.clear();
        st.indices.classes.clear();
        st.retained_bytes = 0;
    }

    /// Snapshot of the pool counters and retained bytes.
    pub fn stats(&self) -> PoolStats {
        let retained = self.state.lock().retained_bytes;
        PoolStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            returns: self.counters.returns.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
            retained_bytes: retained,
        }
    }
}

// ---------------------------------------------------------------------------
// Scoped thread-local pool: how kernels reach the engine's pool without the
// handle being threaded through every call signature.
// ---------------------------------------------------------------------------

/// One installed scope: the pool plus the per-execution tally (if any)
/// that requests inside the scope should be attributed to. Opaque; obtained
/// from [`current_scope`] and re-installed with [`reenter`] (how
/// [`crate::par`] band threads inherit the caller's scope, tally included).
#[derive(Clone)]
pub struct ScopeHandle {
    pool: PoolHandle,
    tally: Option<Arc<PoolTally>>,
}

thread_local! {
    static CURRENT: scoped::Stack<ScopeHandle> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an installed pool scope (see [`enter`]). Dropping it
/// uninstalls the pool from the current thread; the shared
/// [`crate::scoped`] machinery debug-asserts LIFO drop order (an
/// out-of-order drop would route requests to the wrong engine's pool).
pub struct PoolScope {
    _guard: scoped::Guard<ScopeHandle>,
}

fn push_scope(scope: ScopeHandle) -> PoolScope {
    PoolScope { _guard: scoped::push(&CURRENT, scope) }
}

/// Installs `pool` as the current thread's buffer pool until the returned
/// guard drops. Nested scopes stack; the innermost wins. The executor enters
/// a scope around each task, and [`crate::par`] helpers re-enter the caller's
/// scope inside their band threads, so kernels can keep calling the free
/// functions ([`take_zeroed`], [`give`], …) with no handle threading.
pub fn enter(pool: &PoolHandle) -> PoolScope {
    push_scope(ScopeHandle { pool: Arc::clone(pool), tally: None })
}

/// Like [`enter`], additionally attributing every pooled request in the
/// scope to `tally` — the scheduler installs one tally per `execute` call,
/// so per-call pool deltas stay exact under concurrent executions.
pub fn enter_tallied(pool: &PoolHandle, tally: &Arc<PoolTally>) -> PoolScope {
    push_scope(ScopeHandle { pool: Arc::clone(pool), tally: Some(Arc::clone(tally)) })
}

/// Re-installs a scope captured with [`current_scope`] (tally included).
pub fn reenter(scope: &ScopeHandle) -> PoolScope {
    push_scope(scope.clone())
}

/// The innermost scope installed on the current thread, if any.
pub fn current_scope() -> Option<ScopeHandle> {
    scoped::top(&CURRENT)
}

/// The pool installed on the current thread, if any.
pub fn current() -> Option<PoolHandle> {
    current_scope().map(|s| s.pool)
}

/// Takes a zeroed buffer of `len` elements from the current scope's pool
/// (plain allocation outside any scope).
pub fn take_zeroed(len: usize) -> Vec<f64> {
    match current_scope() {
        Some(s) => s.pool.take_zeroed_tallied(len, s.tally.as_deref()),
        None => vec![0.0; len],
    }
}

/// Takes a pool-backed copy of `src` from the current scope's pool.
pub fn take_copy(src: &[f64]) -> Vec<f64> {
    match current_scope() {
        Some(s) => s.pool.take_copy_tallied(src, s.tally.as_deref()),
        None => src.to_vec(),
    }
}

/// Returns a value buffer to the current scope's pool (dropped outside any
/// scope).
pub fn give(buf: Vec<f64>) {
    if let Some(p) = current() {
        p.give(buf);
    }
}

/// Takes an empty `f64` value buffer with capacity ≥ `cap` from the current
/// scope's pool.
pub fn take_values(cap: usize) -> Vec<f64> {
    match current_scope() {
        Some(s) => s.pool.take_values_tallied(cap, s.tally.as_deref()),
        None => Vec::with_capacity(cap),
    }
}

/// Takes an empty `usize` index buffer with capacity ≥ `cap` from the
/// current scope's pool.
pub fn take_indices(cap: usize) -> Vec<usize> {
    match current_scope() {
        Some(s) => s.pool.take_indices_tallied(cap, s.tally.as_deref()),
        None => Vec::with_capacity(cap),
    }
}

/// Returns a `usize` index buffer to the current scope's pool.
pub fn give_indices(buf: Vec<usize>) {
    if let Some(p) = current() {
        p.give_indices(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_round_trips() {
        assert_eq!(BufferPool::class_of(1), 0);
        assert_eq!(BufferPool::class_of(64), 6);
        assert_eq!(BufferPool::class_of(65), 7);
        assert_eq!(BufferPool::class_of(300), 9); // next pow2 = 512
    }

    #[test]
    fn take_give_take_hits() {
        let p = BufferPool::new();
        let a = p.take_zeroed(300);
        assert_eq!(a.len(), 300);
        assert!(a.capacity() < 512, "fresh allocations are exact-size");
        p.give(a);
        let b = p.take_zeroed(300);
        assert_eq!(b.len(), 300);
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn smaller_request_reuses_neighbor_class() {
        let p = BufferPool::new();
        p.give(p.take_zeroed(400)); // capacity ~400 retires to class 8
        let b = p.take_zeroed(350); // class 9 is empty; class-8 scan fits
        assert_eq!(b.len(), 350);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn too_small_neighbor_is_not_reused() {
        let p = BufferPool::new();
        p.give(p.take_zeroed(300)); // class 8, capacity ~300
        let b = p.take_zeroed(500); // needs ≥ 500: class-8 entry must not serve
        assert_eq!(b.len(), 500);
        assert_eq!(p.stats().hits, 0);
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        let p = BufferPool::new();
        let mut a = p.take_zeroed(128);
        a.iter_mut().for_each(|v| *v = 7.0);
        p.give(a);
        let b = p.take_zeroed(100);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tiny_buffers_bypass_pool() {
        let p = BufferPool::new();
        let a = p.take_zeroed(8);
        p.give(a);
        let s = p.stats();
        assert_eq!(s.hits + s.misses, 0);
        assert_eq!(s.returns, 0);
    }

    #[test]
    fn epoch_bound_releases_stale_buffers() {
        let p = BufferPool::new();
        p.give(p.take_zeroed(1024));
        p.give_indices({
            let mut v = Vec::with_capacity(256);
            v.push(1usize);
            v
        });
        assert!(p.stats().retained_bytes >= 1024 * 8);
        for _ in 0..=BufferPool::MAX_AGE {
            p.advance_epoch();
        }
        assert_eq!(p.stats().retained_bytes, 0);
    }

    #[test]
    fn class_capacity_is_bounded() {
        let p = BufferPool::new();
        for _ in 0..64 {
            // Fresh buffers (not from take) so returns exceed the cap.
            let mut b = Vec::with_capacity(256);
            b.resize(256, 0.0);
            p.give(b);
        }
        let s = p.stats();
        assert!(s.drops > 0);
        assert!(s.retained_bytes <= 32 * 256 * 8);
    }

    #[test]
    fn byte_budget_is_respected() {
        let p = BufferPool::with_limits(4096, 32);
        p.give(p.take_zeroed(256)); // 2 KiB: fits
        p.give(p.take_zeroed(512)); // would exceed 4 KiB: dropped
        let s = p.stats();
        assert_eq!(s.returns, 1);
        assert_eq!(s.drops, 1);
        assert!(s.retained_bytes <= 4096);
    }

    #[test]
    fn take_copy_matches_source() {
        let p = BufferPool::new();
        let src: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let c = p.take_copy(&src);
        assert_eq!(c, src);
    }

    #[test]
    fn index_buffers_recycle() {
        let p = BufferPool::new();
        let mut a = p.take_indices(300);
        a.extend(0..300usize);
        p.give_indices(a);
        let b = p.take_indices(280);
        assert!(b.is_empty(), "reused index buffers come back cleared");
        assert!(b.capacity() >= 280);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn scoped_pool_routes_free_functions() {
        let pool = BufferPool::handle();
        {
            let _g = enter(&pool);
            let b = take_zeroed(128);
            give(b);
            let b2 = take_zeroed(128);
            assert_eq!(b2.len(), 128);
        }
        let s = pool.stats();
        assert_eq!(s.hits, 1, "second take inside the scope reuses the first");
        // Outside any scope the free functions degrade to plain allocation.
        assert!(current().is_none());
        give(take_zeroed(128));
        assert_eq!(pool.stats().hits, 1, "unscoped traffic never touches the pool");
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = BufferPool::handle();
        let inner = BufferPool::handle();
        let _a = enter(&outer);
        {
            let _b = enter(&inner);
            give(take_zeroed(256));
        }
        assert_eq!(inner.stats().misses, 1);
        assert_eq!(outer.stats().misses, 0);
        give(take_zeroed(256));
        assert_eq!(outer.stats().misses, 1);
    }
}
