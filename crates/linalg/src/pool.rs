//! Pooled dense-buffer allocator — the stand-in for SystemML's buffer pool.
//!
//! SystemML's control program manages intermediates through a buffer pool:
//! operator outputs are acquired from and released back to a managed region,
//! so iterative algorithms reach a steady state with near-zero fresh
//! allocation. This module provides the same behaviour for the dense `f64`
//! buffers that dominate this runtime's allocation volume.
//!
//! Design:
//!
//! * **Size-class keyed.** Buffers are binned by the power-of-two class of
//!   their capacity (`⌊log2 cap⌋`, so a class-`k` shelf only holds buffers
//!   with capacity ≥ `2^k`). A request of length `len` drains the
//!   guaranteed-fit class `⌈log2 len⌉` first and then scans the class below
//!   for a large-enough entry. Fresh allocations are exact-size: the pool
//!   never inflates a live buffer beyond its logical length, so physical
//!   memory matches the tracked footprint byte-for-byte.
//! * **Epoch-bounded.** The executor advances the pool epoch after each DAG
//!   execution; buffers that have sat unused for more than
//!   [`BufferPool::MAX_AGE`] epochs are released to the allocator. This
//!   bounds retained memory across workload changes without a background
//!   thread.
//! * **Shared.** One global pool serves the scheduler workers, the fused
//!   skeletons, and the basic-operator kernels; all methods are thread-safe
//!   behind a single mutex (acquisition is per-operator / per-band, never
//!   per-cell, so contention is negligible).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buffers below this length are not worth pooling (allocator fast paths
/// beat the pool lock for tiny vectors).
const MIN_POOL_LEN: usize = 64;
/// Maximum retained buffers per size class.
const MAX_PER_CLASS: usize = 32;
/// Maximum total bytes retained by the pool (beyond this, `give` drops).
const MAX_POOL_BYTES: usize = 1 << 30;

/// A pooled buffer with the epoch at which it was returned.
struct Shelved {
    buf: Vec<f64>,
    epoch: u64,
}

#[derive(Default)]
struct PoolState {
    /// `classes[k]` holds buffers with capacity in `[2^k, 2^(k+1))`.
    classes: Vec<Vec<Shelved>>,
    epoch: u64,
    retained_bytes: usize,
}

/// Counters describing pool behaviour (monotonic; see [`PoolStats`]).
#[derive(Debug, Default)]
struct PoolCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    drops: AtomicU64,
}

/// A point-in-time snapshot of the pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from a retired buffer.
    pub hits: u64,
    /// Requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub returns: u64,
    /// Buffers rejected at return time (too small / class full / over cap).
    pub drops: u64,
    /// Bytes currently shelved in the pool.
    pub retained_bytes: usize,
}

impl PoolStats {
    /// Fraction of requests served from the pool, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A size-class keyed, epoch-bounded pool of dense `f64` buffers.
pub struct BufferPool {
    state: Mutex<PoolState>,
    counters: PoolCounters,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new()
    }
}

impl BufferPool {
    /// Buffers unused for more than this many epochs are released.
    pub const MAX_AGE: u64 = 8;

    pub const fn new() -> Self {
        BufferPool {
            state: Mutex::new(PoolState { classes: Vec::new(), epoch: 0, retained_bytes: 0 }),
            counters: PoolCounters {
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                returns: AtomicU64::new(0),
                drops: AtomicU64::new(0),
            },
        }
    }

    /// The size class a request of `len` draws from: the exponent of the next
    /// power of two ≥ `len`. Buffers shelved under class `k` have capacity
    /// ≥ `2^k`, so any class-`k` request fits.
    fn class_of(len: usize) -> usize {
        len.next_power_of_two().trailing_zeros() as usize
    }

    /// Takes a zeroed buffer of exactly `len` elements, reusing a shelved
    /// buffer when one fits. Fresh allocations are *exact-size* (no
    /// power-of-two slack, so physical memory matches the accounted bytes);
    /// reuse first drains the guaranteed-fit class `⌈log2 len⌉`, then scans
    /// the class below for an entry whose capacity happens to fit (that is
    /// where exact-size non-power-of-two buffers retire to).
    pub fn take_zeroed(&self, len: usize) -> Vec<f64> {
        if len < MIN_POOL_LEN {
            return vec![0.0; len];
        }
        let cls = Self::class_of(len);
        let reused = {
            let mut st = self.state.lock();
            let mut popped = st.classes.get_mut(cls).and_then(|shelf| shelf.pop());
            if popped.is_none() && cls > 0 {
                if let Some(shelf) = st.classes.get_mut(cls - 1) {
                    if let Some(i) = shelf.iter().rposition(|s| s.buf.capacity() >= len) {
                        popped = Some(shelf.swap_remove(i));
                    }
                }
            }
            if let Some(s) = &popped {
                st.retained_bytes -= s.buf.capacity() * 8;
            }
            popped.map(|s| s.buf)
        };
        match reused {
            Some(mut buf) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                vec![0.0; len]
            }
        }
    }

    /// Takes a buffer initialized as a copy of `src` (pool-backed `to_vec`).
    pub fn take_copy(&self, src: &[f64]) -> Vec<f64> {
        if src.len() < MIN_POOL_LEN {
            return src.to_vec();
        }
        let mut buf = self.take_zeroed(src.len());
        buf.copy_from_slice(src);
        buf
    }

    /// Returns a buffer to the pool. Tiny buffers, overfull classes, and
    /// anything beyond the global retention cap are dropped instead.
    pub fn give(&self, buf: Vec<f64>) {
        if buf.capacity() < MIN_POOL_LEN {
            return;
        }
        // Shelve by floor-log2 of capacity so a class-k shelf only holds
        // buffers with capacity ≥ 2^k (a class-k request has len ≤ 2^k).
        let cls = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        let bytes = buf.capacity() * 8;
        let mut st = self.state.lock();
        if st.retained_bytes + bytes > MAX_POOL_BYTES {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if st.classes.len() <= cls {
            st.classes.resize_with(cls + 1, Vec::new);
        }
        let epoch = st.epoch;
        let shelf = &mut st.classes[cls];
        if shelf.len() >= MAX_PER_CLASS {
            self.counters.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        shelf.push(Shelved { buf, epoch });
        st.retained_bytes += bytes;
        self.counters.returns.fetch_add(1, Ordering::Relaxed);
    }

    /// Advances the pool epoch and releases buffers unused for more than
    /// [`BufferPool::MAX_AGE`] epochs. Called by the executor after each DAG.
    pub fn advance_epoch(&self) {
        let mut st = self.state.lock();
        st.epoch += 1;
        let cutoff = st.epoch.saturating_sub(Self::MAX_AGE);
        let mut freed = 0usize;
        for shelf in st.classes.iter_mut() {
            shelf.retain(|s| {
                if s.epoch < cutoff {
                    freed += s.buf.capacity() * 8;
                    false
                } else {
                    true
                }
            });
        }
        st.retained_bytes -= freed;
    }

    /// Releases every shelved buffer.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.classes.clear();
        st.retained_bytes = 0;
    }

    /// Snapshot of the pool counters and retained bytes.
    pub fn stats(&self) -> PoolStats {
        let retained = self.state.lock().retained_bytes;
        PoolStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            returns: self.counters.returns.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
            retained_bytes: retained,
        }
    }
}

/// The process-wide pool shared by scheduler workers, skeletons, and kernels.
static GLOBAL: BufferPool = BufferPool::new();

/// The global buffer pool.
pub fn global() -> &'static BufferPool {
    &GLOBAL
}

/// Takes a zeroed buffer of `len` elements from the global pool.
pub fn take_zeroed(len: usize) -> Vec<f64> {
    GLOBAL.take_zeroed(len)
}

/// Takes a pool-backed copy of `src` from the global pool.
pub fn take_copy(src: &[f64]) -> Vec<f64> {
    GLOBAL.take_copy(src)
}

/// Returns a buffer to the global pool.
pub fn give(buf: Vec<f64>) {
    GLOBAL.give(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_round_trips() {
        assert_eq!(BufferPool::class_of(1), 0);
        assert_eq!(BufferPool::class_of(64), 6);
        assert_eq!(BufferPool::class_of(65), 7);
        assert_eq!(BufferPool::class_of(300), 9); // next pow2 = 512
    }

    #[test]
    fn take_give_take_hits() {
        let p = BufferPool::new();
        let a = p.take_zeroed(300);
        assert_eq!(a.len(), 300);
        assert!(a.capacity() < 512, "fresh allocations are exact-size");
        p.give(a);
        let b = p.take_zeroed(300);
        assert_eq!(b.len(), 300);
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn smaller_request_reuses_neighbor_class() {
        let p = BufferPool::new();
        p.give(p.take_zeroed(400)); // capacity ~400 retires to class 8
        let b = p.take_zeroed(350); // class 9 is empty; class-8 scan fits
        assert_eq!(b.len(), 350);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn too_small_neighbor_is_not_reused() {
        let p = BufferPool::new();
        p.give(p.take_zeroed(300)); // class 8, capacity ~300
        let b = p.take_zeroed(500); // needs ≥ 500: class-8 entry must not serve
        assert_eq!(b.len(), 500);
        assert_eq!(p.stats().hits, 0);
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn reused_buffers_are_zeroed() {
        let p = BufferPool::new();
        let mut a = p.take_zeroed(128);
        a.iter_mut().for_each(|v| *v = 7.0);
        p.give(a);
        let b = p.take_zeroed(100);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tiny_buffers_bypass_pool() {
        let p = BufferPool::new();
        let a = p.take_zeroed(8);
        p.give(a);
        let s = p.stats();
        assert_eq!(s.hits + s.misses, 0);
        assert_eq!(s.returns, 0);
    }

    #[test]
    fn epoch_bound_releases_stale_buffers() {
        let p = BufferPool::new();
        p.give(p.take_zeroed(1024));
        assert!(p.stats().retained_bytes >= 1024 * 8);
        for _ in 0..=BufferPool::MAX_AGE {
            p.advance_epoch();
        }
        assert_eq!(p.stats().retained_bytes, 0);
    }

    #[test]
    fn class_capacity_is_bounded() {
        let p = BufferPool::new();
        for _ in 0..64 {
            // Fresh buffers (not from take) so returns exceed the cap.
            let mut b = Vec::with_capacity(256);
            b.resize(256, 0.0);
            p.give(b);
        }
        let s = p.stats();
        assert!(s.drops > 0);
        assert!(s.retained_bytes <= 32 * 256 * 8);
    }

    #[test]
    fn take_copy_matches_source() {
        let p = BufferPool::new();
        let src: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let c = p.take_copy(&src);
        assert_eq!(c, src);
    }
}
