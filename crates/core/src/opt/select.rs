//! Plan selection: turns per-partition assignments into concrete
//! [`OperatorPlan`]s by extracting the chosen memo entries along fusion
//! references (the same traversal the cost model performs), and groups
//! full-aggregate Cell plans sharing inputs into MultiAgg candidates.

use crate::cplan::OperatorPlan;
use crate::memo::{MemoEntry, MemoTable};
use crate::opt::cost::{self, pick_best_entry, CostModel};
use crate::opt::enumerate::{mpskip_enum, EnumConfig};
use crate::opt::heuristics;
use crate::opt::partition::{partitions, InterestingPoint, PlanPartition};
use crate::templates::TemplateType;
use crate::util::{FxHashMap, FxHashSet};
use fusedml_hop::{HopDag, HopId, OpKind};
use fusedml_linalg::ops::AggDir;

/// Candidate selection policy (paper §4.1).
#[derive(Clone, Copy, Debug)]
pub enum SelectionPolicy {
    /// Cost-based enumeration with `MPSkipEnum` (the `Gen` configuration).
    CostBased(EnumConfig),
    /// The fuse-all heuristic (`Gen-FA`).
    FuseAll,
    /// The fuse-no-redundancy heuristic (`Gen-FNR`).
    FuseNoRedundancy,
}

/// Output of candidate selection.
#[derive(Clone, Debug, Default)]
pub struct SelectionResult {
    /// Selected fused operators.
    pub operators: Vec<OperatorPlan>,
    /// Groups of operator indices to combine into MultiAgg operators
    /// (each group has ≥2 full-agg Cell operators sharing inputs).
    pub magg_groups: Vec<Vec<usize>>,
    /// Total plans costed across partitions.
    pub plans_evaluated: u64,
    /// Total search-space size across partitions (2^|M'| summed).
    pub search_space: f64,
    /// Number of partitions.
    pub partitions: usize,
    /// Total interesting points.
    pub interesting_points: usize,
}

/// Runs candidate selection over a populated memo table.
pub fn select_plans(
    dag: &HopDag,
    memo: &MemoTable,
    policy: SelectionPolicy,
    model: &CostModel,
) -> SelectionResult {
    // Special-case pruning of Row plans without row-wise operations (all
    // policies), plus dominance pruning for the heuristics (paper §3.2).
    let mut m = memo.clone();
    m.prune_useless_row_plans(dag);
    if !matches!(policy, SelectionPolicy::CostBased(_)) {
        m.prune_dominated(dag);
    }
    let memo = &m;
    let parts = partitions(dag, memo);
    let compute = cost::compute_costs(dag);
    let mut result = SelectionResult { partitions: parts.len(), ..Default::default() };
    for part in &parts {
        result.interesting_points += part.interesting.len();
        let assignment: Vec<bool> = match policy {
            SelectionPolicy::CostBased(cfg) => {
                let r = mpskip_enum(dag, memo, part, &compute, model, &cfg);
                result.plans_evaluated += r.evaluated;
                result.search_space += r.search_space;
                r.assignment
            }
            SelectionPolicy::FuseAll => {
                result.plans_evaluated += 1;
                result.search_space += 1.0;
                heuristics::fuse_all(part)
            }
            SelectionPolicy::FuseNoRedundancy => {
                result.plans_evaluated += 1;
                result.search_space += 1.0;
                heuristics::fuse_no_redundancy(dag, part)
            }
        };
        let materialized: FxHashSet<InterestingPoint> = part
            .interesting
            .iter()
            .zip(&assignment)
            .filter(|(_, &on)| on)
            .map(|(p, _)| *p)
            .collect();
        extract_operators(dag, memo, part, &materialized, &mut result.operators);
    }
    result.magg_groups = group_multi_aggregates(dag, &result.operators);
    result
}

/// Extracts operator plans for one partition under an assignment, mirroring
/// the cost model's traversal (open at roots/materialized boundaries, follow
/// fusion references of the best entries).
fn extract_operators(
    dag: &HopDag,
    memo: &MemoTable,
    part: &PlanPartition,
    materialized: &FxHashSet<InterestingPoint>,
    out: &mut Vec<OperatorPlan>,
) {
    let part_set: FxHashSet<HopId> = part.nodes.iter().copied().collect();
    let mut opened: FxHashSet<HopId> = FxHashSet::default();
    let mut queue: Vec<HopId> = part.roots.clone();
    while let Some(root) = queue.pop() {
        if !opened.insert(root) {
            continue;
        }
        let best = pick_best_entry(memo, root, None, materialized);
        match best {
            Some(entry) if entry.ref_count() > 0 => {
                let mut plan =
                    OperatorPlan { root, ttype: entry.ttype, entries: FxHashMap::default() };
                let mut frontier: Vec<HopId> = Vec::new();
                collect(dag, memo, root, entry, materialized, &mut plan, &mut frontier);
                // Refs can degrade to materialized when the assignment
                // invalidated all compatible sub-plans; a fused operator
                // covering a single op is pointless — execute it basic.
                let has_refs = plan.entries.values().any(|e| e.ref_count() > 0);
                if has_refs && plan.entries.len() > 1 {
                    out.push(plan);
                } else {
                    for &i in &dag.hop(root).inputs {
                        if part_set.contains(&i) {
                            queue.push(i);
                        }
                    }
                }
                for f in frontier {
                    if part_set.contains(&f) {
                        queue.push(f);
                    }
                }
            }
            _ => {
                // Basic operator (or single-op plan not worth fusing):
                // recurse into partition inputs.
                for &i in &dag.hop(root).inputs {
                    if part_set.contains(&i) {
                        queue.push(i);
                    }
                }
            }
        }
    }
}

/// Recursively collects the covered hops of one operator. Each fused
/// reference is resolved to the input's best merge-compatible entry; a
/// reference without a valid compatible plan degrades to a materialized
/// input.
fn collect(
    dag: &HopDag,
    memo: &MemoTable,
    hop: HopId,
    entry: MemoEntry,
    materialized: &FxHashSet<InterestingPoint>,
    plan: &mut OperatorPlan,
    frontier: &mut Vec<HopId>,
) {
    if plan.entries.contains_key(&hop) {
        return;
    }
    let inputs = dag.hop(hop).inputs.clone();
    let mut resolved = entry;
    // Placeholder guards against diamond re-entry within this operator.
    plan.entries.insert(hop, resolved.clone());
    for (j, &input) in inputs.iter().enumerate() {
        if resolved.inputs[j].is_fused() {
            match pick_best_entry(memo, input, Some(plan.ttype), materialized) {
                Some(se) => collect(dag, memo, input, se, materialized, plan, frontier),
                None => {
                    resolved.inputs[j] = crate::memo::InputRef::Materialized;
                    frontier.push(input);
                }
            }
        } else {
            frontier.push(input);
        }
    }
    plan.entries.insert(hop, resolved);
}

/// Groups full-aggregate Cell operators sharing at least one input into
/// MultiAgg candidates of up to 3 aggregates (paper Table 1: MAgg binds
/// `X_ij` with full-agg variants; §5.2 multi-aggregate experiments).
fn group_multi_aggregates(dag: &HopDag, operators: &[OperatorPlan]) -> Vec<Vec<usize>> {
    // Candidates: Cell operators rooted at full aggregations.
    let mut cands: Vec<(usize, FxHashSet<HopId>)> = Vec::new();
    for (i, op) in operators.iter().enumerate() {
        if op.ttype != TemplateType::Cell {
            continue;
        }
        let root = dag.hop(op.root);
        if !matches!(root.kind, OpKind::Agg { dir: AggDir::Full, .. }) {
            continue;
        }
        // Leaf inputs of the covered set.
        let covered = op.covered();
        let mut leaves: FxHashSet<HopId> = FxHashSet::default();
        for &h in covered.iter() {
            for &input in &dag.hop(h).inputs {
                if !covered.contains(&input) && !dag.hop(input).is_scalar() {
                    leaves.insert(input);
                }
            }
        }
        cands.push((i, leaves));
    }
    // Greedy grouping by shared inputs.
    let mut used = vec![false; cands.len()];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..cands.len() {
        if used[i] {
            continue;
        }
        let mut group = vec![cands[i].0];
        used[i] = true;
        for j in i + 1..cands.len() {
            if used[j] || group.len() >= 3 {
                continue;
            }
            if cands[i].1.intersection(&cands[j].1).next().is_some() {
                group.push(cands[j].0);
                used[j] = true;
            }
        }
        if group.len() >= 2 {
            groups.push(group);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;

    #[test]
    fn cell_chain_selected_as_single_operator() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let z = b.read("Z", 1000, 1000, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let r = select_plans(
            &dag,
            &memo,
            SelectionPolicy::CostBased(EnumConfig::default()),
            &CostModel::default(),
        );
        assert_eq!(r.operators.len(), 1);
        let op = &r.operators[0];
        assert_eq!(op.root, s);
        let covered = op.covered();
        assert!(covered.contains(&m1) && covered.contains(&m2) && covered.contains(&s));
    }

    #[test]
    fn magg_groups_shared_input_aggregates() {
        // sum(X⊙Y), sum(X⊙Z): two full-agg Cell ops sharing X.
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let z = b.read("Z", 1000, 1000, 1.0);
        let a = b.mult(x, y);
        let c = b.mult(x, z);
        let s1 = b.sum(a);
        let s2 = b.sum(c);
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        let r = select_plans(
            &dag,
            &memo,
            SelectionPolicy::CostBased(EnumConfig::default()),
            &CostModel::default(),
        );
        assert_eq!(r.operators.len(), 2);
        assert_eq!(r.magg_groups.len(), 1, "one MAgg group: {:?}", r.magg_groups);
        assert_eq!(r.magg_groups[0].len(), 2);
    }

    #[test]
    fn mlogreg_row_plan_extracted() {
        // The Figure 5 expression must select a Row operator rooted at the
        // final matmult covering the full chain.
        let (n, m, k) = (1000, 100, 4);
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let v = b.read("v", m, k, 1.0);
        let p = b.read("P", n, k + 1, 1.0);
        let h4 = b.mm(x, v);
        let h5 = b.rix(p, None, Some((0, k)));
        let h6 = b.mult(h5, h4);
        let h7 = b.row_sums(h6);
        let h8 = b.mult(h5, h7);
        let h9 = b.sub(h6, h8);
        let h10 = b.t(x);
        let h11 = b.mm(h10, h9);
        let dag = b.build(vec![h11]);
        let memo = explore(&dag);
        let r = select_plans(
            &dag,
            &memo,
            SelectionPolicy::CostBased(EnumConfig::default()),
            &CostModel::default(),
        );
        let root_op =
            r.operators.iter().find(|o| o.root == h11).expect("operator at the final matmult");
        assert_eq!(root_op.ttype, TemplateType::Row);
        // The Q intermediate (h6) has two consumers; the optimal plan for
        // this size fuses everything into one pass (single-pass over X).
        assert!(
            root_op.entries.len() >= 4,
            "covers a multi-op chain: {:?}",
            root_op.entries.keys()
        );
    }

    #[test]
    fn heuristics_extract_without_panic() {
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 500, 500, 1.0);
        let y = b.read("Y", 500, 500, 1.0);
        let shared = b.mult(x, y);
        let e = b.exp(shared);
        let s1 = b.sum(e);
        let q = b.sq(shared);
        let s2 = b.sum(q);
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        for policy in [SelectionPolicy::FuseAll, SelectionPolicy::FuseNoRedundancy] {
            let r = select_plans(&dag, &memo, policy, &CostModel::default());
            assert!(!r.operators.is_empty());
        }
    }
}
