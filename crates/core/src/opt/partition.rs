//! Plan partitions and interesting materialization points (paper §4.2,
//! Figure 6).

use crate::memo::MemoTable;
use crate::templates::TemplateType;
use crate::util::{FxHashMap, FxHashSet};
use fusedml_hop::{HopDag, HopId};

/// An interesting point: a boolean materialization decision on the data
/// dependency `consumer → target` (paper §4.2). `true` in an assignment
/// means the edge is *materialized*: fusion plans referencing `target` from
/// `consumer` become invalid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InterestingPoint {
    pub consumer: HopId,
    pub target: HopId,
}

/// A connected component of partial fusion plans.
#[derive(Clone, Debug)]
pub struct PlanPartition {
    /// Nodes with fusion plans in this partition.
    pub nodes: Vec<HopId>,
    /// Partition roots: nodes never referenced from within the partition.
    pub roots: Vec<HopId>,
    /// Partition inputs: nodes outside whose output is read by the partition.
    pub inputs: Vec<HopId>,
    /// Materialization points: non-root nodes with multiple consumers.
    pub mat_points: Vec<HopId>,
    /// Interesting points `M'`: materialization-point consumer edges plus
    /// template-switch edges.
    pub interesting: Vec<InterestingPoint>,
}

/// Computes the plan partitions of a memo table: connected components over
/// fusion references (paper: "nodes of separate partitions are not reachable
/// via fusion").
pub fn partitions(dag: &HopDag, memo: &MemoTable) -> Vec<PlanPartition> {
    let group_ids = memo.group_ids();
    if group_ids.is_empty() {
        return Vec::new();
    }
    // Union-find over group ids.
    let index: FxHashMap<HopId, usize> =
        group_ids.iter().enumerate().map(|(i, &g)| (g, i)).collect();
    let mut parent: Vec<usize> = (0..group_ids.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for &g in &group_ids {
        for e in memo.entries(g) {
            for r in e.refs() {
                if let Some(&ri) = index.get(&r) {
                    let (a, b) = (find(&mut parent, index[&g]), find(&mut parent, ri));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
    }
    // Collect components.
    let mut comps: FxHashMap<usize, Vec<HopId>> = FxHashMap::default();
    for &g in &group_ids {
        let root = find(&mut parent, index[&g]);
        comps.entry(root).or_default().push(g);
    }
    let consumer_counts = dag.consumer_counts();
    let dag_roots: FxHashSet<HopId> = dag.roots().iter().copied().collect();
    let mut out: Vec<PlanPartition> = comps
        .into_values()
        .map(|mut nodes| {
            nodes.sort_unstable();
            build_partition(dag, memo, nodes, &consumer_counts, &dag_roots)
        })
        .collect();
    out.sort_by_key(|p| p.nodes[0]);
    out
}

fn build_partition(
    dag: &HopDag,
    memo: &MemoTable,
    nodes: Vec<HopId>,
    consumer_counts: &[u32],
    dag_roots: &FxHashSet<HopId>,
) -> PlanPartition {
    let node_set: FxHashSet<HopId> = nodes.iter().copied().collect();

    // Referenced-from-within set → roots are the complement.
    let mut referenced: FxHashSet<HopId> = FxHashSet::default();
    for &g in &nodes {
        for e in memo.entries(g) {
            for r in e.refs() {
                if node_set.contains(&r) {
                    referenced.insert(r);
                }
            }
        }
    }
    let roots: Vec<HopId> = nodes.iter().copied().filter(|n| !referenced.contains(n)).collect();
    let root_set: FxHashSet<HopId> = roots.iter().copied().collect();

    // Inputs: hop inputs of partition nodes outside the partition.
    let mut inputs: Vec<HopId> = Vec::new();
    let mut seen = FxHashSet::default();
    for &g in &nodes {
        for &i in &dag.hop(g).inputs {
            if !node_set.contains(&i) && seen.insert(i) {
                inputs.push(i);
            }
        }
    }
    inputs.sort_unstable();

    // Materialization points: non-root partition nodes with >1 consumers
    // (DAG roots get one extra implicit consumer).
    let mat_points: Vec<HopId> = nodes
        .iter()
        .copied()
        .filter(|&n| {
            !root_set.contains(&n) && {
                let c = consumer_counts[n.index()] + u32::from(dag_roots.contains(&n));
                c > 1
            }
        })
        .collect();
    let mat_set: FxHashSet<HopId> = mat_points.iter().copied().collect();

    // Interesting points.
    let mut interesting: Vec<InterestingPoint> = Vec::new();
    let mut ip_seen: FxHashSet<InterestingPoint> = FxHashSet::default();
    for &g in &nodes {
        for (j, &input) in dag.hop(g).inputs.iter().enumerate() {
            let _ = j;
            if !node_set.contains(&input) {
                continue;
            }
            // (1) Materialization-point consumers, per dependency.
            let is_mp_edge = mat_set.contains(&input);
            // (2) Template switches: W[input] has types not in W[g], on a
            //     fusible dependency (input referenced by some entry at g).
            let fusible = memo.entries(g).iter().any(|e| e.refs().any(|r| r == input));
            let is_switch = fusible && {
                let tin: Vec<TemplateType> = memo.entries(input).iter().map(|e| e.ttype).collect();
                let tg: Vec<TemplateType> = memo.entries(g).iter().map(|e| e.ttype).collect();
                tin.iter().any(|t| !tg.contains(t))
            };
            if is_mp_edge || is_switch {
                let p = InterestingPoint { consumer: g, target: input };
                if ip_seen.insert(p) {
                    interesting.push(p);
                }
            }
        }
    }
    interesting.sort_unstable();

    PlanPartition { nodes, roots, inputs, mat_points, interesting }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use fusedml_hop::DagBuilder;

    /// Two independent fusion chains → two partitions.
    #[test]
    fn independent_chains_split() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 100, 1.0);
        let y = b.read("Y", 100, 100, 1.0);
        let s1 = {
            let m = b.mult(x, y);
            b.sum(m)
        };
        // Separate chain on different inputs, not fusible across colSums.
        let w = b.read("W", 200, 50, 1.0);
        let z = b.read("Z", 200, 50, 1.0);
        let s2 = {
            let m = b.add(w, z);
            let e = b.sq(m);
            b.sum(e)
        };
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        assert_eq!(parts.len(), 2, "two connected components");
        for p in &parts {
            assert!(!p.roots.is_empty());
            assert!(!p.inputs.is_empty());
        }
    }

    /// A shared intermediate with two consumers becomes a materialization
    /// point and contributes per-consumer interesting points.
    #[test]
    fn materialization_points_found() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 100, 1.0);
        let y = b.read("Y", 100, 100, 1.0);
        let shared = b.mult(x, y); // consumed twice
        let e1 = b.exp(shared);
        let s1 = b.sum(e1);
        let sq = b.sq(shared);
        let s2 = b.sum(sq);
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        assert_eq!(parts.len(), 1, "connected through the shared node");
        let p = &parts[0];
        assert!(p.mat_points.contains(&shared), "shared mult is a mat point");
        let consumers: Vec<HopId> =
            p.interesting.iter().filter(|ip| ip.target == shared).map(|ip| ip.consumer).collect();
        assert_eq!(consumers.len(), 2, "one interesting point per consumer edge");
    }

    /// Template switches are interesting even without multiple consumers:
    /// `Y + X ⊙ UV^T` has a Cell/Outer switch at the plane (paper §4.2).
    #[test]
    fn template_switch_is_interesting() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2000, 1000, 0.01);
        let u = b.read("U", 2000, 20, 1.0);
        let v = b.read("V", 1000, 20, 1.0);
        let yb = b.read("Y", 2000, 1000, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let prod = b.mult(x, uvt);
        let plus = b.add(yb, prod);
        let s = b.sum(plus);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        // The transpose's isolated R(-1) group forms its own tiny partition;
        // use the partition containing the plane.
        let p = parts.iter().find(|p| p.nodes.contains(&prod)).expect("plane partition");
        assert!(
            p.interesting.iter().any(|ip| ip.target == uvt || ip.target == prod),
            "template switch around the outer-product plane: {:?}",
            p.interesting
        );
    }

    #[test]
    fn partition_roots_are_unreferenced() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 100, 1.0);
        let y = b.read("Y", 100, 100, 1.0);
        let m = b.mult(x, y);
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].roots, vec![s]);
        assert!(parts[0].inputs.contains(&x));
        assert!(parts[0].inputs.contains(&y));
    }
}
