//! Fusion heuristics (paper §4.1): the baseline assignment policies
//! fuse-all and fuse-no-redundancy.

use crate::opt::partition::PlanPartition;
use fusedml_hop::HopDag;

/// Fuse-all (`Gen-FA`): maximal fusion, never materialize — redundant
/// compute on CSEs. "Similar to lazy evaluation in Spark, delayed arrays in
/// Repa, and code generation in SPOOF."
pub fn fuse_all(part: &PlanPartition) -> Vec<bool> {
    vec![false; part.interesting.len()]
}

/// Fuse-no-redundancy (`Gen-FNR`): materialize every intermediate with
/// multiple consumers. "Similar to caching policies in Emma."
pub fn fuse_no_redundancy(dag: &HopDag, part: &PlanPartition) -> Vec<bool> {
    let counts = dag.consumer_counts();
    part.interesting.iter().map(|p| counts[p.target.index()] > 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::opt::partition::partitions;
    use fusedml_hop::DagBuilder;

    #[test]
    fn heuristic_assignments_differ_on_shared_nodes() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 500, 500, 1.0);
        let y = b.read("Y", 500, 500, 1.0);
        let shared = b.mult(x, y);
        let e = b.exp(shared);
        let s1 = b.sum(e);
        let q = b.sq(shared);
        let s2 = b.sum(q);
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        let part = &parts[0];
        let fa = fuse_all(part);
        let fnr = fuse_no_redundancy(&dag, part);
        assert!(fa.iter().all(|&v| !v), "fuse-all never materializes");
        assert!(fnr.iter().any(|&v| v), "fuse-no-redundancy materializes the shared node");
        // FNR materializes exactly the multi-consumer targets.
        for (p, &on) in part.interesting.iter().zip(&fnr) {
            if p.target == shared {
                assert!(on);
            }
        }
    }
}
