//! Runtime calibration of the cost model's bandwidth constants
//! (DESIGN.md substitution X5).
//!
//! The paper uses the cluster's nominal peaks (32 GB/s read, 115 GFLOP/s per
//! node) and STREAM measurements. The cost model only needs *ratios* to rank
//! plans, but calibrated constants make the local/distributed crossover
//! points meaningful on the host actually running the benchmarks.

use crate::opt::cost::CostModel;
use crate::spoof::block::{self, BlockEval, TileCtx, TileSrc};
use crate::spoof::{Instr, Program, SideAccess};
use fusedml_linalg::ops::BinaryOp;
use fusedml_linalg::primitives as prim;
use std::time::Instant;

/// Measures approximate read/write/compute bandwidths plus the block
/// backend's per-cell dispatch overhead with short micro-benchmarks and
/// returns a calibrated [`CostModel`].
///
/// * read: streaming sum over a large buffer,
/// * write: `fill` of a large buffer,
/// * compute: fused multiply-add chain on registers,
/// * dispatch: tile-evaluated `a⊙b` program vs the raw fused loop.
pub fn calibrate() -> CostModel {
    let n = 8usize << 20; // 8 Mi doubles = 64 MB
    let buf = vec![1.0f64; n];

    // Read bandwidth.
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for chunk in buf.chunks(1024) {
        acc += chunk.iter().sum::<f64>();
    }
    std::hint::black_box(acc);
    let read_bw = (n * 8) as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Write bandwidth.
    let mut out = vec![0.0f64; n];
    let t0 = Instant::now();
    out.fill(2.0);
    std::hint::black_box(&out);
    let write_bw = (n * 8) as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Compute bandwidth (FLOP/s): independent FMA chains on registers.
    let iters = 4usize << 20;
    let t0 = Instant::now();
    let (mut a, mut b, mut c, mut d) = (1.0f64, 1.000001f64, 0.999999f64, 1.0000001f64);
    for _ in 0..iters {
        a = a * 0.9999999 + 1e-7;
        b = b * 0.9999998 + 2e-7;
        c = c * 0.9999997 + 3e-7;
        d = d * 0.9999996 + 4e-7;
    }
    std::hint::black_box((a, b, c, d));
    let compute_bw = (iters * 8) as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let compute_bw = compute_bw.clamp(1e8, 1e12);

    // Per-cell dispatch overhead of the generated-operator backend: the
    // tile-evaluated `a * b[cell]` program against the raw dot-product loop
    // over the same data, expressed in FLOP-equivalents per cell.
    let dispatch = dispatch_overhead_flops(compute_bw);

    // Per-row dispatch overhead of the Row backend.
    let row_dispatch = row_dispatch_overhead_flops(compute_bw);

    CostModel {
        read_bw: read_bw.clamp(1e9, 1e12),
        write_bw: write_bw.clamp(5e8, 1e12),
        compute_bw,
        fused_dispatch_flops: dispatch,
        row_dispatch_flops: row_dispatch,
        dist: None,
    }
}

/// Measures the Row backend's per-row overhead — the per-row scalar
/// prologue/dispatch the band-lowered kernel replays for every main-input
/// row (the vector work itself streams at full bandwidth) — and converts it
/// to FLOP-equivalents under the measured compute bandwidth.
fn row_dispatch_overhead_flops(compute_bw: f64) -> f64 {
    // A representative per-row scalar tail: side load + two scalar ops, the
    // mlogreg `w[r] * g(dot)` shape.
    let prog = Program {
        instrs: vec![
            Instr::LoadSide { out: 0, side: 0, access: SideAccess::Col },
            Instr::LoadConst { out: 1, value: 0.5 },
            Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            Instr::Binary { out: 3, op: BinaryOp::Add, a: 2, b: 1 },
        ],
        n_regs: 4,
        vreg_lens: vec![],
    };
    let rows = 64usize << 10;
    let mut regs = vec![0.0f64; 4];
    let side = |_: usize, _: SideAccess| 1.25f64;
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..rows {
        crate::spoof::eval_scalar_program(&prog, &mut regs, 0.0, 0.0, &side, &[]);
        acc += regs[3];
    }
    std::hint::black_box(acc);
    let per_row = t0.elapsed().as_secs_f64() / rows as f64;
    (per_row * compute_bw).clamp(4.0, 512.0)
}

/// Measures the block evaluator's per-cell overhead over a raw fused loop
/// and converts it to FLOP-equivalents under the measured compute bandwidth.
fn dispatch_overhead_flops(compute_bw: f64) -> f64 {
    let n = 64usize << 10; // 64 Ki doubles — resident in L2
    let x: Vec<f64> = (0..n).map(|i| 0.5 + (i % 17) as f64 * 0.25).collect();
    let y: Vec<f64> = (0..n).map(|i| 1.0 + (i % 13) as f64 * 0.125).collect();
    let reps = 48usize;

    // f(a) = a * b0[cell], full-sum fold — the minimal Cell program.
    let prog = Program {
        instrs: vec![
            Instr::LoadMain { out: 0 },
            Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
            Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
        ],
        n_regs: 3,
        vreg_lens: vec![],
    };
    let bp = block::lower(&prog);
    let width = block::DEFAULT_TILE_WIDTH;
    let mut ev = BlockEval::new(&bp, width);
    ev.set_invariants(&bp, &|_, _| 0.0, &[]);

    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..reps {
        for (xc, yc) in x.chunks(width).zip(y.chunks(width)) {
            let g = [TileSrc::Slice(yc)];
            let ctx = TileCtx { main: TileSrc::Slice(xc), uv: TileSrc::Const(0.0), gathers: &g };
            ev.eval_body(&bp, &ctx, xc.len());
            acc = block::fold_result(
                fusedml_linalg::ops::AggOp::Sum,
                acc,
                ev.value_of(&bp, 2, &ctx, xc.len()),
                xc.len(),
            );
        }
    }
    std::hint::black_box(acc);
    let t_block = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..reps {
        acc += prim::dot_product(&x, &y, 0, 0, n);
    }
    std::hint::black_box(acc);
    let t_raw = t0.elapsed().as_secs_f64();

    let per_cell = (t_block - t_raw).max(0.0) / (n * reps) as f64;
    (per_cell * compute_bw).clamp(0.25, 24.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_constants_are_plausible() {
        let m = calibrate();
        // Any functioning machine reads ≥ 1 GB/s and computes ≥ 0.1 GFLOP/s.
        assert!(m.read_bw >= 1e9, "read {}", m.read_bw);
        assert!(m.write_bw >= 5e8, "write {}", m.write_bw);
        assert!(m.compute_bw >= 1e8, "compute {}", m.compute_bw);
    }

    #[test]
    fn calibrated_model_still_ranks_fusion_correctly() {
        use crate::explore::explore;
        use crate::opt::{cost, partitions};
        use crate::util::FxHashSet;
        let mut b = fusedml_hop::DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let m1 = b.mult(x, y);
        let s = b.sum(m1);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        let compute = cost::compute_costs(&dag);
        let model = calibrate();
        let none = FxHashSet::default();
        let fused = cost::PlanCoster::new(&dag, &memo, &parts[0], &compute, &model, &none)
            .partition_cost(f64::INFINITY);
        let empty = crate::memo::MemoTable::new();
        let base = cost::PlanCoster::new(&dag, &empty, &parts[0], &compute, &model, &none)
            .partition_cost(f64::INFINITY);
        assert!(fused < base, "fusion must stay cheaper under calibration");
    }
}
