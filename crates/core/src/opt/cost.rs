//! The analytical cost model for DAG-structured fusion plans (paper §4.3,
//! Equation 4):
//!
//! `C(P|q) = Σ_p ( T̂w_p + max(T̂r_p, T̂c_p) )`
//!
//! Read/write times derive from input/output sizes divided by peak memory
//! bandwidth; compute time from floating-point operations divided by peak
//! compute bandwidth. Shared reads and CSEs inside one fused operator are
//! captured by *cost vectors*; memoization of (operator, cost-vector) pairs
//! returns zero on re-visits while still accounting for the redundant
//! compute of overlapping operators. Sparsity-exploiting operators scale
//! compute down by the main input's sparsity.

use crate::memo::{MemoEntry, MemoTable};
use crate::opt::partition::{InterestingPoint, PlanPartition};
use crate::templates::TemplateType;
use crate::util::{FxHashMap, FxHashSet};
use fusedml_hop::{HopDag, HopId, OpKind};
use fusedml_linalg::ops::UnaryOp;

/// Distributed-execution cost parameters (paper §4.4 "Constraints and
/// Distributed Operations"; DESIGN.md substitution X2).
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Number of executors.
    pub executors: usize,
    /// Aggregate executor scan bandwidth (bytes/s).
    pub exec_read_bw: f64,
    /// Point-to-point network bandwidth for broadcasts (bytes/s).
    pub net_bw: f64,
    /// Single-node memory budget: operators whose largest input exceeds
    /// this execute distributed.
    pub local_budget: f64,
    /// Block size constraint: distributed Row templates require
    /// `ncol(X) <= block_cols` (access to entire rows).
    pub block_cols: usize,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            executors: 6,
            exec_read_bw: 6.0 * 32e9,
            net_bw: 1.25e9, // 10 Gb Ethernet
            local_budget: fusedml_hop::memory::DEFAULT_LOCAL_BUDGET,
            block_cols: 1000,
        }
    }
}

/// Bandwidth constants of the cost model. Defaults follow the paper's
/// nominal per-node peaks; only ratios matter for plan comparisons.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Peak read bandwidth (bytes/s).
    pub read_bw: f64,
    /// Peak write bandwidth (bytes/s).
    pub write_bw: f64,
    /// Peak compute bandwidth (FLOP/s).
    pub compute_bw: f64,
    /// Per-cell dispatch overhead of generated Cell/MAgg/Outer operators in
    /// FLOP-equivalents. The scalar register interpreter paid ~10–20 here;
    /// the tile-vectorized block backend amortizes instruction dispatch over
    /// whole tiles, leaving a small constant (re-measured by
    /// `calibrate::calibrate`) so the optimizer's Gen-vs-Base tradeoff
    /// reflects the faster backend.
    pub fused_dispatch_flops: f64,
    /// Per-row dispatch overhead of generated Row operators in
    /// FLOP-equivalents: the band-lowered row kernel pays its instruction
    /// dispatch once per row (per-row scalar prologue + per-row body
    /// dispatch), not per cell.
    pub row_dispatch_flops: f64,
    /// Distributed configuration (None = single-node only).
    pub dist: Option<DistConfig>,
}

/// Default per-cell dispatch overhead of the block backend (FLOP-equivalents
/// per generated-operator cell).
pub const DEFAULT_FUSED_DISPATCH_FLOPS: f64 = 2.0;

/// Default per-row dispatch overhead of the Row backend (FLOP-equivalents
/// per iterated main-input row).
pub const DEFAULT_ROW_DISPATCH_FLOPS: f64 = 32.0;

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_bw: 32e9,
            write_bw: 16e9,
            compute_bw: 4e9,
            fused_dispatch_flops: DEFAULT_FUSED_DISPATCH_FLOPS,
            row_dispatch_flops: DEFAULT_ROW_DISPATCH_FLOPS,
            dist: None,
        }
    }
}

/// Fixed per-operator dispatch overhead of sharded execution in seconds:
/// channel sends, reply collection, and merge bookkeeping across the shard
/// pool. The local-vs-sharded break-even point this implies (~a few MB of
/// input at 4 shards) is what the plan-choice tests pin.
pub const SHARD_DISPATCH_S: f64 = 40e-6;

impl CostModel {
    /// A model with the distributed backend enabled.
    pub fn with_distributed(dist: DistConfig) -> Self {
        CostModel { dist: Some(dist), ..CostModel::default() }
    }

    /// Estimated wall time of one operator executed locally (paper Eq. 4:
    /// write + max(read, compute), all single-node bandwidths).
    pub fn local_op_seconds(&self, in_bytes: f64, out_bytes: f64, flops: f64) -> f64 {
        out_bytes / self.write_bw + (in_bytes / self.read_bw).max(flops / self.compute_bw)
    }

    /// Estimated wall time of the same operator executed across `shards`
    /// worker shards (Boehm 2017-style): partitioned inputs scan at the
    /// aggregate executor bandwidth, broadcast sides pay the interconnect
    /// once per shard, compute divides across shards, and the driver pays a
    /// fixed dispatch overhead plus the partial-output merge.
    pub fn shard_op_seconds(
        &self,
        dist: &DistConfig,
        part_bytes: f64,
        bcast_bytes: f64,
        out_bytes: f64,
        flops: f64,
        shards: usize,
    ) -> f64 {
        let k = shards.max(1) as f64;
        let scan = part_bytes / dist.exec_read_bw;
        let bcast = bcast_bytes * k / dist.net_bw;
        let compute = flops / (self.compute_bw * k);
        // Partial outputs flow back over the same interconnect and merge at
        // driver write bandwidth (the merge reads k partials, writes one).
        let merge = out_bytes * k / dist.net_bw + out_bytes / self.write_bw;
        SHARD_DISPATCH_S + bcast + scan.max(compute) + merge
    }
}

impl DistConfig {
    /// Cost constants for the in-process shard runtime (`runtime::shard`):
    /// shards are threads in one address space, so "network" transfers are
    /// memcpy-class (an `Arc` clone for broadcasts, buffer copies for
    /// partition slices and partial merges) and executor scan bandwidth is
    /// the shared memory bus. Used both by the planner's local-vs-sharded
    /// choice and by `table6`'s modeled column, so modeled and measured
    /// execution share one estimator.
    pub fn in_process(shards: usize) -> Self {
        DistConfig {
            executors: shards.max(1),
            exec_read_bw: 32e9,
            net_bw: 8e9,
            local_budget: fusedml_hop::memory::DEFAULT_LOCAL_BUDGET,
            block_cols: usize::MAX,
        }
    }
}

/// Per-hop compute workload in FLOPs (sparse-aware: proportional to the
/// estimated non-zeros actually touched).
pub fn compute_costs(dag: &HopDag) -> Vec<f64> {
    dag.iter()
        .map(|h| {
            let out_nnz = h.size.nnz();
            match &h.kind {
                OpKind::Read { .. } | OpKind::Literal { .. } => 0.0,
                OpKind::Unary { op } => out_nnz * unary_weight(*op),
                OpKind::Binary { .. } => out_nnz,
                OpKind::Ternary { .. } => 2.0 * out_nnz,
                OpKind::MatMult => {
                    // FLOPs for (m×k)%*%(k×n): 2·m·k·n scaled by the sparser
                    // input (sparse×dense iterates non-zeros of the sparse).
                    let a = dag.hop(h.inputs[0]);
                    let b = dag.hop(h.inputs[1]);
                    let sp = a.size.sparsity.min(b.size.sparsity).clamp(1e-12, 1.0);
                    2.0 * a.size.rows as f64 * a.size.cols as f64 * b.size.cols as f64 * sp
                }
                OpKind::Transpose => h.size.nnz(),
                OpKind::Agg { .. } => dag.hop(h.inputs[0]).size.nnz(),
                OpKind::CumAgg { .. } => h.size.cells() as f64,
                OpKind::RightIndex { .. } => out_nnz,
                OpKind::CBind | OpKind::RBind => out_nnz,
                OpKind::Diag => h.size.rows as f64,
            }
        })
        .collect()
}

fn unary_weight(op: UnaryOp) -> f64 {
    match op {
        UnaryOp::Exp | UnaryOp::Log | UnaryOp::Sigmoid | UnaryOp::Sqrt => 20.0,
        _ => 1.0,
    }
}

/// A cost vector: the running description of one opened fused operator
/// (paper §4.3 "Cost Computation via Cost Vectors").
#[derive(Clone, Debug)]
pub struct CostVector {
    pub id: u32,
    pub ttype: TemplateType,
    pub out_bytes: f64,
    pub compute: f64,
    /// Distinct inputs: hop → (bytes, sparsity, cells, rows).
    pub inputs: FxHashMap<HopId, (f64, f64, f64, f64)>,
}

impl CostVector {
    fn new(id: u32, ttype: TemplateType, out_bytes: f64) -> Self {
        CostVector { id, ttype, out_bytes, compute: 0.0, inputs: FxHashMap::default() }
    }

    fn add_input(&mut self, dag: &HopDag, h: HopId) {
        let s = dag.hop(h).size;
        self.inputs.insert(h, (s.bytes(), s.sparsity, s.cells() as f64, s.rows as f64));
    }
}

/// The plan-costing engine for one partition under an assignment.
pub struct PlanCoster<'a> {
    pub dag: &'a HopDag,
    pub memo: &'a MemoTable,
    pub part: &'a PlanPartition,
    pub compute: &'a [f64],
    pub model: &'a CostModel,
    /// Interesting points assigned `true` (materialize).
    pub materialized: &'a FxHashSet<InterestingPoint>,
    part_set: FxHashSet<HopId>,
    visited: FxHashSet<(HopId, u32)>,
    next_id: u32,
}

impl<'a> PlanCoster<'a> {
    pub fn new(
        dag: &'a HopDag,
        memo: &'a MemoTable,
        part: &'a PlanPartition,
        compute: &'a [f64],
        model: &'a CostModel,
        materialized: &'a FxHashSet<InterestingPoint>,
    ) -> Self {
        PlanCoster {
            dag,
            memo,
            part,
            compute,
            model,
            materialized,
            part_set: part.nodes.iter().copied().collect(),
            visited: FxHashSet::default(),
            next_id: 1,
        }
    }

    /// Costs the partition under the assignment; aborts early returning
    /// `f64::INFINITY` once the running cost exceeds `upper_bound` (partial
    /// costing, paper §4.4).
    pub fn partition_cost(mut self, upper_bound: f64) -> f64 {
        let mut total = 0.0;
        for &root in &self.part.roots {
            total += self.r_cost(root, &mut None);
            if total >= upper_bound {
                return f64::INFINITY;
            }
        }
        total
    }

    /// Picks the best valid memo entry at `hop`; see [`pick_best_entry`].
    pub fn pick_best(&self, hop: HopId, current: Option<TemplateType>) -> Option<MemoEntry> {
        pick_best_entry(self.memo, hop, current, self.materialized)
    }

    fn r_cost(&mut self, hop: HopId, current: &mut Option<CostVector>) -> f64 {
        let tag = (hop, current.as_ref().map(|c| c.id).unwrap_or(0));
        if !self.visited.insert(tag) {
            return 0.0;
        }
        let cur_type = current.as_ref().map(|c| c.ttype);
        let in_part = self.part_set.contains(&hop);
        let best = if in_part { self.pick_best(hop, cur_type) } else { None };
        let opened = cur_type.is_none();

        // The cost vector this hop contributes to.
        let mut fresh: Option<CostVector> = None;
        let cv: &mut Option<CostVector> = if opened {
            if let Some(b) = &best {
                let out_bytes = self.dag.hop(hop).size.bytes();
                fresh = Some(CostVector::new(self.next_id, b.ttype, out_bytes));
                self.next_id += 1;
            }
            &mut fresh // stays None for basic operators
        } else {
            current
        };

        // Add this operator's compute workload (skipping transposes fused
        // into Row operators, which read rows directly).
        if in_part {
            if let Some(v) = cv.as_mut() {
                let skip =
                    v.ttype == TemplateType::Row && self.dag.hop(hop).kind == OpKind::Transpose;
                if !skip {
                    v.compute += self.compute[hop.index()];
                }
            }
        }

        // Children.
        let inputs = self.dag.hop(hop).inputs.clone();
        let mut costs = 0.0;
        for (j, &input) in inputs.iter().enumerate() {
            let fused = best.as_ref().is_some_and(|b| b.inputs[j].is_fused());
            if fused {
                costs += self.r_cost(input, cv);
            } else {
                if self.part_set.contains(&input) {
                    costs += self.r_cost(input, &mut None);
                }
                if let Some(v) = cv.as_mut() {
                    if !self.dag.hop(input).is_scalar() {
                        v.add_input(self.dag, input);
                    }
                } else if opened {
                    // Basic operator input: charged in basic_cost below.
                }
            }
        }

        if opened {
            costs += match fresh {
                Some(v) => self.close_cost(&v),
                None => self.basic_cost(hop, in_part),
            };
        }
        costs
    }

    /// Eq. (4) contribution of a closed fused operator.
    fn close_cost(&self, v: &CostVector) -> f64 {
        let mut compute = v.compute;
        let max_cells = v.inputs.values().map(|&(_, _, c, _)| c).fold(0.0f64, f64::max);
        // The driver (main) input: the largest bound matrix. Its sparsity
        // and row count steer sparsity exploitation and per-row overheads.
        let driver_sp = v
            .inputs
            .values()
            .filter(|&&(_, _, c, _)| c >= 0.5 * max_cells)
            .map(|&(_, sp, _, _)| sp)
            .fold(1.0f64, f64::min);
        let driver_rows = v
            .inputs
            .values()
            .filter(|&&(_, _, c, _)| c >= 0.5 * max_cells)
            .map(|&(_, _, _, r)| r)
            .fold(0.0f64, f64::max);
        let iter_cells = match v.ttype {
            // Sparsity exploitation: Outer operators iterate non-zeros of
            // the sparse driver. The covered `UVᵀ` product is estimated
            // dense by `compute_costs`, so the driver's sparsity is the
            // correction for computing it at non-zero positions only.
            TemplateType::Outer => {
                compute *= driver_sp;
                max_cells * driver_sp
            }
            // Row operators execute sparse main rows over their non-zeros
            // (sparse-aware band execution). Per-hop compute is already
            // nnz-proportional for everything a Row template covers
            // (element-wise, matmult, agg), so no extra sparsity factor —
            // only the per-row instruction dispatch, paid once per row,
            // not per cell.
            TemplateType::Row => {
                compute += self.model.row_dispatch_flops * driver_rows;
                max_cells
            }
            _ => max_cells,
        };
        // Per-cell dispatch overhead of the generated operator's register
        // program (Cell/MAgg/Outer evaluate it per iterated tile cell).
        if v.ttype != TemplateType::Row {
            compute += self.model.fused_dispatch_flops * iter_cells;
        }
        let t_c = compute / self.model.compute_bw;
        self.io_cost(v.out_bytes, v.inputs.values().map(|&(b, _, _, _)| b), t_c)
    }

    /// Eq. (4) contribution of a basic (unfused) operator. Compute is
    /// charged regardless of partition membership: basic operators always
    /// run exactly once.
    fn basic_cost(&self, hop: HopId, in_part: bool) -> f64 {
        let _ = in_part;
        let h = self.dag.hop(hop);
        if h.kind.is_leaf() {
            return 0.0;
        }
        let t_c = self.compute[hop.index()] / self.model.compute_bw;
        let inputs: Vec<f64> = h.inputs.iter().map(|&i| self.dag.hop(i).size.bytes()).collect();
        self.io_cost(h.size.bytes(), inputs.into_iter(), t_c)
    }

    /// `T̂w + max(T̂r, T̂c)` with local/distributed bandwidth selection.
    fn io_cost(&self, out_bytes: f64, inputs: impl Iterator<Item = f64>, t_c: f64) -> f64 {
        let inputs: Vec<f64> = inputs.collect();
        let max_in = inputs.iter().copied().fold(0.0f64, f64::max);
        match self.model.dist {
            Some(d) if max_in > d.local_budget => {
                // Distributed operator: large inputs scan at aggregate
                // bandwidth; small inputs are broadcast to every executor.
                let mut t_r = 0.0;
                for b in &inputs {
                    if *b > d.local_budget {
                        t_r += b / d.exec_read_bw;
                    } else {
                        t_r += b * d.executors as f64 / d.net_bw;
                    }
                }
                let t_w = if out_bytes > d.local_budget {
                    out_bytes / (d.exec_read_bw / 2.0)
                } else {
                    // Collect to the driver.
                    out_bytes * d.executors as f64 / d.net_bw / d.executors as f64
                        + out_bytes / self.model.write_bw
                };
                let t_c_dist = t_c / d.executors as f64;
                t_w + t_r.max(t_c_dist)
            }
            _ => {
                let t_r: f64 = inputs.iter().sum::<f64>() / self.model.read_bw;
                let t_w = out_bytes / self.model.write_bw;
                t_w + t_r.max(t_c)
            }
        }
    }
}

/// Picks the best valid memo entry at `hop` (paper: query the memo table
/// "for the best fusion plan regarding template type and fusion
/// references"): maximal references first, then template preference.
/// Entries referencing a materialized interesting point are invalid and
/// ignored (paper §4.2); `current` restricts to merge-compatible types when
/// extending an open operator.
pub fn pick_best_entry(
    memo: &MemoTable,
    hop: HopId,
    current: Option<TemplateType>,
    materialized: &FxHashSet<InterestingPoint>,
) -> Option<MemoEntry> {
    let mut best: Option<&MemoEntry> = None;
    for e in memo.entries(hop) {
        let type_ok = match current {
            None => true,
            Some(t) => t.merge_compatible(e.ttype),
        };
        let valid = e
            .refs()
            .all(|r| !materialized.contains(&InterestingPoint { consumer: hop, target: r }));
        if !type_ok || !valid {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                (e.ref_count(), e.ttype.preference()) > (b.ref_count(), b.ttype.preference())
            }
        };
        if better {
            best = Some(e);
        }
    }
    best.cloned()
}

/// The components of a partition's static lower bound (paper §4.4).
#[derive(Clone, Copy, Debug)]
pub struct StaticCosts {
    /// Writing the partition roots (seconds).
    pub root_writes: f64,
    /// Reading every partition input once (seconds).
    pub input_reads: f64,
    /// Minimal computation with maximal sparsity exploitation (seconds).
    pub min_compute: f64,
}

impl StaticCosts {
    /// Combines with per-assignment materialization costs into a sound
    /// lower bound on Eq. (4):
    ///
    /// `Σ_p (T̂w + max(T̂r, T̂c)) ≥ (root + mat writes) +
    ///  max(input reads + mat reads, min compute)`
    ///
    /// The materialization *reads* must stay inside the max — a
    /// compute-bound plan overlaps them with computation.
    pub fn lower_bound(&self, mat_writes: f64, mat_reads: f64) -> f64 {
        self.root_writes + mat_writes + (self.input_reads + mat_reads).max(self.min_compute)
    }
}

/// Computes the static lower-bound components: reading partition inputs
/// once, minimal computation, and writing partition roots.
pub fn static_parts(
    dag: &HopDag,
    part: &PlanPartition,
    compute: &[f64],
    model: &CostModel,
) -> StaticCosts {
    let input_reads: f64 =
        part.inputs.iter().map(|&i| dag.hop(i).size.bytes()).sum::<f64>() / model.read_bw;
    // Minimal compute assumes maximal sparsity exploitation: a
    // sparsity-exploiting operator (Outer, sparse-aware Row) scales its
    // whole compute by its driver's sparsity, so the sound per-node factor
    // is the minimum sparsity over everything the partition touches.
    let min_sp = part
        .nodes
        .iter()
        .chain(part.inputs.iter())
        .map(|&n| dag.hop(n).size.sparsity)
        .fold(1.0f64, f64::min)
        .clamp(0.0, 1.0);
    let min_compute: f64 =
        part.nodes.iter().map(|&n| compute[n.index()] * min_sp).sum::<f64>() / model.compute_bw;
    let root_writes: f64 =
        part.roots.iter().map(|&r| dag.hop(r).size.bytes()).sum::<f64>() / model.write_bw;
    StaticCosts { root_writes, input_reads, min_compute }
}

/// Convenience: the assignment-independent part of the lower bound.
pub fn static_costs(dag: &HopDag, part: &PlanPartition, compute: &[f64], model: &CostModel) -> f64 {
    static_parts(dag, part, compute, model).lower_bound(0.0, 0.0)
}

/// Minimal materialization costs of an assignment (`getMPCost`): every
/// distinct materialized target requires at least one write and one read.
/// Returns `(write_seconds, read_seconds)` so the lower bound can overlap
/// the reads with computation.
pub fn mp_cost(
    dag: &HopDag,
    points: &[InterestingPoint],
    assignment: &[bool],
    model: &CostModel,
) -> (f64, f64) {
    let mut seen: FxHashSet<HopId> = FxHashSet::default();
    let (mut w, mut r) = (0.0, 0.0);
    for (p, &on) in points.iter().zip(assignment) {
        if on && seen.insert(p.target) {
            let b = dag.hop(p.target).size.bytes();
            w += b / model.write_bw;
            r += b / model.read_bw;
        }
    }
    (w, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::opt::partition::partitions;
    use fusedml_hop::DagBuilder;

    fn cost_of(
        dag: &HopDag,
        memo: &MemoTable,
        part: &PlanPartition,
        materialized: &FxHashSet<InterestingPoint>,
    ) -> f64 {
        let compute = compute_costs(dag);
        let model = CostModel::default();
        PlanCoster::new(dag, memo, part, &compute, &model, materialized)
            .partition_cost(f64::INFINITY)
    }

    /// Fusing `sum(X⊙Y⊙Z)` must be cheaper than materializing intermediates.
    #[test]
    fn fusion_beats_materialization_for_cell_chain() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let z = b.read("Z", 1000, 1000, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        assert_eq!(parts.len(), 1);
        let fuse_all = FxHashSet::default();
        let c_fused = cost_of(&dag, &memo, &parts[0], &fuse_all);
        // Materialize the m1→m2 edge — but it is not an interesting point
        // here (single consumer); instead compare against an empty memo
        // (pure base execution).
        let empty = MemoTable::new();
        let c_base = cost_of(&dag, &empty, &parts[0], &fuse_all);
        assert!(c_fused < c_base * 0.8, "fused {c_fused} must beat base {c_base} clearly");
    }

    /// Redundant compute appears when a shared intermediate is fused into
    /// two consumers, and disappears when materialized.
    #[test]
    fn shared_intermediate_costs_reflect_redundancy() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2000, 2000, 1.0);
        let y = b.read("Y", 2000, 2000, 1.0);
        let shared = b.exp(x); // expensive unary
        let p1 = b.mult(shared, y);
        let s1 = b.sum(p1);
        let p2 = b.mult(shared, x);
        let s2 = b.sum(p2);
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        assert_eq!(parts.len(), 1);
        let part = &parts[0];
        // Find the interesting points for the shared node's consumer edges.
        let shared_pts: Vec<InterestingPoint> =
            part.interesting.iter().copied().filter(|p| p.target == shared).collect();
        assert_eq!(shared_pts.len(), 2);
        let fuse_all = FxHashSet::default();
        let c_redundant = cost_of(&dag, &memo, part, &fuse_all);
        let materialize: FxHashSet<InterestingPoint> = shared_pts.into_iter().collect();
        let c_materialized = cost_of(&dag, &memo, part, &materialize);
        // exp is compute-heavy: computing it twice must cost more than one
        // materialize + two reads.
        assert!(
            c_materialized < c_redundant,
            "materialized {c_materialized} vs redundant {c_redundant}"
        );
    }

    /// Outer-template sparsity exploitation: the same expression over a
    /// sparse driver costs far less than over a dense driver.
    #[test]
    fn outer_sparsity_scales_compute() {
        let build = |sp: f64| {
            let mut b = DagBuilder::new();
            let x = b.read("X", 20_000, 20_000, sp);
            let u = b.read("U", 20_000, 100, 1.0);
            let v = b.read("V", 20_000, 100, 1.0);
            let vt = b.t(v);
            let uvt = b.mm(u, vt);
            let prod = b.mult(x, uvt);
            let s = b.sum(prod);
            b.build(vec![s])
        };
        let cost = |dag: &HopDag| {
            let memo = explore(dag);
            let parts = partitions(dag, &memo);
            // Pick the partition holding the main expression (largest).
            let part = parts.iter().max_by_key(|p| p.nodes.len()).unwrap();
            let fuse_all = FxHashSet::default();
            cost_of(dag, &memo, part, &fuse_all)
        };
        let sparse = build(0.001);
        let dense = build(1.0);
        let c_sparse = cost(&sparse);
        let c_dense = cost(&dense);
        assert!(
            c_sparse * 20.0 < c_dense,
            "sparse driver {c_sparse} must be ≫ cheaper than dense {c_dense}"
        );
    }

    /// Row-template sparsity exploitation: the mv-chain over a sparse main
    /// must cost far less than over a dense main (the band-lowered Row
    /// backend iterates non-zeros), and the per-row dispatch overhead must
    /// be visible for row-heavy shapes.
    #[test]
    fn row_sparsity_scales_compute() {
        let build = |sp: f64| {
            let mut b = DagBuilder::new();
            let x = b.read("X", 100_000, 1_000, sp);
            let v = b.read("v", 1_000, 1, 1.0);
            let xv = b.mm(x, v);
            let xt = b.t(x);
            let out = b.mm(xt, xv);
            b.build(vec![out])
        };
        let cost = |dag: &HopDag| {
            let memo = explore(dag);
            let parts = partitions(dag, &memo);
            let part = parts.iter().max_by_key(|p| p.nodes.len()).unwrap();
            let fuse_all = FxHashSet::default();
            cost_of(dag, &memo, part, &fuse_all)
        };
        let c_sparse = cost(&build(0.01));
        let c_dense = cost(&build(1.0));
        assert!(
            c_sparse * 5.0 < c_dense,
            "sparse row driver {c_sparse} must be ≫ cheaper than dense {c_dense}"
        );
        // The per-row overhead term responds to the model constant.
        let dag = build(0.01);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        let part = parts.iter().max_by_key(|p| p.nodes.len()).unwrap();
        let compute = compute_costs(&dag);
        let fuse_all = FxHashSet::default();
        let cheap = CostModel { row_dispatch_flops: 0.0, ..CostModel::default() };
        let heavy = CostModel { row_dispatch_flops: 10_000.0, ..CostModel::default() };
        let c_cheap = PlanCoster::new(&dag, &memo, part, &compute, &cheap, &fuse_all)
            .partition_cost(f64::INFINITY);
        let c_heavy = PlanCoster::new(&dag, &memo, part, &compute, &heavy, &fuse_all)
            .partition_cost(f64::INFINITY);
        assert!(c_heavy > c_cheap, "per-row dispatch overhead must be visible");
    }

    /// Distributed operators charge broadcast costs for small side inputs.
    #[test]
    fn distributed_broadcast_costs_vectors() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 50_000_000, 100, 1.0); // 40 GB — distributed
        let v = b.read("v", 50_000_000, 1, 1.0); // 400 MB vector
        let m = b.mult(x, v);
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        let part = parts.iter().max_by_key(|p| p.nodes.len()).unwrap();
        let compute = compute_costs(&dag);
        let fuse_all = FxHashSet::default();
        let local_model = CostModel::default();
        let dist_model = CostModel::with_distributed(DistConfig::default());
        let c_local = PlanCoster::new(&dag, &memo, part, &compute, &local_model, &fuse_all)
            .partition_cost(f64::INFINITY);
        let c_dist = PlanCoster::new(&dag, &memo, part, &compute, &dist_model, &fuse_all)
            .partition_cost(f64::INFINITY);
        // The broadcast of the 400 MB vector to 6 executors over 1.25 GB/s
        // must be visible in the distributed cost.
        assert!(c_dist != c_local);
        assert!(c_dist > 0.4e9 * 6.0 / 1.25e9 * 0.5, "broadcast term present: {c_dist}");
    }

    #[test]
    fn static_and_mp_costs_are_lower_bounds() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let shared = b.mult(x, y);
        let e1 = b.exp(shared);
        let s1 = b.sum(e1);
        let sq = b.sq(shared);
        let s2 = b.sum(sq);
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        let part = &parts[0];
        let compute = compute_costs(&dag);
        let model = CostModel::default();
        let stat = static_parts(&dag, part, &compute, &model);
        for assignment in [vec![false; part.interesting.len()], vec![true; part.interesting.len()]]
        {
            let mat: FxHashSet<InterestingPoint> = part
                .interesting
                .iter()
                .zip(&assignment)
                .filter(|(_, &on)| on)
                .map(|(p, _)| *p)
                .collect();
            let (mw, mr) = mp_cost(&dag, &part.interesting, &assignment, &model);
            let lb = stat.lower_bound(mw, mr);
            let actual = PlanCoster::new(&dag, &memo, part, &compute, &model, &mat)
                .partition_cost(f64::INFINITY);
            assert!(lb <= actual * 1.0001, "lower bound {lb} must not exceed actual {actual}");
        }
    }
}
