//! Candidate selection (paper §4): plan partitions, interesting points, the
//! analytical cost model, the `MPSkipEnum` enumeration algorithm, and the
//! fuse-all / fuse-no-redundancy heuristics.

pub mod calibrate;
pub mod cost;
pub mod enumerate;
pub mod heuristics;
pub mod partition;
pub mod select;

pub use calibrate::calibrate;
pub use cost::{CostModel, DistConfig};
pub use enumerate::{mpskip_enum, EnumConfig, EnumResult};
pub use partition::{partitions, InterestingPoint, PlanPartition};
pub use select::{select_plans, SelectionPolicy};
