//! `MPSkipEnum` — materialization-point skip enumeration (paper §4.4,
//! Algorithm 2, Figure 7).
//!
//! The exponential space of 2^|M′| materialization assignments is
//! linearized from negative to positive (fuse-all first, yielding a tight
//! initial upper bound), scanned with cost-based skip-ahead over subtrees
//! whose lower bound exceeds the best known plan, and decomposed into
//! independent sub-problems at valid cut sets of the reachability graph
//! (structural pruning).

use crate::memo::MemoTable;
use crate::opt::cost::{self, CostModel, PlanCoster};
use crate::opt::partition::{InterestingPoint, PlanPartition};
use crate::util::FxHashSet;
use fusedml_hop::{HopDag, HopId};

/// Enumeration configuration (the Figure 12 ablation switches).
#[derive(Clone, Copy, Debug)]
pub struct EnumConfig {
    /// Cost-based pruning with lower bounds and skip-ahead.
    pub cost_prune: bool,
    /// Structural pruning via cut sets of the reachability graph.
    pub structural_prune: bool,
    /// Safety cap on costed plans (enumeration returns the best plan found
    /// so far once exceeded; `u64::MAX` disables).
    pub max_eval: u64,
}

impl Default for EnumConfig {
    fn default() -> Self {
        // The cap bounds worst-case optimization time on very wide DAGs
        // (SystemML similarly bounds its search space and falls back to the
        // best plan found); partitions with <= 15 interesting points still
        // enumerate exactly.
        EnumConfig { cost_prune: true, structural_prune: true, max_eval: 32_768 }
    }
}

/// Result of one partition enumeration.
#[derive(Clone, Debug)]
pub struct EnumResult {
    /// Best assignment over the partition's interesting points (in
    /// `part.interesting` order).
    pub assignment: Vec<bool>,
    /// Cost of the best plan.
    pub cost: f64,
    /// Number of plans actually costed.
    pub evaluated: u64,
    /// Size of the full search space (2^|M′|).
    pub search_space: f64,
}

/// Enumerates the optimal assignment for one partition.
pub fn mpskip_enum(
    dag: &HopDag,
    memo: &MemoTable,
    part: &PlanPartition,
    compute: &[f64],
    model: &CostModel,
    cfg: &EnumConfig,
) -> EnumResult {
    // Order: cut-set points first (structural pruning), then the rest.
    let (order, cutset) = if cfg.structural_prune {
        plan_order(dag, part)
    } else {
        ((0..part.interesting.len()).collect(), None)
    };
    let mut state = EnumState {
        dag,
        memo,
        part,
        compute,
        model,
        cfg,
        evaluated: 0,
        static_cost: cost::static_parts(dag, part, compute, model),
    };
    let best = state.enumerate(&order, cutset.as_ref(), &[]);
    let mut assignment = vec![false; part.interesting.len()];
    for (&pt_ix, &on) in order.iter().zip(best.0.iter()) {
        assignment[pt_ix] = on;
    }
    EnumResult {
        assignment,
        cost: best.1,
        evaluated: state.evaluated,
        search_space: 2f64.powi(part.interesting.len() as i32),
    }
}

/// A cut set over point indices (into `part.interesting`) with its
/// sub-problems.
#[derive(Clone, Debug)]
struct CutSet {
    /// Positions (in the enumeration `order`) forming the cut set — always a
    /// prefix of the order by construction.
    len: usize,
    /// Sub-problem point positions (in `order`, relative to the suffix).
    s1: Vec<usize>,
    s2: Vec<usize>,
}

struct EnumState<'a> {
    dag: &'a HopDag,
    memo: &'a MemoTable,
    part: &'a PlanPartition,
    compute: &'a [f64],
    model: &'a CostModel,
    cfg: &'a EnumConfig,
    evaluated: u64,
    static_cost: cost::StaticCosts,
}

impl<'a> EnumState<'a> {
    /// Costs one assignment (given in `order` space along with any fixed
    /// points), with partial-costing abort at `upper`.
    fn cost_assignment(
        &mut self,
        order: &[usize],
        q: &[bool],
        fixed: &[(usize, bool)],
        upper: f64,
    ) -> f64 {
        let mut materialized: FxHashSet<InterestingPoint> = FxHashSet::default();
        for (&pt_ix, &on) in order.iter().zip(q.iter()) {
            if on {
                materialized.insert(self.part.interesting[pt_ix]);
            }
        }
        for &(pt_ix, on) in fixed {
            if on {
                materialized.insert(self.part.interesting[pt_ix]);
            }
        }
        self.evaluated += 1;
        PlanCoster::new(self.dag, self.memo, self.part, self.compute, self.model, &materialized)
            .partition_cost(upper)
    }

    /// The core linearized scan with skip-ahead (Algorithm 2). `fixed`
    /// carries assignments of points outside `order` (used by recursive
    /// sub-problem calls). Returns (assignment in `order` space, cost).
    fn enumerate(
        &mut self,
        order: &[usize],
        cutset: Option<&CutSet>,
        fixed: &[(usize, bool)],
    ) -> (Vec<bool>, f64) {
        let len = order.len();
        let mut best_q = vec![false; len];
        let mut best_c = f64::INFINITY;
        if len == 0 {
            let c = self.cost_assignment(order, &[], fixed, f64::INFINITY);
            return (best_q, c);
        }
        if len >= 63 {
            // Degenerate safeguard: fall back to fuse-all (practically
            // unreachable thanks to partitioning).
            let c = self.cost_assignment(order, &best_q, fixed, f64::INFINITY);
            return (best_q, c);
        }
        let total: u64 = 1u64 << len;
        let mut j: u64 = 0;
        while j < total {
            if self.evaluated >= self.cfg.max_eval {
                break;
            }
            // createAssignment: bit (len-1-i) of j drives point i, so j=0 is
            // fuse-all and increments flip from the back.
            let q: Vec<bool> = (0..len).map(|i| (j >> (len - 1 - i)) & 1 == 1).collect();

            // Structural pruning via cut-set decomposition (lines 6-10).
            if let Some(cs) = cutset {
                let cs_all_true = q[..cs.len].iter().all(|&b| b);
                let rest_all_false = q[cs.len..].iter().all(|&b| !b);
                if cs_all_true && rest_all_false && !cs.s1.is_empty() && !cs.s2.is_empty() {
                    let mut combined = q.clone();
                    let cs_fixed: Vec<(usize, bool)> = order[..cs.len]
                        .iter()
                        .map(|&p| (p, true))
                        .chain(fixed.iter().copied())
                        .collect();
                    // Solve the sub-problems independently (no nested
                    // structural pruning, as in the paper: RG = null).
                    let s1_order: Vec<usize> = cs.s1.iter().map(|&i| order[i]).collect();
                    let s2_order: Vec<usize> = cs.s2.iter().map(|&i| order[i]).collect();
                    let (q1, _) = self.enumerate(&s1_order, None, &cs_fixed);
                    let (q2, _) = self.enumerate(&s2_order, None, &cs_fixed);
                    for (k, &i) in cs.s1.iter().enumerate() {
                        combined[i] = q1[k];
                    }
                    for (k, &i) in cs.s2.iter().enumerate() {
                        combined[i] = q2[k];
                    }
                    let c = self.cost_assignment(order, &combined, fixed, best_c);
                    if c < best_c {
                        best_c = c;
                        best_q = combined;
                    }
                    // Skip the whole subtree below the cut set.
                    j += (1u64 << (len - cs.len)).saturating_sub(1);
                    j += 1;
                    continue;
                }
            }

            // Cost-based pruning (lines 11-15).
            if self.cfg.cost_prune && j > 0 {
                let (mw, mr) = mp_cost_ordered(self.dag, self.part, order, &q, fixed, self.model);
                let lb = self.static_cost.lower_bound(mw, mr);
                if lb >= best_c {
                    let x = q.iter().rposition(|&b| b).unwrap_or(0);
                    let skip = 1u64 << (len - x - 1);
                    j += skip.saturating_sub(1);
                    j += 1;
                    continue;
                }
            }

            let c = self.cost_assignment(order, &q, fixed, best_c);
            if c < best_c {
                best_c = c;
                best_q = q;
            }
            j += 1;
        }
        (best_q, best_c)
    }
}

/// `getMPCost` over an order-space assignment plus fixed points; returns
/// `(write_seconds, read_seconds)`.
fn mp_cost_ordered(
    dag: &HopDag,
    part: &PlanPartition,
    order: &[usize],
    q: &[bool],
    fixed: &[(usize, bool)],
    model: &CostModel,
) -> (f64, f64) {
    let mut seen: FxHashSet<HopId> = FxHashSet::default();
    let (mut w, mut r) = (0.0, 0.0);
    let mut add = |pt: InterestingPoint| {
        if seen.insert(pt.target) {
            let b = dag.hop(pt.target).size.bytes();
            w += b / model.write_bw;
            r += b / model.read_bw;
        }
    };
    for (&ix, &on) in order.iter().zip(q.iter()) {
        if on {
            add(part.interesting[ix]);
        }
    }
    for &(ix, on) in fixed {
        if on {
            add(part.interesting[ix]);
        }
    }
    (w, r)
}

/// Builds the enumeration order: the best-scoring valid cut set first (if
/// any), then all remaining points. Returns (order, cutset).
fn plan_order(dag: &HopDag, part: &PlanPartition) -> (Vec<usize>, Option<CutSet>) {
    let n = part.interesting.len();
    let default: Vec<usize> = (0..n).collect();
    if n < 3 {
        return (default, None);
    }
    // Candidates: composite points per distinct target (single points are
    // the 1-element case); plus non-overlapping pairs of those composites.
    let mut targets: Vec<HopId> = part.interesting.iter().map(|p| p.target).collect();
    targets.sort_unstable();
    targets.dedup();
    let composite =
        |t: HopId| -> Vec<usize> { (0..n).filter(|&i| part.interesting[i].target == t).collect() };
    let mut candidates: Vec<Vec<usize>> = targets.iter().map(|&t| composite(t)).collect();
    let pairs: Vec<Vec<usize>> = {
        let mut v = Vec::new();
        for i in 0..targets.len() {
            for k in i + 1..targets.len() {
                let mut c = composite(targets[i]);
                c.extend(composite(targets[k]));
                v.push(c);
            }
        }
        v
    };
    candidates.extend(pairs);

    // (score, cutset, left split, right split)
    type BestSplit = (f64, Vec<usize>, Vec<usize>, Vec<usize>);
    let mut best: Option<BestSplit> = None;
    for cs in candidates {
        if cs.len() >= n {
            continue;
        }
        if let Some((s1, s2)) = split_by_cutset(dag, part, &cs) {
            if s1.is_empty() || s2.is_empty() {
                continue;
            }
            // Eq. (5): (2^|cs|-1)/2^|cs| · 2^|M'| + 1/2^|cs| · (2^|S1|+2^|S2|)
            let p_cs = 2f64.powi(cs.len() as i32);
            let score = (p_cs - 1.0) / p_cs * 2f64.powi(n as i32)
                + (2f64.powi(s1.len() as i32) + 2f64.powi(s2.len() as i32)) / p_cs;
            if best.as_ref().is_none_or(|(b, ..)| score < *b) {
                best = Some((score, cs, s1, s2));
            }
        }
    }
    match best {
        None => (default, None),
        Some((_, cs, s1, s2)) => {
            // Order: cut set, then S1, then S2 (relative positions recorded).
            let mut order: Vec<usize> = cs.clone();
            let s1_pos: Vec<usize> = (0..s1.len()).map(|k| cs.len() + k).collect();
            order.extend(s1.iter().copied());
            let s2_pos: Vec<usize> = (0..s2.len()).map(|k| cs.len() + s1.len() + k).collect();
            order.extend(s2.iter().copied());
            let cut = CutSet { len: cs.len(), s1: s1_pos, s2: s2_pos };
            (order, Some(cut))
        }
    }
}

/// Checks whether materializing `cs` splits the remaining points into
/// root-side (S1) and descendant-side (S2) sets with `S1 ∩ S2 = ∅`
/// (Figure 7(b)). Returns point indices into `part.interesting`.
fn split_by_cutset(
    dag: &HopDag,
    part: &PlanPartition,
    cs: &[usize],
) -> Option<(Vec<usize>, Vec<usize>)> {
    let part_set: FxHashSet<HopId> = part.nodes.iter().copied().collect();
    let cut_targets: FxHashSet<HopId> = cs.iter().map(|&i| part.interesting[i].target).collect();
    // S1: nodes reachable from partition roots without descending through
    // cut targets.
    let mut top: FxHashSet<HopId> = FxHashSet::default();
    let mut stack: Vec<HopId> = part.roots.clone();
    while let Some(h) = stack.pop() {
        if !part_set.contains(&h) || !top.insert(h) {
            continue;
        }
        if cut_targets.contains(&h) {
            continue; // do not descend through the cut
        }
        stack.extend(dag.hop(h).inputs.iter().copied());
    }
    // S2: nodes reachable strictly below the cut targets.
    let mut bottom: FxHashSet<HopId> = FxHashSet::default();
    let mut stack: Vec<HopId> =
        cut_targets.iter().flat_map(|&t| dag.hop(t).inputs.clone()).collect();
    while let Some(h) = stack.pop() {
        if !part_set.contains(&h) || !bottom.insert(h) {
            continue;
        }
        stack.extend(dag.hop(h).inputs.iter().copied());
    }
    // The decomposition is only sound if the two sides share no nodes
    // beyond the cut itself: a node reachable both from the roots around
    // the cut and from below it couples the sides through redundant-compute
    // and shared-read effects (S1 ∩ S2 = ∅, paper §4.4).
    if top.iter().any(|h| !cut_targets.contains(h) && bottom.contains(h)) {
        return None;
    }
    let cs_set: FxHashSet<usize> = cs.iter().copied().collect();
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    for i in 0..part.interesting.len() {
        if cs_set.contains(&i) {
            continue;
        }
        let p = part.interesting[i];
        let in_top = top.contains(&p.consumer)
            && !cut_targets.contains(&p.target)
            && top.contains(&p.target);
        let in_bottom = bottom.contains(&p.consumer)
            || (bottom.contains(&p.target) && !top.contains(&p.consumer));
        match (in_top, in_bottom) {
            (true, false) => s1.push(i),
            (false, true) => s2.push(i),
            // Overlap or unreachable: not a valid cut.
            _ => return None,
        }
    }
    Some((s1, s2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::explore;
    use crate::opt::cost::compute_costs;
    use crate::opt::partition::partitions;
    use fusedml_hop::DagBuilder;

    /// A DAG with a genuine materialization decision: expensive shared
    /// intermediate consumed twice.
    fn shared_dag() -> HopDag {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2000, 2000, 1.0);
        let y = b.read("Y", 2000, 2000, 1.0);
        let shared = b.exp(x);
        let p1 = b.mult(shared, y);
        let s1 = b.sum(p1);
        let p2 = b.mult(shared, x);
        let s2 = b.sum(p2);
        b.build(vec![s1, s2])
    }

    fn run(dag: &HopDag, cfg: EnumConfig) -> (EnumResult, usize) {
        let memo = explore(dag);
        let parts = partitions(dag, &memo);
        let part = parts.iter().max_by_key(|p| p.nodes.len()).unwrap();
        let compute = compute_costs(dag);
        let model = CostModel::default();
        let r = mpskip_enum(dag, &memo, part, &compute, &model, &cfg);
        (r, part.interesting.len())
    }

    #[test]
    fn exhaustive_and_pruned_agree_on_optimum() {
        let dag = shared_dag();
        let (full, n) = run(
            &dag,
            EnumConfig { cost_prune: false, structural_prune: false, max_eval: u64::MAX },
        );
        let (pruned, _) = run(&dag, EnumConfig::default());
        assert!(n >= 2);
        assert_eq!(full.evaluated, 1 << n, "exhaustive costs every plan");
        assert!(
            (full.cost - pruned.cost).abs() <= 1e-9 * full.cost.max(1.0),
            "pruning must preserve the optimum: {} vs {}",
            full.cost,
            pruned.cost
        );
        assert!(pruned.evaluated <= full.evaluated);
    }

    #[test]
    fn optimal_plan_materializes_expensive_shared_node() {
        let dag = shared_dag();
        let (r, _) = run(
            &dag,
            EnumConfig { cost_prune: false, structural_prune: false, max_eval: u64::MAX },
        );
        // exp(X) over 2000² with weight 20 is compute-dominant; computing it
        // twice is worse than materializing. The best plan must set at least
        // one materialization bit on the shared node's edges.
        assert!(r.assignment.iter().any(|&b| b), "best plan materializes: {:?}", r.assignment);
    }

    #[test]
    fn fuse_all_is_optimal_without_sharing() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let z = b.read("Z", 1000, 1000, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        let (r, _) = run(&dag, EnumConfig::default());
        assert!(r.assignment.iter().all(|&b| !b), "no reason to materialize");
    }

    #[test]
    fn cost_pruning_reduces_evaluated_plans() {
        // Cheap compute, huge shared intermediates: materializing is
        // clearly bad, so lower bounds prune most of the search space.
        let mut b = DagBuilder::new();
        let x = b.read("X", 4000, 4000, 1.0);
        let y = b.read("Y", 4000, 4000, 1.0);
        let s1 = b.abs(x);
        let s2 = b.sq(y);
        let m1 = b.mult(s1, s2);
        let m2 = b.mult(s1, y);
        let m3 = b.mult(s2, x);
        let t1 = b.sum(m1);
        let t2 = b.sum(m2);
        let t3 = b.sum(m3);
        let dag = b.build(vec![t1, t2, t3]);
        let (full, n) = run(
            &dag,
            EnumConfig { cost_prune: false, structural_prune: false, max_eval: u64::MAX },
        );
        let (pruned, _) =
            run(&dag, EnumConfig { cost_prune: true, structural_prune: false, max_eval: u64::MAX });
        assert!(n >= 3, "need a real search space, got {n}");
        assert!(
            pruned.evaluated < full.evaluated,
            "pruning must skip plans: {} vs {}",
            pruned.evaluated,
            full.evaluated
        );
        assert!((full.cost - pruned.cost).abs() <= 1e-9 * full.cost.max(1.0));
    }

    #[test]
    fn max_eval_caps_work() {
        let dag = shared_dag();
        let (r, _) =
            run(&dag, EnumConfig { cost_prune: false, structural_prune: false, max_eval: 2 });
        assert!(r.evaluated <= 2);
        assert!(r.cost.is_finite());
    }
}
