//! Code generation: CPlan → rendered operator source + compiled register
//! program (paper §2.1 step 4; DESIGN.md substitution X1).
//!
//! Two compiler backends model the paper's janino/javac comparison
//! (Figure 11): [`CompilerBackend::Janino`] compiles the register program
//! directly from the CPlan; [`CompilerBackend::Javac`] additionally renders
//! the operator source, tokenizes and validates it, re-builds the program
//! from scratch in multiple verification passes, and cross-checks the
//! result — modelling a heavyweight standard compiler.

use crate::cplan::{CNode, CPlan, CellAggKind, NodeId, OuterOutKind, OutputSpec, RowOutKind};
use crate::spoof::block::{self, BlockKernel};
use crate::spoof::{
    CellAgg, CellSpec, FusedSpec, Instr, MAggSpec, OuterOut, OuterSpec, Program, Reg, RowExecMode,
    RowOut, RowSpec,
};
use crate::templates::TemplateType;
use crate::util::FxHashMap;
use std::fmt::Write as _;

/// Compiler backend choice (paper §2.1: "By default, we use the fast janino
/// compiler but also support the standard javac compiler").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum CompilerBackend {
    #[default]
    Janino,
    Javac,
}

/// Codegen options.
#[derive(Clone, Copy, Debug)]
pub struct CodegenOptions {
    pub backend: CompilerBackend,
    /// Inline vector primitives into per-element code (Figure 10's
    /// `Gen inlined` configuration).
    pub inline_primitives: bool,
    /// Code-size budget in "instructions" above which inlined operators fall
    /// back to the non-JIT path (the analogue of the JVM's 8 KB JIT limit).
    pub code_size_budget: usize,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            backend: CompilerBackend::Janino,
            inline_primitives: false,
            code_size_budget: 8192,
        }
    }
}

/// A generated fused operator: source text, compiled program, identity.
#[derive(Clone, Debug)]
pub struct GeneratedOperator {
    /// Class-style name (`TMP4`).
    pub name: String,
    /// Rendered operator source (Java-flavoured like the paper's listings).
    pub source: String,
    /// The compiled register program + template variant.
    pub spec: FusedSpec,
    /// Structural CPlan hash (plan-cache key).
    pub plan_hash: u64,
    /// Effective code size in instructions (inlined size when inlining).
    pub code_size: usize,
}

/// Compiles a CPlan into a generated operator.
pub fn generate(cplan: &CPlan, name: &str, opts: &CodegenOptions) -> GeneratedOperator {
    let spec = compile_spec(cplan, opts);
    let source = render_source(cplan, name, &spec);
    if opts.backend == CompilerBackend::Javac {
        // Heavyweight path: tokenize + validate + rebuild + cross-check.
        javac_like_verification(cplan, &source, &spec, opts);
    }
    let code_size = effective_code_size(cplan, &spec, opts);
    GeneratedOperator {
        name: name.to_string(),
        source,
        spec,
        plan_hash: cplan.structural_hash(),
        code_size,
    }
}

/// Effective code size: vector instructions count 1 when calling primitives,
/// or their vector length when inlined (Figure 10's footprint model).
fn effective_code_size(cplan: &CPlan, spec: &FusedSpec, opts: &CodegenOptions) -> usize {
    let prog = spec.program();
    if !opts.inline_primitives || cplan.ttype != TemplateType::Row {
        return prog.instrs.len();
    }
    prog.instrs
        .iter()
        .map(|i| match i {
            Instr::VecUnary { out, .. }
            | Instr::VecBinaryVV { out, .. }
            | Instr::VecBinaryVS { out, .. }
            | Instr::VecMatMult { out, .. }
            | Instr::VecCumsum { out, .. } => prog.vreg_lens[*out as usize].max(1),
            Instr::Dot { a, .. } | Instr::VecAgg { a, .. } => prog.vreg_lens[*a as usize].max(1),
            _ => 1,
        })
        .sum()
}

// ===========================================================================
// Program compilation
// ===========================================================================

/// Node value class during register allocation.
#[derive(Clone, Copy, PartialEq)]
enum Class {
    Scalar(Reg),
    Vector(u16, usize), // (vreg, len)
}

struct ProgCompiler<'a> {
    cplan: &'a CPlan,
    prog: Program,
    classes: FxHashMap<NodeId, Class>,
    next_sreg: u16,
}

impl<'a> ProgCompiler<'a> {
    fn new(cplan: &'a CPlan) -> Self {
        ProgCompiler {
            cplan,
            prog: Program::default(),
            classes: FxHashMap::default(),
            next_sreg: 0,
        }
    }

    fn sreg(&mut self) -> Reg {
        let r = self.next_sreg;
        self.next_sreg += 1;
        r
    }

    fn vreg(&mut self, len: usize) -> u16 {
        self.prog.vreg_lens.push(len);
        (self.prog.vreg_lens.len() - 1) as u16
    }

    fn scalar_of(&self, n: NodeId) -> Reg {
        match self.classes[&n] {
            Class::Scalar(r) => r,
            Class::Vector(..) => panic!("expected scalar node {n}"),
        }
    }

    fn vector_of(&self, n: NodeId) -> (u16, usize) {
        match self.classes[&n] {
            Class::Vector(v, l) => (v, l),
            Class::Scalar(_) => panic!("expected vector node {n}"),
        }
    }

    fn compile(mut self) -> (Program, FxHashMap<NodeId, Class>) {
        for (i, node) in self.cplan.nodes.iter().enumerate() {
            let id = i as NodeId;
            let cls = match node {
                CNode::Main => {
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::LoadMain { out: r });
                    Class::Scalar(r)
                }
                CNode::UVDot => {
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::LoadUVDot { out: r });
                    Class::Scalar(r)
                }
                CNode::Side { side, access } => {
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::LoadSide { out: r, side: *side, access: *access });
                    Class::Scalar(r)
                }
                CNode::ScalarInput { idx } => {
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::LoadScalar { out: r, idx: *idx });
                    Class::Scalar(r)
                }
                CNode::Const { value } => {
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::LoadConst { out: r, value: *value });
                    Class::Scalar(r)
                }
                CNode::MainRow => {
                    let v = self.vreg(self.cplan.iter_cols);
                    self.prog.instrs.push(Instr::LoadMainRow { out: v });
                    Class::Vector(v, self.cplan.iter_cols)
                }
                CNode::SideRow { side, cl, cu } => {
                    let v = self.vreg(cu - cl);
                    self.prog.instrs.push(Instr::LoadSideRow {
                        out: v,
                        side: *side,
                        cl: *cl,
                        cu: *cu,
                    });
                    Class::Vector(v, cu - cl)
                }
                CNode::SideVector { side } => {
                    let (r, c) = self.cplan.side_dims[*side];
                    let len = r.max(c);
                    let v = self.vreg(len);
                    self.prog.instrs.push(Instr::LoadSideRow {
                        out: v,
                        side: *side,
                        cl: 0,
                        cu: len,
                    });
                    Class::Vector(v, len)
                }
                CNode::Unary { op, a } => match self.classes[a] {
                    Class::Scalar(ra) => {
                        let r = self.sreg();
                        self.prog.instrs.push(Instr::Unary { out: r, op: *op, a: ra });
                        Class::Scalar(r)
                    }
                    Class::Vector(va, l) => {
                        let v = self.vreg(l);
                        self.prog.instrs.push(Instr::VecUnary { out: v, op: *op, a: va });
                        Class::Vector(v, l)
                    }
                },
                CNode::Binary { op, a, b } => match (self.classes[a], self.classes[b]) {
                    (Class::Scalar(ra), Class::Scalar(rb)) => {
                        let r = self.sreg();
                        self.prog.instrs.push(Instr::Binary { out: r, op: *op, a: ra, b: rb });
                        Class::Scalar(r)
                    }
                    (Class::Vector(va, l), Class::Vector(vb, l2)) => {
                        assert_eq!(l, l2, "vector length mismatch in codegen");
                        let v = self.vreg(l);
                        self.prog.instrs.push(Instr::VecBinaryVV { out: v, op: *op, a: va, b: vb });
                        Class::Vector(v, l)
                    }
                    (Class::Vector(va, l), Class::Scalar(rb)) => {
                        let v = self.vreg(l);
                        self.prog.instrs.push(Instr::VecBinaryVS {
                            out: v,
                            op: *op,
                            a: va,
                            b: rb,
                            scalar_left: false,
                        });
                        Class::Vector(v, l)
                    }
                    (Class::Scalar(ra), Class::Vector(vb, l)) => {
                        let v = self.vreg(l);
                        self.prog.instrs.push(Instr::VecBinaryVS {
                            out: v,
                            op: *op,
                            a: vb,
                            b: ra,
                            scalar_left: true,
                        });
                        Class::Vector(v, l)
                    }
                },
                CNode::Ternary { op, a, b, c } => {
                    let (ra, rb, rc) = (self.scalar_of(*a), self.scalar_of(*b), self.scalar_of(*c));
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::Ternary { out: r, op: *op, a: ra, b: rb, c: rc });
                    Class::Scalar(r)
                }
                CNode::VectMatMult { a, side } => {
                    let (va, _) = self.vector_of(*a);
                    let k = self.cplan.side_dims[*side].1;
                    let v = self.vreg(k);
                    self.prog.instrs.push(Instr::VecMatMult { out: v, a: va, side: *side });
                    Class::Vector(v, k)
                }
                CNode::Dot { a, b } => {
                    let (va, _) = self.vector_of(*a);
                    let (vb, _) = self.vector_of(*b);
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::Dot { out: r, a: va, b: vb });
                    Class::Scalar(r)
                }
                CNode::VecAgg { op, a } => {
                    let (va, _) = self.vector_of(*a);
                    let r = self.sreg();
                    self.prog.instrs.push(Instr::VecAgg { out: r, op: *op, a: va });
                    Class::Scalar(r)
                }
            };
            self.classes.insert(id, cls);
        }
        self.prog.n_regs = self.next_sreg;
        (self.prog, self.classes)
    }
}

/// Compiles the CPlan into the template-specific [`FusedSpec`].
pub fn compile_spec(cplan: &CPlan, opts: &CodegenOptions) -> FusedSpec {
    let (prog, classes) = ProgCompiler::new(cplan).compile();
    let scalar = |n: NodeId| match classes[&n] {
        Class::Scalar(r) => r,
        Class::Vector(..) => panic!("expected scalar output node"),
    };
    let vector = |n: NodeId| match classes[&n] {
        Class::Vector(v, _) => v,
        Class::Scalar(_) => panic!("expected vector output node"),
    };
    match &cplan.output {
        OutputSpec::Cell { result, agg } => FusedSpec::Cell(CellSpec {
            prog,
            result: scalar(*result),
            agg: match agg {
                CellAggKind::NoAgg => CellAgg::NoAgg,
                CellAggKind::RowAgg(op) => CellAgg::RowAgg(*op),
                CellAggKind::ColAgg(op) => CellAgg::ColAgg(*op),
                CellAggKind::FullAgg(op) => CellAgg::FullAgg(*op),
            },
            sparse_safe: cplan.sparse_safe(),
        }),
        OutputSpec::MAgg { results } => FusedSpec::MAgg(MAggSpec {
            prog,
            results: results.iter().map(|(n, op)| (scalar(*n), *op)).collect(),
            sparse_safe: cplan.sparse_safe(),
        }),
        OutputSpec::Row { out } => {
            let mode = if opts.inline_primitives {
                let size = effective_code_size_raw(cplan, &prog);
                if size > opts.code_size_budget {
                    RowExecMode::InterpretedNoJit
                } else {
                    RowExecMode::Inlined
                }
            } else {
                RowExecMode::Vectorized
            };
            FusedSpec::Row(RowSpec {
                out: match out {
                    RowOutKind::NoAgg { src } => RowOut::NoAgg { src: vector(*src) },
                    RowOutKind::RowAgg { src } => RowOut::RowAgg { src: scalar(*src) },
                    RowOutKind::ColAgg { src } => RowOut::ColAgg { src: vector(*src) },
                    RowOutKind::FullAgg { src } => RowOut::FullAgg { src: scalar(*src) },
                    RowOutKind::OuterColAgg { left, right } => {
                        RowOut::OuterColAgg { left: vector(*left), right: vector(*right) }
                    }
                    RowOutKind::ColAggMultAdd { vec, scalar: s } => {
                        RowOut::ColAggMultAdd { vec: vector(*vec), scalar: scalar(*s) }
                    }
                },
                prog,
                out_rows: cplan.out_rows,
                out_cols: cplan.out_cols,
                exec_mode: mode,
            })
        }
        OutputSpec::Outer { result, out } => {
            let (u_side, v_side, rank) = cplan.outer_uv.expect("outer plan has UV binding");
            FusedSpec::Outer(OuterSpec {
                prog,
                result: scalar(*result),
                out: match out {
                    OuterOutKind::FullAgg => OuterOut::FullAgg,
                    OuterOutKind::RightMM { side } => OuterOut::RightMM { side: *side },
                    OuterOutKind::LeftMM { side } => OuterOut::LeftMM { side: *side },
                    OuterOutKind::NoAgg => OuterOut::NoAgg,
                },
                u_side,
                v_side,
                rank,
                sparse_safe: cplan.sparse_safe(),
            })
        }
    }
}

/// Backend selection for the compiled spec: Cell/MAgg/Outer programs lower
/// to the tile-vectorized block backend (generic body plus closure-
/// specialized fast kernels, DESIGN.md X1). Row programs lower separately
/// through [`block::compile_row_kernel`], which needs the CPlan's side
/// geometry (see `plancache::row_cache`).
pub fn lower_block_kernel(spec: &FusedSpec) -> Option<BlockKernel> {
    match spec {
        FusedSpec::Cell(_) | FusedSpec::MAgg(_) | FusedSpec::Outer(_) => {
            Some(block::compile_kernel(spec.program()))
        }
        FusedSpec::Row(_) => None,
    }
}

/// Raw code size before inlining decisions (vector instrs expanded).
fn effective_code_size_raw(cplan: &CPlan, prog: &Program) -> usize {
    let _ = cplan;
    prog.instrs
        .iter()
        .map(|i| match i {
            Instr::VecUnary { out, .. }
            | Instr::VecBinaryVV { out, .. }
            | Instr::VecBinaryVS { out, .. }
            | Instr::VecMatMult { out, .. }
            | Instr::VecCumsum { out, .. } => prog.vreg_lens[*out as usize].max(1),
            Instr::Dot { a, .. } | Instr::VecAgg { a, .. } => prog.vreg_lens[*a as usize].max(1),
            _ => 1,
        })
        .sum()
}

// ===========================================================================
// Source rendering (paper §2.2 listings)
// ===========================================================================

/// Renders operator source in the style of the paper's generated Java.
pub fn render_source(cplan: &CPlan, name: &str, spec: &FusedSpec) -> String {
    let mut s = String::with_capacity(512);
    let (skeleton, variant) = match spec {
        FusedSpec::Cell(c) => ("SpoofCellwise", format!("{:?}", c.agg)),
        FusedSpec::MAgg(m) => ("SpoofMultiAggregate", format!("{} aggs", m.results.len())),
        FusedSpec::Row(r) => ("SpoofRowwise", format!("{:?}", r.out)),
        FusedSpec::Outer(o) => ("SpoofOuterProduct", format!("{:?}", o.out)),
    };
    let _ = writeln!(s, "public final class {name} extends {skeleton} {{");
    let _ = writeln!(
        s,
        "  // variant: {variant}; sides: {}; scalars: {}; sparse-safe: {}",
        cplan.sides.len(),
        cplan.scalars.len(),
        cplan.sparse_safe()
    );
    let _ = writeln!(s, "  protected genexec(...) {{");
    for (i, ins) in spec.program().instrs.iter().enumerate() {
        let _ = writeln!(s, "    {}", render_instr(i, ins));
    }
    let _ = writeln!(s, "    // output: {:?}", cplan.output);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn render_instr(i: usize, ins: &Instr) -> String {
    let _ = i;
    match ins {
        Instr::LoadMain { out } => format!("double t{out} = a;"),
        Instr::LoadUVDot { out } => format!("double t{out} = dotProduct(a1, a2, a1i, a2i, len);"),
        Instr::LoadSide { out, side, access } => {
            format!("double t{out} = getValue(b[{side}], {access:?});")
        }
        Instr::LoadScalar { out, idx } => format!("double t{out} = scalars[{idx}];"),
        Instr::LoadConst { out, value } => format!("double t{out} = {value};"),
        Instr::Unary { out, op, a } => format!("double t{out} = {}(t{a});", op.name()),
        Instr::Binary { out, op, a, b } => format!("double t{out} = t{a} {} t{b};", op.name()),
        Instr::Ternary { out, op, a, b, c } => {
            format!("double t{out} = {}(t{a}, t{b}, t{c});", op.name())
        }
        Instr::LoadMainRow { out } => format!("double[] v{out} = a.values(rix);"),
        Instr::LoadSideRow { out, side, cl, cu } => {
            format!("double[] v{out} = getVector(b[{side}].vals(rix), {cl}, {cu});")
        }
        Instr::VecUnary { out, op, a } => {
            format!("double[] v{out} = vect{}Write(v{a});", camel(op.name()))
        }
        Instr::VecBinaryVV { out, op, a, b } => {
            format!("double[] v{out} = vect{}Write(v{a}, v{b});", camel(op.name()))
        }
        Instr::VecBinaryVS { out, op, a, b, scalar_left } => {
            if *scalar_left {
                format!("double[] v{out} = vect{}Write(t{b}, v{a});", camel(op.name()))
            } else {
                format!("double[] v{out} = vect{}Write(v{a}, t{b});", camel(op.name()))
            }
        }
        Instr::VecMatMult { out, a, side } => {
            format!("double[] v{out} = vectMatrixMult(v{a}, b[{side}].vals(), ...);")
        }
        Instr::Dot { out, a, b } => format!("double t{out} = dotProduct(v{a}, v{b}, len);"),
        Instr::VecAgg { out, op, a } => format!("double t{out} = vect{op:?}(v{a});"),
        Instr::VecCumsum { out, a } => format!("double[] v{out} = vectCumsum(v{a});"),
    }
}

fn camel(name: &str) -> String {
    match name {
        "+" => "Plus".to_string(),
        "-" => "Minus".to_string(),
        "*" => "Mult".to_string(),
        "/" => "Div".to_string(),
        "^" => "Pow".to_string(),
        "==" => "Equal".to_string(),
        "!=" => "NotEqual".to_string(),
        "<" => "Less".to_string(),
        "<=" => "LessEqual".to_string(),
        ">" => "Greater".to_string(),
        ">=" => "GreaterEqual".to_string(),
        other => {
            let mut c = other.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        }
    }
}

// ===========================================================================
// Heavyweight "javac" verification path (Figure 11 model)
// ===========================================================================

/// Models a standard compiler: tokenize the rendered source, validate its
/// structure, re-compile the program from the CPlan in several passes, and
/// cross-check the results. All work is real (proportional to operator
/// size), making the backend comparison meaningful.
fn javac_like_verification(cplan: &CPlan, source: &str, spec: &FusedSpec, opts: &CodegenOptions) {
    const PASSES: usize = 12;
    let mut token_count = 0usize;
    for _ in 0..PASSES {
        // Lexing pass.
        token_count += source
            .split(|c: char| c.is_whitespace() || "(){};,".contains(c))
            .filter(|t| !t.is_empty())
            .count();
        // Brace balance validation.
        let mut depth: i64 = 0;
        for ch in source.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced braces in generated source");
        }
        assert_eq!(depth, 0, "unbalanced braces in generated source");
        // Re-compilation + structural equivalence check.
        let respec =
            compile_spec(cplan, &CodegenOptions { backend: CompilerBackend::Janino, ..*opts });
        assert_eq!(&respec, spec, "recompilation must be deterministic");
        // The heavyweight backend also re-lowers the block/row kernel per
        // pass (cache bypassed), modelling javac's redundant backend work.
        match &respec {
            FusedSpec::Row(r) => {
                std::hint::black_box(block::compile_row_kernel(r, &cplan.side_dims));
            }
            _ => {
                std::hint::black_box(lower_block_kernel(&respec));
            }
        }
    }
    // The token count is intentionally unused beyond forcing the work.
    std::hint::black_box(token_count);
}
