//! Code generation plans (CPlans): the backend-independent representation of
//! fused operators (paper §2.2, Figure 3).
//!
//! A CPlan is a DAG of `CNode`s (basic operations) under a template node
//! with a specific data binding: a main input (iterated by the runtime
//! skeleton), materialized matrix side inputs, and scalar inputs. CPlans are
//! constructed by traversing the HOP DAG top-down along the fusion
//! references of the selected memo entries.

use crate::memo::MemoEntry;
use crate::spoof::SideAccess;
use crate::templates::TemplateType;
use crate::util::{FxHashMap, FxHashSet};
use fusedml_hop::{HopDag, HopId, OpKind};
use fusedml_linalg::ops::{AggDir, AggOp, BinaryOp, TernaryOp, UnaryOp};

/// Index of a CNode within a CPlan arena.
pub type NodeId = u32;

/// A basic operation node of a CPlan.
#[derive(Clone, Debug, PartialEq)]
pub enum CNode {
    /// The main-input cell value `a` (Cell/MAgg/Outer).
    Main,
    /// The main-input row `X[rix, :]` (Row).
    MainRow,
    /// The Outer template's built-in `dot(U[rix,:], V[cix,:])`.
    UVDot,
    /// Scalar access into a matrix side input.
    Side { side: usize, access: SideAccess },
    /// Row slice `b[side][rix, cl..cu]` of a row-aligned side input
    /// (row 0 is broadcast when the side has a single row).
    SideRow { side: usize, cl: usize, cu: usize },
    /// A whole n×1 / 1×n side input viewed as a flat vector (e.g. `v` in
    /// `X %*% v`).
    SideVector { side: usize },
    /// A bound scalar input (non-literal 1×1 intermediate).
    ScalarInput { idx: usize },
    /// A literal.
    Const { value: f64 },
    /// Scalar or element-wise vector unary (class decided by input).
    Unary { op: UnaryOp, a: NodeId },
    /// Scalar or element-wise vector binary.
    Binary { op: BinaryOp, a: NodeId, b: NodeId },
    /// Scalar ternary.
    Ternary { op: TernaryOp, a: NodeId, b: NodeId, c: NodeId },
    /// `a %*% b[side]`: row vector × side matrix (`vectMatMult`).
    VectMatMult { a: NodeId, side: usize },
    /// `dot(a, b)` of two vectors.
    Dot { a: NodeId, b: NodeId },
    /// Vector aggregate to scalar (`vectSum` …).
    VecAgg { op: AggOp, a: NodeId },
}

/// Cell aggregation variants (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellAggKind {
    NoAgg,
    RowAgg(AggOp),
    ColAgg(AggOp),
    FullAgg(AggOp),
}

/// Row output variants (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RowOutKind {
    /// Write the result vector to the output row (n×k).
    NoAgg { src: NodeId },
    /// Write the result scalar to the output row (n×1).
    RowAgg { src: NodeId },
    /// Accumulate the result vector column-wise (1×k).
    ColAgg { src: NodeId },
    /// Accumulate the result scalar (1×1).
    FullAgg { src: NodeId },
    /// Accumulate `left ⊗ right` (m×k, the `t(X) %*% D` pattern,
    /// `COL_AGG_B1_T` in Figure 3(c)).
    OuterColAgg { left: NodeId, right: NodeId },
    /// Accumulate `vec * scalar` column-wise (m×1, the `t(X) %*% q` pattern
    /// with a per-row scalar `q_r`): `out += vec * scalar` per row.
    ColAggMultAdd { vec: NodeId, scalar: NodeId },
}

/// Outer output variants (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OuterOutKind {
    FullAgg,
    /// `out[i,:] += w * S[j,:]` with an m×r side `S` (right mm).
    RightMM {
        side: usize,
    },
    /// `out[j,:] += w * S[i,:]` with an n×r side `S` (left mm).
    LeftMM {
        side: usize,
    },
    NoAgg,
}

/// The output action of a CPlan (the template variant of Table 1).
#[derive(Clone, Debug, PartialEq)]
pub enum OutputSpec {
    Cell { result: NodeId, agg: CellAggKind },
    MAgg { results: Vec<(NodeId, AggOp)> },
    Row { out: RowOutKind },
    Outer { result: NodeId, out: OuterOutKind },
}

/// A constructed code-generation plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CPlan {
    pub ttype: TemplateType,
    pub nodes: Vec<CNode>,
    pub output: OutputSpec,
    /// HOP of the main input (None ⇒ dense iteration without a driver).
    pub main: Option<HopId>,
    /// HOPs of the matrix side inputs, by side index.
    pub sides: Vec<HopId>,
    /// Geometry (rows, cols) of each side input, by side index.
    pub side_dims: Vec<(usize, usize)>,
    /// HOPs of bound scalar inputs, by scalar index.
    pub scalars: Vec<HopId>,
    /// Iteration geometry (rows × cols of the main/plane domain).
    pub iter_rows: usize,
    pub iter_cols: usize,
    /// Output geometry.
    pub out_rows: usize,
    pub out_cols: usize,
    /// Outer only: (u_side, v_side, rank).
    pub outer_uv: Option<(usize, usize, usize)>,
    /// The HOPs computed inside this operator (for DAG replacement).
    pub covered: Vec<HopId>,
}

impl CPlan {
    /// Structural identity for the plan cache: template type, node
    /// structure, and output spec — independent of HOP ids, so equivalent
    /// operators from different DAGs share one compiled class (paper §2.1:
    /// the plan cache "identifies equivalent CPlans via hashing").
    pub fn structural_hash(&self) -> u64 {
        let mut s = String::with_capacity(256);
        s.push_str(self.ttype.tag());
        for n in &self.nodes {
            s.push_str(&format!("{n:?};"));
        }
        s.push_str(&format!("|{:?}|{}x{}", self.output, self.iter_cols, self.out_cols));
        crate::util::fx_hash(&s)
    }

    /// True if the plan's scalar function is zero-preserving in the main
    /// input (`f(0, …) = 0`), enabling non-zero-only iteration.
    pub fn sparse_safe(&self) -> bool {
        if self.main.is_none() {
            return false;
        }
        match &self.output {
            OutputSpec::Cell { result, .. } => self.zero_preserving(*result),
            OutputSpec::MAgg { results } => results.iter().all(|(r, _)| self.zero_preserving(*r)),
            OutputSpec::Outer { result, .. } => self.zero_preserving(*result),
            OutputSpec::Row { .. } => false,
        }
    }

    /// Structural zero-propagation: is node `id` guaranteed zero when the
    /// main input value is zero?
    fn zero_preserving(&self, id: NodeId) -> bool {
        match &self.nodes[id as usize] {
            CNode::Main => true,
            CNode::Binary { op: BinaryOp::Mult | BinaryOp::And, a, b } => {
                self.zero_preserving(*a) || self.zero_preserving(*b)
            }
            CNode::Binary { op: BinaryOp::Div, a, .. } => self.zero_preserving(*a),
            // Comparisons of a zero-preserving value against literal zero:
            // (0 != 0) = 0, (0 > 0) = 0, (0 < 0) = 0.
            CNode::Binary { op: BinaryOp::Neq | BinaryOp::Gt | BinaryOp::Lt, a, b } => {
                self.zero_preserving(*a)
                    && matches!(self.nodes[*b as usize], CNode::Const { value } if value == 0.0)
            }
            CNode::Unary { op, a } => op.sparse_safe() && self.zero_preserving(*a),
            _ => false,
        }
    }

    /// Node count (used by compilation-overhead statistics).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

/// A fused operator selected by candidate selection: the root HOP, the
/// template, and the chosen memo entry per covered HOP.
#[derive(Clone, Debug)]
pub struct OperatorPlan {
    pub root: HopId,
    pub ttype: TemplateType,
    pub entries: FxHashMap<HopId, MemoEntry>,
}

impl OperatorPlan {
    /// The covered HOP set.
    pub fn covered(&self) -> FxHashSet<HopId> {
        self.entries.keys().copied().collect()
    }
}

/// Errors during CPlan construction (callers fall back to unfused
/// execution of the affected operator).
#[derive(Clone, Debug, PartialEq)]
pub struct ConstructError(pub String);

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cplan construction failed: {}", self.0)
    }
}

/// Constructs the CPlan for a selected operator plan.
pub fn construct(dag: &HopDag, plan: &OperatorPlan) -> Result<CPlan, ConstructError> {
    match plan.ttype {
        TemplateType::Cell => CellBuilder::new(dag, plan).build(),
        TemplateType::Row => RowBuilder::new(dag, plan).build(),
        TemplateType::Outer => OuterBuilder::new(dag, plan).build(),
        TemplateType::MAgg => Err(ConstructError(
            "MAgg plans are assembled from Cell plans via construct_multi_agg".into(),
        )),
    }
}

/// Combines ≥2 full-aggregate Cell CPlans sharing a main input into one
/// MAgg CPlan (paper Table 1; §5.2 "Multi-Aggregate Operations").
pub fn construct_multi_agg(plans: &[CPlan]) -> Result<CPlan, ConstructError> {
    if plans.len() < 2 {
        return Err(ConstructError("MAgg needs at least two aggregates".into()));
    }
    let main = plans[0].main;
    let (ir, ic) = (plans[0].iter_rows, plans[0].iter_cols);
    if plans.iter().any(|p| {
        p.ttype != TemplateType::Cell
            || p.main != main
            || p.iter_rows != ir
            || p.iter_cols != ic
            || !matches!(p.output, OutputSpec::Cell { agg: CellAggKind::FullAgg(_), .. })
    }) {
        return Err(ConstructError(
            "MAgg requires full-agg Cell plans with a shared main input".into(),
        ));
    }
    let mut nodes: Vec<CNode> = Vec::new();
    let mut sides: Vec<HopId> = Vec::new();
    let mut scalars: Vec<HopId> = Vec::new();
    let mut results: Vec<(NodeId, AggOp)> = Vec::new();
    let mut covered: Vec<HopId> = Vec::new();
    for p in plans {
        let side_remap: Vec<usize> = p
            .sides
            .iter()
            .map(|&h| {
                sides.iter().position(|&s| s == h).unwrap_or_else(|| {
                    sides.push(h);
                    sides.len() - 1
                })
            })
            .collect();
        let scalar_remap: Vec<usize> = p
            .scalars
            .iter()
            .map(|&h| {
                scalars.iter().position(|&s| s == h).unwrap_or_else(|| {
                    scalars.push(h);
                    scalars.len() - 1
                })
            })
            .collect();
        let base = nodes.len() as NodeId;
        for n in &p.nodes {
            let mut n2 = n.clone();
            match &mut n2 {
                CNode::Side { side, .. }
                | CNode::SideRow { side, .. }
                | CNode::SideVector { side } => *side = side_remap[*side],
                CNode::ScalarInput { idx } => *idx = scalar_remap[*idx],
                CNode::Unary { a, .. } | CNode::VecAgg { a, .. } => *a += base,
                CNode::VectMatMult { a, side } => {
                    *a += base;
                    *side = side_remap[*side];
                }
                CNode::Binary { a, b, .. } | CNode::Dot { a, b } => {
                    *a += base;
                    *b += base;
                }
                CNode::Ternary { a, b, c, .. } => {
                    *a += base;
                    *b += base;
                    *c += base;
                }
                _ => {}
            }
            nodes.push(n2);
        }
        if let OutputSpec::Cell { result, agg: CellAggKind::FullAgg(op) } = p.output {
            results.push((result + base, op));
        }
        covered.extend(p.covered.iter().copied());
    }
    covered.sort_unstable();
    covered.dedup();
    let k = results.len();
    let side_dims: Vec<(usize, usize)> = {
        // Side geometries are recovered from the component plans.
        let mut dims = vec![(0usize, 0usize); sides.len()];
        for p in plans {
            for (i, &h) in p.sides.iter().enumerate() {
                let pos = sides.iter().position(|&s| s == h).expect("remapped side");
                dims[pos] = p.side_dims[i];
            }
        }
        dims
    };
    Ok(CPlan {
        ttype: TemplateType::MAgg,
        nodes,
        output: OutputSpec::MAgg { results },
        main,
        side_dims,
        sides,
        scalars,
        iter_rows: ir,
        iter_cols: ic,
        out_rows: 1,
        out_cols: k,
        outer_uv: None,
        covered,
    })
}

// ===========================================================================
// Shared builder machinery
// ===========================================================================

/// Looks up the (rows, cols) geometry of each side-input HOP.
fn side_dims_of(dag: &HopDag, sides: &[HopId]) -> Vec<(usize, usize)> {
    sides.iter().map(|&h| (dag.hop(h).size.rows, dag.hop(h).size.cols)).collect()
}

struct BuilderState<'a> {
    dag: &'a HopDag,
    plan: &'a OperatorPlan,
    nodes: Vec<CNode>,
    node_map: FxHashMap<HopId, NodeId>,
    sides: Vec<HopId>,
    scalars: Vec<HopId>,
}

impl<'a> BuilderState<'a> {
    fn new(dag: &'a HopDag, plan: &'a OperatorPlan) -> Self {
        BuilderState {
            dag,
            plan,
            nodes: Vec::new(),
            node_map: FxHashMap::default(),
            sides: Vec::new(),
            scalars: Vec::new(),
        }
    }

    fn push(&mut self, n: CNode) -> NodeId {
        // Local CSE on identical nodes.
        if let Some(pos) = self.nodes.iter().position(|x| *x == n) {
            return pos as NodeId;
        }
        self.nodes.push(n);
        (self.nodes.len() - 1) as NodeId
    }

    fn side_index(&mut self, h: HopId) -> usize {
        if let Some(pos) = self.sides.iter().position(|&s| s == h) {
            pos
        } else {
            self.sides.push(h);
            self.sides.len() - 1
        }
    }

    fn scalar_index(&mut self, h: HopId) -> usize {
        if let Some(pos) = self.scalars.iter().position(|&s| s == h) {
            pos
        } else {
            self.scalars.push(h);
            self.scalars.len() - 1
        }
    }

    /// Is `h` computed inside this operator?
    fn is_covered(&self, h: HopId) -> bool {
        self.plan.entries.contains_key(&h)
    }

    /// Does the chosen entry at `h` fuse input position `j`?
    fn fused_input(&self, h: HopId, j: usize) -> bool {
        self.plan.entries.get(&h).is_some_and(|e| e.inputs[j].is_fused())
    }
}

// ===========================================================================
// Cell template construction (paper Figure 3(b))
// ===========================================================================

struct CellBuilder<'a> {
    st: BuilderState<'a>,
    iter_rows: usize,
    iter_cols: usize,
}

impl<'a> CellBuilder<'a> {
    fn new(dag: &'a HopDag, plan: &'a OperatorPlan) -> Self {
        CellBuilder { st: BuilderState::new(dag, plan), iter_rows: 0, iter_cols: 0 }
    }

    fn build(mut self) -> Result<CPlan, ConstructError> {
        let dag = self.st.dag;
        let root = dag.hop(self.st.plan.root).clone();
        let (agg, fn_root) = match root.kind {
            OpKind::Agg { op, dir } => {
                let kind = match dir {
                    AggDir::Full => CellAggKind::FullAgg(op),
                    AggDir::Row => CellAggKind::RowAgg(op),
                    AggDir::Col => CellAggKind::ColAgg(op),
                };
                (kind, root.inputs[0])
            }
            _ => (CellAggKind::NoAgg, root.id),
        };
        let fr = dag.hop(fn_root);
        self.iter_rows = fr.size.rows;
        self.iter_cols = fr.size.cols;

        let main = self.select_main(fn_root);
        let result = self.translate(fn_root, main)?;
        let (out_rows, out_cols) = match agg {
            CellAggKind::NoAgg => (self.iter_rows, self.iter_cols),
            CellAggKind::RowAgg(_) => (self.iter_rows, 1),
            CellAggKind::ColAgg(_) => (1, self.iter_cols),
            CellAggKind::FullAgg(_) => (1, 1),
        };
        let mut covered: Vec<HopId> = self.st.plan.entries.keys().copied().collect();
        covered.sort_unstable();
        Ok(CPlan {
            ttype: TemplateType::Cell,
            nodes: self.st.nodes,
            output: OutputSpec::Cell { result, agg },
            main,
            side_dims: side_dims_of(dag, &self.st.sides),
            sides: self.st.sides,
            scalars: self.st.scalars,
            iter_rows: self.iter_rows,
            iter_cols: self.iter_cols,
            out_rows,
            out_cols,
            outer_uv: None,
            covered,
        })
    }

    /// Chooses the sparse driver: among non-covered inputs with the full
    /// iteration geometry, the one with minimal sparsity (paper §5.2:
    /// Gen "correctly selects X as sparse driver").
    fn select_main(&self, fn_root: HopId) -> Option<HopId> {
        let dag = self.st.dag;
        let mut best: Option<HopId> = None;
        let consider = |id: HopId, best: &mut Option<HopId>| {
            let ih = dag.hop(id);
            if ih.size.rows == self.iter_rows
                && ih.size.cols == self.iter_cols
                && !matches!(ih.kind, OpKind::Literal { .. })
            {
                let better =
                    best.is_none() || ih.size.sparsity < dag.hop(best.unwrap()).size.sparsity;
                if better {
                    *best = Some(id);
                }
            }
        };
        let mut stack = vec![fn_root];
        let mut seen = FxHashSet::default();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if self.st.is_covered(id) {
                let h = dag.hop(id);
                for (j, &input) in h.inputs.iter().enumerate() {
                    if self.st.fused_input(id, j) && self.st.is_covered(input) {
                        stack.push(input);
                    } else {
                        consider(input, &mut best);
                    }
                }
            } else {
                consider(id, &mut best);
            }
        }
        best
    }

    fn translate(&mut self, id: HopId, main: Option<HopId>) -> Result<NodeId, ConstructError> {
        if let Some(&n) = self.st.node_map.get(&id) {
            return Ok(n);
        }
        let dag = self.st.dag;
        let h = dag.hop(id).clone();
        let node = if !self.st.is_covered(id) {
            self.input_node(id, main)?
        } else {
            match h.kind {
                OpKind::Unary { op } => {
                    let a = self.child(id, 0, main)?;
                    CNode::Unary { op, a }
                }
                OpKind::Binary { op } => {
                    let a = self.child(id, 0, main)?;
                    let b = self.child(id, 1, main)?;
                    CNode::Binary { op, a, b }
                }
                OpKind::Ternary { op } => {
                    let a = self.child(id, 0, main)?;
                    let b = self.child(id, 1, main)?;
                    let c = self.child(id, 2, main)?;
                    CNode::Ternary { op, a, b, c }
                }
                ref k => {
                    return Err(ConstructError(format!(
                        "unsupported covered op in Cell template: {k:?}"
                    )))
                }
            }
        };
        let n = self.st.push(node);
        self.st.node_map.insert(id, n);
        Ok(n)
    }

    fn child(&mut self, h: HopId, j: usize, main: Option<HopId>) -> Result<NodeId, ConstructError> {
        let input = self.st.dag.hop(h).inputs[j];
        if self.st.fused_input(h, j) && self.st.is_covered(input) {
            self.translate(input, main)
        } else {
            if let Some(&n) = self.st.node_map.get(&input) {
                return Ok(n);
            }
            let node = self.input_node(input, main)?;
            let n = self.st.push(node);
            self.st.node_map.insert(input, n);
            Ok(n)
        }
    }

    fn input_node(&mut self, id: HopId, main: Option<HopId>) -> Result<CNode, ConstructError> {
        let h = self.st.dag.hop(id).clone();
        if let OpKind::Literal { value } = h.kind {
            return Ok(CNode::Const { value });
        }
        if Some(id) == main {
            return Ok(CNode::Main);
        }
        let (r, c) = (h.size.rows, h.size.cols);
        if r == 1 && c == 1 {
            let idx = self.st.scalar_index(id);
            return Ok(CNode::ScalarInput { idx });
        }
        let access = if r == self.iter_rows && c == self.iter_cols {
            SideAccess::Cell
        } else if r == self.iter_rows && c == 1 {
            SideAccess::Col
        } else if r == 1 && c == self.iter_cols {
            SideAccess::Row
        } else {
            return Err(ConstructError(format!(
                "side input {id} of shape {r}x{c} incompatible with {}x{} Cell iteration",
                self.iter_rows, self.iter_cols
            )));
        };
        let side = self.st.side_index(id);
        Ok(CNode::Side { side, access })
    }
}

// ===========================================================================
// Outer template construction (paper Figure 3(a))
// ===========================================================================

struct OuterBuilder<'a> {
    st: BuilderState<'a>,
    iter_rows: usize,
    iter_cols: usize,
    opening: Option<HopId>,
}

impl<'a> OuterBuilder<'a> {
    fn new(dag: &'a HopDag, plan: &'a OperatorPlan) -> Self {
        OuterBuilder { st: BuilderState::new(dag, plan), iter_rows: 0, iter_cols: 0, opening: None }
    }

    fn build(mut self) -> Result<CPlan, ConstructError> {
        let dag = self.st.dag;
        // The opening outer product: a covered mm whose output IS the plane.
        let opening = self
            .st
            .plan
            .entries
            .keys()
            .copied()
            .filter(|&id| dag.hop(id).kind == OpKind::MatMult)
            .max_by_key(|&id| dag.hop(id).size.cells())
            .ok_or_else(|| ConstructError("no opening outer product found".into()))?;
        self.opening = Some(opening);
        let op_hop = dag.hop(opening).clone();
        self.iter_rows = op_hop.size.rows;
        self.iter_cols = op_hop.size.cols;
        let u = op_hop.inputs[0];
        let vt = op_hop.inputs[1];
        let v = match dag.hop(vt).kind {
            OpKind::Transpose => dag.hop(vt).inputs[0],
            _ => {
                return Err(ConstructError(
                    "outer product rhs must be an explicit transpose".into(),
                ))
            }
        };
        let rank = dag.hop(u).size.cols;
        let u_side = self.st.side_index(u);
        let v_side = self.st.side_index(v);

        let root = dag.hop(self.st.plan.root).clone();
        let main = self.select_main();
        let (result, out, out_rows, out_cols) = match root.kind {
            OpKind::Agg { op: AggOp::Sum, dir: AggDir::Full } => {
                let r = self.translate(root.inputs[0], main)?;
                (r, OuterOutKind::FullAgg, 1, 1)
            }
            OpKind::MatMult if root.id != opening => {
                let l = dag.hop(root.inputs[0]).clone();
                if l.kind == OpKind::Transpose && self.st.is_covered(l.id) {
                    // Left mm: t(plane) %*% S.
                    let plane = l.inputs[0];
                    let r = self.translate(plane, main)?;
                    let s = self.st.side_index(root.inputs[1]);
                    (r, OuterOutKind::LeftMM { side: s }, root.size.rows, root.size.cols)
                } else {
                    // Right mm: plane %*% S.
                    let r = self.translate(root.inputs[0], main)?;
                    let s = self.st.side_index(root.inputs[1]);
                    (r, OuterOutKind::RightMM { side: s }, root.size.rows, root.size.cols)
                }
            }
            _ => {
                let r = self.translate(root.id, main)?;
                (r, OuterOutKind::NoAgg, self.iter_rows, self.iter_cols)
            }
        };
        let mut covered: Vec<HopId> = self.st.plan.entries.keys().copied().collect();
        covered.sort_unstable();
        Ok(CPlan {
            ttype: TemplateType::Outer,
            nodes: self.st.nodes,
            output: OutputSpec::Outer { result, out },
            main,
            side_dims: side_dims_of(dag, &self.st.sides),
            sides: self.st.sides,
            scalars: self.st.scalars,
            iter_rows: self.iter_rows,
            iter_cols: self.iter_cols,
            out_rows,
            out_cols,
            outer_uv: Some((u_side, v_side, rank)),
            covered,
        })
    }

    /// The sparse driver: the sparsest non-covered n×m input of a covered
    /// cell-wise op in the plane chain.
    fn select_main(&self) -> Option<HopId> {
        let dag = self.st.dag;
        let mut best: Option<HopId> = None;
        for (&id, entry) in &self.st.plan.entries {
            let h = dag.hop(id);
            if !matches!(h.kind, OpKind::Binary { .. } | OpKind::Ternary { .. }) {
                continue;
            }
            for (j, &input) in h.inputs.iter().enumerate() {
                if entry.inputs[j].is_fused() && self.st.is_covered(input) {
                    continue;
                }
                let ih = dag.hop(input);
                if ih.size.rows == self.iter_rows && ih.size.cols == self.iter_cols {
                    let better =
                        best.is_none() || ih.size.sparsity < dag.hop(best.unwrap()).size.sparsity;
                    if better {
                        best = Some(input);
                    }
                }
            }
        }
        best
    }

    fn translate(&mut self, id: HopId, main: Option<HopId>) -> Result<NodeId, ConstructError> {
        if let Some(&n) = self.st.node_map.get(&id) {
            return Ok(n);
        }
        let dag = self.st.dag;
        let h = dag.hop(id).clone();
        let node = if Some(id) == self.opening {
            CNode::UVDot
        } else if !self.st.is_covered(id) {
            self.input_node(id, main)?
        } else {
            match h.kind {
                OpKind::Unary { op } => {
                    let a = self.child(id, 0, main)?;
                    CNode::Unary { op, a }
                }
                OpKind::Binary { op } => {
                    let a = self.child(id, 0, main)?;
                    let b = self.child(id, 1, main)?;
                    CNode::Binary { op, a, b }
                }
                OpKind::Transpose => {
                    // Pass-through marker on the plane (left-mm pattern).
                    return self.child(id, 0, main);
                }
                ref k => {
                    return Err(ConstructError(format!(
                        "unsupported covered op in Outer template: {k:?}"
                    )))
                }
            }
        };
        let n = self.st.push(node);
        self.st.node_map.insert(id, n);
        Ok(n)
    }

    fn child(&mut self, h: HopId, j: usize, main: Option<HopId>) -> Result<NodeId, ConstructError> {
        let input = self.st.dag.hop(h).inputs[j];
        if self.st.fused_input(h, j) && self.st.is_covered(input) {
            self.translate(input, main)
        } else {
            if let Some(&n) = self.st.node_map.get(&input) {
                return Ok(n);
            }
            let node = self.input_node(input, main)?;
            let n = self.st.push(node);
            self.st.node_map.insert(input, n);
            Ok(n)
        }
    }

    fn input_node(&mut self, id: HopId, main: Option<HopId>) -> Result<CNode, ConstructError> {
        let h = self.st.dag.hop(id).clone();
        if let OpKind::Literal { value } = h.kind {
            return Ok(CNode::Const { value });
        }
        if Some(id) == main {
            return Ok(CNode::Main);
        }
        let (r, c) = (h.size.rows, h.size.cols);
        if r == 1 && c == 1 {
            let idx = self.st.scalar_index(id);
            return Ok(CNode::ScalarInput { idx });
        }
        let access = if r == self.iter_rows && c == self.iter_cols {
            SideAccess::Cell
        } else if r == self.iter_rows && c == 1 {
            SideAccess::Col
        } else if r == 1 && c == self.iter_cols {
            SideAccess::Row
        } else {
            return Err(ConstructError(format!(
                "Outer side input {id} of shape {r}x{c} incompatible with plane"
            )));
        };
        let side = self.st.side_index(id);
        Ok(CNode::Side { side, access })
    }
}

// ===========================================================================
// Row template construction (paper Figure 3(c))
// ===========================================================================

/// Value class of a translated Row node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RClass {
    Scalar,
    Vector(usize),
}

struct RowBuilder<'a> {
    st: BuilderState<'a>,
    /// Row-iteration domain (rows of the main input).
    n: usize,
    classes: FxHashMap<NodeId, RClass>,
    main: Option<HopId>,
}

impl<'a> RowBuilder<'a> {
    fn new(dag: &'a HopDag, plan: &'a OperatorPlan) -> Self {
        RowBuilder {
            st: BuilderState::new(dag, plan),
            n: 0,
            classes: FxHashMap::default(),
            main: None,
        }
    }

    fn build(mut self) -> Result<CPlan, ConstructError> {
        let dag = self.st.dag;
        let root = dag.hop(self.st.plan.root).clone();
        self.n = match root.kind {
            OpKind::MatMult => {
                let l = dag.hop(root.inputs[0]);
                if l.kind == OpKind::Transpose {
                    dag.hop(root.inputs[1]).size.rows
                } else {
                    root.size.rows
                }
            }
            OpKind::Agg { .. } => dag.hop(root.inputs[0]).size.rows,
            _ => root.size.rows,
        };
        self.main = self.select_main();
        if self.main.is_none() {
            return Err(ConstructError(
                "Row template requires a row-major main input on the row domain".into(),
            ));
        }
        let (out, out_rows, out_cols) = match root.kind {
            OpKind::MatMult => {
                let l = dag.hop(root.inputs[0]).clone();
                if l.kind == OpKind::Transpose {
                    // t(X) %*% D → OuterColAgg(row(X), vec(D)); with a
                    // per-row scalar D (n×1) this degenerates to a
                    // vectMultAdd accumulation (t(X) %*% q).
                    let left = self.translate_transposed_left(l.id)?;
                    let right_raw = self.child(root.id, 1)?;
                    let out = match self.class(right_raw) {
                        RClass::Vector(_) => RowOutKind::OuterColAgg { left, right: right_raw },
                        RClass::Scalar => {
                            RowOutKind::ColAggMultAdd { vec: left, scalar: right_raw }
                        }
                    };
                    (out, root.size.rows, root.size.cols)
                } else {
                    let r = self.translate(root.id)?;
                    match self.class(r) {
                        RClass::Vector(_) => {
                            (RowOutKind::NoAgg { src: r }, root.size.rows, root.size.cols)
                        }
                        RClass::Scalar => (RowOutKind::RowAgg { src: r }, root.size.rows, 1),
                    }
                }
            }
            OpKind::Agg { op, dir } => {
                let inner = self.child(root.id, 0)?;
                match dir {
                    AggDir::Row => {
                        let s = self.scalarize_agg(inner, op)?;
                        (RowOutKind::RowAgg { src: s }, self.n, 1)
                    }
                    AggDir::Col => {
                        let v = self.as_vector_node(inner)?;
                        (RowOutKind::ColAgg { src: v }, 1, root.size.cols)
                    }
                    AggDir::Full => {
                        let s = self.scalarize_agg(inner, op)?;
                        (RowOutKind::FullAgg { src: s }, 1, 1)
                    }
                }
            }
            _ => {
                let r = self.translate(root.id)?;
                match self.class(r) {
                    RClass::Vector(k) => (RowOutKind::NoAgg { src: r }, self.n, k),
                    RClass::Scalar => (RowOutKind::RowAgg { src: r }, self.n, 1),
                }
            }
        };
        let mut covered: Vec<HopId> = self.st.plan.entries.keys().copied().collect();
        covered.sort_unstable();
        let iter_cols = self.main.map(|m| dag.hop(m).size.cols).unwrap_or(1);
        Ok(CPlan {
            ttype: TemplateType::Row,
            nodes: self.st.nodes,
            output: OutputSpec::Row { out },
            main: self.main,
            side_dims: side_dims_of(dag, &self.st.sides),
            sides: self.st.sides,
            scalars: self.st.scalars,
            iter_rows: self.n,
            iter_cols,
            out_rows,
            out_cols,
            outer_uv: None,
            covered,
        })
    }

    /// Main = the largest non-covered matrix input on the row domain
    /// (including through covered transposes).
    fn select_main(&self) -> Option<HopId> {
        let dag = self.st.dag;
        let mut best: Option<HopId> = None;
        let consider = |id: HopId, best: &mut Option<HopId>, rows: usize| {
            let ih = dag.hop(id);
            if ih.size.rows == rows
                && ih.size.cols > 1
                && !matches!(ih.kind, OpKind::Literal { .. })
            {
                let better =
                    best.is_none() || ih.size.cells() > dag.hop(best.unwrap()).size.cells();
                if better {
                    *best = Some(id);
                }
            }
        };
        for (&id, entry) in &self.st.plan.entries {
            let h = dag.hop(id);
            for (j, &input) in h.inputs.iter().enumerate() {
                if entry.inputs[j].is_fused() && self.st.is_covered(input) {
                    // Look through covered transposes for the X in t(X).
                    let ih = dag.hop(input);
                    if ih.kind == OpKind::Transpose {
                        let child = ih.inputs[0];
                        if !self.st.is_covered(child) {
                            consider(child, &mut best, self.n);
                        }
                    }
                    continue;
                }
                let ih = dag.hop(input);
                if ih.kind == OpKind::Transpose && !self.st.is_covered(input) {
                    consider(ih.inputs[0], &mut best, self.n);
                } else {
                    consider(input, &mut best, self.n);
                }
            }
        }
        best
    }

    fn class(&self, n: NodeId) -> RClass {
        self.classes.get(&n).copied().unwrap_or(RClass::Scalar)
    }

    fn set_class(&mut self, n: NodeId, c: RClass) {
        self.classes.insert(n, c);
    }

    fn as_vector_node(&mut self, n: NodeId) -> Result<NodeId, ConstructError> {
        match self.class(n) {
            RClass::Vector(_) => Ok(n),
            RClass::Scalar => Err(ConstructError("expected vector-class node".into())),
        }
    }

    fn scalarize_agg(&mut self, n: NodeId, op: AggOp) -> Result<NodeId, ConstructError> {
        match self.class(n) {
            RClass::Scalar => Ok(n),
            RClass::Vector(_) => {
                let id = self.st.push(CNode::VecAgg { op, a: n });
                self.set_class(id, RClass::Scalar);
                Ok(id)
            }
        }
    }

    /// Translates `t(X)` on the left of the closing mm as the per-row
    /// vector of `X` (`vrix` in Figure 3(c)).
    fn translate_transposed_left(&mut self, t: HopId) -> Result<NodeId, ConstructError> {
        let dag = self.st.dag;
        let child = dag.hop(t).inputs[0];
        if self.st.is_covered(t) && self.st.fused_input(t, 0) && self.st.is_covered(child) {
            let n = self.translate(child)?;
            self.as_vector_node(n)
        } else {
            let n = self.row_input_node(child)?;
            self.as_vector_node(n)
        }
    }

    fn translate(&mut self, id: HopId) -> Result<NodeId, ConstructError> {
        if let Some(&n) = self.st.node_map.get(&id) {
            return Ok(n);
        }
        let dag = self.st.dag;
        let h = dag.hop(id).clone();
        if !self.st.is_covered(id) {
            let n = self.row_input_node(id)?;
            self.st.node_map.insert(id, n);
            return Ok(n);
        }
        let n = match h.kind {
            OpKind::Unary { op } => {
                let a = self.child(id, 0)?;
                let node = self.st.push(CNode::Unary { op, a });
                let cls = self.class(a);
                self.set_class(node, cls);
                node
            }
            OpKind::Binary { op } => {
                let a = self.child(id, 0)?;
                let b = self.child(id, 1)?;
                self.binary_vs(op, a, b)?
            }
            OpKind::Ternary { op } => {
                let a = self.child(id, 0)?;
                let b = self.child(id, 1)?;
                let c = self.child(id, 2)?;
                if self.class(a) == RClass::Scalar
                    && self.class(b) == RClass::Scalar
                    && self.class(c) == RClass::Scalar
                {
                    let node = self.st.push(CNode::Ternary { op, a, b, c });
                    self.set_class(node, RClass::Scalar);
                    node
                } else {
                    match op {
                        TernaryOp::PlusMult | TernaryOp::MinusMult => {
                            let m = self.binary_vs(BinaryOp::Mult, b, c)?;
                            let bop = if op == TernaryOp::PlusMult {
                                BinaryOp::Add
                            } else {
                                BinaryOp::Sub
                            };
                            self.binary_vs(bop, a, m)?
                        }
                        TernaryOp::IfElse => {
                            return Err(ConstructError(
                                "vector ifelse unsupported in Row template".into(),
                            ))
                        }
                    }
                }
            }
            OpKind::MatMult => {
                let l = dag.hop(h.inputs[0]).clone();
                if l.kind == OpKind::Transpose {
                    return Err(ConstructError(
                        "inner t(X)%*%D must be the operator root in Row template".into(),
                    ));
                }
                let a = self.child(id, 0)?;
                let a = self.as_vector_node(a)?;
                let rhs = h.inputs[1];
                let rh = dag.hop(rhs);
                if self.st.is_covered(rhs) && self.st.fused_input(id, 1) {
                    return Err(ConstructError(
                        "covered matmult rhs unsupported in Row template".into(),
                    ));
                }
                if rh.size.cols == 1 {
                    let side = self.st.side_index(rhs);
                    let v = self.st.push(CNode::SideVector { side });
                    self.set_class(v, RClass::Vector(rh.size.rows));
                    let node = self.st.push(CNode::Dot { a, b: v });
                    self.set_class(node, RClass::Scalar);
                    node
                } else {
                    let side = self.st.side_index(rhs);
                    let node = self.st.push(CNode::VectMatMult { a, side });
                    self.set_class(node, RClass::Vector(rh.size.cols));
                    node
                }
            }
            OpKind::Agg { op, dir: AggDir::Row } => {
                let a = self.child(id, 0)?;
                self.scalarize_agg(a, op)?
            }
            OpKind::RightIndex { rows: _, cols } => {
                let input = h.inputs[0];
                let (cl, cu) = cols.unwrap_or((0, dag.hop(input).size.cols));
                if self.st.fused_input(id, 0) && self.st.is_covered(input) {
                    return Err(ConstructError(
                        "slicing covered intermediates unsupported in Row template".into(),
                    ));
                }
                let ih = dag.hop(input);
                if ih.size.rows != self.n && ih.size.rows != 1 {
                    return Err(ConstructError("rix input not row-aligned".into()));
                }
                let side = self.st.side_index(input);
                let node = self.st.push(CNode::SideRow { side, cl, cu });
                self.set_class(node, RClass::Vector(cu - cl));
                node
            }
            ref k => {
                return Err(ConstructError(format!(
                    "unsupported covered op in Row template: {k:?}"
                )))
            }
        };
        self.st.node_map.insert(id, n);
        Ok(n)
    }

    fn child(&mut self, h: HopId, j: usize) -> Result<NodeId, ConstructError> {
        let input = self.st.dag.hop(h).inputs[j];
        if self.st.fused_input(h, j) && self.st.is_covered(input) {
            self.translate(input)
        } else {
            if let Some(&n) = self.st.node_map.get(&input) {
                return Ok(n);
            }
            let n = self.row_input_node(input)?;
            self.st.node_map.insert(input, n);
            Ok(n)
        }
    }

    fn binary_vs(&mut self, op: BinaryOp, a: NodeId, b: NodeId) -> Result<NodeId, ConstructError> {
        let cls = match (self.class(a), self.class(b)) {
            (RClass::Vector(la), RClass::Vector(lb)) => {
                if la != lb {
                    return Err(ConstructError(format!(
                        "vector length mismatch {la} vs {lb} in Row binary"
                    )));
                }
                RClass::Vector(la)
            }
            (RClass::Vector(la), RClass::Scalar) => RClass::Vector(la),
            (RClass::Scalar, RClass::Vector(lb)) => RClass::Vector(lb),
            (RClass::Scalar, RClass::Scalar) => RClass::Scalar,
        };
        let n = self.st.push(CNode::Binary { op, a, b });
        self.set_class(n, cls);
        Ok(n)
    }

    /// Classifies a materialized input in the per-row view.
    fn row_input_node(&mut self, id: HopId) -> Result<NodeId, ConstructError> {
        let h = self.st.dag.hop(id).clone();
        if let OpKind::Literal { value } = h.kind {
            let n = self.st.push(CNode::Const { value });
            self.set_class(n, RClass::Scalar);
            return Ok(n);
        }
        if Some(id) == self.main {
            let cols = h.size.cols;
            let n = self.st.push(CNode::MainRow);
            self.set_class(n, RClass::Vector(cols));
            return Ok(n);
        }
        let (r, c) = (h.size.rows, h.size.cols);
        if r == 1 && c == 1 {
            let idx = self.st.scalar_index(id);
            let n = self.st.push(CNode::ScalarInput { idx });
            self.set_class(n, RClass::Scalar);
            return Ok(n);
        }
        if r == self.n && c == 1 {
            let side = self.st.side_index(id);
            let n = self.st.push(CNode::Side { side, access: SideAccess::Col });
            self.set_class(n, RClass::Scalar);
            return Ok(n);
        }
        if r == self.n || r == 1 {
            let side = self.st.side_index(id);
            let n = self.st.push(CNode::SideRow { side, cl: 0, cu: c });
            self.set_class(n, RClass::Vector(c));
            return Ok(n);
        }
        Err(ConstructError(format!(
            "Row side input {id} of shape {r}x{c} not row-alignable to n={}",
            self.n
        )))
    }
}
