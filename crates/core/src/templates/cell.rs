//! The Cell template: fused operators over individual cells `X_ij` with
//! dense/sparse side inputs and scalars (paper Table 1; Figure 3(b)).

use super::shape;
use super::{CloseDecision, FusionTemplate, TemplateType};
use fusedml_hop::{Hop, HopDag, OpKind};

/// Cell-wise template implementation.
pub struct CellTemplate;

/// True if `h` is a cell-wise map operation with a non-scalar output.
fn is_cellwise(h: &Hop) -> bool {
    matches!(h.kind, OpKind::Unary { .. } | OpKind::Binary { .. } | OpKind::Ternary { .. })
        && shape::is_non_scalar(h)
}

impl FusionTemplate for CellTemplate {
    fn ttype(&self) -> TemplateType {
        TemplateType::Cell
    }

    /// Any cell-wise unary/binary/ternary over a non-scalar output opens a
    /// Cell operator.
    fn open(&self, _dag: &HopDag, h: &Hop) -> bool {
        is_cellwise(h)
    }

    /// Cell operators extend through further cell-wise operations and close
    /// into aggregations (`sum(X ⊙ Y ⊙ Z)`).
    fn fuse(&self, _dag: &HopDag, h: &Hop, input: &Hop) -> bool {
        if is_cellwise(h) {
            // The fused input must participate cell-wise: equal geometry or
            // the input broadcasts against the consumer.
            return shape::broadcast_compatible(h, input);
        }
        if let OpKind::Agg { .. } = h.kind {
            return shape::is_non_scalar(input);
        }
        false
    }

    /// Cell merges other open Cell plans whose geometry broadcasts.
    fn merge(&self, _dag: &HopDag, h: &Hop, input: &Hop) -> bool {
        is_cellwise(h) && shape::broadcast_compatible(h, input)
    }

    /// Any aggregation closes a Cell template as valid (Table 1 lists
    /// no-agg, row-agg, col-agg, and full-agg Cell variants).
    fn close(&self, _dag: &HopDag, h: &Hop) -> CloseDecision {
        match h.kind {
            OpKind::Agg { .. } => CloseDecision::ClosedValid,
            _ => CloseDecision::Open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_hop::DagBuilder;

    /// Builds `sum(X*Y*Z)` and returns (dag, ids).
    fn cell_chain() -> (HopDag, Vec<fusedml_hop::HopId>) {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 100, 1.0);
        let y = b.read("Y", 100, 100, 1.0);
        let z = b.read("Z", 100, 100, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        let dag = b.build(vec![s]);
        (dag, vec![x, y, z, m1, m2, s])
    }

    #[test]
    fn opens_on_cellwise_ops() {
        let (dag, ids) = cell_chain();
        let t = CellTemplate;
        assert!(t.open(&dag, dag.hop(ids[3])), "b(*) opens");
        assert!(t.open(&dag, dag.hop(ids[4])), "b(*) opens");
        assert!(!t.open(&dag, dag.hop(ids[0])), "read does not open");
        assert!(!t.open(&dag, dag.hop(ids[5])), "agg does not open");
    }

    #[test]
    fn fuses_through_chain_and_into_agg() {
        let (dag, ids) = cell_chain();
        let t = CellTemplate;
        assert!(t.fuse(&dag, dag.hop(ids[4]), dag.hop(ids[3])), "b(*)→b(*)");
        assert!(t.fuse(&dag, dag.hop(ids[5]), dag.hop(ids[4])), "b(*)→sum");
    }

    #[test]
    fn agg_closes_valid() {
        let (dag, ids) = cell_chain();
        let t = CellTemplate;
        assert_eq!(t.close(&dag, dag.hop(ids[5])), CloseDecision::ClosedValid);
        assert_eq!(t.close(&dag, dag.hop(ids[4])), CloseDecision::Open);
    }

    #[test]
    fn scalar_outputs_do_not_open() {
        let mut b = DagBuilder::new();
        let c1 = b.lit(1.0);
        let c2 = b.lit(2.0);
        let s = b.add(c1, c2);
        let x = b.read("X", 10, 10, 1.0);
        let y = b.mult(x, s);
        let dag = b.build(vec![y]);
        let t = CellTemplate;
        assert!(!t.open(&dag, dag.hop(s)), "scalar add does not open");
        assert!(t.open(&dag, dag.hop(y)), "matrix-scalar mult opens");
    }

    #[test]
    fn broadcast_vector_fuses() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 50, 20, 1.0);
        let v = b.read("v", 50, 1, 1.0);
        let yv = b.sq(v);
        let m = b.mult(x, yv);
        let dag = b.build(vec![m]);
        let t = CellTemplate;
        assert!(t.fuse(&dag, dag.hop(m), dag.hop(yv)), "col-vector chain fuses");
        assert!(t.merge(&dag, dag.hop(m), dag.hop(yv)), "col-vector chain merges");
    }

    #[test]
    fn incompatible_shapes_do_not_fuse() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 50, 20, 1.0);
        let w = b.read("W", 20, 7, 1.0);
        let sqw = b.sq(w);
        let mm = b.mm(x, sqw);
        let dag = b.build(vec![mm]);
        let t = CellTemplate;
        assert!(!t.fuse(&dag, dag.hop(mm), dag.hop(sqw)), "matmult is not cellwise");
    }
}
