//! The Row template: fused operators over sparse/dense rows `X_i` with side
//! inputs and scalars (paper Table 1; Figure 3(c) shows the MLogreg core).

use super::shape;
use super::{CloseDecision, FusionTemplate, TemplateType};
use fusedml_hop::{Hop, HopDag, OpKind};
use fusedml_linalg::ops::AggDir;

/// Maximum number of columns of a matmult right-hand side that still counts
/// as "skinny" for Row fusion (`X %*% V` with narrow `V`), mirroring
/// SystemML's `isFuseSkinnyMatrixMult`.
pub const ROW_NARROW_MAX: usize = 128;

/// Row-wise template implementation.
pub struct RowTemplate;

/// Cell-wise map over a proper matrix (rows>1, cols>1): row-representable.
fn is_rowwise_cellwise(h: &Hop) -> bool {
    matches!(h.kind, OpKind::Unary { .. } | OpKind::Binary { .. } | OpKind::Ternary { .. })
        && shape::is_matrix(h)
}

/// `mm(X, V)` with a skinny right-hand side and a non-transpose left input:
/// per-row `vectMatMult`. (`mm(t(X), D)` is reached by *fusing* the left
/// transpose instead, as in paper Figure 5 group 11.)
fn is_skinny_matmult(dag: &HopDag, h: &Hop) -> bool {
    if h.kind != OpKind::MatMult {
        return false;
    }
    let l = dag.hop(h.inputs[0]);
    let r = dag.hop(h.inputs[1]);
    l.kind != OpKind::Transpose
        && l.size.rows > 1
        && l.size.cols > 1
        && r.size.cols <= ROW_NARROW_MAX
        && r.size.cols < l.size.cols.max(2)
}

/// `rix` keeping all rows (a column slice), usable as a per-row vector slice.
fn is_col_slice(h: &Hop, input: &Hop) -> bool {
    match h.kind {
        OpKind::RightIndex { rows, cols: _ } => {
            let full_rows = match rows {
                None => true,
                Some((lo, hi)) => lo == 0 && hi == input.size.rows,
            };
            full_rows && h.size.rows > 1
        }
        _ => false,
    }
}

impl FusionTemplate for RowTemplate {
    fn ttype(&self) -> TemplateType {
        TemplateType::Row
    }

    fn open(&self, dag: &HopDag, h: &Hop) -> bool {
        match h.kind {
            // Cell-wise matrix ops open Row just like Cell; costing decides.
            OpKind::Unary { .. } | OpKind::Binary { .. } | OpKind::Ternary { .. } => {
                is_rowwise_cellwise(h)
            }
            // Skinny matrix multiplies (matrix-vector and X %*% V).
            OpKind::MatMult => is_skinny_matmult(dag, h),
            // Transpose opens so that mm(t(X), D) can fuse its left input
            // (Figure 5 group 10 holds R(-1)).
            OpKind::Transpose => shape::is_matrix(h),
            // Row/column aggregations over matrices (rowSums, colSums, …).
            OpKind::Agg { dir: AggDir::Row, .. } | OpKind::Agg { dir: AggDir::Col, .. } => {
                let input = dag.hop(h.inputs[0]);
                shape::is_matrix(input)
            }
            // Column slices (Figure 5 group 5 holds R(-1)).
            OpKind::RightIndex { .. } => {
                let input = dag.hop(h.inputs[0]);
                is_col_slice(h, input) && shape::is_matrix(input)
            }
            _ => false,
        }
    }

    fn fuse(&self, dag: &HopDag, h: &Hop, input: &Hop) -> bool {
        match h.kind {
            // Cell-wise continuation on the same row domain (including
            // vector intermediates like rowSums outputs).
            OpKind::Unary { .. } | OpKind::Binary { .. } | OpKind::Ternary { .. } => {
                shape::is_non_scalar(h) && h.size.rows == input.size.rows && h.size.rows > 1
            }
            // Aggregations over the covered input.
            OpKind::Agg { .. } => input.size.rows > 1,
            OpKind::MatMult => {
                let l = dag.hop(h.inputs[0]);
                let r = dag.hop(h.inputs[1]);
                if input.id == r.id && l.kind == OpKind::Transpose {
                    // t(X) %*% D — column-aggregating outer accumulation;
                    // the transpose child and D must share the row domain.
                    let x = dag.hop(l.inputs[0]);
                    return x.size.rows == r.size.rows && x.size.rows > 1;
                }
                if input.id == l.id && l.kind == OpKind::Transpose {
                    // Fusing the left transpose itself (R(10,-1) in Fig. 5):
                    // same geometric condition viewed from the other side.
                    let x = dag.hop(l.inputs[0]);
                    return x.size.rows == r.size.rows && x.size.rows > 1;
                }
                if input.id == l.id && l.kind != OpKind::Transpose {
                    // D %*% V with a skinny side V: per-row vectMatMult.
                    return r.size.cols <= ROW_NARROW_MAX && l.size.rows > 1;
                }
                false
            }
            // Column slicing of a covered row-aligned intermediate.
            OpKind::RightIndex { .. } => is_col_slice(h, input),
            _ => false,
        }
    }

    fn merge(&self, _dag: &HopDag, h: &Hop, input: &Hop) -> bool {
        // Row absorbs Row/Cell plans on the same row domain (type
        // compatibility is checked by the explorer via merge_compatible).
        input.size.rows == h.size.rows && h.size.rows > 1 && !input.kind.is_leaf()
    }

    /// Only column-wise or full aggregations close a Row template (paper
    /// §3.2); row aggregations keep the row domain and stay open. The
    /// `t(X) %*% D` matmult produces a column-aggregated output and closes.
    fn close(&self, dag: &HopDag, h: &Hop) -> CloseDecision {
        match h.kind {
            OpKind::Agg { dir: AggDir::Col, .. } | OpKind::Agg { dir: AggDir::Full, .. } => {
                CloseDecision::ClosedValid
            }
            OpKind::MatMult => {
                let l = dag.hop(h.inputs[0]);
                if l.kind == OpKind::Transpose {
                    CloseDecision::ClosedValid
                } else {
                    CloseDecision::Open
                }
            }
            _ => CloseDecision::Open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_hop::DagBuilder;

    /// `t(X) %*% (X %*% v)` — the paper's Figure 1(b) / 8(e) pattern.
    fn mv_chain() -> (HopDag, [fusedml_hop::HopId; 5]) {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 100, 1.0);
        let v = b.read("v", 100, 1, 1.0);
        let xv = b.mm(x, v);
        let xt = b.t(x);
        let out = b.mm(xt, xv);
        let dag = b.build(vec![out]);
        (dag, [x, v, xv, xt, out])
    }

    #[test]
    fn matrix_vector_mm_opens() {
        let (dag, ids) = mv_chain();
        let t = RowTemplate;
        assert!(t.open(&dag, dag.hop(ids[2])), "X%*%v opens Row");
        assert!(t.open(&dag, dag.hop(ids[3])), "t(X) opens Row");
        assert!(!t.open(&dag, dag.hop(ids[4])), "t(X)%*%D does not open (fuse-only)");
    }

    #[test]
    fn transpose_mm_fuses_both_sides() {
        let (dag, ids) = mv_chain();
        let t = RowTemplate;
        let out = dag.hop(ids[4]);
        assert!(t.fuse(&dag, out, dag.hop(ids[2])), "fuse right (Xv)");
        assert!(t.fuse(&dag, out, dag.hop(ids[3])), "fuse left t(X)");
    }

    #[test]
    fn tx_mm_closes_valid() {
        let (dag, ids) = mv_chain();
        let t = RowTemplate;
        assert_eq!(t.close(&dag, dag.hop(ids[4])), CloseDecision::ClosedValid);
        assert_eq!(t.close(&dag, dag.hop(ids[2])), CloseDecision::Open);
    }

    #[test]
    fn row_agg_stays_open_col_agg_closes() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 50, 1.0);
        let rs = b.row_sums(x);
        let cs = b.col_sums(x);
        let dag = b.build(vec![rs, cs]);
        let t = RowTemplate;
        assert!(t.open(&dag, dag.hop(rs)));
        assert!(t.open(&dag, dag.hop(cs)));
        assert_eq!(t.close(&dag, dag.hop(rs)), CloseDecision::Open);
        assert_eq!(t.close(&dag, dag.hop(cs)), CloseDecision::ClosedValid);
    }

    #[test]
    fn wide_mm_does_not_open() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 200, 1.0);
        let w = b.read("W", 200, 200, 1.0);
        let mm = b.mm(x, w);
        let dag = b.build(vec![mm]);
        assert!(!RowTemplate.open(&dag, dag.hop(mm)), "200-wide rhs is not skinny");
    }

    #[test]
    fn col_slice_opens_and_fuses() {
        let mut b = DagBuilder::new();
        let p = b.read("P", 100, 6, 1.0);
        let pk = b.rix(p, None, Some((0, 5)));
        let xv = b.read("Q", 100, 5, 1.0);
        let m = b.mult(pk, xv);
        let dag = b.build(vec![m]);
        let t = RowTemplate;
        assert!(t.open(&dag, dag.hop(pk)), "column slice opens Row");
        assert!(t.fuse(&dag, dag.hop(m), dag.hop(pk)), "slice fuses into b(*)");
    }

    #[test]
    fn row_slice_does_not_open() {
        let mut b = DagBuilder::new();
        let p = b.read("P", 100, 6, 1.0);
        let slice = b.rix(p, Some((0, 10)), None);
        let dag = b.build(vec![slice]);
        assert!(!RowTemplate.open(&dag, dag.hop(slice)), "row slicing breaks row binding");
    }

    #[test]
    fn merge_requires_same_row_domain() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 50, 1.0);
        let y = b.read("Y", 100, 1, 1.0);
        let z = b.read("Z", 100, 1, 1.0);
        let yz = b.mult(y, z);
        let v = b.read("v", 50, 1, 1.0);
        let xv = b.mm(x, v);
        let m = b.mult(xv, yz);
        let dag = b.build(vec![m]);
        let t = RowTemplate;
        assert!(t.merge(&dag, dag.hop(m), dag.hop(yz)), "vector cell chain merges");
    }
}
