//! The Outer template: sparsity-exploiting fused operators over outer-
//! product-like expressions `f(X, U V^T)` (paper Table 1; Figure 3(a) shows
//! the ALS-CG update rule).

use super::shape;
use super::{CloseDecision, FusionTemplate, TemplateType};
use fusedml_hop::{Hop, HopDag, HopId, OpKind};
use fusedml_linalg::ops::{AggDir, AggOp};

/// Maximum factorization rank for which the Outer template applies (the
/// paper's size constraint: rank "in the tens to hundreds").
pub const OUTER_MAX_RANK: usize = 256;
/// Minimum cell count of the outer-product plane: below this, materializing
/// `U V^T` is harmless and the template is pointless.
pub const OUTER_MIN_CELLS: usize = 4096;

/// Outer-product template implementation.
pub struct OuterTemplate;

/// Recognizes `mm(U, t(V))`-shaped outer products with a small rank and a
/// large output plane.
fn is_outer_product(dag: &HopDag, h: &Hop) -> Option<(HopId, HopId)> {
    if h.kind != OpKind::MatMult {
        return None;
    }
    let u = dag.hop(h.inputs[0]);
    let vt = dag.hop(h.inputs[1]);
    let rank = u.size.cols;
    let plane_ok = h.size.rows > rank && h.size.cols > rank && h.size.cells() >= OUTER_MIN_CELLS;
    ((1..=OUTER_MAX_RANK).contains(&rank) && plane_ok).then_some((u.id, vt.id))
}

/// Cell-wise op over the same plane geometry as `input`.
fn is_plane_cellwise(h: &Hop, input: &Hop) -> bool {
    matches!(h.kind, OpKind::Unary { .. } | OpKind::Binary { .. })
        && h.size.rows == input.size.rows
        && h.size.cols == input.size.cols
        && shape::is_matrix(h)
}

impl FusionTemplate for OuterTemplate {
    fn ttype(&self) -> TemplateType {
        TemplateType::Outer
    }

    /// Opens at outer-product-like matrix multiplications with size
    /// constraints (paper §3.2).
    fn open(&self, dag: &HopDag, h: &Hop) -> bool {
        is_outer_product(dag, h).is_some()
    }

    fn fuse(&self, dag: &HopDag, h: &Hop, input: &Hop) -> bool {
        match h.kind {
            // Cell-wise chains over the n×m plane: unary maps (log, exp…),
            // binaries with scalars (P + eps), and *sparse-safe* binaries
            // with matrix operands (X ⊙ P). A non-sparse-safe binary with a
            // dense matrix (Y + P) destroys sparsity exploitation and must
            // not fuse — which is what makes such edges template switches
            // (paper §4.2).
            OpKind::Unary { .. } => is_plane_cellwise(h, input),
            OpKind::Binary { op } => {
                if !is_plane_cellwise(h, input) {
                    return false;
                }
                let other =
                    dag.hop(if h.inputs[0] == input.id { h.inputs[1] } else { h.inputs[0] });
                let other_scalar = other.size.rows == 1 && other.size.cols == 1;
                other_scalar || op.sparse_safe_left() || op == fusedml_linalg::ops::BinaryOp::Neq
            }
            // Full-sum aggregation (e.g. the loss expression of Fig. 1(d)).
            OpKind::Agg { op: AggOp::Sum, dir: AggDir::Full } => shape::is_matrix(input),
            // Transpose of the plane: pass-through marker feeding a left mm.
            OpKind::Transpose => shape::is_matrix(input),
            // Final matrix multiplies consuming the plane: right-mm
            // `P %*% V` or left-mm `t(P) %*% U`, both with rank-width sides.
            OpKind::MatMult => {
                let l = dag.hop(h.inputs[0]);
                let r = dag.hop(h.inputs[1]);
                if input.id == l.id {
                    // Right mm: plane (n×m) %*% side (m×r).
                    r.size.cols <= OUTER_MAX_RANK && shape::is_matrix(input)
                } else if input.id == r.id && l.kind == OpKind::Transpose {
                    // Left mm via transposed plane fused earlier — the input
                    // here is the plane's transpose marker.
                    false
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Outer absorbs Cell chains (e.g. `(X != 0)`) on the plane geometry.
    fn merge(&self, _dag: &HopDag, h: &Hop, input: &Hop) -> bool {
        shape::is_matrix(h)
            && input.size.rows == h.size.rows
            && input.size.cols == h.size.cols
            && !input.kind.is_leaf()
    }

    /// Aggregations and the final matrix multiply close the template; row
    /// and column aggregations are unsupported (closed invalid).
    fn close(&self, dag: &HopDag, h: &Hop) -> CloseDecision {
        match h.kind {
            OpKind::Agg { op: AggOp::Sum, dir: AggDir::Full } => CloseDecision::ClosedValid,
            OpKind::Agg { .. } => CloseDecision::ClosedInvalid,
            OpKind::MatMult => {
                // Closing mm: one of its inputs is the covered plane; the
                // opening outer product itself stays open.
                if is_outer_product(dag, h).is_some() {
                    CloseDecision::Open
                } else {
                    CloseDecision::ClosedValid
                }
            }
            _ => CloseDecision::Open,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_hop::DagBuilder;

    /// `sum(X ⊙ log(U V^T + eps))` — Figure 1(d) / 8(h).
    fn loss_expr() -> (HopDag, [fusedml_hop::HopId; 8]) {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2000, 2000, 0.01);
        let u = b.read("U", 2000, 100, 1.0);
        let v = b.read("V", 2000, 100, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let eps = b.lit(1e-15);
        let plus = b.add(uvt, eps);
        let lg = b.log(plus);
        let prod = b.mult(x, lg);
        let s = b.sum(prod);
        let dag = b.build(vec![s]);
        (dag, [x, u, vt, uvt, plus, lg, prod, s])
    }

    #[test]
    fn outer_product_opens() {
        let (dag, ids) = loss_expr();
        let t = OuterTemplate;
        assert!(t.open(&dag, dag.hop(ids[3])), "U V^T opens Outer");
        assert!(!t.open(&dag, dag.hop(ids[6])), "cellwise mult does not open Outer");
    }

    #[test]
    fn plane_chain_fuses_to_sum() {
        let (dag, ids) = loss_expr();
        let t = OuterTemplate;
        assert!(t.fuse(&dag, dag.hop(ids[4]), dag.hop(ids[3])), "plane + eps");
        assert!(t.fuse(&dag, dag.hop(ids[5]), dag.hop(ids[4])), "log(plane)");
        assert!(t.fuse(&dag, dag.hop(ids[6]), dag.hop(ids[5])), "X ⊙ plane");
        assert!(t.fuse(&dag, dag.hop(ids[7]), dag.hop(ids[6])), "sum(plane)");
    }

    #[test]
    fn sum_closes_valid_rowagg_invalid() {
        let (dag, ids) = loss_expr();
        let t = OuterTemplate;
        assert_eq!(t.close(&dag, dag.hop(ids[7])), CloseDecision::ClosedValid);
        let mut b = DagBuilder::new();
        let u = b.read("U", 2000, 10, 1.0);
        let v = b.read("V", 500, 10, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let rs = b.row_sums(uvt);
        let dag2 = b.build(vec![rs]);
        assert_eq!(t.close(&dag2, dag2.hop(rs)), CloseDecision::ClosedInvalid);
    }

    #[test]
    fn small_rank_constraint() {
        let mut b = DagBuilder::new();
        let u = b.read("U", 1000, 500, 1.0); // rank 500 > 256
        let v = b.read("V", 1000, 500, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let dag = b.build(vec![uvt]);
        assert!(!OuterTemplate.open(&dag, dag.hop(uvt)), "rank too large");
    }

    #[test]
    fn small_plane_constraint() {
        let mut b = DagBuilder::new();
        let u = b.read("U", 20, 4, 1.0);
        let v = b.read("V", 20, 4, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt); // 400 cells < OUTER_MIN_CELLS
        let dag = b.build(vec![uvt]);
        assert!(!OuterTemplate.open(&dag, dag.hop(uvt)));
    }

    #[test]
    fn right_mm_fuses_plane() {
        // ((X != 0) ⊙ (U V^T)) %*% V — the ALS-CG update (Expression 1).
        let mut b = DagBuilder::new();
        let x = b.read("X", 2000, 1000, 0.01);
        let u = b.read("U", 2000, 20, 1.0);
        let v = b.read("V", 1000, 20, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let zero = b.lit(0.0);
        let mask = b.neq(x, zero);
        let w = b.mult(mask, uvt);
        let out = b.mm(w, v);
        let dag = b.build(vec![out]);
        let t = OuterTemplate;
        assert!(t.fuse(&dag, dag.hop(w), dag.hop(uvt)), "mask ⊙ plane");
        assert!(t.fuse(&dag, dag.hop(out), dag.hop(w)), "plane %*% V (right mm)");
        assert_eq!(t.close(&dag, dag.hop(out)), CloseDecision::ClosedValid);
        assert!(t.merge(&dag, dag.hop(w), dag.hop(mask)), "Cell mask merges into Outer");
    }
}
