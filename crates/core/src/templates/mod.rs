//! Fusion template types and the OFMC (open-fuse-merge-close) abstraction
//! (paper §3.2, Table 1).
//!
//! Each template implements four predicates that fully separate template-
//! specific fusion conditions from the DAG traversal in [`crate::explore`]:
//!
//! * `open(h)` — can a new fused operator of this template start at `h`?
//! * `fuse(h, in)` — can an open operator at input `in` expand to consumer `h`?
//! * `merge(h, in)` — can an operator at consumer `h` absorb plans at `in`?
//! * `close(h)` — does `h` close the template (valid/invalid) or leave it open?

mod cell;
mod outer;
mod row;

pub use cell::CellTemplate;
pub use outer::OuterTemplate;
pub use row::RowTemplate;

use fusedml_hop::{Hop, HopDag};

/// Template types of Table 1. `MAgg` is assembled during candidate selection
/// from closed full-aggregate Cell plans sharing inputs (it never explores
/// independently), so only Cell/Row/Outer participate in OFMC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TemplateType {
    Row,
    Cell,
    MAgg,
    Outer,
}

impl TemplateType {
    /// Single-letter tag used in memo-table rendering (paper Figure 5).
    pub fn tag(self) -> &'static str {
        match self {
            TemplateType::Row => "R",
            TemplateType::Cell => "C",
            TemplateType::MAgg => "M",
            TemplateType::Outer => "O",
        }
    }

    /// Whether an operator of type `self` can absorb a partial plan of type
    /// `input` at one of its inputs (e.g. Cell templates merge into Row
    /// templates, paper §3.2).
    pub fn merge_compatible(self, input: TemplateType) -> bool {
        match self {
            TemplateType::Row => matches!(input, TemplateType::Row | TemplateType::Cell),
            TemplateType::Cell => input == TemplateType::Cell,
            TemplateType::Outer => matches!(input, TemplateType::Outer | TemplateType::Cell),
            TemplateType::MAgg => false,
        }
    }

    /// Selection preference when several template types cover the same root
    /// (higher wins): sparsity-exploiting and wider-scope templates first,
    /// mirroring SystemML's type precedence.
    pub fn preference(self) -> u8 {
        match self {
            TemplateType::MAgg => 3,
            TemplateType::Outer => 2,
            TemplateType::Row => 1,
            TemplateType::Cell => 0,
        }
    }
}

/// Close decision of a template at a HOP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseDecision {
    /// The operator stays open and may fuse further consumers.
    Open,
    /// The HOP closes the operator; the plan remains valid.
    ClosedValid,
    /// The HOP closes the operator and invalidates the plan.
    ClosedInvalid,
}

/// The OFMC template interface (paper §3.2).
pub trait FusionTemplate: Sync {
    /// This template's type.
    fn ttype(&self) -> TemplateType;
    /// Opening condition at `h`.
    fn open(&self, dag: &HopDag, h: &Hop) -> bool;
    /// Expansion condition from an open operator at `input` to consumer `h`.
    fn fuse(&self, dag: &HopDag, h: &Hop, input: &Hop) -> bool;
    /// Merge condition: can an operator at `h` absorb input plans at `input`
    /// (of any [`TemplateType::merge_compatible`] type)?
    fn merge(&self, dag: &HopDag, h: &Hop, input: &Hop) -> bool;
    /// Close status after `h`.
    fn close(&self, dag: &HopDag, h: &Hop) -> CloseDecision;
}

/// The template registry used by exploration (order irrelevant).
pub fn all_templates() -> &'static [&'static dyn FusionTemplate] {
    static CELL: CellTemplate = CellTemplate;
    static ROW: RowTemplate = RowTemplate;
    static OUTER: OuterTemplate = OuterTemplate;
    static ALL: [&dyn FusionTemplate; 3] = [&ROW, &CELL, &OUTER];
    &ALL
}

/// Looks up the template implementation for a type (panics for `MAgg`,
/// which has no OFMC behaviour).
pub fn template_for(t: TemplateType) -> &'static dyn FusionTemplate {
    all_templates()
        .iter()
        .copied()
        .find(|tpl| tpl.ttype() == t)
        .unwrap_or_else(|| panic!("no OFMC template for {t:?}"))
}

/// Shared shape helpers for template conditions.
pub(crate) mod shape {
    use fusedml_hop::Hop;

    /// rows>1 && cols>1.
    pub fn is_matrix(h: &Hop) -> bool {
        h.size.rows > 1 && h.size.cols > 1
    }

    /// 1×1.
    pub fn is_scalar(h: &Hop) -> bool {
        h.size.rows == 1 && h.size.cols == 1
    }

    /// Not 1×1.
    pub fn is_non_scalar(h: &Hop) -> bool {
        !is_scalar(h)
    }

    /// True when `b` broadcasts cell-wise against `a`'s geometry.
    pub fn broadcast_compatible(a: &Hop, b: &Hop) -> bool {
        (b.size.rows == a.size.rows || b.size.rows == 1)
            && (b.size.cols == a.size.cols || b.size.cols == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_compatibility_matrix() {
        use TemplateType::*;
        assert!(Row.merge_compatible(Cell));
        assert!(Row.merge_compatible(Row));
        assert!(!Row.merge_compatible(Outer));
        assert!(Cell.merge_compatible(Cell));
        assert!(!Cell.merge_compatible(Row));
        assert!(Outer.merge_compatible(Cell));
        assert!(!MAgg.merge_compatible(Cell));
    }

    #[test]
    fn preferences_order_types() {
        use TemplateType::*;
        assert!(MAgg.preference() > Outer.preference());
        assert!(Outer.preference() > Row.preference());
        assert!(Row.preference() > Cell.preference());
    }

    #[test]
    fn registry_has_three_ofmc_templates() {
        assert_eq!(all_templates().len(), 3);
        assert_eq!(template_for(TemplateType::Cell).ttype(), TemplateType::Cell);
    }

    #[test]
    #[should_panic(expected = "no OFMC template")]
    fn magg_has_no_ofmc_template() {
        template_for(TemplateType::MAgg);
    }
}
