//! Optimizer and codegen statistics (paper Table 3, Figures 11–12).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Counters collected across optimizer invocations. All counters are atomic
/// so the executor's dynamic recompilation can update them concurrently.
#[derive(Default, Debug)]
pub struct CodegenStats {
    /// Number of HOP DAGs passed through the optimizer.
    pub dags_optimized: AtomicUsize,
    /// Number of CPlans constructed.
    pub cplans_constructed: AtomicUsize,
    /// Number of operators compiled (plan-cache misses).
    pub operators_compiled: AtomicUsize,
    /// Number of plan-cache hits.
    pub cache_hits: AtomicUsize,
    /// Plans costed by the enumeration algorithm (Figure 12's y-axis).
    pub plans_evaluated: AtomicU64,
    /// Plans skipped by cost-based pruning.
    pub plans_pruned_cost: AtomicU64,
    /// Plans skipped by structural pruning (cut sets).
    pub plans_pruned_structural: AtomicU64,
    /// Total optimizer time (exploration + selection), nanoseconds.
    pub optimize_nanos: AtomicU64,
    /// Total code generation time (CPlan construction + compile), nanoseconds.
    pub codegen_nanos: AtomicU64,
    /// Number of independent plan partitions optimized.
    pub partitions: AtomicUsize,
    /// Total number of interesting points across partitions.
    pub interesting_points: AtomicUsize,
}

impl CodegenStats {
    pub fn new() -> Self {
        CodegenStats::default()
    }

    pub fn add_plans_evaluated(&self, n: u64) {
        self.plans_evaluated.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            dags_optimized: self.dags_optimized.load(Ordering::Relaxed),
            cplans_constructed: self.cplans_constructed.load(Ordering::Relaxed),
            operators_compiled: self.operators_compiled.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            plans_evaluated: self.plans_evaluated.load(Ordering::Relaxed),
            plans_pruned_cost: self.plans_pruned_cost.load(Ordering::Relaxed),
            plans_pruned_structural: self.plans_pruned_structural.load(Ordering::Relaxed),
            optimize_seconds: self.optimize_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            codegen_seconds: self.codegen_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            partitions: self.partitions.load(Ordering::Relaxed),
            interesting_points: self.interesting_points.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.dags_optimized.store(0, Ordering::Relaxed);
        self.cplans_constructed.store(0, Ordering::Relaxed);
        self.operators_compiled.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.plans_evaluated.store(0, Ordering::Relaxed);
        self.plans_pruned_cost.store(0, Ordering::Relaxed);
        self.plans_pruned_structural.store(0, Ordering::Relaxed);
        self.optimize_nanos.store(0, Ordering::Relaxed);
        self.codegen_nanos.store(0, Ordering::Relaxed);
        self.partitions.store(0, Ordering::Relaxed);
        self.interesting_points.store(0, Ordering::Relaxed);
    }
}

/// A plain-data snapshot of [`CodegenStats`] for reporting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    pub dags_optimized: usize,
    pub cplans_constructed: usize,
    pub operators_compiled: usize,
    pub cache_hits: usize,
    pub plans_evaluated: u64,
    pub plans_pruned_cost: u64,
    pub plans_pruned_structural: u64,
    pub optimize_seconds: f64,
    pub codegen_seconds: f64,
    pub partitions: usize,
    pub interesting_points: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let s = CodegenStats::new();
        s.dags_optimized.fetch_add(3, Ordering::Relaxed);
        s.add_plans_evaluated(100);
        let snap = s.snapshot();
        assert_eq!(snap.dags_optimized, 3);
        assert_eq!(snap.plans_evaluated, 100);
        s.reset();
        assert_eq!(s.snapshot().plans_evaluated, 0);
    }
}
