// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]
//! # fusedml-core
//!
//! The paper's primary contribution: a cost-based optimization framework for
//! operator fusion plans over HOP DAGs (Boehm et al., VLDB 2018).
//!
//! The compiler runs in five steps (paper §2.1 "Codegen Architecture"):
//!
//! 1. **Candidate exploration** ([`explore`]) — a bottom-up, template-
//!    oblivious OFMC (open-fuse-merge-close) pass populating the
//!    [`memo::MemoTable`] with all valid partial fusion plans,
//! 2. **Candidate selection** ([`opt`]) — plan partitioning, interesting
//!    points, the analytical cost model, and the `MPSkipEnum` enumeration
//!    algorithm (plus the fuse-all / fuse-no-redundancy heuristic baselines),
//! 3. **CPlan construction** ([`cplan`]) — backend-independent code
//!    generation plans for the selected fusion plans,
//! 4. **Code generation** ([`codegen`]) — rendered operator source plus a
//!    compiled register program executed by the runtime skeletons, cached in
//!    the [`plancache::PlanCache`],
//! 5. **DAG modification** — the optimizer output maps covered HOPs to fused
//!    operators ([`optimizer::FusionPlan`]), applied by the runtime executor.

pub mod codegen;
pub mod cplan;
pub mod explore;
pub mod memo;
pub mod opt;
pub mod optimizer;
pub mod plancache;
pub mod spoof;
pub mod stats;
pub mod templates;
pub mod util;

pub use memo::{InputRef, MemoEntry, MemoTable};
pub use optimizer::{optimize, FusedOperator, FusionMode, FusionPlan, Optimizer};
pub use templates::TemplateType;
