//! The plan cache: reuses compiled fused operators across DAGs and dynamic
//! recompilation (paper §2.1, Figure 11).
//!
//! Generated operators are keyed by the structural CPlan hash, so equivalent
//! CPlans — e.g. the same update rule recompiled every iteration — map to
//! one compiled operator. The cache also tracks hit/miss statistics and the
//! cumulative compilation time, which the Figure 11 and Table 3 harnesses
//! report.
//!
//! None of the caches here are process-wide: each `fusedml_runtime::Engine`
//! owns one [`KernelCaches`] (the lowered block/row kernels the skeletons
//! execute) and one [`PlanCache`] over it, so engines with different
//! configurations never share compiled state.

use crate::codegen::{generate, CodegenOptions, GeneratedOperator};
use crate::cplan::CPlan;
use crate::spoof::block::{
    compile_kernel, compile_row_kernel, program_hash, row_kernel_hash, BlockKernel, CellBackend,
    RowKernel,
};
use crate::spoof::{FusedSpec, Program, RowSpec};
use crate::util::LruMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default bound on distinct compiled operators retained per plan cache.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// A concurrent, capacity-bounded plan cache for generated operators
/// (LRU eviction via [`LruMap`]: hits touch entries, so hot operators
/// survive churn of cold ones).
pub struct PlanCache {
    state: Mutex<LruMap<Arc<GeneratedOperator>>>,
    /// The kernel caches warmed on compilation (shared with the runtime
    /// skeletons of the owning engine).
    kernels: Arc<KernelCaches>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Cumulative compile time (nanoseconds) spent on cache misses.
    compile_nanos: AtomicU64,
    /// Monotonic operator name counter (TMP0, TMP1, …).
    name_counter: AtomicUsize,
    /// Whether lookups are enabled (disabled = always compile; used by the
    /// Figure 11 "without plan cache" configuration).
    enabled: std::sync::atomic::AtomicBool,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// A plan cache with its own kernel caches and the default capacity.
    pub fn new() -> Self {
        Self::with_kernels(Arc::new(KernelCaches::default()), DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// A plan cache warming the given (engine-owned) kernel caches, retaining
    /// at most `capacity` compiled operators.
    pub fn with_kernels(kernels: Arc<KernelCaches>, capacity: usize) -> Self {
        let pc = PlanCache {
            state: Mutex::new(LruMap::new(capacity)),
            kernels,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            compile_nanos: AtomicU64::new(0),
            name_counter: AtomicUsize::new(0),
            enabled: std::sync::atomic::AtomicBool::new(true),
        };
        pc.enabled.store(true, Ordering::Relaxed);
        pc
    }

    /// The kernel caches this plan cache warms.
    pub fn kernels(&self) -> &Arc<KernelCaches> {
        &self.kernels
    }

    /// Enables or disables cache lookups (compilation still records stats).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Looks up or compiles the operator for a CPlan.
    pub fn get_or_compile(&self, cplan: &CPlan, opts: &CodegenOptions) -> Arc<GeneratedOperator> {
        let key = cplan.structural_hash();
        if self.enabled.load(Ordering::Relaxed) {
            if let Some(op) = self.state.lock().get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(op);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let n = self.name_counter.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let op = Arc::new(generate(cplan, &format!("TMP{n}"), opts));
        // Lower the tile-vectorized block kernel (Cell/MAgg/Outer) or the
        // band-lowered row kernel (Row) eagerly so its cost is part of the
        // measured compile time (Figure 11) and the first execution hits the
        // warm kernel cache. With lookups disabled (the "no plan cache"
        // configuration) the shared kernel caches must not hide the lowering
        // cost either: pay it on every compile, like a cold JIT.
        match &op.spec {
            FusedSpec::Row(r) => {
                if self.enabled.load(Ordering::Relaxed) {
                    let _ = self.kernels.row.get_or_lower(r, &cplan.side_dims);
                } else {
                    std::hint::black_box(compile_row_kernel(r, &cplan.side_dims));
                }
            }
            _ => {
                if self.enabled.load(Ordering::Relaxed) {
                    let _ = self.kernels.block.get_or_lower(op.spec.program());
                } else {
                    std::hint::black_box(compile_kernel(op.spec.program()));
                }
            }
        }
        self.compile_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.state.lock().insert(key, Arc::clone(&op));
        op
    }

    /// (hits, misses).
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Cumulative compile time in seconds.
    pub fn compile_seconds(&self) -> f64 {
        self.compile_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Number of distinct compiled operators.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears contents and statistics.
    pub fn clear(&self) {
        self.state.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.compile_nanos.store(0, Ordering::Relaxed);
    }
}

/// Default bound on distinct lowered kernels retained per kernel cache —
/// kernels are keyed by structural program hash, so this comfortably covers
/// every workload in the evaluation while keeping long-running engines with
/// churning programs bounded (matching the plan cache's capacity policy).
pub const DEFAULT_KERNEL_CACHE_CAPACITY: usize = 1024;

/// Shared machinery of the kernel caches: a concurrent, capacity-bounded
/// map keyed by a caller-computed structural hash, with hit/miss
/// statistics. The concrete caches ([`BlockProgramCache`],
/// [`RowKernelCache`]) wrap this with their key derivation and lowering
/// function, and expose the statistics API through `Deref`. Eviction is
/// LRU, like [`PlanCache`]; in-flight `Arc`s keep evicted kernels alive
/// until their executions finish.
pub struct KernelCache<V> {
    state: Mutex<LruMap<Arc<V>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<V> Default for KernelCache<V> {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_KERNEL_CACHE_CAPACITY)
    }
}

impl<V> KernelCache<V> {
    /// A cache retaining at most `capacity` lowered kernels.
    pub fn with_capacity(capacity: usize) -> Self {
        KernelCache {
            state: Mutex::new(LruMap::new(capacity)),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn get_or_insert_with(&self, key: u64, lower: impl FnOnce() -> V) -> Arc<V> {
        if let Some(k) = self.state.lock().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(k);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let k = Arc::new(lower());
        self.state.lock().insert(key, Arc::clone(&k));
        k
    }

    /// (hits, misses).
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Number of distinct lowered kernels.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears contents and statistics.
    pub fn clear(&self) {
        self.state.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A concurrent cache of tile-vectorized block kernels keyed by the
/// *structural program hash*, so equivalent register programs — whether they
/// came through the operator plan cache or were constructed directly —
/// lower and specialize exactly once (the block-backend analogue of the
/// operator plan cache above).
#[derive(Default)]
pub struct BlockProgramCache {
    cache: KernelCache<BlockKernel>,
}

impl BlockProgramCache {
    /// Looks up or lowers the block kernel for a scalar program. Panics on
    /// programs with vector instructions (the Row template lowers through
    /// [`RowKernelCache`] instead).
    pub fn get_or_lower(&self, prog: &Program) -> Arc<BlockKernel> {
        self.cache.get_or_insert_with(program_hash(prog), || compile_kernel(prog))
    }
}

impl std::ops::Deref for BlockProgramCache {
    type Target = KernelCache<BlockKernel>;
    fn deref(&self) -> &Self::Target {
        &self.cache
    }
}

/// A concurrent cache of band-lowered Row kernels keyed by
/// [`row_kernel_hash`] (program + output + the side-geometry invariance
/// bits) — the Row-template analogue of [`BlockProgramCache`], so a row
/// operator recompiled every iteration, or re-bound over varying data
/// shapes, lowers and specializes exactly once.
#[derive(Default)]
pub struct RowKernelCache {
    cache: KernelCache<RowKernel>,
}

impl RowKernelCache {
    /// Looks up or lowers the row kernel for a Row spec under the given side
    /// dimensions.
    pub fn get_or_lower(&self, spec: &RowSpec, side_dims: &[(usize, usize)]) -> Arc<RowKernel> {
        self.cache.get_or_insert_with(row_kernel_hash(spec, side_dims), || {
            compile_row_kernel(spec, side_dims)
        })
    }
}

impl std::ops::Deref for RowKernelCache {
    type Target = KernelCache<RowKernel>;
    fn deref(&self) -> &Self::Target {
        &self.cache
    }
}

/// The lowered-kernel caches of one engine: the block kernels the
/// Cell/MAgg/Outer skeletons dispatch and the band-lowered Row kernels,
/// plus the engine's per-instance execution knobs (tile width, cell
/// backend) that the skeletons read alongside the kernels.
/// Shared (via `Arc`) between the engine's [`PlanCache`] — which warms them
/// at compile time — and its runtime skeletons, which look kernels up at
/// execution time. There is deliberately no process-wide instance.
pub struct KernelCaches {
    pub block: BlockProgramCache,
    pub row: RowKernelCache,
    /// Tile width (elements per tile register) the skeletons evaluate with.
    pub tile_width: usize,
    /// Backend the Cell/MAgg/Outer skeletons execute through.
    pub backend: CellBackend,
}

impl Default for KernelCaches {
    fn default() -> Self {
        KernelCaches {
            block: BlockProgramCache::default(),
            row: RowKernelCache::default(),
            tile_width: crate::spoof::block::DEFAULT_TILE_WIDTH,
            backend: CellBackend::default(),
        }
    }
}

impl KernelCaches {
    /// A fresh, empty set of kernel caches behind a shareable handle.
    pub fn shared() -> Arc<KernelCaches> {
        Arc::new(KernelCaches::default())
    }

    /// Kernel caches bounded at `capacity` lowered kernels each (the engine
    /// builder passes its plan-cache capacity, so the compiled-state bound
    /// covers operators *and* their kernels).
    pub fn with_capacity(capacity: usize) -> Arc<KernelCaches> {
        Self::with_config(capacity, crate::spoof::block::DEFAULT_TILE_WIDTH, CellBackend::default())
    }

    /// Kernel caches with per-engine execution knobs: `capacity` bounds each
    /// cache, `tile_width` is clamped to the supported range, and `backend`
    /// selects the Cell/MAgg/Outer execution path.
    pub fn with_config(
        capacity: usize,
        tile_width: usize,
        backend: CellBackend,
    ) -> Arc<KernelCaches> {
        Arc::new(KernelCaches {
            block: BlockProgramCache { cache: KernelCache::with_capacity(capacity) },
            row: RowKernelCache { cache: KernelCache::with_capacity(capacity) },
            tile_width: crate::spoof::block::clamp_tile_width(tile_width),
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplan::{CNode, CPlan, CellAggKind, OutputSpec};
    use crate::templates::TemplateType;
    use fusedml_linalg::ops::{AggOp, BinaryOp};

    /// A tiny Cell CPlan `sum(X * c)` parameterized by the constant.
    fn tiny_cplan(c: f64) -> CPlan {
        CPlan {
            ttype: TemplateType::Cell,
            nodes: vec![
                CNode::Main,
                CNode::Const { value: c },
                CNode::Binary { op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            output: OutputSpec::Cell { result: 2, agg: CellAggKind::FullAgg(AggOp::Sum) },
            main: Some(fusedml_hop::HopId(0)),
            sides: vec![],
            side_dims: vec![],
            scalars: vec![],
            iter_rows: 10,
            iter_cols: 10,
            out_rows: 1,
            out_cols: 1,
            outer_uv: None,
            covered: vec![],
        }
    }

    #[test]
    fn cache_hits_on_equivalent_plans() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let a = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let b = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        assert!(Arc::ptr_eq(&a, &b), "equivalent CPlans share one operator");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn cache_misses_on_different_plans() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let _ = cache.get_or_compile(&tiny_cplan(3.0), &opts);
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn disabled_cache_always_compiles() {
        let cache = PlanCache::new();
        cache.set_enabled(false);
        let opts = CodegenOptions::default();
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn operator_names_are_unique() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let a = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let b = cache.get_or_compile(&tiny_cplan(3.0), &opts);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn block_cache_dedups_by_program_structure() {
        use crate::spoof::Instr;
        let cache = BlockProgramCache::default();
        let prog = || crate::spoof::Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadConst { out: 1, value: 2.0 },
                Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            n_regs: 3,
            vreg_lens: vec![],
        };
        let a = cache.get_or_lower(&prog());
        let b = cache.get_or_lower(&prog());
        assert!(Arc::ptr_eq(&a, &b), "equivalent programs share one kernel");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_compile_warms_kernel_caches() {
        let cache = PlanCache::new();
        let op = cache.get_or_compile(&tiny_cplan(41.5), &CodegenOptions::default());
        // The engine-owned kernel cache must now resolve the same program
        // without lowering again (a hit on the first lookup after warming).
        let k1 = cache.kernels().block.get_or_lower(op.spec.program());
        let k2 = cache.kernels().block.get_or_lower(op.spec.program());
        assert!(Arc::ptr_eq(&k1, &k2));
        assert_eq!(cache.kernels().block.stats().0, 2, "both lookups hit the warmed cache");
    }

    #[test]
    fn capacity_evicts_oldest_inserted() {
        let cache = PlanCache::with_kernels(KernelCaches::shared(), 2);
        let opts = CodegenOptions::default();
        let _ = cache.get_or_compile(&tiny_cplan(1.0), &opts);
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let _ = cache.get_or_compile(&tiny_cplan(3.0), &opts); // evicts 1.0
        assert_eq!(cache.len(), 2);
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts); // still cached
        assert_eq!(cache.stats().0, 1, "2.0 survives eviction");
        let _ = cache.get_or_compile(&tiny_cplan(1.0), &opts); // recompiles
        assert_eq!(cache.stats().1, 4, "1.0 was evicted and compiles again");
    }

    #[test]
    fn row_cache_dedups_by_program_and_side_dims() {
        use crate::spoof::{Instr, RowExecMode, RowOut, RowSpec};
        let cache = RowKernelCache::default();
        let spec = || RowSpec {
            prog: crate::spoof::Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::LoadSideRow { out: 1, side: 0, cl: 0, cu: 8 },
                    Instr::Dot { out: 0, a: 0, b: 1 },
                ],
                n_regs: 1,
                vreg_lens: vec![8, 8],
            },
            out: RowOut::ColAggMultAdd { vec: 0, scalar: 0 },
            out_rows: 8,
            out_cols: 1,
            exec_mode: RowExecMode::Vectorized,
        };
        let a = cache.get_or_lower(&spec(), &[(8, 1)]);
        let b = cache.get_or_lower(&spec(), &[(8, 1)]);
        assert!(Arc::ptr_eq(&a, &b), "equivalent row operators share one kernel");
        assert_eq!(cache.stats(), (1, 1));
        // Different side geometry lowers separately (whole-vector vs slice).
        let c = cache.get_or_lower(&spec(), &[(20, 8)]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn kernel_cache_capacity_evicts_lru() {
        let c: KernelCache<u32> = KernelCache::with_capacity(2);
        let _ = c.get_or_insert_with(1, || 1);
        let _ = c.get_or_insert_with(2, || 2);
        let _ = c.get_or_insert_with(3, || 3); // evicts key 1 (least recent)
        assert_eq!(c.len(), 2);
        let _ = c.get_or_insert_with(2, || 22); // still cached
        assert_eq!(c.stats().0, 1);
        let _ = c.get_or_insert_with(1, || 11); // evicted: lowers again
        assert_eq!(c.stats().1, 4);
    }

    #[test]
    fn hot_operator_survives_cache_churn() {
        // LRU (touch-on-hit): a plan that is looked up between every insert
        // must never be evicted, no matter how many cold plans churn through.
        let cache = PlanCache::with_kernels(KernelCaches::shared(), 2);
        let opts = CodegenOptions::default();
        let hot = cache.get_or_compile(&tiny_cplan(0.5), &opts);
        for i in 1..16 {
            let again = cache.get_or_compile(&tiny_cplan(0.5), &opts);
            assert!(Arc::ptr_eq(&hot, &again), "hot plan cached at round {i}");
            let _ = cache.get_or_compile(&tiny_cplan(i as f64), &opts); // cold churn
        }
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 15, "every hot lookup hits");
        assert_eq!(misses, 16, "only the cold plans (and the first hot) compile");
    }

    #[test]
    fn compile_time_recorded() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        assert!(cache.compile_seconds() >= 0.0);
    }
}
