//! The plan cache: reuses compiled fused operators across DAGs and dynamic
//! recompilation (paper §2.1, Figure 11).
//!
//! Generated operators are keyed by the structural CPlan hash, so equivalent
//! CPlans — e.g. the same update rule recompiled every iteration — map to
//! one compiled operator. The cache also tracks hit/miss statistics and the
//! cumulative compilation time, which the Figure 11 and Table 3 harnesses
//! report.

use crate::codegen::{generate, CodegenOptions, GeneratedOperator};
use crate::cplan::CPlan;
use crate::spoof::block::{
    compile_kernel, compile_row_kernel, program_hash, row_kernel_hash, BlockKernel, RowKernel,
};
use crate::spoof::{FusedSpec, Program, RowSpec};
use crate::util::FxHashMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A concurrent plan cache for generated operators.
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<FxHashMap<u64, Arc<GeneratedOperator>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Cumulative compile time (nanoseconds) spent on cache misses.
    compile_nanos: AtomicU64,
    /// Monotonic operator name counter (TMP0, TMP1, …).
    name_counter: AtomicUsize,
    /// Whether lookups are enabled (disabled = always compile; used by the
    /// Figure 11 "without plan cache" configuration).
    enabled: std::sync::atomic::AtomicBool,
}

impl PlanCache {
    pub fn new() -> Self {
        let pc = PlanCache::default();
        pc.enabled.store(true, Ordering::Relaxed);
        pc
    }

    /// Enables or disables cache lookups (compilation still records stats).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Looks up or compiles the operator for a CPlan.
    pub fn get_or_compile(&self, cplan: &CPlan, opts: &CodegenOptions) -> Arc<GeneratedOperator> {
        let key = cplan.structural_hash();
        if self.enabled.load(Ordering::Relaxed) {
            if let Some(op) = self.map.lock().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(op);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let n = self.name_counter.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let op = Arc::new(generate(cplan, &format!("TMP{n}"), opts));
        // Lower the tile-vectorized block kernel (Cell/MAgg/Outer) or the
        // band-lowered row kernel (Row) eagerly so its cost is part of the
        // measured compile time (Figure 11) and the first execution hits the
        // warm kernel cache. With lookups disabled (the "no plan cache"
        // configuration) the shared kernel caches must not hide the lowering
        // cost either: pay it on every compile, like a cold JIT.
        match &op.spec {
            FusedSpec::Row(r) => {
                if self.enabled.load(Ordering::Relaxed) {
                    let _ = row_cache().get_or_lower(r, &cplan.side_dims);
                } else {
                    std::hint::black_box(compile_row_kernel(r, &cplan.side_dims));
                }
            }
            _ => {
                if self.enabled.load(Ordering::Relaxed) {
                    let _ = block_cache().get_or_lower(op.spec.program());
                } else {
                    std::hint::black_box(compile_kernel(op.spec.program()));
                }
            }
        }
        self.compile_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.map.lock().insert(key, Arc::clone(&op));
        op
    }

    /// (hits, misses).
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Cumulative compile time in seconds.
    pub fn compile_seconds(&self) -> f64 {
        self.compile_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Number of distinct compiled operators.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears contents and statistics.
    pub fn clear(&self) {
        self.map.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.compile_nanos.store(0, Ordering::Relaxed);
    }
}

/// Shared machinery of the kernel caches: a concurrent map keyed by a
/// caller-computed structural hash, with hit/miss statistics. The concrete
/// caches ([`BlockProgramCache`], [`RowKernelCache`]) wrap this with their
/// key derivation and lowering function, and expose the statistics API
/// through `Deref`.
pub struct KernelCache<V> {
    map: Mutex<FxHashMap<u64, Arc<V>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<V> Default for KernelCache<V> {
    fn default() -> Self {
        KernelCache {
            map: Mutex::new(FxHashMap::default()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

impl<V> KernelCache<V> {
    fn get_or_insert_with(&self, key: u64, lower: impl FnOnce() -> V) -> Arc<V> {
        if let Some(k) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(k);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let k = Arc::new(lower());
        self.map.lock().insert(key, Arc::clone(&k));
        k
    }

    /// (hits, misses).
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Number of distinct lowered kernels.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears contents and statistics.
    pub fn clear(&self) {
        self.map.lock().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A concurrent cache of tile-vectorized block kernels keyed by the
/// *structural program hash*, so equivalent register programs — whether they
/// came through the operator plan cache or were constructed directly —
/// lower and specialize exactly once (the block-backend analogue of the
/// operator plan cache above).
#[derive(Default)]
pub struct BlockProgramCache {
    cache: KernelCache<BlockKernel>,
}

impl BlockProgramCache {
    /// Looks up or lowers the block kernel for a scalar program. Panics on
    /// programs with vector instructions (the Row template lowers through
    /// [`RowKernelCache`] instead).
    pub fn get_or_lower(&self, prog: &Program) -> Arc<BlockKernel> {
        self.cache.get_or_insert_with(program_hash(prog), || compile_kernel(prog))
    }
}

impl std::ops::Deref for BlockProgramCache {
    type Target = KernelCache<BlockKernel>;
    fn deref(&self) -> &Self::Target {
        &self.cache
    }
}

/// The process-wide block-kernel cache used by the runtime skeletons.
pub fn block_cache() -> &'static BlockProgramCache {
    static CACHE: OnceLock<BlockProgramCache> = OnceLock::new();
    CACHE.get_or_init(BlockProgramCache::default)
}

/// A concurrent cache of band-lowered Row kernels keyed by
/// [`row_kernel_hash`] (program + output + the side-geometry invariance
/// bits) — the Row-template analogue of [`BlockProgramCache`], so a row
/// operator recompiled every iteration, or re-bound over varying data
/// shapes, lowers and specializes exactly once.
#[derive(Default)]
pub struct RowKernelCache {
    cache: KernelCache<RowKernel>,
}

impl RowKernelCache {
    /// Looks up or lowers the row kernel for a Row spec under the given side
    /// dimensions.
    pub fn get_or_lower(&self, spec: &RowSpec, side_dims: &[(usize, usize)]) -> Arc<RowKernel> {
        self.cache.get_or_insert_with(row_kernel_hash(spec, side_dims), || {
            compile_row_kernel(spec, side_dims)
        })
    }
}

impl std::ops::Deref for RowKernelCache {
    type Target = KernelCache<RowKernel>;
    fn deref(&self) -> &Self::Target {
        &self.cache
    }
}

/// The process-wide row-kernel cache used by the Row skeleton.
pub fn row_cache() -> &'static RowKernelCache {
    static CACHE: OnceLock<RowKernelCache> = OnceLock::new();
    CACHE.get_or_init(RowKernelCache::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cplan::{CNode, CPlan, CellAggKind, OutputSpec};
    use crate::templates::TemplateType;
    use fusedml_linalg::ops::{AggOp, BinaryOp};

    /// A tiny Cell CPlan `sum(X * c)` parameterized by the constant.
    fn tiny_cplan(c: f64) -> CPlan {
        CPlan {
            ttype: TemplateType::Cell,
            nodes: vec![
                CNode::Main,
                CNode::Const { value: c },
                CNode::Binary { op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            output: OutputSpec::Cell { result: 2, agg: CellAggKind::FullAgg(AggOp::Sum) },
            main: Some(fusedml_hop::HopId(0)),
            sides: vec![],
            side_dims: vec![],
            scalars: vec![],
            iter_rows: 10,
            iter_cols: 10,
            out_rows: 1,
            out_cols: 1,
            outer_uv: None,
            covered: vec![],
        }
    }

    #[test]
    fn cache_hits_on_equivalent_plans() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let a = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let b = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        assert!(Arc::ptr_eq(&a, &b), "equivalent CPlans share one operator");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn cache_misses_on_different_plans() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let _ = cache.get_or_compile(&tiny_cplan(3.0), &opts);
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn disabled_cache_always_compiles() {
        let cache = PlanCache::new();
        cache.set_enabled(false);
        let opts = CodegenOptions::default();
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn operator_names_are_unique() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let a = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        let b = cache.get_or_compile(&tiny_cplan(3.0), &opts);
        assert_ne!(a.name, b.name);
    }

    #[test]
    fn block_cache_dedups_by_program_structure() {
        use crate::spoof::Instr;
        let cache = BlockProgramCache::default();
        let prog = || crate::spoof::Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadConst { out: 1, value: 2.0 },
                Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            n_regs: 3,
            vreg_lens: vec![],
        };
        let a = cache.get_or_lower(&prog());
        let b = cache.get_or_lower(&prog());
        assert!(Arc::ptr_eq(&a, &b), "equivalent programs share one kernel");
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_compile_warms_global_block_cache() {
        let cache = PlanCache::new();
        let op = cache.get_or_compile(&tiny_cplan(41.5), &CodegenOptions::default());
        // The global cache must now resolve the same program without
        // lowering again (same Arc on both lookups).
        let k1 = block_cache().get_or_lower(op.spec.program());
        let k2 = block_cache().get_or_lower(op.spec.program());
        assert!(Arc::ptr_eq(&k1, &k2));
    }

    #[test]
    fn row_cache_dedups_by_program_and_side_dims() {
        use crate::spoof::{Instr, RowExecMode, RowOut, RowSpec};
        let cache = RowKernelCache::default();
        let spec = || RowSpec {
            prog: crate::spoof::Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::LoadSideRow { out: 1, side: 0, cl: 0, cu: 8 },
                    Instr::Dot { out: 0, a: 0, b: 1 },
                ],
                n_regs: 1,
                vreg_lens: vec![8, 8],
            },
            out: RowOut::ColAggMultAdd { vec: 0, scalar: 0 },
            out_rows: 8,
            out_cols: 1,
            exec_mode: RowExecMode::Vectorized,
        };
        let a = cache.get_or_lower(&spec(), &[(8, 1)]);
        let b = cache.get_or_lower(&spec(), &[(8, 1)]);
        assert!(Arc::ptr_eq(&a, &b), "equivalent row operators share one kernel");
        assert_eq!(cache.stats(), (1, 1));
        // Different side geometry lowers separately (whole-vector vs slice).
        let c = cache.get_or_lower(&spec(), &[(20, 8)]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn compile_time_recorded() {
        let cache = PlanCache::new();
        let opts = CodegenOptions::default();
        let _ = cache.get_or_compile(&tiny_cplan(2.0), &opts);
        assert!(cache.compile_seconds() >= 0.0);
    }
}
