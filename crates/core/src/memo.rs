//! The memoization table of partial fusion plans (paper §3.1, Figure 5).
//!
//! The memo table is a set of *groups*, one per HOP amenable to fusion; each
//! group holds memo entries `(type, [i1..ik], closed)` whose input list maps
//! positionally to the HOP's data dependencies: a group reference means the
//! fused operator continues into that input, `-1` (here
//! [`InputRef::Materialized`]) means the input is read as a materialized
//! intermediate.

use crate::templates::TemplateType;
use crate::util::FxHashMap;
use fusedml_hop::{HopDag, HopId};
use std::fmt::Write as _;

/// One positional input of a memo entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InputRef {
    /// Fusion continues into the input's group (`R(10,…)`).
    Fused(HopId),
    /// The input is read as a materialized intermediate (`-1`).
    Materialized,
}

impl InputRef {
    pub fn is_fused(self) -> bool {
        matches!(self, InputRef::Fused(_))
    }

    /// The referenced group, if fused.
    pub fn fused_id(self) -> Option<HopId> {
        match self {
            InputRef::Fused(id) => Some(id),
            InputRef::Materialized => None,
        }
    }
}

/// A partial fusion plan (memo table entry).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemoEntry {
    /// Template type of the fused operator.
    pub ttype: TemplateType,
    /// Positional input references.
    pub inputs: Vec<InputRef>,
    /// True once a close condition fired (closed-valid); closed-invalid
    /// entries are removed during exploration and never stored.
    pub closed: bool,
}

impl MemoEntry {
    /// Creates an open entry.
    pub fn open(ttype: TemplateType, inputs: Vec<InputRef>) -> Self {
        MemoEntry { ttype, inputs, closed: false }
    }

    /// Iterates the referenced input groups.
    pub fn refs(&self) -> impl Iterator<Item = HopId> + '_ {
        self.inputs.iter().filter_map(|i| i.fused_id())
    }

    /// Number of fused references.
    pub fn ref_count(&self) -> usize {
        self.inputs.iter().filter(|i| i.is_fused()).count()
    }

    /// Renders like the paper: `R(-1,9)`.
    pub fn render(&self) -> String {
        let ins: Vec<String> = self
            .inputs
            .iter()
            .map(|i| match i {
                InputRef::Fused(id) => id.to_string(),
                InputRef::Materialized => "-1".to_string(),
            })
            .collect();
        format!("{}({})", self.ttype.tag(), ins.join(","))
    }
}

/// The memo table: groups of partial fusion plans, keyed by HOP id.
#[derive(Clone, Debug, Default)]
pub struct MemoTable {
    groups: FxHashMap<HopId, Vec<MemoEntry>>,
    /// HOPs already processed by exploration (the `W[?]` marker set of
    /// Algorithm 1; includes HOPs that produced no plans).
    processed: crate::util::FxHashSet<HopId>,
}

impl MemoTable {
    pub fn new() -> Self {
        MemoTable::default()
    }

    /// True if the HOP was already explored.
    pub fn is_processed(&self, id: HopId) -> bool {
        self.processed.contains(&id)
    }

    /// Marks a HOP as explored.
    pub fn mark_processed(&mut self, id: HopId) {
        self.processed.insert(id);
    }

    /// True if the group exists and is non-empty.
    pub fn contains(&self, id: HopId) -> bool {
        self.groups.get(&id).is_some_and(|g| !g.is_empty())
    }

    /// The entries of a group (empty slice if absent).
    pub fn entries(&self, id: HopId) -> &[MemoEntry] {
        self.groups.get(&id).map_or(&[], |g| g.as_slice())
    }

    /// Adds an entry if not already present (set semantics).
    pub fn add(&mut self, id: HopId, entry: MemoEntry) {
        let group = self.groups.entry(id).or_default();
        if !group.contains(&entry) {
            group.push(entry);
        }
    }

    /// Removes entries matching a predicate.
    pub fn retain(&mut self, id: HopId, f: impl FnMut(&MemoEntry) -> bool) {
        if let Some(g) = self.groups.get_mut(&id) {
            g.retain(f);
        }
    }

    /// Mutable access to a group's entries (used by the close step).
    pub fn entries_mut(&mut self, id: HopId) -> &mut Vec<MemoEntry> {
        self.groups.entry(id).or_default()
    }

    /// The distinct template types with *open* entries in a group — the
    /// candidates for extending fusion to a consumer.
    pub fn open_types(&self, id: HopId) -> Vec<TemplateType> {
        let mut types: Vec<TemplateType> =
            self.entries(id).iter().filter(|e| !e.closed).map(|e| e.ttype).collect();
        types.sort_unstable();
        types.dedup();
        types
    }

    /// True if the group has any entry (open or closed) whose type is
    /// merge-compatible with `consumer_type` — the validity condition for a
    /// fusion reference (paper: "a reference from an entry to a group implies
    /// that the group contains at least one compatible fusion plan").
    pub fn has_compatible_plan(&self, id: HopId, consumer_type: TemplateType) -> bool {
        self.entries(id).iter().any(|e| !e.closed && consumer_type.merge_compatible(e.ttype))
    }

    /// All group ids with at least one entry.
    pub fn group_ids(&self) -> Vec<HopId> {
        let mut ids: Vec<HopId> =
            self.groups.iter().filter(|(_, g)| !g.is_empty()).map(|(&id, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    /// Total number of memo entries.
    pub fn total_entries(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// Removes dominated entries, used only under heuristic selection
    /// policies (paper §3.2): an entry is dominated when another entry of
    /// the same type has a strict superset of references and every
    /// *additional* reference of that superset points to a single-consumer
    /// operator (cf. the paper's Figure 5 discussion: "R(10,9) dominates
    /// R(10,-1) but R(6,8) does not dominate R(-1,8) because group 6 has
    /// multiple consumers" — fusing a single-consumer input is always at
    /// least as good, while multi-consumer inputs stay genuine choices).
    pub fn prune_dominated(&mut self, dag: &HopDag) {
        let consumers = dag.consumer_counts();
        for (_, group) in self.groups.iter_mut() {
            let snapshot = group.clone();
            group.retain(|e| {
                !snapshot.iter().any(|other| {
                    other.ttype == e.ttype
                        && other.inputs.len() == e.inputs.len()
                        && other != e
                        && other.ref_count() > e.ref_count()
                        && e.inputs.iter().zip(&other.inputs).all(|(a, b)| match a {
                            // Positional subset: every ref of e appears in other.
                            InputRef::Fused(_) => a == b,
                            // Extra refs of `other` must be single-consumer.
                            InputRef::Materialized => match b {
                                InputRef::Fused(r) => consumers[r.index()] <= 1,
                                InputRef::Materialized => true,
                            },
                        })
                })
            });
        }
    }

    /// Removes Row-template entries from groups whose fused sub-plans
    /// contain no genuinely row-wise operation (matmult, indexing,
    /// transpose, or row/column aggregation) — mirroring SystemML's
    /// special-case pruning: pure cell-wise chains belong to the Cell
    /// template, whose skeleton exploits sparsity and avoids row buffers.
    pub fn prune_useless_row_plans(&mut self, dag: &HopDag) {
        use fusedml_linalg::ops::AggDir;
        let row_necessary = |id: HopId| -> bool {
            matches!(
                dag.hop(id).kind,
                fusedml_hop::OpKind::MatMult
                    | fusedml_hop::OpKind::RightIndex { .. }
                    | fusedml_hop::OpKind::Transpose
                    | fusedml_hop::OpKind::Agg { dir: AggDir::Row, .. }
                    | fusedml_hop::OpKind::Agg { dir: AggDir::Col, .. }
            )
        };
        // Fixpoint over "useful" groups: row-necessary op, or a Row entry
        // referencing a useful group.
        let ids = self.group_ids();
        let mut useful: crate::util::FxHashSet<HopId> =
            ids.iter().copied().filter(|&g| row_necessary(g)).collect();
        loop {
            let mut changed = false;
            for &g in &ids {
                if useful.contains(&g) {
                    continue;
                }
                let promote = self
                    .entries(g)
                    .iter()
                    .any(|e| e.ttype == TemplateType::Row && e.refs().any(|r| useful.contains(&r)));
                if promote {
                    useful.insert(g);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for &g in &ids {
            if useful.contains(&g) {
                continue;
            }
            let has_cell = self.entries(g).iter().any(|e| e.ttype == TemplateType::Cell);
            if has_cell {
                self.retain(g, |e| e.ttype != TemplateType::Row);
            }
        }
    }

    /// Renders the memo table in the style of paper Figure 5 (groups sorted
    /// descending by id, entries in insertion order).
    pub fn render(&self, dag: &HopDag) -> String {
        let mut out = String::new();
        let mut ids = self.group_ids();
        ids.sort_unstable_by(|a, b| b.cmp(a));
        for id in ids {
            let entries: Vec<String> = self.entries(id).iter().map(|e| e.render()).collect();
            let _ = writeln!(
                out,
                "{:>3} {:<10} {}",
                id.to_string(),
                dag.hop(id).kind.display_name(),
                entries.join(" ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_hop::DagBuilder;

    fn hid(i: u32) -> HopId {
        HopId(i)
    }

    #[test]
    fn add_deduplicates() {
        let mut m = MemoTable::new();
        let e = MemoEntry::open(TemplateType::Cell, vec![InputRef::Materialized]);
        m.add(hid(3), e.clone());
        m.add(hid(3), e);
        assert_eq!(m.entries(hid(3)).len(), 1);
    }

    #[test]
    fn render_matches_paper_notation() {
        let e = MemoEntry::open(
            TemplateType::Row,
            vec![InputRef::Fused(hid(10)), InputRef::Materialized],
        );
        assert_eq!(e.render(), "R(10,-1)");
        let c = MemoEntry::open(TemplateType::Cell, vec![InputRef::Materialized]);
        assert_eq!(c.render(), "C(-1)");
    }

    #[test]
    fn open_types_excludes_closed() {
        let mut m = MemoTable::new();
        m.add(hid(1), MemoEntry::open(TemplateType::Cell, vec![InputRef::Materialized]));
        let mut closed = MemoEntry::open(TemplateType::Row, vec![InputRef::Materialized]);
        closed.closed = true;
        m.add(hid(1), closed);
        // Only the open Cell entry is extendable; the closed Row entry is not.
        assert_eq!(m.open_types(hid(1)), vec![TemplateType::Cell]);
    }

    #[test]
    fn compatible_plan_respects_type_matrix() {
        let mut m = MemoTable::new();
        m.add(hid(5), MemoEntry::open(TemplateType::Cell, vec![InputRef::Materialized]));
        assert!(m.has_compatible_plan(hid(5), TemplateType::Row), "Row absorbs Cell");
        assert!(m.has_compatible_plan(hid(5), TemplateType::Cell));
        assert!(m.has_compatible_plan(hid(5), TemplateType::Outer), "Outer absorbs Cell");
        assert!(!m.has_compatible_plan(hid(6), TemplateType::Cell), "missing group");
    }

    #[test]
    fn dominance_pruning_respects_multi_consumers() {
        // DAG: x -> a (consumed once), x consumed twice overall.
        let mut b = DagBuilder::new();
        let x = b.read("X", 10, 10, 1.0);
        let y = b.read("Y", 10, 10, 1.0);
        let a = b.mult(x, y);
        let c = b.add(a, y); // y consumed twice, a once
        let dag = b.build(vec![c]);

        let mut m = MemoTable::new();
        // Domination follows the paper's Figure 5 discussion: an entry with
        // MORE refs dominates one with fewer iff every extra ref points to a
        // single-consumer op. Here `a` is single-consumer, `y` has two
        // consumers:
        //  * C(a,y) ⊐ C(-1,y) (extra ref a, single) → C(-1,y) pruned,
        //  * C(a,y) ⋣ C(a,-1) (extra ref y, multi)  → C(a,-1) kept,
        //  * C(a,-1) ⊐ C(-1,-1) (extra ref a, single) → C(-1,-1) pruned.
        m.add(
            c,
            MemoEntry::open(TemplateType::Cell, vec![InputRef::Fused(a), InputRef::Materialized]),
        );
        m.add(c, MemoEntry::open(TemplateType::Cell, vec![InputRef::Fused(a), InputRef::Fused(y)]));
        m.add(
            c,
            MemoEntry::open(TemplateType::Cell, vec![InputRef::Materialized, InputRef::Fused(y)]),
        );
        m.add(
            c,
            MemoEntry::open(
                TemplateType::Cell,
                vec![InputRef::Materialized, InputRef::Materialized],
            ),
        );
        m.prune_dominated(&dag);
        let rendered: Vec<String> = m.entries(c).iter().map(|e| e.render()).collect();
        assert!(rendered.contains(&format!("C({a},{y})")), "maximal entry kept: {rendered:?}");
        assert!(
            rendered.contains(&format!("C({a},-1)")),
            "multi-consumer extra ref does not dominate: {rendered:?}"
        );
        assert!(!rendered.contains(&format!("C(-1,{y})")), "dominated entry pruned: {rendered:?}");
        assert!(
            !rendered.contains(&"C(-1,-1)".to_string()),
            "dominated entry pruned: {rendered:?}"
        );
    }
}
