//! Small utilities: a fast FxHash-style hasher for the hot memo-table and
//! plan-cache maps (see the Rust Performance Book, "Hashing": integer-keyed
//! hot maps benefit from a cheap multiply-xor hash; implemented inline to
//! keep the dependency set minimal).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher (Firefox / rustc algorithm).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes any `Hash` value with the Fx hasher (used for CPlan identities).
pub fn fx_hash<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// A hash-keyed map bounded by LRU eviction — the one retention policy
/// shared by every compiled-state cache (generated operators, lowered
/// kernels, fusion plans, compiled scripts, geometry variants). Each entry
/// carries a logical access stamp; `get` bumps it (touch-on-hit), and when
/// the capacity is exceeded the least-recently-stamped entry is dropped, so
/// a hot entry survives arbitrary churn of cold ones. Values held elsewhere
/// behind `Arc` stay alive until their users finish.
///
/// The stamp scan on eviction is O(len), but eviction only happens when an
/// insert overflows a full cache — hits (the hot path under serving load)
/// stay O(1).
pub struct LruMap<V> {
    map: FxHashMap<u64, (V, u64)>,
    tick: u64,
    capacity: usize,
}

impl<V> LruMap<V> {
    /// A map retaining at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruMap { map: FxHashMap::default(), tick: 0, capacity: capacity.max(1) }
    }

    /// Looks up an entry and marks it most-recently-used.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|(v, stamp)| {
            *stamp = tick;
            &*v
        })
    }

    /// Inserts (or replaces) an entry as most-recently-used, evicting the
    /// least-recently-used entries beyond the capacity.
    pub fn insert(&mut self, key: u64, value: V) {
        self.tick += 1;
        if self.map.insert(key, (value, self.tick)).is_none() {
            while self.map.len() > self.capacity {
                if let Some(&old) =
                    self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k)
                {
                    self.map.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hash_is_deterministic_and_discriminating() {
        assert_eq!(fx_hash(&(1u32, 2u32)), fx_hash(&(1u32, 2u32)));
        assert_ne!(fx_hash(&(1u32, 2u32)), fx_hash(&(2u32, 1u32)));
        assert_ne!(fx_hash(&"abc"), fx_hash(&"abd"));
    }

    #[test]
    fn lru_hot_entry_survives_churn() {
        let mut m: LruMap<u64> = LruMap::new(4);
        m.insert(0, 100); // the hot entry
                          // Churn many cold keys through the cache, touching the hot entry
                          // between each insert. FIFO would evict key 0 after 4 inserts; LRU
                          // must keep it because every round marks it most-recently-used.
        for k in 1..64u64 {
            assert_eq!(m.get(0), Some(&100), "hot entry present at round {k}");
            m.insert(k, k);
            assert!(m.len() <= 4);
        }
        assert_eq!(m.get(0), Some(&100), "hot entry survives churn");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut m: LruMap<u64> = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        assert_eq!(m.get(1), Some(&10)); // 2 is now the LRU entry
        m.insert(3, 30);
        assert_eq!(m.get(2), None, "LRU entry evicted");
        assert_eq!(m.get(1), Some(&10));
        assert_eq!(m.get(3), Some(&30));
    }

    #[test]
    fn lru_replace_does_not_evict() {
        let mut m: LruMap<u64> = LruMap::new(2);
        m.insert(1, 10);
        m.insert(2, 20);
        m.insert(1, 11); // replacement, not growth
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.get(2), Some(&20));
    }
}
