//! Small utilities: a fast FxHash-style hasher for the hot memo-table and
//! plan-cache maps (see the Rust Performance Book, "Hashing": integer-keyed
//! hot maps benefit from a cheap multiply-xor hash; implemented inline to
//! keep the dependency set minimal).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher (Firefox / rustc algorithm).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes any `Hash` value with the Fx hasher (used for CPlan identities).
pub fn fx_hash<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// A hash-keyed map bounded by FIFO eviction — the one retention policy
/// shared by every compiled-state cache (generated operators, lowered
/// kernels, fusion plans, compiled scripts). When the capacity is exceeded
/// the oldest-inserted entry is dropped; values held elsewhere behind `Arc`
/// stay alive until their users finish.
pub struct FifoMap<V> {
    map: FxHashMap<u64, V>,
    order: std::collections::VecDeque<u64>,
    capacity: usize,
}

impl<V> FifoMap<V> {
    /// A map retaining at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FifoMap {
            map: FxHashMap::default(),
            order: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn get(&self, key: u64) -> Option<&V> {
        self.map.get(&key)
    }

    /// Inserts (or replaces) an entry, evicting the oldest-inserted entries
    /// beyond the capacity.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hash_is_deterministic_and_discriminating() {
        assert_eq!(fx_hash(&(1u32, 2u32)), fx_hash(&(1u32, 2u32)));
        assert_ne!(fx_hash(&(1u32, 2u32)), fx_hash(&(2u32, 1u32)));
        assert_ne!(fx_hash(&"abc"), fx_hash(&"abd"));
    }
}
