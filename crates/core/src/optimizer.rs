//! The top-level fusion optimizer façade: exploration → selection → CPlan
//! construction → code generation → fusion plan (paper Figure 2).

use crate::codegen::{CodegenOptions, GeneratedOperator};
use crate::cplan::{self, CPlan};
use crate::explore::explore;
use crate::opt::{select_plans, CostModel, EnumConfig, SelectionPolicy};
use crate::plancache::PlanCache;
use crate::stats::CodegenStats;
use fusedml_hop::{HopDag, HopId};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// The execution configurations of the paper's evaluation (§5.1):
/// `Base` (no fusion), `Fused` (hand-coded fused operators), `Gen`
/// (cost-based optimizer), and the `Gen-FA`/`Gen-FNR` heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FusionMode {
    /// Basic operators only.
    Base,
    /// Hand-coded fused operators (fixed patterns, runtime-matched).
    Fused,
    /// Cost-based optimized fusion (the paper's contribution).
    Gen,
    /// Fuse-all heuristic.
    GenFA,
    /// Fuse-no-redundancy heuristic.
    GenFNR,
}

impl FusionMode {
    /// True for the modes that run the code generator.
    pub fn uses_codegen(self) -> bool {
        matches!(self, FusionMode::Gen | FusionMode::GenFA | FusionMode::GenFNR)
    }
}

/// A compiled fused operator bound to DAG positions.
#[derive(Clone, Debug)]
pub struct FusedOperator {
    /// Output HOPs (one for Cell/Row/Outer; several for MAgg, in the order
    /// of the spec's aggregate results).
    pub roots: Vec<HopId>,
    /// The constructed CPlan (carries main/side/scalar bindings and the
    /// covered set).
    pub cplan: CPlan,
    /// The generated operator (register program + source).
    pub op: Arc<GeneratedOperator>,
}

/// The optimizer's output for one DAG: fused operators covering parts of the
/// DAG. Uncovered HOPs execute as basic operators.
#[derive(Clone, Debug, Default)]
pub struct FusionPlan {
    pub operators: Vec<FusedOperator>,
    /// Structural hash of the DAG this plan was optimized for (operator
    /// kinds, edges, *sizes*). Executors revalidate against the DAG they are
    /// asked to run: a mismatch means the bound geometry changed since
    /// costing and the plan must not be trusted (see
    /// [`FusionPlan::matches`]).
    pub dag_hash: u64,
}

impl FusionPlan {
    /// True when this plan was optimized for exactly this DAG (same
    /// structure and sizes).
    pub fn matches(&self, dag: &HopDag) -> bool {
        self.dag_hash == dag_structural_hash(dag)
    }
}

/// A structural hash of a DAG (operator kinds, edges, sizes, *and* sparsity
/// estimates) — the key of per-engine fusion-plan caches and the token plan
/// revalidation compares. Sparsity is part of the key because costing
/// depends on it: a geometry-revalidation recompile that re-probes bound
/// sparsity must not be served a plan costed under a different data
/// profile. For identical DAG structures sparsity derives deterministically
/// from the declared reads, so including it adds no cache fragmentation.
///
/// This runs on the per-execute hot path (the engine's plan/script cache
/// probe), so it feeds a hasher directly — no string rendering.
pub fn dag_structural_hash(dag: &HopDag) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::util::FxHasher::default();
    for hop in dag.iter() {
        hash_op_kind(&hop.kind, &mut h);
        hop.inputs.hash(&mut h);
        hop.size.rows.hash(&mut h);
        hop.size.cols.hash(&mut h);
        hop.size.sparsity.to_bits().hash(&mut h);
    }
    dag.roots().hash(&mut h);
    h.finish()
}

/// Hashes an [`fusedml_hop::OpKind`] structurally (`f64` literals by bit
/// pattern — the same identity the builder's CSE uses).
fn hash_op_kind(kind: &fusedml_hop::OpKind, h: &mut impl std::hash::Hasher) {
    use fusedml_hop::OpKind;
    use std::hash::Hash;
    std::mem::discriminant(kind).hash(h);
    match kind {
        OpKind::Read { name } => name.hash(h),
        OpKind::Literal { value } => value.to_bits().hash(h),
        OpKind::Unary { op } => op.hash(h),
        OpKind::Binary { op } => op.hash(h),
        OpKind::Ternary { op } => op.hash(h),
        OpKind::Agg { op, dir } => (op, dir).hash(h),
        OpKind::CumAgg { op } => op.hash(h),
        OpKind::RightIndex { rows, cols } => (rows, cols).hash(h),
        OpKind::MatMult | OpKind::Transpose | OpKind::CBind | OpKind::RBind | OpKind::Diag => {}
    }
}

impl FusionPlan {
    /// Renders an explain-style summary.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        for f in &self.operators {
            s.push_str(&format!(
                "{} [{}] roots={:?} covered={:?} main={:?} sides={:?}\n",
                f.op.name,
                f.op.spec.template_name(),
                f.roots,
                f.cplan.covered,
                f.cplan.main,
                f.cplan.sides,
            ));
        }
        s
    }
}

/// The fusion optimizer with its plan cache and statistics.
pub struct Optimizer {
    pub mode: FusionMode,
    pub model: CostModel,
    pub codegen: CodegenOptions,
    pub enum_cfg: EnumConfig,
    pub plan_cache: Arc<PlanCache>,
    pub stats: Arc<CodegenStats>,
}

impl Optimizer {
    /// Creates an optimizer with default model and options (and its own
    /// private plan cache).
    pub fn new(mode: FusionMode) -> Self {
        Self::with_plan_cache(mode, Arc::new(PlanCache::new()))
    }

    /// Creates an optimizer over an engine-owned plan cache (which in turn
    /// warms the engine's kernel caches).
    pub fn with_plan_cache(mode: FusionMode, plan_cache: Arc<PlanCache>) -> Self {
        Optimizer {
            mode,
            model: CostModel::default(),
            codegen: CodegenOptions::default(),
            enum_cfg: EnumConfig::default(),
            plan_cache,
            stats: Arc::new(CodegenStats::new()),
        }
    }

    /// Optimizes one HOP DAG into a fusion plan.
    pub fn optimize(&self, dag: &HopDag) -> FusionPlan {
        if !self.mode.uses_codegen() {
            return FusionPlan { dag_hash: dag_structural_hash(dag), ..FusionPlan::default() };
        }
        let t0 = Instant::now();
        self.stats.dags_optimized.fetch_add(1, Ordering::Relaxed);

        // Phase 1: candidate exploration.
        let memo = explore(dag);

        // Phase 2: candidate selection.
        let policy = match self.mode {
            FusionMode::Gen => SelectionPolicy::CostBased(self.enum_cfg),
            FusionMode::GenFA => SelectionPolicy::FuseAll,
            FusionMode::GenFNR => SelectionPolicy::FuseNoRedundancy,
            _ => unreachable!(),
        };
        let sel = select_plans(dag, &memo, policy, &self.model);
        self.stats.add_plans_evaluated(sel.plans_evaluated);
        self.stats.partitions.fetch_add(sel.partitions, Ordering::Relaxed);
        self.stats.interesting_points.fetch_add(sel.interesting_points, Ordering::Relaxed);
        self.stats.optimize_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Phases 3-4: CPlan construction + code generation (plan cache).
        let t1 = Instant::now();
        let mut plan = FusionPlan { dag_hash: dag_structural_hash(dag), ..FusionPlan::default() };
        let in_magg: crate::util::FxHashSet<usize> =
            sel.magg_groups.iter().flatten().copied().collect();

        for (i, op_plan) in sel.operators.iter().enumerate() {
            if in_magg.contains(&i) {
                continue;
            }
            match cplan::construct(dag, op_plan) {
                Ok(cp) => {
                    self.stats.cplans_constructed.fetch_add(1, Ordering::Relaxed);
                    self.push_operator(&mut plan, vec![op_plan.root], cp);
                }
                Err(_) => { /* fall back to unfused execution of this subDAG */ }
            }
        }
        for group in &sel.magg_groups {
            let mut members: Vec<CPlan> = Vec::new();
            let mut roots: Vec<HopId> = Vec::new();
            for &i in group {
                if let Ok(cp) = cplan::construct(dag, &sel.operators[i]) {
                    self.stats.cplans_constructed.fetch_add(1, Ordering::Relaxed);
                    members.push(cp);
                    roots.push(sel.operators[i].root);
                }
            }
            match cplan::construct_multi_agg(&members) {
                Ok(magg) => {
                    self.stats.cplans_constructed.fetch_add(1, Ordering::Relaxed);
                    self.push_operator(&mut plan, roots, magg);
                }
                Err(_) => {
                    // Fall back to individual Cell operators.
                    for (cp, root) in members.into_iter().zip(roots) {
                        self.push_operator(&mut plan, vec![root], cp);
                    }
                }
            }
        }
        self.stats.codegen_nanos.fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
        plan
    }

    fn push_operator(&self, plan: &mut FusionPlan, roots: Vec<HopId>, cp: CPlan) {
        let (h0, m0) = self.plan_cache.stats();
        let op = self.plan_cache.get_or_compile(&cp, &self.codegen);
        let (h1, m1) = self.plan_cache.stats();
        self.stats.cache_hits.fetch_add(h1 - h0, Ordering::Relaxed);
        self.stats.operators_compiled.fetch_add(m1 - m0, Ordering::Relaxed);
        plan.operators.push(FusedOperator { roots, cplan: cp, op });
    }
}

/// One-shot convenience: optimize a DAG under a mode with defaults.
pub fn optimize(dag: &HopDag, mode: FusionMode) -> FusionPlan {
    Optimizer::new(mode).optimize(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spoof::FusedSpec;
    use fusedml_hop::DagBuilder;

    fn cell_chain_dag() -> HopDag {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let z = b.read("Z", 1000, 1000, 1.0);
        let m1 = b.mult(x, y);
        let m2 = b.mult(m1, z);
        let s = b.sum(m2);
        b.build(vec![s])
    }

    #[test]
    fn base_mode_generates_nothing() {
        let plan = optimize(&cell_chain_dag(), FusionMode::Base);
        assert!(plan.operators.is_empty());
    }

    #[test]
    fn gen_compiles_cell_chain_to_one_operator() {
        let plan = optimize(&cell_chain_dag(), FusionMode::Gen);
        assert_eq!(plan.operators.len(), 1);
        let f = &plan.operators[0];
        assert!(matches!(f.op.spec, FusedSpec::Cell(_)));
        assert!(f.op.source.contains("SpoofCellwise"));
        assert_eq!(f.cplan.sides.len() + usize::from(f.cplan.main.is_some()), 3);
    }

    #[test]
    fn plan_cache_reused_across_dags() {
        let opt = Optimizer::new(FusionMode::Gen);
        let _ = opt.optimize(&cell_chain_dag());
        let _ = opt.optimize(&cell_chain_dag());
        let (hits, misses) = opt.plan_cache.stats();
        assert_eq!(misses, 1, "structural hash matches across DAGs");
        assert_eq!(hits, 1);
    }

    #[test]
    fn magg_compiled_for_shared_input_aggregates() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 1000, 1000, 1.0);
        let y = b.read("Y", 1000, 1000, 1.0);
        let z = b.read("Z", 1000, 1000, 1.0);
        let a = b.mult(x, y);
        let c = b.mult(x, z);
        let s1 = b.sum(a);
        let s2 = b.sum(c);
        let dag = b.build(vec![s1, s2]);
        let plan = optimize(&dag, FusionMode::Gen);
        assert_eq!(plan.operators.len(), 1, "one MAgg operator: {}", plan.explain());
        let f = &plan.operators[0];
        assert!(matches!(f.op.spec, FusedSpec::MAgg(_)));
        assert_eq!(f.roots.len(), 2);
    }

    #[test]
    fn outer_compiled_for_als_loss() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2000, 2000, 0.01);
        let u = b.read("U", 2000, 20, 1.0);
        let v = b.read("V", 2000, 20, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let eps = b.lit(1e-15);
        let plus = b.add(uvt, eps);
        let lg = b.log(plus);
        let prod = b.mult(x, lg);
        let s = b.sum(prod);
        let dag = b.build(vec![s]);
        let plan = optimize(&dag, FusionMode::Gen);
        assert!(
            plan.operators.iter().any(|f| matches!(f.op.spec, FusedSpec::Outer(_))),
            "Outer operator expected: {}",
            plan.explain()
        );
    }

    #[test]
    fn row_compiled_for_mv_chain() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 10_000, 100, 1.0);
        let v = b.read("v", 100, 1, 1.0);
        let xv = b.mm(x, v);
        let xt = b.t(x);
        let out = b.mm(xt, xv);
        let dag = b.build(vec![out]);
        let plan = optimize(&dag, FusionMode::Gen);
        assert_eq!(plan.operators.len(), 1, "{}", plan.explain());
        assert!(matches!(plan.operators[0].op.spec, FusedSpec::Row(_)));
    }

    #[test]
    fn heuristic_modes_produce_plans() {
        for mode in [FusionMode::GenFA, FusionMode::GenFNR] {
            let plan = optimize(&cell_chain_dag(), mode);
            assert!(!plan.operators.is_empty(), "{mode:?}");
        }
    }
}
