//! Candidate exploration: the OFMC algorithm (paper §3.2, Algorithm 1).
//!
//! A single bottom-up pass over the HOP DAG populates the memo table with
//! all valid partial fusion plans. The algorithm is template-oblivious: all
//! template-specific conditions live behind the
//! [`crate::templates::FusionTemplate`] trait.

use crate::memo::{InputRef, MemoEntry, MemoTable};
use crate::templates::{all_templates, template_for, CloseDecision, FusionTemplate};
use fusedml_hop::{HopDag, HopId};

/// Explores all valid partial fusion plans of a DAG into a fresh memo table.
pub fn explore(dag: &HopDag) -> MemoTable {
    let mut memo = MemoTable::new();
    for &root in dag.roots() {
        explore_hop(dag, root, &mut memo);
    }
    memo
}

/// Recursive OFMC exploration of one operator (Algorithm 1).
fn explore_hop(dag: &HopDag, id: HopId, memo: &mut MemoTable) {
    // 1. Memoization of processed operators (lines 1-3).
    if memo.is_processed(id) {
        return;
    }
    let h = dag.hop(id);

    // 2. Recursive candidate exploration of all inputs (lines 4-6).
    for &input in &h.inputs {
        explore_hop(dag, input, memo);
    }

    // 3. Open initial operator plans (lines 7-10), enumerating merge plans.
    for t in all_templates() {
        if t.open(dag, h) {
            create_plans(dag, id, None, *t, memo);
        }
    }

    // 4. Fuse and merge operator plans (lines 11-15): for each input, for
    //    each distinct open template type at that input, probe the pairwise
    //    fuse condition.
    for (j, &input) in h.inputs.iter().enumerate() {
        for ttype in memo.open_types(input) {
            let t = template_for(ttype);
            if t.fuse(dag, h, dag.hop(input)) {
                create_plans(dag, id, Some(j), t, memo);
            }
        }
    }

    // 5. Close operator plans if required (lines 16-20).
    let mut to_remove: Vec<MemoEntry> = Vec::new();
    {
        let entries = memo.entries_mut(id);
        for e in entries.iter_mut() {
            match template_for(e.ttype).close(dag, h) {
                CloseDecision::Open => {}
                CloseDecision::ClosedValid => e.closed = true,
                CloseDecision::ClosedInvalid => to_remove.push(e.clone()),
            }
        }
        entries.retain(|e| !to_remove.contains(e));
    }

    // 6. Prune redundant plans and memoize (lines 21-23): drop closed-valid
    //    entries without group references — they would cover a single
    //    operator (cf. Figure 5: group `ua(R+)` holds no `C(-1)`).
    memo.retain(id, |e| !(e.closed && e.ref_count() == 0));
    memo.mark_processed(id);
}

/// `createPlans` (paper §3.2): constructs memo entries for a fused operator
/// at `id`. The `fused_input` position (if any) always references its group;
/// every other input enumerates both options (reference / materialized) when
/// the template's pairwise merge condition holds and the input group has a
/// compatible open plan.
fn create_plans(
    dag: &HopDag,
    id: HopId,
    fused_input: Option<usize>,
    t: &dyn FusionTemplate,
    memo: &mut MemoTable,
) {
    let h = dag.hop(id);
    let n = h.inputs.len();
    // Per input: the allowed options.
    let mut options: Vec<Vec<InputRef>> = Vec::with_capacity(n);
    for (j, &input) in h.inputs.iter().enumerate() {
        let in_hop = dag.hop(input);
        if Some(j) == fused_input {
            options.push(vec![InputRef::Fused(input)]);
        } else {
            let mergeable = t.merge(dag, h, in_hop) && memo.has_compatible_plan(input, t.ttype());
            if mergeable {
                options.push(vec![InputRef::Materialized, InputRef::Fused(input)]);
            } else {
                options.push(vec![InputRef::Materialized]);
            }
        }
    }
    // Cartesian product over ≤3 inputs with ≤2 options each (≤8 plans).
    let mut combos: Vec<Vec<InputRef>> = vec![Vec::new()];
    for opts in &options {
        let mut next = Vec::with_capacity(combos.len() * opts.len());
        for c in &combos {
            for &o in opts {
                let mut c2 = c.clone();
                c2.push(o);
                next.push(c2);
            }
        }
        combos = next;
    }
    for inputs in combos {
        memo.add(id, MemoEntry::open(t.ttype(), inputs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TemplateType;
    use fusedml_hop::DagBuilder;

    /// Renders a group's entries as sorted strings for assertions.
    fn rendered(memo: &MemoTable, id: HopId) -> Vec<String> {
        let mut v: Vec<String> = memo.entries(id).iter().map(|e| e.render()).collect();
        v.sort();
        v
    }

    /// Builds the MLogreg core expression of paper Figure 5 with the same
    /// operator numbering (ids differ, shapes equivalent):
    /// `Q = P[,0:k] ⊙ (X v); H = t(X) %*% (Q - P[,0:k] ⊙ rowSums(Q))`.
    fn figure5_dag() -> (HopDag, [HopId; 8]) {
        let (n, m, k) = (1000, 100, 4);
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, 1.0);
        let v = b.read("v", m, k, 1.0);
        let p = b.read("P", n, k + 1, 1.0);
        let h4 = b.mm(x, v); // 4 ba(+*)
        let h5 = b.rix(p, None, Some((0, k))); // 5 rix
        let h6 = b.mult(h5, h4); // 6 b(*)  (Q)
        let h7 = b.row_sums(h6); // 7 ua(R+)
        let h8 = b.mult(h5, h7); // 8 b(*)
        let h9 = b.sub(h6, h8); // 9 b(-)
        let h10 = b.t(x); // 10 r(t)
        let h11 = b.mm(h10, h9); // 11 ba(+*)
        let dag = b.build(vec![h11]);
        (dag, [h4, h5, h6, h7, h8, h9, h10, h11])
    }

    #[test]
    fn figure5_memo_table_reproduced() {
        let (dag, [h4, h5, h6, h7, h8, h9, h10, h11]) = figure5_dag();
        let memo = explore(&dag);

        // Group 4 ba(+*): R(-1,-1)
        assert_eq!(rendered(&memo, h4), vec!["R(-1,-1)"]);
        // Group 5 rix: R(-1)
        assert_eq!(rendered(&memo, h5), vec!["R(-1)"]);
        // Group 6 b(*): R(-1,-1) R(-1,4) R(5,-1) R(5,4) C(-1,-1)
        assert_eq!(
            rendered(&memo, h6),
            vec![
                "C(-1,-1)".to_string(),
                "R(-1,-1)".to_string(),
                format!("R(-1,{h4})"),
                format!("R({h5},-1)"),
                format!("R({h5},{h4})"),
            ]
        );
        // Group 7 ua(R+): R(-1) R(6) C(6) — no C(-1) (pruned: closed, no refs).
        assert_eq!(
            rendered(&memo, h7),
            vec![format!("C({h6})"), "R(-1)".to_string(), format!("R({h6})")]
        );
        // Group 8 b(*): Row entries over {5,7} plus open C(-1,-1); no
        // C(…,7) because the Cell plan at rowSums is closed.
        assert_eq!(
            rendered(&memo, h8),
            vec![
                "C(-1,-1)".to_string(),
                "R(-1,-1)".to_string(),
                format!("R(-1,{h7})"),
                format!("R({h5},-1)"),
                format!("R({h5},{h7})"),
            ]
        );
        // Group 9 b(-): Row and Cell entries over {6,8}.
        assert_eq!(
            rendered(&memo, h9),
            vec![
                "C(-1,-1)".to_string(),
                format!("C(-1,{h8})"),
                format!("C({h6},-1)"),
                format!("C({h6},{h8})"),
                "R(-1,-1)".to_string(),
                format!("R(-1,{h8})"),
                format!("R({h6},-1)"),
                format!("R({h6},{h8})"),
            ]
        );
        // Group 10 r(t): R(-1)
        assert_eq!(rendered(&memo, h10), vec!["R(-1)"]);
        // Group 11 ba(+*): R(-1,9) R(10,-1) R(10,9) — no R(-1,-1) (no open).
        assert_eq!(
            rendered(&memo, h11),
            vec![format!("R(-1,{h9})"), format!("R({h10},-1)"), format!("R({h10},{h9})"),]
        );
    }

    #[test]
    fn closed_entries_marked() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 100, 1.0);
        let y = b.read("Y", 100, 100, 1.0);
        let m = b.mult(x, y);
        let s = b.sum(m);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        let entries = memo.entries(s);
        assert!(!entries.is_empty());
        assert!(entries.iter().all(|e| e.closed), "sum closes Cell/Row plans");
        assert!(entries.iter().all(|e| e.ref_count() > 0), "single-op plans pruned");
    }

    #[test]
    fn outer_template_explored_for_als_loss() {
        let mut b = DagBuilder::new();
        let x = b.read("X", 2000, 2000, 0.01);
        let u = b.read("U", 2000, 100, 1.0);
        let v = b.read("V", 2000, 100, 1.0);
        let vt = b.t(v);
        let uvt = b.mm(u, vt);
        let eps = b.lit(1e-15);
        let plus = b.add(uvt, eps);
        let lg = b.log(plus);
        let prod = b.mult(x, lg);
        let s = b.sum(prod);
        let dag = b.build(vec![s]);
        let memo = explore(&dag);
        assert!(
            memo.entries(uvt).iter().any(|e| e.ttype == TemplateType::Outer),
            "Outer opens at UV^T"
        );
        let sum_entries = memo.entries(s);
        assert!(
            sum_entries.iter().any(|e| e.ttype == TemplateType::Outer && e.closed),
            "Outer plan reaches and closes at sum: {:?}",
            sum_entries
        );
    }

    #[test]
    fn reexploration_is_idempotent() {
        let (dag, [.., h11]) = figure5_dag();
        let mut memo = explore(&dag);
        let before = memo.total_entries();
        explore_hop(&dag, h11, &mut memo);
        assert_eq!(memo.total_entries(), before, "processed hops are skipped");
    }

    #[test]
    fn shared_reads_explored_once() {
        // Multi-aggregate shape: sum(X⊙Y), sum(X⊙Z) — common input X.
        let mut b = DagBuilder::new();
        let x = b.read("X", 100, 100, 1.0);
        let y = b.read("Y", 100, 100, 1.0);
        let z = b.read("Z", 100, 100, 1.0);
        let a = b.mult(x, y);
        let c = b.mult(x, z);
        let s1 = b.sum(a);
        let s2 = b.sum(c);
        let dag = b.build(vec![s1, s2]);
        let memo = explore(&dag);
        assert!(memo.entries(s1).iter().any(|e| e.ttype == TemplateType::Cell));
        assert!(memo.entries(s2).iter().any(|e| e.ttype == TemplateType::Cell));
    }
}
