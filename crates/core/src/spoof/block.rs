//! Tile-vectorized execution of scalar register programs (DESIGN.md
//! substitution X1, "block backend").
//!
//! The scalar interpreter in [`super::eval_scalar_program`] pays an
//! instruction-dispatch `match` per *cell*, which the paper's janino-compiled
//! Java never does. This module amortizes that dispatch over fixed-width
//! tiles: a scalar [`Program`] is lowered once into a [`BlockProgram`] whose
//! registers are tiles of [`DEFAULT_TILE_WIDTH`] doubles (per-engine
//! configurable), so each instruction becomes one tight, auto-vectorizable
//! loop per tile instead of one `match` per cell.
//!
//! Lowering classifies every scalar register by *variance*:
//!
//! * **invariant** — constants, bound scalars, `Scalar`-access side loads and
//!   anything derived from them: computed once per operator invocation;
//! * **row-uniform** — `Col`-access side loads and derivations: computed once
//!   per row (tiles never cross row boundaries);
//! * **varying** — the main input, the Outer template's `dot(U,V)` values,
//!   `Cell`/`Row`-access side loads and derivations: computed per tile.
//!
//! Only varying computations reach the per-tile body; uniform work is hoisted
//! into prologues replayed through the existing scalar evaluator. On top of
//! the generic body, [`specialize`] pattern-matches the dominant program
//! shapes (multiply chains like `X⊙Y⊙Z`) into monomorphic fused loops — the
//! analogue of the paper's fast janino backend emitting straight-line code.

use super::{Instr, Program, Reg, SideAccess};
use fusedml_linalg::ops::{AggOp, BinaryOp, TernaryOp, UnaryOp};
use fusedml_linalg::primitives as prim;
use fusedml_linalg::simd;

/// Tile register index.
pub type TReg = u16;

/// Default tile width (elements per tile register). 256 doubles = 2 KB per
/// register: a handful of live registers stay comfortably inside L1.
pub const DEFAULT_TILE_WIDTH: usize = 256;

/// Clamps a tile width to the supported range (`8..=8192`). Engine
/// configuration and the `tile_sweep` benchmark funnel through this so an
/// out-of-range knob can never produce a degenerate evaluator.
pub fn clamp_tile_width(w: usize) -> usize {
    w.clamp(8, 8192)
}

/// Which execution backend the Cell/MAgg/Outer skeletons use.
///
/// Selected per engine via `EngineBuilder::cell_backend` (the former
/// process-global setter is gone; PR 5's no-global-state contract now
/// covers the spoof knobs too).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CellBackend {
    /// The per-cell scalar interpreter (retained as the differential-test
    /// oracle and for the compressed-input skeleton).
    Scalar,
    /// The generic tile evaluator.
    Block,
    /// Tile evaluator plus closure-specialized fast kernels (the analogue
    /// of the paper's janino-compiled operators).
    BlockFast,
    /// BlockFast plus whole-program monomorphized kernels (default): tile
    /// programs that classify into a [`super::mono`] shape template run as
    /// static Rust loop instances over the SIMD primitive layer, bypassing
    /// per-instruction dispatch entirely.
    #[default]
    Mono,
}

// ===========================================================================
// IR
// ===========================================================================

/// A per-element operand of a body instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opnd {
    /// A computed tile register.
    Tile(TReg),
    /// The main-input tile supplied by the skeleton.
    Main,
    /// The precomputed `dot(U[i,:], V[j,:])` tile (Outer template).
    Uv,
    /// A gathered side-input tile (index into [`BlockProgram::gathers`]).
    Gather(u16),
    /// A uniform scalar (index into the uniform register file).
    Uniform(u16),
}

/// One vectorized instruction of the per-tile body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockInstr {
    Unary { out: TReg, op: UnaryOp, a: Opnd },
    Binary { out: TReg, op: BinaryOp, a: Opnd, b: Opnd },
    Ternary { out: TReg, op: TernaryOp, a: Opnd, b: Opnd, c: Opnd },
}

/// Where the final value of a scalar register of the source [`Program`]
/// lives after lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValSrc {
    /// Uniform across the tile: index into the uniform file.
    Uniform(u16),
    /// Varies per element: read through the operand source.
    Varying(Opnd),
}

/// A scalar [`Program`] lowered to tile-at-a-time form.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BlockProgram {
    /// Invocation-invariant prologue (uniform-file scalar instructions).
    pub invariant: Vec<Instr>,
    /// Per-row prologue (`Col`-access side loads and derivations).
    pub row_uniform: Vec<Instr>,
    /// The per-tile body.
    pub body: Vec<BlockInstr>,
    /// Uniform register file size (slot 0 is the constant zero).
    pub n_uniform: u16,
    /// Number of tile registers.
    pub n_tiles: u16,
    /// Side tiles the skeleton must gather before evaluating the body:
    /// one `(side, access)` per slot, `access ∈ {Cell, Row}`.
    pub gathers: Vec<(usize, SideAccess)>,
    /// Final value source per scalar register of the source program.
    pub result_src: Vec<ValSrc>,
}

impl BlockProgram {
    /// Final value source of scalar register `r`.
    #[inline]
    pub fn src_of(&self, r: Reg) -> ValSrc {
        self.result_src[r as usize]
    }
}

/// Variance level of a uniform slot during lowering.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum Level {
    Invariant,
    Row,
}

/// Lowers a scalar program (Cell/MAgg/Outer templates — no vector
/// instructions) into a [`BlockProgram`].
pub fn lower(prog: &Program) -> BlockProgram {
    let mut bp = BlockProgram {
        // Slot 0 holds 0.0 so unwritten registers read as zero, matching the
        // scalar evaluator's zero-initialized register file.
        n_uniform: 1,
        result_src: vec![ValSrc::Uniform(0); prog.n_regs as usize],
        ..BlockProgram::default()
    };
    let mut ulevel: Vec<Level> = vec![Level::Invariant];
    let new_u = |bp: &mut BlockProgram, ulevel: &mut Vec<Level>, lvl: Level| -> u16 {
        let s = bp.n_uniform;
        bp.n_uniform += 1;
        ulevel.push(lvl);
        s
    };
    let new_t = |bp: &mut BlockProgram| -> TReg {
        let t = bp.n_tiles;
        bp.n_tiles += 1;
        t
    };
    let gather_slot = |bp: &mut BlockProgram, side: usize, access: SideAccess| -> u16 {
        if let Some(i) = bp.gathers.iter().position(|&g| g == (side, access)) {
            return i as u16;
        }
        bp.gathers.push((side, access));
        (bp.gathers.len() - 1) as u16
    };
    // Resolves a source-program register to an operand + its level.
    let classify = |bp: &BlockProgram, ulevel: &[Level], r: Reg| -> (Opnd, Level) {
        match bp.src_of(r) {
            ValSrc::Uniform(s) => (Opnd::Uniform(s), ulevel[s as usize]),
            ValSrc::Varying(o) => (o, Level::Row), // level unused for varying
        }
    };
    for ins in &prog.instrs {
        match *ins {
            Instr::LoadConst { out, value } => {
                let s = new_u(&mut bp, &mut ulevel, Level::Invariant);
                bp.invariant.push(Instr::LoadConst { out: s, value });
                bp.result_src[out as usize] = ValSrc::Uniform(s);
            }
            Instr::LoadScalar { out, idx } => {
                let s = new_u(&mut bp, &mut ulevel, Level::Invariant);
                bp.invariant.push(Instr::LoadScalar { out: s, idx });
                bp.result_src[out as usize] = ValSrc::Uniform(s);
            }
            Instr::LoadSide { out, side, access } => match access {
                SideAccess::Scalar => {
                    let s = new_u(&mut bp, &mut ulevel, Level::Invariant);
                    bp.invariant.push(Instr::LoadSide { out: s, side, access });
                    bp.result_src[out as usize] = ValSrc::Uniform(s);
                }
                SideAccess::Col => {
                    let s = new_u(&mut bp, &mut ulevel, Level::Row);
                    bp.row_uniform.push(Instr::LoadSide { out: s, side, access });
                    bp.result_src[out as usize] = ValSrc::Uniform(s);
                }
                SideAccess::Cell | SideAccess::Row => {
                    let slot = gather_slot(&mut bp, side, access);
                    bp.result_src[out as usize] = ValSrc::Varying(Opnd::Gather(slot));
                }
            },
            Instr::LoadMain { out } => {
                bp.result_src[out as usize] = ValSrc::Varying(Opnd::Main);
            }
            Instr::LoadUVDot { out } => {
                bp.result_src[out as usize] = ValSrc::Varying(Opnd::Uv);
            }
            Instr::Unary { out, op, a } => {
                let (oa, la) = classify(&bp, &ulevel, a);
                if let ValSrc::Uniform(sa) = bp.src_of(a) {
                    let s = new_u(&mut bp, &mut ulevel, la);
                    let target = if la == Level::Invariant {
                        &mut bp.invariant
                    } else {
                        &mut bp.row_uniform
                    };
                    target.push(Instr::Unary { out: s, op, a: sa });
                    bp.result_src[out as usize] = ValSrc::Uniform(s);
                } else {
                    let t = new_t(&mut bp);
                    bp.body.push(BlockInstr::Unary { out: t, op, a: oa });
                    bp.result_src[out as usize] = ValSrc::Varying(Opnd::Tile(t));
                }
            }
            Instr::Binary { out, op, a, b } => {
                let (oa, la) = classify(&bp, &ulevel, a);
                let (ob, lb) = classify(&bp, &ulevel, b);
                match (bp.src_of(a), bp.src_of(b)) {
                    (ValSrc::Uniform(sa), ValSrc::Uniform(sb)) => {
                        let lvl = if la == Level::Row || lb == Level::Row {
                            Level::Row
                        } else {
                            Level::Invariant
                        };
                        let s = new_u(&mut bp, &mut ulevel, lvl);
                        let target = if lvl == Level::Invariant {
                            &mut bp.invariant
                        } else {
                            &mut bp.row_uniform
                        };
                        target.push(Instr::Binary { out: s, op, a: sa, b: sb });
                        bp.result_src[out as usize] = ValSrc::Uniform(s);
                    }
                    _ => {
                        let t = new_t(&mut bp);
                        bp.body.push(BlockInstr::Binary { out: t, op, a: oa, b: ob });
                        bp.result_src[out as usize] = ValSrc::Varying(Opnd::Tile(t));
                    }
                }
            }
            Instr::Ternary { out, op, a, b, c } => {
                let (oa, la) = classify(&bp, &ulevel, a);
                let (ob, lb) = classify(&bp, &ulevel, b);
                let (oc, lc) = classify(&bp, &ulevel, c);
                match (bp.src_of(a), bp.src_of(b), bp.src_of(c)) {
                    (ValSrc::Uniform(sa), ValSrc::Uniform(sb), ValSrc::Uniform(sc)) => {
                        let lvl = if [la, lb, lc].contains(&Level::Row) {
                            Level::Row
                        } else {
                            Level::Invariant
                        };
                        let s = new_u(&mut bp, &mut ulevel, lvl);
                        let target = if lvl == Level::Invariant {
                            &mut bp.invariant
                        } else {
                            &mut bp.row_uniform
                        };
                        target.push(Instr::Ternary { out: s, op, a: sa, b: sb, c: sc });
                        bp.result_src[out as usize] = ValSrc::Uniform(s);
                    }
                    _ => {
                        let t = new_t(&mut bp);
                        bp.body.push(BlockInstr::Ternary { out: t, op, a: oa, b: ob, c: oc });
                        bp.result_src[out as usize] = ValSrc::Varying(Opnd::Tile(t));
                    }
                }
            }
            _ => panic!("vector instruction in cell block program: {ins:?}"),
        }
    }
    bp
}

// ===========================================================================
// Evaluation
// ===========================================================================

/// A per-element tile input supplied by the skeleton: either a slice of at
/// least the tile's length, or a value uniform across the tile.
#[derive(Clone, Copy, Debug)]
pub enum TileSrc<'a> {
    Slice(&'a [f64]),
    Const(f64),
}

/// Inputs for evaluating one tile.
#[derive(Clone, Copy)]
pub struct TileCtx<'a> {
    pub main: TileSrc<'a>,
    pub uv: TileSrc<'a>,
    /// One entry per [`BlockProgram::gathers`] slot.
    pub gathers: &'a [TileSrc<'a>],
}

impl<'a> TileCtx<'a> {
    /// A context with no inputs (programs over constants only).
    pub fn empty() -> TileCtx<'static> {
        TileCtx { main: TileSrc::Const(0.0), uv: TileSrc::Const(0.0), gathers: &[] }
    }
}

/// A resolved operand: slice of exactly the tile length, or uniform value.
#[derive(Clone, Copy, Debug)]
pub enum OpRef<'a> {
    S(&'a [f64]),
    C(f64),
}

impl<'a> OpRef<'a> {
    #[inline(always)]
    pub(crate) fn get(self, i: usize) -> f64 {
        match self {
            OpRef::S(s) => s[i],
            OpRef::C(c) => c,
        }
    }
}

/// Reusable evaluator state: the uniform scalar file plus the tile register
/// file (one allocation per thread, reused across rows and tiles).
pub struct BlockEval {
    u: Vec<f64>,
    tiles: Vec<f64>,
    width: usize,
}

impl BlockEval {
    /// Allocates evaluator state for `bp` with the given tile width.
    pub fn new(bp: &BlockProgram, width: usize) -> Self {
        BlockEval {
            u: vec![0.0; bp.n_uniform as usize],
            tiles: vec![0.0; bp.n_tiles as usize * width],
            width,
        }
    }

    /// The tile width this evaluator was sized for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs the invocation-invariant prologue (constants, bound scalars,
    /// `Scalar`-access side loads).
    pub fn set_invariants(
        &mut self,
        bp: &BlockProgram,
        side_at: &dyn Fn(usize, SideAccess) -> f64,
        scalars: &[f64],
    ) {
        for ins in &bp.invariant {
            match *ins {
                Instr::LoadConst { out, value } => self.u[out as usize] = value,
                Instr::LoadScalar { out, idx } => self.u[out as usize] = scalars[idx],
                Instr::LoadSide { out, side, access } => {
                    self.u[out as usize] = side_at(side, access)
                }
                Instr::Unary { out, op, a } => self.u[out as usize] = op.apply(self.u[a as usize]),
                Instr::Binary { out, op, a, b } => {
                    self.u[out as usize] = op.apply(self.u[a as usize], self.u[b as usize])
                }
                Instr::Ternary { out, op, a, b, c } => {
                    self.u[out as usize] =
                        op.apply(self.u[a as usize], self.u[b as usize], self.u[c as usize])
                }
                _ => unreachable!("only loads and scalar ops are invariant"),
            }
        }
    }

    /// Runs the per-row prologue; `side_at` must resolve `Col` accesses at
    /// the current row. No-op for programs without row-uniform work.
    pub fn begin_row(&mut self, bp: &BlockProgram, side_at: &dyn Fn(usize, SideAccess) -> f64) {
        if bp.row_uniform.is_empty() {
            return;
        }
        for ins in &bp.row_uniform {
            match *ins {
                Instr::LoadSide { out, side, access } => {
                    self.u[out as usize] = side_at(side, access)
                }
                Instr::Unary { out, op, a } => self.u[out as usize] = op.apply(self.u[a as usize]),
                Instr::Binary { out, op, a, b } => {
                    self.u[out as usize] = op.apply(self.u[a as usize], self.u[b as usize])
                }
                Instr::Ternary { out, op, a, b, c } => {
                    self.u[out as usize] =
                        op.apply(self.u[a as usize], self.u[b as usize], self.u[c as usize])
                }
                _ => unreachable!("only side loads and scalar ops are row-uniform"),
            }
        }
    }

    /// Evaluates the per-tile body for `n` elements (`n <= width`).
    pub fn eval_body(&mut self, bp: &BlockProgram, ctx: &TileCtx<'_>, n: usize) {
        debug_assert!(n <= self.width);
        let w = self.width;
        for ins in &bp.body {
            let out = match *ins {
                BlockInstr::Unary { out, .. }
                | BlockInstr::Binary { out, .. }
                | BlockInstr::Ternary { out, .. } => out,
            };
            let (head, tail) = self.tiles.split_at_mut(out as usize * w);
            let dst = &mut tail[..n];
            match *ins {
                BlockInstr::Unary { op, a, .. } => {
                    un_loop(op, resolve(a, head, w, n, ctx, &self.u), dst)
                }
                BlockInstr::Binary { op, a, b, .. } => bin_loop(
                    op,
                    resolve(a, head, w, n, ctx, &self.u),
                    resolve(b, head, w, n, ctx, &self.u),
                    dst,
                ),
                BlockInstr::Ternary { op, a, b, c, .. } => ter_loop(
                    op,
                    resolve(a, head, w, n, ctx, &self.u),
                    resolve(b, head, w, n, ctx, &self.u),
                    resolve(c, head, w, n, ctx, &self.u),
                    dst,
                ),
            }
        }
    }

    /// Reads the final value of scalar register `reg` after [`Self::eval_body`]
    /// (slice of `n` elements, or a uniform value).
    pub fn value_of<'a>(
        &'a self,
        bp: &BlockProgram,
        reg: Reg,
        ctx: &TileCtx<'a>,
        n: usize,
    ) -> OpRef<'a> {
        match bp.src_of(reg) {
            ValSrc::Uniform(s) => OpRef::C(self.u[s as usize]),
            ValSrc::Varying(o) => resolve(o, &self.tiles, self.width, n, ctx, &self.u),
        }
    }

    /// Resolves a gather/main source without evaluating (fast kernels).
    pub fn opnd<'a>(&'a self, o: Opnd, ctx: &TileCtx<'a>, n: usize) -> OpRef<'a> {
        resolve(o, &self.tiles, self.width, n, ctx, &self.u)
    }

    /// The current value of uniform register `i` (after the invariant and
    /// row prologues). Monomorphized kernels read their scalar leaves here.
    #[inline]
    pub fn uniform(&self, i: u16) -> f64 {
        self.u[i as usize]
    }
}

#[inline(always)]
fn resolve<'a>(
    o: Opnd,
    tiles: &'a [f64],
    width: usize,
    n: usize,
    ctx: &TileCtx<'a>,
    u: &[f64],
) -> OpRef<'a> {
    let from_src = |s: TileSrc<'a>| match s {
        TileSrc::Slice(x) => OpRef::S(&x[..n]),
        TileSrc::Const(c) => OpRef::C(c),
    };
    match o {
        Opnd::Tile(t) => OpRef::S(&tiles[t as usize * width..t as usize * width + n]),
        Opnd::Main => from_src(ctx.main),
        Opnd::Uv => from_src(ctx.uv),
        Opnd::Gather(g) => from_src(ctx.gathers[g as usize]),
        Opnd::Uniform(s) => OpRef::C(u[s as usize]),
    }
}

/// Expands to a `match` over every [`BinaryOp`] so each arm monomorphizes
/// its loop (`$op.apply` constant-folds per arm under `inline(always)`).
macro_rules! with_binop {
    ($op:expr, $go:ident) => {
        match $op {
            BinaryOp::Add => $go!(BinaryOp::Add),
            BinaryOp::Sub => $go!(BinaryOp::Sub),
            BinaryOp::Mult => $go!(BinaryOp::Mult),
            BinaryOp::Div => $go!(BinaryOp::Div),
            BinaryOp::Min => $go!(BinaryOp::Min),
            BinaryOp::Max => $go!(BinaryOp::Max),
            BinaryOp::Pow => $go!(BinaryOp::Pow),
            BinaryOp::Eq => $go!(BinaryOp::Eq),
            BinaryOp::Neq => $go!(BinaryOp::Neq),
            BinaryOp::Lt => $go!(BinaryOp::Lt),
            BinaryOp::Le => $go!(BinaryOp::Le),
            BinaryOp::Gt => $go!(BinaryOp::Gt),
            BinaryOp::Ge => $go!(BinaryOp::Ge),
            BinaryOp::And => $go!(BinaryOp::And),
            BinaryOp::Or => $go!(BinaryOp::Or),
        }
    };
}

macro_rules! with_unop {
    ($op:expr, $go:ident) => {
        match $op {
            UnaryOp::Exp => $go!(UnaryOp::Exp),
            UnaryOp::Log => $go!(UnaryOp::Log),
            UnaryOp::Sqrt => $go!(UnaryOp::Sqrt),
            UnaryOp::Abs => $go!(UnaryOp::Abs),
            UnaryOp::Sign => $go!(UnaryOp::Sign),
            UnaryOp::Round => $go!(UnaryOp::Round),
            UnaryOp::Floor => $go!(UnaryOp::Floor),
            UnaryOp::Ceil => $go!(UnaryOp::Ceil),
            UnaryOp::Neg => $go!(UnaryOp::Neg),
            UnaryOp::Sigmoid => $go!(UnaryOp::Sigmoid),
            UnaryOp::Pow2 => $go!(UnaryOp::Pow2),
            UnaryOp::Sprop => $go!(UnaryOp::Sprop),
            UnaryOp::Recip => $go!(UnaryOp::Recip),
        }
    };
}

// The monomorphizer (`super::mono`) expands the same per-op dispatch tables
// when instantiating its shape templates.
pub(crate) use {with_binop, with_unop};

pub(crate) fn un_loop(op: UnaryOp, a: OpRef<'_>, dst: &mut [f64]) {
    let n = dst.len();
    match a {
        OpRef::S(a) => {
            let a = &a[..n];
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = $k.apply(a[i]);
                    }
                };
            }
            with_unop!(op, go)
        }
        OpRef::C(c) => dst.fill(op.apply(c)),
    }
}

pub(crate) fn bin_loop(op: BinaryOp, a: OpRef<'_>, b: OpRef<'_>, dst: &mut [f64]) {
    let n = dst.len();
    match (a, b) {
        (OpRef::S(a), OpRef::S(b)) => {
            let (a, b) = (&a[..n], &b[..n]);
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = $k.apply(a[i], b[i]);
                    }
                };
            }
            with_binop!(op, go)
        }
        (OpRef::S(a), OpRef::C(c)) => {
            let a = &a[..n];
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = $k.apply(a[i], c);
                    }
                };
            }
            with_binop!(op, go)
        }
        (OpRef::C(c), OpRef::S(b)) => {
            let b = &b[..n];
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = $k.apply(c, b[i]);
                    }
                };
            }
            with_binop!(op, go)
        }
        (OpRef::C(x), OpRef::C(y)) => dst.fill(op.apply(x, y)),
    }
}

pub(crate) fn ter_loop(op: TernaryOp, a: OpRef<'_>, b: OpRef<'_>, c: OpRef<'_>, dst: &mut [f64]) {
    // Ternaries are rare; the per-element operand resolution is a
    // predictable two-way branch.
    match op {
        TernaryOp::PlusMult => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = a.get(i) + b.get(i) * c.get(i);
            }
        }
        TernaryOp::MinusMult => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = a.get(i) - b.get(i) * c.get(i);
            }
        }
        TernaryOp::IfElse => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = if a.get(i) != 0.0 { b.get(i) } else { c.get(i) };
            }
        }
    }
}

/// Folds an aggregate over a tile result of `n` elements.
pub fn fold_result(op: AggOp, acc: f64, r: OpRef<'_>, n: usize) -> f64 {
    match r {
        OpRef::S(s) => match op {
            AggOp::Sum | AggOp::Mean => acc + prim::vect_sum(s, 0, n),
            AggOp::SumSq => acc + prim::vect_sum_sq(s, 0, n),
            AggOp::Min => acc.min(prim::vect_min(s, 0, n)),
            AggOp::Max => acc.max(prim::vect_max(s, 0, n)),
        },
        OpRef::C(c) => match op {
            AggOp::Sum | AggOp::Mean => acc + c * n as f64,
            AggOp::SumSq => acc + c * c * n as f64,
            AggOp::Min => {
                if n > 0 {
                    acc.min(c)
                } else {
                    acc
                }
            }
            AggOp::Max => {
                if n > 0 {
                    acc.max(c)
                } else {
                    acc
                }
            }
        },
    }
}

/// Copies a tile result into an output slice.
pub fn write_result(r: OpRef<'_>, dst: &mut [f64]) {
    match r {
        OpRef::S(s) => dst.copy_from_slice(&s[..dst.len()]),
        OpRef::C(c) => dst.fill(c),
    }
}

// ===========================================================================
// Closure specialization (the "fast janino" path)
// ===========================================================================

/// A closure-specialized kernel for a dominant program shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FastKernel {
    /// `r = Π factors`: some number of main-input uses times `Cell`/`Row`
    /// side gathers — `sum(X⊙Y⊙Z)`, `sum(X⊙Y)`, `X⊙b` and friends.
    ProductChain {
        /// How many times the main input participates in the product.
        mains: u8,
        /// Gather slots (indices into [`BlockProgram::gathers`]).
        slots: Vec<u16>,
    },
}

/// Tries to specialize the value of `result` into a [`FastKernel`].
///
/// Requires single-assignment form (the compiler always emits it); bails on
/// programs that rewrite registers, chains longer than four factors, or any
/// non-multiply operation on the path.
pub fn specialize(prog: &Program, bp: &BlockProgram, result: Reg) -> Option<FastKernel> {
    // Single-assignment check + definition map.
    let mut def: Vec<Option<usize>> = vec![None; prog.n_regs as usize];
    for (i, ins) in prog.instrs.iter().enumerate() {
        let out = match *ins {
            Instr::LoadMain { out }
            | Instr::LoadUVDot { out }
            | Instr::LoadSide { out, .. }
            | Instr::LoadScalar { out, .. }
            | Instr::LoadConst { out, .. }
            | Instr::Unary { out, .. }
            | Instr::Binary { out, .. }
            | Instr::Ternary { out, .. } => out,
            _ => return None,
        };
        if def[out as usize].is_some() {
            return None; // register reuse: reaching defs are ambiguous
        }
        def[out as usize] = Some(i);
    }
    let mut mains = 0u8;
    let mut slots = Vec::new();
    let mut stack = vec![result];
    while let Some(r) = stack.pop() {
        let ins = &prog.instrs[def[r as usize]?];
        match *ins {
            Instr::LoadMain { .. } => mains = mains.checked_add(1)?,
            Instr::LoadSide { side, access, .. }
                if matches!(access, SideAccess::Cell | SideAccess::Row) =>
            {
                let slot = bp.gathers.iter().position(|&g| g == (side, access))? as u16;
                slots.push(slot);
            }
            Instr::Binary { op: BinaryOp::Mult, a, b, .. } => {
                stack.push(a);
                stack.push(b);
            }
            _ => return None,
        }
        if mains as usize + slots.len() > 4 {
            return None;
        }
    }
    if mains as usize + slots.len() == 0 {
        return None;
    }
    Some(FastKernel::ProductChain { mains, slots })
}

/// Product-chain factors resolved for one tile: a uniform prefactor plus up
/// to four slice factors.
#[derive(Clone, Copy)]
pub struct Factors<'a> {
    pub k: f64,
    s: [&'a [f64]; 4],
    len: usize,
}

impl<'a> Factors<'a> {
    /// Builds the factor list from resolved operand references.
    pub fn from_refs(refs: impl Iterator<Item = OpRef<'a>>) -> Option<Factors<'a>> {
        let mut f = Factors { k: 1.0, s: [&[]; 4], len: 0 };
        for r in refs {
            match r {
                OpRef::C(c) => f.k *= c,
                OpRef::S(s) => {
                    if f.len == 4 {
                        return None;
                    }
                    f.s[f.len] = s;
                    f.len += 1;
                }
            }
        }
        Some(f)
    }

    /// `Σ_i k · Π_j s_j[i]` over `n` elements — the fused sum loop, each
    /// arity dispatched to the matching SIMD reduction.
    pub fn sum(&self, n: usize) -> f64 {
        let k = self.k;
        match self.len {
            0 => k * n as f64,
            1 => k * prim::vect_sum(self.s[0], 0, n),
            2 => {
                let d = prim::dot_product(self.s[0], self.s[1], 0, 0, n);
                if k == 1.0 {
                    d
                } else {
                    k * d
                }
            }
            3 => k * simd::dot3_sum(&self.s[0][..n], &self.s[1][..n], &self.s[2][..n]),
            _ => {
                k * simd::dot4_sum(
                    &self.s[0][..n],
                    &self.s[1][..n],
                    &self.s[2][..n],
                    &self.s[3][..n],
                )
            }
        }
    }

    /// `dst[i] = k · Π_j s_j[i]` for `i < dst.len()`.
    pub fn product_into(&self, dst: &mut [f64]) {
        let n = dst.len();
        let k = self.k;
        match self.len {
            0 => dst.fill(k),
            1 => {
                let a = &self.s[0][..n];
                for i in 0..n {
                    dst[i] = k * a[i];
                }
            }
            2 if k == 1.0 => simd::mul2_into(dst, &self.s[0][..n], &self.s[1][..n]),
            2 => {
                let (a, b) = (&self.s[0][..n], &self.s[1][..n]);
                for i in 0..n {
                    dst[i] = k * a[i] * b[i];
                }
            }
            3 if k == 1.0 => {
                simd::mul3_into(dst, &self.s[0][..n], &self.s[1][..n], &self.s[2][..n])
            }
            3 => {
                let (a, b, c) = (&self.s[0][..n], &self.s[1][..n], &self.s[2][..n]);
                for i in 0..n {
                    dst[i] = k * a[i] * b[i] * c[i];
                }
            }
            _ => {
                let (a, b, c, d) =
                    (&self.s[0][..n], &self.s[1][..n], &self.s[2][..n], &self.s[3][..n]);
                for i in 0..n {
                    dst[i] = k * a[i] * b[i] * c[i] * d[i];
                }
            }
        }
    }
}

// ===========================================================================
// Compiled kernel: block program + specializations
// ===========================================================================

/// A fully compiled block kernel: the lowered program plus per-register
/// fast-path specializations (cached by the plan cache, keyed by
/// [`program_hash`]).
#[derive(Clone, Debug, PartialEq)]
pub struct BlockKernel {
    pub block: BlockProgram,
    /// Fast kernel per scalar register (indexed by `Reg`), where one exists.
    pub fast: Vec<Option<FastKernel>>,
    /// Monomorphized whole-program kernel per scalar register, where the
    /// body classifies into a [`super::mono`] shape template.
    pub mono: Vec<Option<super::mono::MonoKernel>>,
}

impl BlockKernel {
    /// The fast kernel for a result register, if specialized.
    #[inline]
    pub fn fast_for(&self, r: Reg) -> Option<&FastKernel> {
        self.fast.get(r as usize).and_then(|f| f.as_ref())
    }

    /// The monomorphized kernel for a result register, if classified.
    #[inline]
    pub fn mono_for(&self, r: Reg) -> Option<&super::mono::MonoKernel> {
        self.mono.get(r as usize).and_then(|m| m.as_ref())
    }

    /// The shape class a result register executes under (for stats and the
    /// plan verifier's re-audit).
    pub fn shape_class(&self, r: Reg) -> super::mono::ShapeClass {
        if let Some(f) = self.fast_for(r) {
            return match f {
                FastKernel::ProductChain { .. } => super::mono::ShapeClass::ProductChain,
            };
        }
        if let Some(m) = self.mono_for(r) {
            return m.class();
        }
        super::mono::ShapeClass::Interpreted
    }
}

/// Lowers and specializes a scalar program into a [`BlockKernel`].
pub fn compile_kernel(prog: &Program) -> BlockKernel {
    let block = lower(prog);
    let fast: Vec<Option<FastKernel>> = (0..prog.n_regs)
        .map(|r| match block.src_of(r) {
            // Only varying results benefit from a fused loop.
            ValSrc::Varying(_) => specialize(prog, &block, r),
            ValSrc::Uniform(_) => None,
        })
        .collect();
    let mono = (0..prog.n_regs)
        .map(|r| match (block.src_of(r), &fast[r as usize]) {
            // Product chains already run as fused closures; monomorphize
            // everything else that classifies.
            (ValSrc::Varying(_), None) => super::mono::classify(&block, r),
            _ => None,
        })
        .collect();
    BlockKernel { block, fast, mono }
}

/// Structural hash of a scalar program (block-kernel cache key).
/// Allocation-free: the skeletons hash on every execute, so Debug-format
/// round-trips would sit on the hot path.
pub fn program_hash(p: &Program) -> u64 {
    crate::util::fx_hash(p)
}

// ===========================================================================
// Row-template lowering
// ===========================================================================

/// A Row [`Program`] lowered for band execution: instructions are split by
/// *variance* into an invocation-invariant prologue (run once per row band)
/// and a per-row body, main-row reads become virtual (resolved against the
/// skeleton's dense or sparse row view instead of a densified copy), and the
/// dominant `Xᵀ(Xv)` mv-chain shape is closure-specialized.
///
/// Lowering depends on the side-input geometry (a `LoadSideRow` of a whole
/// column vector is invariant, a row-aligned slice is not), so kernels are
/// cached by [`row_kernel_hash`] which covers program, output, and side dims.
#[derive(Clone, Debug, PartialEq)]
pub struct RowKernel {
    /// Invocation-invariant instructions: constants, bound scalars,
    /// `Scalar`-access side loads, whole-vector / broadcast side rows, and
    /// anything derived only from those. Run once per band context.
    pub invariant: Vec<Instr>,
    /// Per-row instructions (main-row work, `Col` side loads, derivations).
    pub per_row: Vec<Instr>,
    /// Vector registers holding the current main row. Never materialized:
    /// reads resolve against the skeleton's row view.
    pub main_vregs: Vec<VReg>,
    /// Vector registers whose value is invocation-invariant.
    pub invariant_vregs: Vec<bool>,
    /// True when every use of the main row — instructions and the Row
    /// output — can consume a sparse row directly over its non-zeros, so
    /// sparse mains execute without densification.
    pub sparse_main_ok: bool,
    /// Closure-specialized fast path, where the program matches one.
    pub fast: Option<RowFastKernel>,
}

/// A closure-specialized kernel for a dominant Row program shape.
#[derive(Clone, Debug, PartialEq)]
pub enum RowFastKernel {
    /// `acc += g(dot(x_row, v)) · x_row` — the `Xᵀ(Xv)` / mlogreg
    /// `Xᵀ(w ⊙ (Xv))` family: a single dot of the main row against an
    /// invariant vector, an arbitrary scalar-only tail computing the
    /// multiplier, and a `ColAggMultAdd` output over the main row. Executes
    /// as one dot + one axpy per row (sparse rows over their non-zeros).
    MvChain {
        /// The invariant vector register dotted with the main row.
        v: VReg,
        /// Register receiving the dot result.
        dot_out: Reg,
        /// Scalar-only per-row instructions computing the multiplier.
        scalar_tail: Vec<Instr>,
        /// Register holding the final multiplier (the output's `scalar`).
        scalar_src: Reg,
    },
    /// `acc += x_row ⊗ (x_rowᵀ·S)` — the `t(X) %*% (X %*% V)` PCA/DDC shape
    /// (fig 8g): one `VecMatMult` of the main row against a side matrix,
    /// consumed by an `OuterColAgg` with the main row on the left. Executes
    /// as one sparse-aware side-row accumulation plus one outer axpy per
    /// row, no per-instruction dispatch.
    MatVecOuter {
        /// Side-input index multiplied from the right.
        side: usize,
        /// Vector register receiving the mat-vec product (the output's
        /// `right` operand).
        t: VReg,
    },
}

use super::{RowOut, RowSpec, VReg};

/// True when a `LoadSideRow` of a side with dims `(rows, cols)` sliced to
/// `cl..cu` reads the side's whole column vector (`v` in `X %*% v`) rather
/// than a per-row slice. Shared by lowering, the band executor, and the
/// interpreter oracle so the classification can never drift between them.
#[inline]
pub fn whole_vector_load(rows: usize, cols: usize, cl: usize, cu: usize) -> bool {
    cols == 1 && cu - cl == rows && rows > 1
}

/// Per-`LoadSideRow` invariance bits under the given side dimensions — the
/// only way side geometry enters Row lowering (whole-vector and broadcast
/// loads are invariant), and therefore the only geometry the kernel cache
/// key needs.
fn side_row_invariance(prog: &Program, side_dims: &[(usize, usize)]) -> Vec<bool> {
    prog.instrs
        .iter()
        .filter_map(|ins| match *ins {
            Instr::LoadSideRow { side, cl, cu, .. } => {
                let (r, c) = side_dims.get(side).copied().unwrap_or((0, 0));
                Some(whole_vector_load(r, c, cl, cu) || r == 1)
            }
            _ => None,
        })
        .collect()
}

/// Lowers a Row program into a [`RowKernel`] under the given side-input
/// dimensions (`(rows, cols)` per side, the CPlan's `side_dims`).
pub fn compile_row_kernel(spec: &RowSpec, side_dims: &[(usize, usize)]) -> RowKernel {
    let prog = &spec.prog;
    let mut sc_inv = vec![false; prog.n_regs as usize];
    let mut v_inv = vec![false; prog.vreg_lens.len()];
    let mut main_vregs: Vec<VReg> = Vec::new();
    let mut invariant = Vec::new();
    let mut per_row = Vec::new();
    for ins in &prog.instrs {
        let is_main = |v: VReg, mains: &[VReg]| mains.contains(&v);
        let inv = match *ins {
            Instr::LoadConst { .. } | Instr::LoadScalar { .. } => true,
            Instr::LoadSide { access, .. } => access == SideAccess::Scalar,
            Instr::LoadMain { .. } => false,
            Instr::LoadUVDot { .. } => panic!("UVDot in Row program"),
            Instr::LoadMainRow { out } => {
                main_vregs.push(out);
                false
            }
            Instr::LoadSideRow { side, cl, cu, .. } => {
                let (r, c) = side_dims.get(side).copied().unwrap_or((0, 0));
                // Whole column vectors (`v` in `X %*% v`) and 1×m broadcast
                // rows read the same data for every row: load once per band.
                whole_vector_load(r, c, cl, cu) || r == 1
            }
            Instr::Unary { a, .. } => sc_inv[a as usize],
            Instr::Binary { a, b, .. } => sc_inv[a as usize] && sc_inv[b as usize],
            Instr::Ternary { a, b, c, .. } => {
                sc_inv[a as usize] && sc_inv[b as usize] && sc_inv[c as usize]
            }
            Instr::VecUnary { a, .. } | Instr::VecCumsum { a, .. } => {
                v_inv[a as usize] && !is_main(a, &main_vregs)
            }
            Instr::VecBinaryVV { a, b, .. } => {
                v_inv[a as usize]
                    && v_inv[b as usize]
                    && !is_main(a, &main_vregs)
                    && !is_main(b, &main_vregs)
            }
            Instr::VecBinaryVS { a, b, .. } => {
                v_inv[a as usize] && sc_inv[b as usize] && !is_main(a, &main_vregs)
            }
            Instr::VecMatMult { a, .. } => v_inv[a as usize] && !is_main(a, &main_vregs),
            Instr::Dot { a, b, .. } => {
                v_inv[a as usize]
                    && v_inv[b as usize]
                    && !is_main(a, &main_vregs)
                    && !is_main(b, &main_vregs)
            }
            Instr::VecAgg { a, .. } => v_inv[a as usize] && !is_main(a, &main_vregs),
        };
        match *ins {
            Instr::LoadMainRow { out }
            | Instr::LoadSideRow { out, .. }
            | Instr::VecUnary { out, .. }
            | Instr::VecBinaryVV { out, .. }
            | Instr::VecBinaryVS { out, .. }
            | Instr::VecMatMult { out, .. }
            | Instr::VecCumsum { out, .. } => v_inv[out as usize] = inv,
            Instr::LoadMain { out }
            | Instr::LoadSide { out, .. }
            | Instr::LoadScalar { out, .. }
            | Instr::LoadConst { out, .. }
            | Instr::Unary { out, .. }
            | Instr::Binary { out, .. }
            | Instr::Ternary { out, .. }
            | Instr::Dot { out, .. }
            | Instr::VecAgg { out, .. } => sc_inv[out as usize] = inv,
            Instr::LoadUVDot { .. } => unreachable!(),
        }
        if inv {
            invariant.push(ins.clone());
        } else {
            per_row.push(ins.clone());
        }
    }
    let sparse_main_ok = row_sparse_main_ok(&per_row, &main_vregs);
    let fast = specialize_row(&per_row, &main_vregs, &v_inv, &spec.out);
    RowKernel { invariant, per_row, main_vregs, invariant_vregs: v_inv, sparse_main_ok, fast }
}

/// True when every per-row use of the main row can iterate non-zeros
/// directly: `Dot`, `VecMatMult` (as the row operand), and `VecAgg` consume
/// sparse rows; element-wise vector ops and cumsum need the dense row. All
/// Row outputs scatter or read scalars, so they never force densification.
fn row_sparse_main_ok(per_row: &[Instr], mains: &[VReg]) -> bool {
    let is_main = |v: VReg| mains.contains(&v);
    per_row.iter().all(|ins| match *ins {
        Instr::VecUnary { a, .. } | Instr::VecCumsum { a, .. } => !is_main(a),
        Instr::VecBinaryVV { a, b, .. } => !is_main(a) && !is_main(b),
        Instr::VecBinaryVS { a, .. } => !is_main(a),
        _ => true,
    })
}

/// Tries to specialize the per-row body into a [`RowFastKernel`].
fn specialize_row(
    per_row: &[Instr],
    mains: &[VReg],
    v_inv: &[bool],
    out: &RowOut,
) -> Option<RowFastKernel> {
    if let RowOut::OuterColAgg { left, right } = *out {
        // x_row ⊗ (x_rowᵀ·S): the body must be exactly the main-row load(s)
        // plus one VecMatMult of the main row producing the right operand.
        if !mains.contains(&left) || mains.contains(&right) {
            return None;
        }
        let mut vmm: Option<usize> = None;
        for ins in per_row {
            match *ins {
                Instr::LoadMainRow { .. } => {}
                Instr::VecMatMult { out, a, side } if out == right && mains.contains(&a) => {
                    if vmm.is_some() {
                        return None;
                    }
                    vmm = Some(side);
                }
                _ => return None,
            }
        }
        return Some(RowFastKernel::MatVecOuter { side: vmm?, t: right });
    }
    let RowOut::ColAggMultAdd { vec, scalar } = *out else { return None };
    if !mains.contains(&vec) {
        return None;
    }
    let is_main = |v: VReg| mains.contains(&v);
    let mut dot: Option<(Reg, VReg)> = None;
    let mut tail = Vec::new();
    for ins in per_row {
        match *ins {
            Instr::LoadMainRow { .. } => {}
            Instr::Dot { out, a, b } => {
                if dot.is_some() {
                    return None;
                }
                let v = if is_main(a) && !is_main(b) && v_inv[b as usize] {
                    b
                } else if is_main(b) && !is_main(a) && v_inv[a as usize] {
                    a
                } else {
                    return None;
                };
                dot = Some((out, v));
            }
            Instr::LoadSide { .. }
            | Instr::LoadScalar { .. }
            | Instr::LoadConst { .. }
            | Instr::Unary { .. }
            | Instr::Binary { .. }
            | Instr::Ternary { .. } => tail.push(ins.clone()),
            _ => return None, // other vector work: stay on the generic body
        }
    }
    let (dot_out, v) = dot?;
    Some(RowFastKernel::MvChain { v, dot_out, scalar_tail: tail, scalar_src: scalar })
}

/// Structural hash of a Row operator under its side geometry (row-kernel
/// cache key): covers the program, output variant, and the per-load
/// invariance bits derived from the side dims — NOT the raw dimensions, so
/// the same operator over varying row counts (mini-batches, growing data)
/// maps to one cached kernel. The execution mode also shares one lowering.
pub fn row_kernel_hash(spec: &RowSpec, side_dims: &[(usize, usize)]) -> u64 {
    let bits = side_row_invariance(&spec.prog, side_dims);
    crate::util::fx_hash(&(&spec.prog, &spec.out, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spoof::eval_scalar_program;

    fn no_sides(_: usize, _: SideAccess) -> f64 {
        0.0
    }

    /// `f(a) = (a != 0) * 2 + 1` — from the scalar evaluator's test.
    fn indicator_prog() -> Program {
        Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadConst { out: 1, value: 0.0 },
                Instr::Binary { out: 2, op: BinaryOp::Neq, a: 0, b: 1 },
                Instr::LoadConst { out: 3, value: 2.0 },
                Instr::Binary { out: 4, op: BinaryOp::Mult, a: 2, b: 3 },
                Instr::LoadConst { out: 5, value: 1.0 },
                Instr::Binary { out: 6, op: BinaryOp::Add, a: 4, b: 5 },
            ],
            n_regs: 7,
            vreg_lens: vec![],
        }
    }

    #[test]
    fn lowering_hoists_constants() {
        let bp = lower(&indicator_prog());
        // The three constants are invariant; the three binaries touch the
        // varying main, so they stay in the body.
        assert_eq!(bp.invariant.len(), 3);
        assert!(bp.row_uniform.is_empty());
        assert_eq!(bp.body.len(), 3);
        assert!(bp.gathers.is_empty());
    }

    #[test]
    fn block_matches_scalar_on_indicator() {
        let prog = indicator_prog();
        let bp = lower(&prog);
        let mut ev = BlockEval::new(&bp, 8);
        ev.set_invariants(&bp, &no_sides, &[]);
        let main = [5.0, 0.0, -1.0, 0.0, 2.0];
        let ctx = TileCtx { main: TileSrc::Slice(&main), uv: TileSrc::Const(0.0), gathers: &[] };
        ev.eval_body(&bp, &ctx, main.len());
        let out = ev.value_of(&bp, 6, &ctx, main.len());
        let mut regs = vec![0.0; 7];
        for (i, &m) in main.iter().enumerate() {
            eval_scalar_program(&prog, &mut regs, m, 0.0, &no_sides, &[]);
            assert_eq!(out.get(i), regs[6], "element {i}");
        }
    }

    #[test]
    fn side_access_classes() {
        // t0 = side0[Cell]; t1 = side1[Col]; t2 = side2[Scalar];
        // r = (t0 * t1) + t2
        let prog = Program {
            instrs: vec![
                Instr::LoadSide { out: 0, side: 0, access: SideAccess::Cell },
                Instr::LoadSide { out: 1, side: 1, access: SideAccess::Col },
                Instr::LoadSide { out: 2, side: 2, access: SideAccess::Scalar },
                Instr::Binary { out: 3, op: BinaryOp::Mult, a: 0, b: 1 },
                Instr::Binary { out: 4, op: BinaryOp::Add, a: 3, b: 2 },
            ],
            n_regs: 5,
            vreg_lens: vec![],
        };
        let bp = lower(&prog);
        assert_eq!(bp.gathers, vec![(0, SideAccess::Cell)]);
        assert_eq!(bp.invariant.len(), 1, "Scalar access is invariant");
        assert_eq!(bp.row_uniform.len(), 1, "Col access is row-uniform");
        assert_eq!(bp.body.len(), 2);

        let mut ev = BlockEval::new(&bp, 4);
        ev.set_invariants(&bp, &|s, _| if s == 2 { 10.0 } else { 0.0 }, &[]);
        ev.begin_row(&bp, &|s, _| if s == 1 { 3.0 } else { 0.0 });
        let side_tile = [1.0, 2.0, 4.0];
        let g = [TileSrc::Slice(&side_tile[..])];
        let ctx = TileCtx { main: TileSrc::Const(0.0), uv: TileSrc::Const(0.0), gathers: &g };
        ev.eval_body(&bp, &ctx, 3);
        let out = ev.value_of(&bp, 4, &ctx, 3);
        assert_eq!([out.get(0), out.get(1), out.get(2)], [13.0, 16.0, 22.0]);
    }

    #[test]
    fn uniform_result_program() {
        // r = 3 * 7 — fully invariant; no body instructions at all.
        let prog = Program {
            instrs: vec![
                Instr::LoadConst { out: 0, value: 3.0 },
                Instr::LoadConst { out: 1, value: 7.0 },
                Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            n_regs: 3,
            vreg_lens: vec![],
        };
        let bp = lower(&prog);
        assert!(bp.body.is_empty());
        let mut ev = BlockEval::new(&bp, 4);
        ev.set_invariants(&bp, &no_sides, &[]);
        let ctx = TileCtx::empty();
        match ev.value_of(&bp, 2, &ctx, 4) {
            OpRef::C(v) => assert_eq!(v, 21.0),
            OpRef::S(_) => panic!("uniform result expected"),
        }
        assert_eq!(fold_result(AggOp::Sum, 0.0, OpRef::C(21.0), 4), 84.0);
    }

    #[test]
    fn specializes_product_chains() {
        // r = a * s0 * s1 (the fig8a shape).
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
                Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                Instr::LoadSide { out: 3, side: 1, access: SideAccess::Cell },
                Instr::Binary { out: 4, op: BinaryOp::Mult, a: 2, b: 3 },
            ],
            n_regs: 5,
            vreg_lens: vec![],
        };
        let k = compile_kernel(&prog);
        match k.fast_for(4) {
            Some(FastKernel::ProductChain { mains, slots }) => {
                assert_eq!(*mains, 1);
                assert_eq!(slots.len(), 2);
            }
            other => panic!("expected product chain, got {other:?}"),
        }
        // Intermediate register 2 is also a (shorter) chain.
        assert!(k.fast_for(2).is_some());
        // Loads themselves specialize trivially but harmlessly.
        assert!(k.fast_for(0).is_some());
    }

    #[test]
    fn does_not_specialize_non_products() {
        // r = log(uv + eps) * a — the fig8h shape: has Add + Log + UVDot,
        // so the product-chain closure bails; the monomorphizer picks the
        // shape up instead (covered in `super::super::mono::tests`).
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadUVDot { out: 1 },
                Instr::LoadConst { out: 2, value: 1e-15 },
                Instr::Binary { out: 3, op: BinaryOp::Add, a: 1, b: 2 },
                Instr::Unary { out: 4, op: UnaryOp::Log, a: 3 },
                Instr::Binary { out: 5, op: BinaryOp::Mult, a: 0, b: 4 },
            ],
            n_regs: 6,
            vreg_lens: vec![],
        };
        let k = compile_kernel(&prog);
        assert!(k.fast_for(5).is_none());
        assert!(k.mono_for(5).is_some());
    }

    #[test]
    fn factors_sum_and_product_agree() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64).cos()).collect();
        let c: Vec<f64> = (0..13).map(|i| 1.0 + i as f64 * 0.1).collect();
        for slices in [vec![&a], vec![&a, &b], vec![&a, &b, &c]] {
            let refs = slices.iter().map(|s| OpRef::S(&s[..]));
            let f = Factors::from_refs(refs.chain([OpRef::C(2.0)])).unwrap();
            let mut out = vec![0.0; 13];
            f.product_into(&mut out);
            let expect: Vec<f64> =
                (0..13).map(|i| 2.0 * slices.iter().map(|s| s[i]).product::<f64>()).collect();
            for (x, y) in out.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-12);
            }
            let s = f.sum(13);
            let es: f64 = expect.iter().sum();
            assert!((s - es).abs() < 1e-9 * es.abs().max(1.0), "{s} vs {es}");
        }
    }

    #[test]
    fn tile_width_clamps_and_backend_defaults() {
        assert_eq!(clamp_tile_width(1), 8);
        assert_eq!(clamp_tile_width(64), 64);
        assert_eq!(clamp_tile_width(1 << 20), 8192);
        assert_eq!(CellBackend::default(), CellBackend::Mono);
    }

    use crate::spoof::{RowExecMode, RowOut, RowSpec};

    /// `t(X) %*% (w ⊙ (X %*% v))` — the mlogreg-style sparse row pattern:
    /// v0 = main row; v1 = v (whole-vector side 0, m×1); r0 = dot(v0, v1);
    /// r1 = w[rix] (Col side 1, n×1); r2 = r0 * r1; out += r2 · v0.
    fn mlogreg_row_spec(m: usize) -> RowSpec {
        RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::LoadSideRow { out: 1, side: 0, cl: 0, cu: m },
                    Instr::Dot { out: 0, a: 0, b: 1 },
                    Instr::LoadSide { out: 1, side: 1, access: SideAccess::Col },
                    Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
                ],
                n_regs: 3,
                vreg_lens: vec![m, m],
            },
            out: RowOut::ColAggMultAdd { vec: 0, scalar: 2 },
            out_rows: m,
            out_cols: 1,
            exec_mode: RowExecMode::Vectorized,
        }
    }

    #[test]
    fn row_lowering_hoists_invariants_and_specializes_mv_chain() {
        let m = 40;
        let spec = mlogreg_row_spec(m);
        let k = compile_row_kernel(&spec, &[(m, 1), (100, 1)]);
        // The whole-vector load of `v` is invariant (once per band); the
        // dot, the Col-access load of `w`, and the multiply stay per-row.
        assert_eq!(k.invariant, vec![Instr::LoadSideRow { out: 1, side: 0, cl: 0, cu: m }]);
        assert_eq!(k.per_row.len(), 4);
        assert_eq!(k.main_vregs, vec![0]);
        assert!(k.invariant_vregs[1] && !k.invariant_vregs[0]);
        // Sparse mains execute over non-zeros: no densification anywhere.
        assert!(k.sparse_main_ok, "mv-chain must not densify the sparse main");
        match k.fast {
            Some(RowFastKernel::MvChain { v, dot_out, ref scalar_tail, scalar_src }) => {
                assert_eq!(v, 1);
                assert_eq!(dot_out, 0);
                assert_eq!(scalar_tail.len(), 2, "w load + multiply");
                assert_eq!(scalar_src, 2);
            }
            ref other => panic!("expected MvChain, got {other:?}"),
        }
    }

    #[test]
    fn row_lowering_detects_dense_main_uses() {
        // exp(X) per row: VecUnary over the main row needs the dense row.
        let spec = RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::VecUnary { out: 1, op: UnaryOp::Exp, a: 0 },
                ],
                n_regs: 0,
                vreg_lens: vec![8, 8],
            },
            out: RowOut::NoAgg { src: 1 },
            out_rows: 4,
            out_cols: 8,
            exec_mode: RowExecMode::Vectorized,
        };
        let k = compile_row_kernel(&spec, &[]);
        assert!(!k.sparse_main_ok);
        assert!(k.fast.is_none());
        assert!(k.invariant.is_empty());
    }

    #[test]
    fn row_kernel_hash_covers_side_dims() {
        let spec = mlogreg_row_spec(16);
        // Same program, different side geometry (row slice vs whole vector)
        // must lower and cache separately.
        assert_ne!(
            row_kernel_hash(&spec, &[(16, 1), (100, 1)]),
            row_kernel_hash(&spec, &[(100, 16), (100, 1)])
        );
        assert_eq!(
            row_kernel_hash(&spec, &[(16, 1), (100, 1)]),
            row_kernel_hash(&mlogreg_row_spec(16), &[(16, 1), (100, 1)])
        );
        // Dims that don't change any load's invariance share one kernel:
        // varying main row counts (side 1 is the n×1 `w`, read via `Col`
        // access, not `LoadSideRow`) must not grow the cache.
        assert_eq!(
            row_kernel_hash(&spec, &[(16, 1), (100, 1)]),
            row_kernel_hash(&spec, &[(16, 1), (100_000, 1)])
        );
    }

    #[test]
    fn program_hash_is_structural() {
        let p1 = indicator_prog();
        let p2 = indicator_prog();
        assert_eq!(program_hash(&p1), program_hash(&p2));
        let mut p3 = indicator_prog();
        p3.instrs[1] = Instr::LoadConst { out: 1, value: 4.0 };
        assert_ne!(program_hash(&p1), program_hash(&p3));
    }
}
