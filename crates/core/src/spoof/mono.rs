//! Whole-program kernel monomorphization (DESIGN.md substitution X10,
//! "mono backend") — the Rust answer to the paper's fast-janino codegen.
//!
//! The tile evaluator in [`super::block`] still pays one dispatch `match`
//! per *instruction* per tile, and its closure-specialized fast kernels
//! ([`super::block::FastKernel`]) cover only multiply chains. This module
//! closes the gap for everything else with a bounded family of *shape
//! templates*: [`classify`] pattern-matches a lowered [`BlockProgram`]
//! body into a [`MonoKernel`], whose loops are instantiated statically —
//! one `#[inline]` loop instance per operator combination, expanded via
//! the same `with_unop!`/`with_binop!` dispatch tables the tile evaluator
//! uses — so an entire register program executes as straight-line native
//! code over the SIMD primitive layer with zero per-instruction dispatch.
//!
//! The shape taxonomy (see DESIGN.md §4 X10):
//!
//! * [`MonoKernel::Map1`]/[`MonoKernel::Map2`]/[`MonoKernel::Map3`] —
//!   single unary/binary/ternary maps over non-tile leaves;
//! * [`MonoKernel::MulUnBin`] — `outer(a, un(inner(b, c)))` with
//!   `outer ∈ {Mult, Add}`, `inner ∈ {Add, Mult, Sub}` and all thirteen
//!   unary ops: the weighted-nonlinearity family that dominates the
//!   fig 8h Outer panel (`X ⊙ log(UVᵀ + eps)`) and sigmoid/exp cells;
//! * [`MonoKernel::Tree`] — a bounded DAG evaluator (≤ [`MAX_NODES`]
//!   nodes, ≤ [`MAX_DEPTH`] depth) that runs arbitrary remaining bodies
//!   in chunked stack buffers, one monomorphized loop per node.
//!
//! Programs that exceed the bounds (or whose roots the closure-specialized
//! fast kernels already cover) fall back to the tile interpreter; the
//! chosen class is surfaced per operator through [`ShapeClass`] into
//! `ExecStats` and re-audited by `runtime::verify`.

use super::block::{
    bin_loop, fold_result, ter_loop, un_loop, with_binop, with_unop, BlockEval, BlockInstr,
    BlockProgram, OpRef, Opnd, TileCtx, ValSrc,
};
use super::Reg;
use fusedml_linalg::ops::{AggOp, BinaryOp, TernaryOp, UnaryOp};

/// Maximum nodes a [`MonoKernel::Tree`] may hold; larger bodies stay on
/// the tile interpreter (bounds keep the stack buffers at ~6 KB).
pub const MAX_NODES: usize = 12;
/// Maximum operand depth of a [`MonoKernel::Tree`].
pub const MAX_DEPTH: usize = 6;
/// Elements evaluated per tree chunk (fits `MAX_NODES` lanes in L1).
const CHUNK: usize = 64;

/// The shape class a compiled register executes under — reported through
/// `ExecStats` and re-audited by the plan verifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShapeClass {
    /// Closure-specialized multiply chain (`FastKernel::ProductChain`).
    ProductChain,
    /// Closure-specialized row mv-chain (`RowFastKernel::MvChain`).
    MvChain,
    /// Closure-specialized row mat-vec outer (`RowFastKernel::MatVecOuter`).
    MatVecOuter,
    /// Monomorphized single unary map.
    Map1,
    /// Monomorphized single binary map.
    Map2,
    /// Monomorphized single ternary map.
    Map3,
    /// Monomorphized `outer(a, un(inner(b, c)))` chain.
    MulUnBin,
    /// Monomorphized bounded-DAG chunk evaluator.
    TreeMap,
    /// Tile/scalar interpreter fallback.
    Interpreted,
}

impl ShapeClass {
    /// True when the class executes through a specialized (closure- or
    /// template-monomorphized) kernel rather than the interpreter.
    #[inline]
    pub fn is_specialized(self) -> bool {
        !matches!(self, ShapeClass::Interpreted)
    }

    /// Stable lowercase label (stats output, bench reports).
    pub fn label(self) -> &'static str {
        match self {
            ShapeClass::ProductChain => "product_chain",
            ShapeClass::MvChain => "mv_chain",
            ShapeClass::MatVecOuter => "mat_vec_outer",
            ShapeClass::Map1 => "map1",
            ShapeClass::Map2 => "map2",
            ShapeClass::Map3 => "map3",
            ShapeClass::MulUnBin => "mul_un_bin",
            ShapeClass::TreeMap => "tree_map",
            ShapeClass::Interpreted => "interpreted",
        }
    }
}

/// Operator of one [`Tree`](MonoKernel::Tree) node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeOp {
    Un(UnaryOp),
    Bin(BinaryOp),
    Ter(TernaryOp),
}

/// One operand of a tree node: a non-tile leaf or an earlier node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeArg {
    /// A non-`Tile` leaf operand (Main / Uv / Gather / Uniform).
    Leaf(Opnd),
    /// Index of an earlier node in the topo-ordered node list.
    Node(u8),
}

/// One node of the bounded DAG evaluator. Unused argument slots hold
/// `TreeArg::Leaf(Opnd::Uniform(0))` (the constant-zero slot).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeNode {
    pub op: TreeOp,
    pub args: [TreeArg; 3],
}

/// A whole register program compiled to one static kernel instance.
///
/// Leaves are always non-`Tile` [`Opnd`]s, resolved against the evaluator's
/// uniform file and the skeleton's tile context — a mono kernel never reads
/// or writes the tile register file.
#[derive(Clone, Debug, PartialEq)]
pub enum MonoKernel {
    /// `dst[i] = op(a[i])`.
    Map1 { op: UnaryOp, a: Opnd },
    /// `dst[i] = op(a[i], b[i])`.
    Map2 { op: BinaryOp, a: Opnd, b: Opnd },
    /// `dst[i] = op(a[i], b[i], c[i])`.
    Map3 { op: TernaryOp, a: Opnd, b: Opnd, c: Opnd },
    /// `dst[i] = outer(a[i], un(inner(b[i], c[i])))`.
    MulUnBin { outer: BinaryOp, a: Opnd, un: UnaryOp, inner: BinaryOp, b: Opnd, c: Opnd },
    /// Bounded-DAG chunk evaluator; the last node is the root.
    Tree { nodes: Vec<TreeNode> },
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// Outer operators admitted by the [`MonoKernel::MulUnBin`] template.
#[inline]
fn mul_un_bin_outer(op: BinaryOp) -> bool {
    matches!(op, BinaryOp::Mult | BinaryOp::Add)
}

/// Inner operators admitted by the [`MonoKernel::MulUnBin`] template.
#[inline]
fn mul_un_bin_inner(op: BinaryOp) -> bool {
    matches!(op, BinaryOp::Add | BinaryOp::Mult | BinaryOp::Sub)
}

/// Classifies the value of scalar register `r` of a lowered program into a
/// [`MonoKernel`], or `None` when the body does not fit any template
/// (interpreter fallback). Classification is purely structural and
/// deterministic — `runtime::verify` re-runs it to audit cached kernels.
pub fn classify(bp: &BlockProgram, r: Reg) -> Option<MonoKernel> {
    let ValSrc::Varying(root) = bp.src_of(r) else { return None };
    let Opnd::Tile(t) = root else { return None };

    // Definition map over the body; bail on register reuse (reaching
    // definitions would be ambiguous — the compiler emits single-assignment
    // form, so this only trips on hand-built programs).
    let mut def: Vec<Option<usize>> = vec![None; bp.n_tiles as usize];
    for (i, ins) in bp.body.iter().enumerate() {
        let out = match *ins {
            BlockInstr::Unary { out, .. }
            | BlockInstr::Binary { out, .. }
            | BlockInstr::Ternary { out, .. } => out,
        };
        if def[out as usize].is_some() {
            return None;
        }
        def[out as usize] = Some(i);
    }

    let mut nodes: Vec<TreeNode> = Vec::new();
    let mut memo: Vec<Option<u8>> = vec![None; bp.n_tiles as usize];
    let root_ix = build_node(t, 0, bp, &def, &mut nodes, &mut memo)?;
    debug_assert_eq!(root_ix as usize, nodes.len() - 1);

    // Single-node bodies collapse to the map templates.
    if nodes.len() == 1 {
        let n = nodes[0];
        return Some(match (n.op, n.args) {
            (TreeOp::Un(op), [TreeArg::Leaf(a), _, _]) => MonoKernel::Map1 { op, a },
            (TreeOp::Bin(op), [TreeArg::Leaf(a), TreeArg::Leaf(b), _]) => {
                MonoKernel::Map2 { op, a, b }
            }
            (TreeOp::Ter(op), [TreeArg::Leaf(a), TreeArg::Leaf(b), TreeArg::Leaf(c)]) => {
                MonoKernel::Map3 { op, a, b, c }
            }
            _ => unreachable!("single node has only leaf args"),
        });
    }

    // Three-node `outer(leaf, un(inner(leaf, leaf)))` chains collapse to the
    // MulUnBin template (commutative outers normalize the leaf to the left).
    if nodes.len() == 3 {
        if let TreeNode { op: TreeOp::Bin(outer), args: [x, y, _] } = nodes[2] {
            let leaf_node = match (x, y) {
                (TreeArg::Leaf(a), TreeArg::Node(n)) => Some((a, n)),
                (TreeArg::Node(n), TreeArg::Leaf(a)) if mul_un_bin_outer(outer) => Some((a, n)),
                _ => None,
            };
            if let Some((a, un_ix)) = leaf_node {
                if let TreeNode { op: TreeOp::Un(un), args: [TreeArg::Node(in_ix), _, _] } =
                    nodes[un_ix as usize]
                {
                    if let TreeNode {
                        op: TreeOp::Bin(inner),
                        args: [TreeArg::Leaf(b), TreeArg::Leaf(c), _],
                    } = nodes[in_ix as usize]
                    {
                        if mul_un_bin_outer(outer) && mul_un_bin_inner(inner) {
                            return Some(MonoKernel::MulUnBin { outer, a, un, inner, b, c });
                        }
                    }
                }
            }
        }
    }

    Some(MonoKernel::Tree { nodes })
}

/// Recursively builds the topo-ordered node list for tile `t`. Memoized so
/// DAG-shaped reuse of an intermediate costs one node, not a subtree copy.
fn build_node(
    t: super::block::TReg,
    depth: usize,
    bp: &BlockProgram,
    def: &[Option<usize>],
    nodes: &mut Vec<TreeNode>,
    memo: &mut [Option<u8>],
) -> Option<u8> {
    if depth > MAX_DEPTH {
        return None;
    }
    if let Some(ix) = memo[t as usize] {
        return Some(ix);
    }
    let ins = bp.body[def[t as usize]?];
    let zero = TreeArg::Leaf(Opnd::Uniform(0));
    let arg = |o: Opnd, nodes: &mut Vec<TreeNode>, memo: &mut [Option<u8>]| match o {
        Opnd::Tile(u) => build_node(u, depth + 1, bp, def, nodes, memo).map(TreeArg::Node),
        leaf => Some(TreeArg::Leaf(leaf)),
    };
    let node = match ins {
        BlockInstr::Unary { op, a, .. } => {
            TreeNode { op: TreeOp::Un(op), args: [arg(a, nodes, memo)?, zero, zero] }
        }
        BlockInstr::Binary { op, a, b, .. } => TreeNode {
            op: TreeOp::Bin(op),
            args: [arg(a, nodes, memo)?, arg(b, nodes, memo)?, zero],
        },
        BlockInstr::Ternary { op, a, b, c, .. } => TreeNode {
            op: TreeOp::Ter(op),
            args: [arg(a, nodes, memo)?, arg(b, nodes, memo)?, arg(c, nodes, memo)?],
        },
    };
    if nodes.len() >= MAX_NODES {
        return None;
    }
    nodes.push(node);
    let ix = (nodes.len() - 1) as u8;
    memo[t as usize] = Some(ix);
    Some(ix)
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// A resolved operand with branch-free element access: slices index
/// `i & !0`, uniforms alias a one-element buffer through `i & 0`.
#[derive(Clone, Copy)]
struct ArgRef<'a> {
    s: &'a [f64],
    mask: usize,
}

impl<'a> ArgRef<'a> {
    #[inline(always)]
    fn at(&self, i: usize) -> f64 {
        // SAFETY-free: `i & mask` is either `i` (slice of length ≥ n) or 0.
        self.s[i & self.mask]
    }
}

/// Lowers an `OpRef` into an [`ArgRef`], spilling uniforms into `slot`.
#[inline(always)]
fn arg_ref<'a>(r: OpRef<'a>, slot: &'a mut [f64; 1]) -> ArgRef<'a> {
    match r {
        OpRef::S(s) => ArgRef { s, mask: usize::MAX },
        OpRef::C(c) => {
            slot[0] = c;
            ArgRef { s: &slot[..], mask: 0 }
        }
    }
}

impl MonoKernel {
    /// The shape class of this kernel (stats / verification).
    pub fn class(&self) -> ShapeClass {
        match self {
            MonoKernel::Map1 { .. } => ShapeClass::Map1,
            MonoKernel::Map2 { .. } => ShapeClass::Map2,
            MonoKernel::Map3 { .. } => ShapeClass::Map3,
            MonoKernel::MulUnBin { .. } => ShapeClass::MulUnBin,
            MonoKernel::Tree { .. } => ShapeClass::TreeMap,
        }
    }

    /// Evaluates the kernel over `n` elements into `dst[..n]`, reading
    /// leaves through the evaluator's uniform file and the tile context.
    /// The tile register file is never touched.
    pub fn map_into(&self, ev: &BlockEval, ctx: &TileCtx<'_>, n: usize, dst: &mut [f64]) {
        let dst = &mut dst[..n];
        match *self {
            MonoKernel::Map1 { op, a } => un_loop(op, ev.opnd(a, ctx, n), dst),
            MonoKernel::Map2 { op, a, b } => {
                bin_loop(op, ev.opnd(a, ctx, n), ev.opnd(b, ctx, n), dst)
            }
            MonoKernel::Map3 { op, a, b, c } => {
                ter_loop(op, ev.opnd(a, ctx, n), ev.opnd(b, ctx, n), ev.opnd(c, ctx, n), dst)
            }
            MonoKernel::MulUnBin { outer, a, un, inner, b, c } => {
                let (mut sa, mut sb, mut sc) = ([0.0], [0.0], [0.0]);
                let a = arg_ref(ev.opnd(a, ctx, n), &mut sa);
                let b = arg_ref(ev.opnd(b, ctx, n), &mut sb);
                let c = arg_ref(ev.opnd(c, ctx, n), &mut sc);
                mul_un_bin_loop(outer, un, inner, a, b, c, dst);
            }
            MonoKernel::Tree { ref nodes } => {
                eval_tree(nodes, ev, ctx, n, |base, vals| {
                    dst[base..base + vals.len()].copy_from_slice(vals)
                });
            }
        }
    }

    /// Fused map + reduce: folds the kernel's values over `n` elements into
    /// `acc` under `op` without materializing a tile. Reduction order is
    /// chunk-sequential with the same per-chunk primitives as the tile
    /// interpreter's `fold_result`, so backends agree within the documented
    /// FMA rounding policy (see `linalg::simd`).
    pub fn fold(&self, op: AggOp, acc: f64, ev: &BlockEval, ctx: &TileCtx<'_>, n: usize) -> f64 {
        let mut buf = [0.0f64; CHUNK];
        let mut acc = acc;
        match *self {
            MonoKernel::Tree { ref nodes } => {
                eval_tree(nodes, ev, ctx, n, |_, vals| {
                    acc = fold_result(op, acc, OpRef::S(vals), vals.len());
                });
            }
            _ => {
                // Map shapes: chunk through a stack buffer, fold per chunk.
                let mut base = 0;
                while base < n {
                    let m = (n - base).min(CHUNK);
                    self.map_chunk(ev, ctx, n, base, &mut buf[..m]);
                    acc = fold_result(op, acc, OpRef::S(&buf[..m]), m);
                    base += m;
                }
            }
        }
        acc
    }

    /// Evaluates elements `[base, base+m)` of a map-shaped kernel into
    /// `out` (helper for [`Self::fold`]).
    fn map_chunk(&self, ev: &BlockEval, ctx: &TileCtx<'_>, n: usize, base: usize, out: &mut [f64]) {
        let m = out.len();
        fn window(r: OpRef<'_>, base: usize, m: usize) -> OpRef<'_> {
            match r {
                OpRef::S(s) => OpRef::S(&s[base..base + m]),
                c => c,
            }
        }
        match *self {
            MonoKernel::Map1 { op, a } => un_loop(op, window(ev.opnd(a, ctx, n), base, m), out),
            MonoKernel::Map2 { op, a, b } => bin_loop(
                op,
                window(ev.opnd(a, ctx, n), base, m),
                window(ev.opnd(b, ctx, n), base, m),
                out,
            ),
            MonoKernel::Map3 { op, a, b, c } => ter_loop(
                op,
                window(ev.opnd(a, ctx, n), base, m),
                window(ev.opnd(b, ctx, n), base, m),
                window(ev.opnd(c, ctx, n), base, m),
                out,
            ),
            MonoKernel::MulUnBin { outer, a, un, inner, b, c } => {
                let (mut sa, mut sb, mut sc) = ([0.0], [0.0], [0.0]);
                let a = arg_ref(window(ev.opnd(a, ctx, n), base, m), &mut sa);
                let b = arg_ref(window(ev.opnd(b, ctx, n), base, m), &mut sb);
                let c = arg_ref(window(ev.opnd(c, ctx, n), base, m), &mut sc);
                mul_un_bin_loop(outer, un, inner, a, b, c, out);
            }
            MonoKernel::Tree { .. } => unreachable!("tree folds stream through eval_tree"),
        }
    }
}

/// `dst[i] = outer(a[i], un(inner(b[i], c[i])))`, one static loop instance
/// per admitted `(outer, un, inner)` combination (2 × 13 × 3 = 78 loops).
/// The six `(outer, inner)` arms are spelled out because `macro_rules!`
/// definitions cannot nest; each arm expands the thirteen-way unary table.
fn mul_un_bin_loop(
    outer: BinaryOp,
    un: UnaryOp,
    inner: BinaryOp,
    a: ArgRef<'_>,
    b: ArgRef<'_>,
    c: ArgRef<'_>,
    dst: &mut [f64],
) {
    let n = dst.len();
    match (outer, inner) {
        (BinaryOp::Mult, BinaryOp::Add) => {
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = BinaryOp::Mult
                            .apply(a.at(i), $k.apply(BinaryOp::Add.apply(b.at(i), c.at(i))));
                    }
                };
            }
            with_unop!(un, go)
        }
        (BinaryOp::Mult, BinaryOp::Mult) => {
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = BinaryOp::Mult
                            .apply(a.at(i), $k.apply(BinaryOp::Mult.apply(b.at(i), c.at(i))));
                    }
                };
            }
            with_unop!(un, go)
        }
        (BinaryOp::Mult, BinaryOp::Sub) => {
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = BinaryOp::Mult
                            .apply(a.at(i), $k.apply(BinaryOp::Sub.apply(b.at(i), c.at(i))));
                    }
                };
            }
            with_unop!(un, go)
        }
        (BinaryOp::Add, BinaryOp::Add) => {
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = BinaryOp::Add
                            .apply(a.at(i), $k.apply(BinaryOp::Add.apply(b.at(i), c.at(i))));
                    }
                };
            }
            with_unop!(un, go)
        }
        (BinaryOp::Add, BinaryOp::Mult) => {
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = BinaryOp::Add
                            .apply(a.at(i), $k.apply(BinaryOp::Mult.apply(b.at(i), c.at(i))));
                    }
                };
            }
            with_unop!(un, go)
        }
        (BinaryOp::Add, BinaryOp::Sub) => {
            macro_rules! go {
                ($k:expr) => {
                    for i in 0..n {
                        dst[i] = BinaryOp::Add
                            .apply(a.at(i), $k.apply(BinaryOp::Sub.apply(b.at(i), c.at(i))));
                    }
                };
            }
            with_unop!(un, go)
        }
        _ => unreachable!("classify admits Mult/Add outers and Add/Mult/Sub inners"),
    }
}

/// Streams the bounded DAG over `n` elements in [`CHUNK`]-sized stack
/// buffers, invoking `emit(base, values)` with the root's values per chunk.
fn eval_tree(
    nodes: &[TreeNode],
    ev: &BlockEval,
    ctx: &TileCtx<'_>,
    n: usize,
    mut emit: impl FnMut(usize, &[f64]),
) {
    debug_assert!(!nodes.is_empty() && nodes.len() <= MAX_NODES);
    // Resolve every leaf once per tile; uniforms spill into a flat buffer.
    let mut leaf_refs: [OpRef<'_>; MAX_NODES * 3] = [OpRef::C(0.0); MAX_NODES * 3];
    let mut cbuf = [0.0f64; MAX_NODES * 3];
    for (ni, node) in nodes.iter().enumerate() {
        for (ai, arg) in node.args.iter().enumerate() {
            if let TreeArg::Leaf(o) = *arg {
                leaf_refs[ni * 3 + ai] = ev.opnd(o, ctx, n);
                if let OpRef::C(c) = leaf_refs[ni * 3 + ai] {
                    cbuf[ni * 3 + ai] = c;
                }
            }
        }
    }
    let mut bufs = [[0.0f64; CHUNK]; MAX_NODES];
    let mut base = 0;
    while base < n {
        let m = (n - base).min(CHUNK);
        for (ni, node) in nodes.iter().enumerate() {
            let (done, rest) = bufs.split_at_mut(ni);
            let done: &[[f64; CHUNK]] = done;
            let out = &mut rest[0][..m];
            let arg = |ai: usize| -> ArgRef<'_> {
                match node.args[ai] {
                    TreeArg::Node(j) => ArgRef { s: &done[j as usize][..m], mask: usize::MAX },
                    TreeArg::Leaf(_) => match leaf_refs[ni * 3 + ai] {
                        OpRef::S(s) => ArgRef { s: &s[base..base + m], mask: usize::MAX },
                        OpRef::C(_) => ArgRef { s: &cbuf[ni * 3 + ai..ni * 3 + ai + 1], mask: 0 },
                    },
                }
            };
            match node.op {
                TreeOp::Un(op) => {
                    let a = arg(0);
                    macro_rules! go {
                        ($k:expr) => {
                            for i in 0..m {
                                out[i] = $k.apply(a.at(i));
                            }
                        };
                    }
                    with_unop!(op, go)
                }
                TreeOp::Bin(op) => {
                    let (a, b) = (arg(0), arg(1));
                    macro_rules! go {
                        ($k:expr) => {
                            for i in 0..m {
                                out[i] = $k.apply(a.at(i), b.at(i));
                            }
                        };
                    }
                    with_binop!(op, go)
                }
                TreeOp::Ter(op) => {
                    let (a, b, c) = (arg(0), arg(1), arg(2));
                    for (i, o) in out[..m].iter_mut().enumerate() {
                        *o = op.apply(a.at(i), b.at(i), c.at(i));
                    }
                }
            }
        }
        emit(base, &bufs[nodes.len() - 1][..m]);
        base += m;
    }
}

#[cfg(test)]
mod tests {
    use super::super::block::{compile_kernel, lower, BlockEval, TileCtx, TileSrc};
    use super::super::{eval_scalar_program, Instr, Program, SideAccess};
    use super::*;

    fn no_sides(_: usize, _: SideAccess) -> f64 {
        0.0
    }

    /// Runs register `r` of `prog` through the mono kernel over `main` and
    /// compares against the scalar interpreter.
    fn check_against_scalar(prog: &Program, r: Reg, main: &[f64], uv: &[f64]) {
        let k = compile_kernel(prog);
        let m = k.mono_for(r).expect("expected a mono kernel");
        let bp = &k.block;
        let mut ev = BlockEval::new(bp, main.len().max(8));
        ev.set_invariants(bp, &no_sides, &[]);
        let ctx = TileCtx {
            main: TileSrc::Slice(main),
            uv: if uv.is_empty() { TileSrc::Const(0.0) } else { TileSrc::Slice(uv) },
            gathers: &[],
        };
        let mut out = vec![0.0; main.len()];
        m.map_into(&ev, &ctx, main.len(), &mut out);
        let mut regs = vec![0.0; prog.n_regs as usize];
        for i in 0..main.len() {
            let uvv = uv.get(i).copied().unwrap_or(0.0);
            eval_scalar_program(prog, &mut regs, main[i], uvv, &no_sides, &[]);
            assert_eq!(out[i].to_bits(), regs[r as usize].to_bits(), "element {i}");
        }
    }

    #[test]
    fn classifies_fig8h_shape_as_mul_un_bin() {
        // r = main * log(uv + eps) — the fig 8h Outer body.
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadUVDot { out: 1 },
                Instr::LoadConst { out: 2, value: 1e-15 },
                Instr::Binary { out: 3, op: BinaryOp::Add, a: 1, b: 2 },
                Instr::Unary { out: 4, op: UnaryOp::Log, a: 3 },
                Instr::Binary { out: 5, op: BinaryOp::Mult, a: 0, b: 4 },
            ],
            n_regs: 6,
            vreg_lens: vec![],
        };
        let k = compile_kernel(&prog);
        match k.mono_for(5) {
            Some(MonoKernel::MulUnBin { outer, un, inner, .. }) => {
                assert_eq!(*outer, BinaryOp::Mult);
                assert_eq!(*un, UnaryOp::Log);
                assert_eq!(*inner, BinaryOp::Add);
            }
            other => panic!("expected MulUnBin, got {other:?}"),
        }
        assert_eq!(k.shape_class(5), ShapeClass::MulUnBin);
        let main: Vec<f64> = (0..37).map(|i| (i % 5) as f64).collect();
        let uv: Vec<f64> = (0..37).map(|i| 0.25 + i as f64).collect();
        check_against_scalar(&prog, 5, &main, &uv);
    }

    #[test]
    fn classifies_single_unary_as_map1() {
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::Unary { out: 1, op: UnaryOp::Sigmoid, a: 0 },
            ],
            n_regs: 2,
            vreg_lens: vec![],
        };
        let k = compile_kernel(&prog);
        assert!(matches!(k.mono_for(1), Some(MonoKernel::Map1 { op: UnaryOp::Sigmoid, .. })));
        let main: Vec<f64> = (0..13).map(|i| i as f64 - 6.0).collect();
        check_against_scalar(&prog, 1, &main, &[]);
    }

    #[test]
    fn deep_bodies_fall_into_tree_and_match_scalar() {
        // r = sigmoid((main - 3) * main) + abs(main): DAG with main reused.
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadConst { out: 1, value: 3.0 },
                Instr::Binary { out: 2, op: BinaryOp::Sub, a: 0, b: 1 },
                Instr::Binary { out: 3, op: BinaryOp::Mult, a: 2, b: 0 },
                Instr::Unary { out: 4, op: UnaryOp::Sigmoid, a: 3 },
                Instr::Unary { out: 5, op: UnaryOp::Abs, a: 0 },
                Instr::Binary { out: 6, op: BinaryOp::Add, a: 4, b: 5 },
            ],
            n_regs: 7,
            vreg_lens: vec![],
        };
        let k = compile_kernel(&prog);
        assert!(matches!(k.mono_for(6), Some(MonoKernel::Tree { .. })));
        assert_eq!(k.shape_class(6), ShapeClass::TreeMap);
        // Cross a chunk boundary to exercise the streaming path.
        let main: Vec<f64> = (0..150).map(|i| (i as f64) * 0.31 - 20.0).collect();
        check_against_scalar(&prog, 6, &main, &[]);
    }

    #[test]
    fn fold_matches_map_then_fold() {
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::Unary { out: 1, op: UnaryOp::Exp, a: 0 },
            ],
            n_regs: 2,
            vreg_lens: vec![],
        };
        let k = compile_kernel(&prog);
        let m = k.mono_for(1).unwrap();
        let bp = &k.block;
        let main: Vec<f64> = (0..200).map(|i| (i as f64) * 0.01 - 1.0).collect();
        let mut ev = BlockEval::new(bp, main.len());
        ev.set_invariants(bp, &no_sides, &[]);
        let ctx = TileCtx { main: TileSrc::Slice(&main), uv: TileSrc::Const(0.0), gathers: &[] };
        let mut out = vec![0.0; main.len()];
        m.map_into(&ev, &ctx, main.len(), &mut out);
        let expect = fold_result(AggOp::Sum, 0.0, OpRef::S(&out), out.len());
        let got = m.fold(AggOp::Sum, 0.0, &ev, &ctx, main.len());
        // Reduction-class kernel: chunk association differs from the
        // whole-tile fold, so agreement is within the documented policy
        // (`linalg::simd`: ≤ 1e-12 relative), not bitwise.
        assert!((got - expect).abs() <= 1e-12 * expect.abs().max(1.0), "{got} vs {expect}");
    }

    #[test]
    fn oversized_bodies_stay_on_the_interpreter() {
        // A 13-op unary chain exceeds MAX_NODES.
        let mut instrs = vec![Instr::LoadMain { out: 0 }];
        for i in 0..13u16 {
            instrs.push(Instr::Unary { out: i + 1, op: UnaryOp::Abs, a: i });
        }
        let prog = Program { n_regs: 14, instrs, vreg_lens: vec![] };
        let bp = lower(&prog);
        assert!(classify(&bp, 13).is_none());
        let k = compile_kernel(&prog);
        assert_eq!(k.shape_class(13), ShapeClass::Interpreted);
    }
}
