//! The fused-operator IR: register programs executed by the runtime's
//! template skeletons.
//!
//! The paper generates Java source per fused operator and JIT-compiles it
//! with janino. We keep the identical pipeline shape but compile CPlans into
//! flat register programs whose instructions call the same vector-primitive
//! library (`fusedml_linalg::primitives`) the generated Java calls
//! (DESIGN.md substitution X1). Cell/MAgg/Outer programs execute through
//! the tile-vectorized [`block`] backend by default (dispatch amortized
//! over whole tiles, with closure-specialized fast paths); the per-cell
//! scalar interpreter below is retained as the differential-test oracle.
//! Row programs lower to a band-level [`block::RowKernel`] — invariant
//! work hoisted out of the per-row loop, sparse rows consumed over their
//! non-zeros, the `Xᵀ(Xv)` mv-chain closure-specialized — executed by the
//! skeleton that owns data access, multi-threading and aggregation.

use fusedml_linalg::ops::{AggOp, BinaryOp, TernaryOp, UnaryOp};

pub mod block;
pub mod mono;

/// Scalar register index.
pub type Reg = u16;
/// Vector register index.
pub type VReg = u16;

/// How a scalar side-input value is addressed from the current (row, col)
/// position — `getValue(b[i], …)` in the paper's generated code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SideAccess {
    /// `b[i].get(rix, cix)` — matrix aligned with the main input.
    Cell,
    /// `b[i].get(rix, 0)` — column vector.
    Col,
    /// `b[i].get(0, cix)` — row vector.
    Row,
    /// `b[i].get(0, 0)` — 1×1.
    Scalar,
}

/// One instruction of a fused-operator register program.
///
/// Scalar instructions serve the Cell/MAgg/Outer templates; vector
/// instructions additionally serve the Row template. Vector registers hold
/// row-length intermediates managed in a per-thread ring buffer by the
/// skeleton (paper §2.2: "memory for row intermediates is managed via a
/// preallocated ring buffer per thread").
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `out = a` — the current main-input cell value (Cell/MAgg/Outer).
    LoadMain { out: Reg },
    /// `out = dot(U[rix,:], V[cix,:])` — Outer template's built-in
    /// outer-product cell value (`dotProduct(a1, a2, …)` in Figure 3(a)).
    LoadUVDot { out: Reg },
    /// `out = getValue(b[side], access)` at the current position.
    LoadSide { out: Reg, side: usize, access: SideAccess },
    /// `out = scalars[idx]` (bound scalar inputs).
    LoadScalar { out: Reg, idx: usize },
    /// `out = const`.
    LoadConst { out: Reg, value: f64 },
    /// Scalar unary.
    Unary { out: Reg, op: UnaryOp, a: Reg },
    /// Scalar binary.
    Binary { out: Reg, op: BinaryOp, a: Reg, b: Reg },
    /// Scalar ternary.
    Ternary { out: Reg, op: TernaryOp, a: Reg, b: Reg, c: Reg },

    // ---- vector instructions (Row template) -----------------------------
    /// `vout = X[rix, :]` — the main row (densified for sparse inputs).
    LoadMainRow { out: VReg },
    /// `vout = b[side][rix, cl..cu]` — a (sliced) row of a row-aligned side
    /// input; `cl..cu` supports fused column indexing (`rix` ops).
    LoadSideRow { out: VReg, side: usize, cl: usize, cu: usize },
    /// Element-wise vector unary.
    VecUnary { out: VReg, op: UnaryOp, a: VReg },
    /// Element-wise vector-vector binary.
    VecBinaryVV { out: VReg, op: BinaryOp, a: VReg, b: VReg },
    /// Vector-scalar binary (`scalar_left` puts the scalar on the lhs).
    VecBinaryVS { out: VReg, op: BinaryOp, a: VReg, b: Reg, scalar_left: bool },
    /// `vout = a %*% b[side]` — row vector (len m) times side matrix (m×k);
    /// `vectMatrixMult` in the paper's primitive library.
    VecMatMult { out: VReg, a: VReg, side: usize },
    /// `out = dot(a, b)`.
    Dot { out: Reg, a: VReg, b: VReg },
    /// `out = agg(a)` — vector aggregate to scalar (`vectSum` etc.).
    VecAgg { out: Reg, op: AggOp, a: VReg },
    /// `vout = cumsum(a)` (row-wise cumulative sum).
    VecCumsum { out: VReg, a: VReg },
}

/// Aggregation behaviour of a Cell operator (paper Table 1, Cell variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellAgg {
    /// `out[r,c] = f(a)` — dense (or sparse-safe sparse) output.
    NoAgg,
    /// `out[r] += f(a)` — row aggregation.
    RowAgg(AggOp),
    /// `out[c] += f(a)` — column aggregation.
    ColAgg(AggOp),
    /// scalar `out += f(a)`.
    FullAgg(AggOp),
}

/// Output behaviour of a Row operator (paper Table 1, Row variants).
#[derive(Clone, Debug, PartialEq, Hash)]
pub enum RowOut {
    /// `out[r, :] = v` — no aggregation, n×k output.
    NoAgg { src: VReg },
    /// `out[r] = s` — row aggregation, n×1 output.
    RowAgg { src: Reg },
    /// `out += v` — column aggregation, 1×k output.
    ColAgg { src: VReg },
    /// `out += s` — full aggregation, 1×1 output.
    FullAgg { src: Reg },
    /// `out += a ⊗ b` — column aggregation over an outer product
    /// (`COL_AGG_B1_T` in Figure 3(c)): m×k output from row vectors of
    /// lengths m and k.
    OuterColAgg { left: VReg, right: VReg },
    /// `out += v * s` — column aggregation of a scaled row vector
    /// (the matrix-vector `t(X) %*% q` pattern, `vectMultAdd`).
    ColAggMultAdd { vec: VReg, scalar: Reg },
}

/// Output behaviour of an Outer operator (paper Table 1, Outer variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OuterOut {
    /// `out += w` — full aggregation.
    FullAgg,
    /// `out[i, :] += w * S[j, :]` — right matrix multiply `W %*% S`
    /// (`OutProdType.RIGHT`); `side` is the m×r factor.
    RightMM { side: usize },
    /// `out[j, :] += w * S[i, :]` — left matrix multiply `t(W) %*% S`;
    /// `side` is the n×r factor.
    LeftMM { side: usize },
    /// `out[i, j] = w` — no aggregation (sparse output).
    NoAgg,
}

/// Structural hashing for cache keys: like the derived impl, but `f64`
/// constants hash by bit pattern. Kept manual only because `f64` blocks
/// `#[derive(Hash)]`; the kernel caches key off this, so it must stay in
/// sync with the instruction set.
impl std::hash::Hash for Instr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match *self {
            Instr::LoadMain { out } | Instr::LoadUVDot { out } => out.hash(state),
            Instr::LoadSide { out, side, access } => (out, side, access).hash(state),
            Instr::LoadScalar { out, idx } => (out, idx).hash(state),
            Instr::LoadConst { out, value } => (out, value.to_bits()).hash(state),
            Instr::Unary { out, op, a } => (out, op, a).hash(state),
            Instr::Binary { out, op, a, b } => (out, op, a, b).hash(state),
            Instr::Ternary { out, op, a, b, c } => (out, op, a, b, c).hash(state),
            Instr::LoadMainRow { out } => out.hash(state),
            Instr::LoadSideRow { out, side, cl, cu } => (out, side, cl, cu).hash(state),
            Instr::VecUnary { out, op, a } => (out, op, a).hash(state),
            Instr::VecBinaryVV { out, op, a, b } => (out, op, a, b).hash(state),
            Instr::VecBinaryVS { out, op, a, b, scalar_left } => {
                (out, op, a, b, scalar_left).hash(state)
            }
            Instr::VecMatMult { out, a, side } => (out, a, side).hash(state),
            Instr::Dot { out, a, b } => (out, a, b).hash(state),
            Instr::VecAgg { out, op, a } => (out, op, a).hash(state),
            Instr::VecCumsum { out, a } => (out, a).hash(state),
        }
    }
}

/// A compiled scalar/vector register program with static register geometry.
#[derive(Clone, Debug, PartialEq, Default, Hash)]
pub struct Program {
    /// Instructions in execution order (already topologically sorted).
    pub instrs: Vec<Instr>,
    /// Number of scalar registers.
    pub n_regs: u16,
    /// Per-vector-register lengths (indexed by `VReg`).
    pub vreg_lens: Vec<usize>,
}

impl Program {
    /// Total instruction count (proxy for generated-code size; Figure 10's
    /// instruction-footprint experiment keys off this).
    pub fn code_size(&self) -> usize {
        self.instrs.len()
    }
}

/// Specification of a compiled Cell-template operator.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    pub prog: Program,
    /// The register holding the per-cell result.
    pub result: Reg,
    pub agg: CellAgg,
    /// True if `f(0, …) == 0`, so the skeleton may iterate non-zeros only.
    pub sparse_safe: bool,
}

/// Specification of a compiled MultiAgg-template operator: `k` scalar
/// programs sharing the main input, each with a full aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct MAggSpec {
    pub prog: Program,
    /// Result register and aggregation function per aggregate output.
    pub results: Vec<(Reg, AggOp)>,
    pub sparse_safe: bool,
}

/// How a Row program executes its vector instructions (DESIGN.md
/// substitution X4 — the instruction-footprint experiment of Figure 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RowExecMode {
    /// Vector instructions call the shared vector-primitive library
    /// (the paper's default: small instruction footprint).
    #[default]
    Vectorized,
    /// Vector instructions are "inlined": executed element-at-a-time with
    /// per-element dispatch, modelling generated code whose primitives were
    /// inlined into `genexec`.
    Inlined,
    /// The inlined code exceeded the compiler's code-size budget and fell
    /// back to a non-compiled evaluator (the JVM's refusal to JIT methods
    /// over 8 KB): per-element dispatch plus per-instruction re-resolution.
    InterpretedNoJit,
}

/// Specification of a compiled Row-template operator.
#[derive(Clone, Debug, PartialEq)]
pub struct RowSpec {
    pub prog: Program,
    pub out: RowOut,
    /// Output geometry (rows, cols) as inferred from the covered HOPs.
    pub out_rows: usize,
    pub out_cols: usize,
    /// Execution mode of vector instructions.
    pub exec_mode: RowExecMode,
}

/// Specification of a compiled Outer-template operator.
#[derive(Clone, Debug, PartialEq)]
pub struct OuterSpec {
    pub prog: Program,
    /// Register holding the per-cell value `w_ij`.
    pub result: Reg,
    pub out: OuterOut,
    /// Side-input indices of the U (n×r) and V (m×r) factors.
    pub u_side: usize,
    pub v_side: usize,
    /// Rank of the factorization (`ncol(U)`).
    pub rank: usize,
    /// True if the program is zero-preserving in the main input, enabling
    /// non-zero-only iteration — the template's raison d'être.
    pub sparse_safe: bool,
}

/// A compiled fused operator of any template type.
#[derive(Clone, Debug, PartialEq)]
pub enum FusedSpec {
    Cell(CellSpec),
    MAgg(MAggSpec),
    Row(RowSpec),
    Outer(OuterSpec),
}

impl FusedSpec {
    /// The template kind name (for stats and explain output).
    pub fn template_name(&self) -> &'static str {
        match self {
            FusedSpec::Cell(_) => "Cell",
            FusedSpec::MAgg(_) => "MAgg",
            FusedSpec::Row(_) => "Row",
            FusedSpec::Outer(_) => "Outer",
        }
    }

    /// The underlying program (MAgg shares one program).
    pub fn program(&self) -> &Program {
        match self {
            FusedSpec::Cell(c) => &c.prog,
            FusedSpec::MAgg(m) => &m.prog,
            FusedSpec::Row(r) => &r.prog,
            FusedSpec::Outer(o) => &o.prog,
        }
    }
}

/// Evaluates the scalar subset of a program for one (rix, cix) position.
///
/// `main` is the current main-input value, `uv_dot` the Outer template's
/// precomputed dot product, `side_at` resolves side accesses, `scalars` the
/// bound scalar inputs. Vector instructions panic — the Row skeleton uses
/// the runtime Row skeleton's vector interpreter instead. This evaluator is shared by the runtime
/// skeletons and by codegen's sparse-safety probing.
#[allow(clippy::too_many_arguments)]
pub fn eval_scalar_program(
    prog: &Program,
    regs: &mut [f64],
    main: f64,
    uv_dot: f64,
    side_at: &dyn Fn(usize, SideAccess) -> f64,
    scalars: &[f64],
) {
    for ins in &prog.instrs {
        match *ins {
            Instr::LoadMain { out } => regs[out as usize] = main,
            Instr::LoadUVDot { out } => regs[out as usize] = uv_dot,
            Instr::LoadSide { out, side, access } => regs[out as usize] = side_at(side, access),
            Instr::LoadScalar { out, idx } => regs[out as usize] = scalars[idx],
            Instr::LoadConst { out, value } => regs[out as usize] = value,
            Instr::Unary { out, op, a } => regs[out as usize] = op.apply(regs[a as usize]),
            Instr::Binary { out, op, a, b } => {
                regs[out as usize] = op.apply(regs[a as usize], regs[b as usize])
            }
            Instr::Ternary { out, op, a, b, c } => {
                regs[out as usize] = op.apply(regs[a as usize], regs[b as usize], regs[c as usize])
            }
            _ => panic!("vector instruction in scalar program: {ins:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_sides(_: usize, _: SideAccess) -> f64 {
        0.0
    }

    #[test]
    fn scalar_program_evaluates() {
        // f(a) = (a != 0) * 2 + 1
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadConst { out: 1, value: 0.0 },
                Instr::Binary { out: 2, op: BinaryOp::Neq, a: 0, b: 1 },
                Instr::LoadConst { out: 3, value: 2.0 },
                Instr::Binary { out: 4, op: BinaryOp::Mult, a: 2, b: 3 },
                Instr::LoadConst { out: 5, value: 1.0 },
                Instr::Binary { out: 6, op: BinaryOp::Add, a: 4, b: 5 },
            ],
            n_regs: 7,
            vreg_lens: vec![],
        };
        let mut regs = vec![0.0; 7];
        eval_scalar_program(&prog, &mut regs, 5.0, 0.0, &no_sides, &[]);
        assert_eq!(regs[6], 3.0);
        eval_scalar_program(&prog, &mut regs, 0.0, 0.0, &no_sides, &[]);
        assert_eq!(regs[6], 1.0);
    }

    #[test]
    fn side_and_scalar_loads() {
        let prog = Program {
            instrs: vec![
                Instr::LoadSide { out: 0, side: 1, access: SideAccess::Col },
                Instr::LoadScalar { out: 1, idx: 0 },
                Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            n_regs: 3,
            vreg_lens: vec![],
        };
        let mut regs = vec![0.0; 3];
        let side = |i: usize, acc: SideAccess| {
            assert_eq!(i, 1);
            assert_eq!(acc, SideAccess::Col);
            7.0
        };
        eval_scalar_program(&prog, &mut regs, 0.0, 0.0, &side, &[3.0]);
        assert_eq!(regs[2], 21.0);
    }

    #[test]
    #[should_panic(expected = "vector instruction in scalar program")]
    fn vector_instr_rejected_in_scalar_eval() {
        let prog =
            Program { instrs: vec![Instr::LoadMainRow { out: 0 }], n_regs: 0, vreg_lens: vec![4] };
        let mut regs = vec![];
        eval_scalar_program(&prog, &mut regs, 0.0, 0.0, &no_sides, &[]);
    }

    #[test]
    fn uv_dot_load() {
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::LoadUVDot { out: 1 },
                Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            n_regs: 3,
            vreg_lens: vec![],
        };
        let mut regs = vec![0.0; 3];
        eval_scalar_program(&prog, &mut regs, 2.0, 3.5, &no_sides, &[]);
        assert_eq!(regs[2], 7.0);
    }
}
