#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Property tests for the fusion optimizer:
//!
//! * memo-table invariants after exploration (references point to groups
//!   with compatible open plans; no closed entries without references),
//! * `MPSkipEnum` with pruning finds the same optimum as exhaustive
//!   enumeration on randomly generated DAGs,
//! * selected operator plans are well-formed (covered sets are connected
//!   along fusion references; entries match HOP arities),
//! * code generation is deterministic and the structural hash is stable.

use fusedml_core::codegen::{compile_spec, CodegenOptions};
use fusedml_core::explore::explore;
use fusedml_core::opt::{
    cost, mpskip_enum, partitions, select_plans, CostModel, EnumConfig, SelectionPolicy,
};
use fusedml_hop::{DagBuilder, HopDag, HopId};
use proptest::prelude::*;

/// A small random DAG generator: layered cell-wise ops, aggregates, and
/// occasional matrix-vector products with shared intermediates.
#[derive(Debug, Clone)]
struct RandomDag {
    ops: Vec<(u8, u8, u8)>, // (op selector, input a selector, input b selector)
    rows: usize,
    cols: usize,
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    (proptest::collection::vec((0u8..8, 0u8..16, 0u8..16), 2..12), 100usize..2000, 10usize..100)
        .prop_map(|(ops, rows, cols)| RandomDag { ops, rows, cols })
}

fn build(spec: &RandomDag) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", spec.rows, spec.cols, 1.0);
    let y = b.read("Y", spec.rows, spec.cols, 0.1);
    let mut pool: Vec<HopId> = vec![x, y];
    for &(op, ia, ib) in &spec.ops {
        let a = pool[ia as usize % pool.len()];
        let bb = pool[ib as usize % pool.len()];
        // Only matrix-shaped nodes participate (aggregates end chains).
        let node = match op {
            0 => b.mult(a, bb),
            1 => b.add(a, bb),
            2 => b.sub(a, bb),
            3 => b.abs(a),
            4 => b.sq(a),
            5 => {
                let c = b.lit(0.5);
                b.mult(a, c)
            }
            6 => b.exp(a),
            _ => b.min(a, bb),
        };
        pool.push(node);
    }
    // Close with aggregates over the last few nodes (multiple roots create
    // materialization points).
    let mut roots = Vec::new();
    let tail: Vec<HopId> = pool.iter().rev().take(3).copied().collect();
    for t in tail {
        roots.push(b.sum(t));
    }
    b.build(roots)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Memo invariants: every fused reference points to a group containing
    /// at least one open plan merge-compatible with the referencing entry.
    #[test]
    fn memo_references_are_compatible(spec in dag_strategy()) {
        let dag = build(&spec);
        let memo = explore(&dag);
        for g in memo.group_ids() {
            for e in memo.entries(g) {
                prop_assert_eq!(e.inputs.len(), dag.hop(g).inputs.len(), "arity");
                for r in e.refs() {
                    prop_assert!(
                        memo.entries(r).iter().any(|se| !se.closed && e.ttype.merge_compatible(se.ttype)),
                        "ref {} from {} ({:?}) lacks a compatible open plan",
                        r, g, e.ttype
                    );
                }
                // Closed single-op plans must have been pruned.
                prop_assert!(!(e.closed && e.ref_count() == 0));
            }
        }
    }

    /// Pruned enumeration preserves the optimum found by exhaustive search.
    #[test]
    fn mpskipenum_preserves_optimality(spec in dag_strategy()) {
        let dag = build(&spec);
        let memo = explore(&dag);
        let parts = partitions(&dag, &memo);
        let compute = cost::compute_costs(&dag);
        let model = CostModel::default();
        for part in &parts {
            if part.interesting.len() > 10 {
                continue; // keep exhaustive search tractable
            }
            let full = mpskip_enum(
                &dag, &memo, part, &compute, &model,
                &EnumConfig { cost_prune: false, structural_prune: false, max_eval: u64::MAX },
            );
            let pruned = mpskip_enum(&dag, &memo, part, &compute, &model, &EnumConfig::default());
            prop_assert!(
                (full.cost - pruned.cost).abs() <= 1e-9 * full.cost.max(1.0),
                "optimum lost: exhaustive {} vs pruned {} ({} points)",
                full.cost, pruned.cost, part.interesting.len()
            );
            // Structural decomposition may cost a handful of extra plans on
            // tiny spaces (sub-problem enumerations are counted too); it must
            // never blow past the exhaustive count asymptotically.
            prop_assert!(pruned.evaluated <= 2 * full.evaluated + 4);
        }
    }

    /// Selected plans are well-formed: the covered set is closed under the
    /// entries' fused references, and contains the root.
    #[test]
    fn selected_plans_are_wellformed(spec in dag_strategy()) {
        let dag = build(&spec);
        let memo = explore(&dag);
        for policy in [
            SelectionPolicy::CostBased(EnumConfig::default()),
            SelectionPolicy::FuseAll,
            SelectionPolicy::FuseNoRedundancy,
        ] {
            let sel = select_plans(&dag, &memo, policy, &CostModel::default());
            for op in &sel.operators {
                let covered = op.covered();
                prop_assert!(covered.contains(&op.root));
                for (&h, e) in &op.entries {
                    for (j, &input) in dag.hop(h).inputs.iter().enumerate() {
                        if e.inputs[j].is_fused() {
                            prop_assert!(
                                covered.contains(&input),
                                "fused ref {}→{} leaves the covered set", h, input
                            );
                        }
                    }
                }
            }
        }
    }

    /// Codegen determinism: compiling the same CPlan twice yields identical
    /// specs, and the structural hash is invariant.
    #[test]
    fn codegen_is_deterministic(spec in dag_strategy()) {
        let dag = build(&spec);
        let memo = explore(&dag);
        let sel = select_plans(
            &dag,
            &memo,
            SelectionPolicy::CostBased(EnumConfig::default()),
            &CostModel::default(),
        );
        let opts = CodegenOptions::default();
        for op in &sel.operators {
            if let Ok(cp) = fusedml_core::cplan::construct(&dag, op) {
                let s1 = compile_spec(&cp, &opts);
                let s2 = compile_spec(&cp, &opts);
                prop_assert_eq!(&s1, &s2);
                prop_assert_eq!(cp.structural_hash(), cp.clone().structural_hash());
            }
        }
    }
}
