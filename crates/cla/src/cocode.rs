//! Column co-coding: greedily pairs low-cardinality columns into shared
//! dictionaries when the estimated joint size beats separate encodings.
//!
//! This is a simplified version of the CLA paper's sample-based grouping:
//! we bound joint cardinality by the product of per-column cardinalities and
//! greedily merge the two cheapest compatible columns while the estimate
//! improves. Sufficient to reproduce ~7x ratios on Airline-like data.

use crate::compress::ColumnAnalysis;

/// Maximum joint dictionary size considered for co-coding.
const MAX_JOINT_DISTINCT: usize = 256;

/// Estimated DDC bytes for a (possibly joint) dictionary of `ndist` tuples of
/// width `w` over `rows` rows.
fn ddc_bytes(rows: usize, ndist: usize, w: usize) -> usize {
    let code_bytes = if ndist <= 256 { 1 } else { 4 };
    8 * ndist * w + code_bytes * rows
}

/// Partitions columns into co-coding groups. Returns the column-index sets in
/// ascending order of their first column.
pub fn plan_cocoding(rows: usize, analyses: &[ColumnAnalysis]) -> Vec<Vec<usize>> {
    // Candidates: low-cardinality columns; everything else stays solo.
    let mut solo: Vec<Vec<usize>> = Vec::new();
    // (cols, upper bound on joint distinct count)
    let mut candidates: Vec<(Vec<usize>, usize)> = Vec::new();
    for a in analyses {
        let ndist = a.num_distinct + usize::from(a.num_zeros > 0);
        if ndist > 0 && ndist <= MAX_JOINT_DISTINCT && ndist * 2 <= rows.max(2) {
            candidates.push((vec![a.col], ndist));
        } else {
            solo.push(vec![a.col]);
        }
    }

    // Greedy pairwise merging while the size estimate improves.
    let mut merged = true;
    while merged {
        merged = false;
        let mut best: Option<(usize, usize, usize)> = None; // (i, j, joint_ndist)
        for i in 0..candidates.len() {
            for j in i + 1..candidates.len() {
                let joint = candidates[i].1.saturating_mul(candidates[j].1);
                if joint > MAX_JOINT_DISTINCT {
                    continue;
                }
                let wi = candidates[i].0.len();
                let wj = candidates[j].0.len();
                let sep =
                    ddc_bytes(rows, candidates[i].1, wi) + ddc_bytes(rows, candidates[j].1, wj);
                let together = ddc_bytes(rows, joint, wi + wj);
                if together < sep {
                    let gain_best = best.map(|(bi, bj, bd)| {
                        let bsep = ddc_bytes(rows, candidates[bi].1, candidates[bi].0.len())
                            + ddc_bytes(rows, candidates[bj].1, candidates[bj].0.len());
                        bsep as i64
                            - ddc_bytes(rows, bd, candidates[bi].0.len() + candidates[bj].0.len())
                                as i64
                    });
                    let gain = sep as i64 - together as i64;
                    if gain_best.is_none() || gain > gain_best.unwrap() {
                        best = Some((i, j, joint));
                    }
                }
            }
        }
        if let Some((i, j, joint)) = best {
            let (cols_j, _) = candidates.remove(j);
            candidates[i].0.extend(cols_j);
            candidates[i].0.sort_unstable();
            candidates[i].1 = joint;
            merged = true;
        }
    }

    let mut out: Vec<Vec<usize>> = solo;
    out.extend(candidates.into_iter().map(|(c, _)| c));
    out.sort_by_key(|g| g[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis(col: usize, ndist: usize, zeros: usize) -> ColumnAnalysis {
        ColumnAnalysis { col, num_distinct: ndist, num_zeros: zeros, avg_run_len: 1.0 }
    }

    #[test]
    fn high_cardinality_stays_solo() {
        let a = vec![analysis(0, 900, 0), analysis(1, 950, 0)];
        let plan = plan_cocoding(1000, &a);
        assert_eq!(plan, vec![vec![0], vec![1]]);
    }

    #[test]
    fn tiny_dictionaries_get_merged() {
        // Two 4-value columns over many rows: joint dict of 16 tuples saves a
        // whole code array (1 byte/row).
        let a = vec![analysis(0, 4, 0), analysis(1, 4, 0)];
        let plan = plan_cocoding(100_000, &a);
        assert_eq!(plan, vec![vec![0, 1]]);
    }

    #[test]
    fn joint_cardinality_cap_respected() {
        // 200 x 200 = 40000 > 256 → no merge.
        let a = vec![analysis(0, 200, 0), analysis(1, 200, 0)];
        let plan = plan_cocoding(100_000, &a);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn mixed_plan_covers_all_columns() {
        let a = vec![analysis(0, 3, 0), analysis(1, 800, 0), analysis(2, 5, 10), analysis(3, 2, 0)];
        let plan = plan_cocoding(1000, &a);
        let mut cols: Vec<usize> = plan.iter().flatten().copied().collect();
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2, 3]);
    }
}
