//! Operations over compressed matrices.
//!
//! The headline property (paper Figure 9): sparse-safe value functions and
//! aggregates run over *dictionaries and counts* instead of cells, so
//! `sum(X^2)` over CLA costs O(#distinct) per group plus code-array scans
//! avoided entirely.

use crate::groups::ColumnGroup;
use crate::CompressedMatrix;
use fusedml_linalg::ops::{AggOp, UnaryOp};
use fusedml_linalg::{DenseMatrix, Matrix};

/// `sum(X)` via per-group value counts.
pub fn sum(m: &CompressedMatrix) -> f64 {
    m.group_value_counts().map(|vc| vc.iter().map(|&(v, n)| v * n as f64).sum::<f64>()).sum()
}

/// `sum(X^2)` via per-group value counts (the Figure 9 workload).
pub fn sum_sq(m: &CompressedMatrix) -> f64 {
    m.group_value_counts().map(|vc| vc.iter().map(|&(v, n)| v * v * n as f64).sum::<f64>()).sum()
}

/// Generic full aggregate with a sparse-safe scalar map `f` applied first:
/// `agg(f(X))` computed over `(value, count)` pairs. Exact for `Sum`/`SumSq`;
/// for `Min`/`Max` counts are irrelevant so it is exact there too.
pub fn agg_value_fn(m: &CompressedMatrix, f: impl Fn(f64) -> f64, op: AggOp) -> f64 {
    let mut acc = op.identity();
    for vc in m.group_value_counts() {
        for (v, n) in vc {
            let fv = f(v);
            match op {
                AggOp::Sum | AggOp::Mean => acc += fv * n as f64,
                AggOp::SumSq => acc += fv * fv * n as f64,
                AggOp::Min => acc = acc.min(fv),
                AggOp::Max => acc = acc.max(fv),
            }
        }
    }
    if op == AggOp::Mean {
        acc /= (m.rows() * m.cols()) as f64;
    }
    acc
}

/// Column sums via dictionaries: for each group, per-tuple counts × values.
pub fn col_sums(m: &CompressedMatrix) -> Matrix {
    let mut out = vec![0.0f64; m.cols()];
    for g in m.groups() {
        let cols = g.columns();
        let w = cols.len();
        match g {
            ColumnGroup::Ddc { dict, codes, .. } => {
                let ndist = dict.len() / w;
                let mut counts = vec![0usize; ndist];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                for (t, &n) in counts.iter().enumerate() {
                    for (j, &col) in cols.iter().enumerate() {
                        out[col] += dict[t * w + j] * n as f64;
                    }
                }
            }
            ColumnGroup::Rle { dict, runs, .. } => {
                for (t, tuple_runs) in runs.iter().enumerate() {
                    let n: usize = tuple_runs.iter().map(|&(_, l)| l as usize).sum();
                    for (j, &col) in cols.iter().enumerate() {
                        out[col] += dict[t * w + j] * n as f64;
                    }
                }
            }
            ColumnGroup::Ole { dict, offsets, .. } => {
                for (t, offs) in offsets.iter().enumerate() {
                    for (j, &col) in cols.iter().enumerate() {
                        out[col] += dict[t * w + j] * offs.len() as f64;
                    }
                }
            }
            ColumnGroup::Uncompressed { data, .. } => {
                let rows = g.rows();
                for (j, &col) in cols.iter().enumerate() {
                    out[col] += data[j * rows..(j + 1) * rows].iter().sum::<f64>();
                }
            }
        }
    }
    Matrix::dense(DenseMatrix::new(1, m.cols(), out))
}

/// Sparse-safe scalar map applied with a shallow copy: dictionaries are
/// rewritten, code arrays shared structurally (cloned cheaply relative to
/// decompression). Falls back to `None` when any group is uncompressed and
/// the caller must densify.
pub fn map_unary(m: &CompressedMatrix, op: UnaryOp) -> Option<CompressedMatrix> {
    if !op.sparse_safe() {
        return None;
    }
    let mut out = m.clone();
    // CompressedMatrix has no public mutable group access; rebuild via clone
    // and in-place dictionary rewrite.
    let ok = out.map_dicts(|v| op.apply(v));
    ok.then_some(out)
}

/// Matrix–vector multiply `X %*% v` executed per column group: each group
/// contributes `dict_tuple · v[cols]` scaled into the rows where the tuple
/// occurs. Demonstrates that compressed execution composes with linear
/// algebra beyond simple aggregates.
pub fn mat_vect_mult(m: &CompressedMatrix, v: &Matrix) -> Matrix {
    assert_eq!(v.rows(), m.cols(), "vector length mismatch");
    let rows = m.rows();
    let mut out = vec![0.0f64; rows];
    for g in m.groups() {
        let cols = g.columns();
        let w = cols.len();
        match g {
            ColumnGroup::Ddc { dict, codes, .. } => {
                let ndist = dict.len() / w;
                // Pre-compute per-tuple contributions.
                let mut contrib = vec![0.0f64; ndist];
                for (t, c) in contrib.iter_mut().enumerate() {
                    for (j, &col) in cols.iter().enumerate() {
                        *c += dict[t * w + j] * v.get(col, 0);
                    }
                }
                // The code-array scan is the hot loop of compressed
                // mat-vect (one lookup per row); hoist the bounds check
                // out of it. Validity of every code against the dictionary
                // is a structural invariant of DDC groups, re-checked here.
                assert!(
                    codes.iter().all(|&c| (c as usize) < ndist),
                    "DDC code out of dictionary range"
                );
                for (r, &code) in codes.iter().enumerate() {
                    // SAFETY: `contrib` has length `ndist` and the assert
                    // above verified every `code as usize < ndist`, so the
                    // index is in bounds for all iterations.
                    out[r] += unsafe { *contrib.get_unchecked(code as usize) };
                }
            }
            ColumnGroup::Rle { dict, runs, .. } => {
                for (t, tuple_runs) in runs.iter().enumerate() {
                    let mut c = 0.0;
                    for (j, &col) in cols.iter().enumerate() {
                        c += dict[t * w + j] * v.get(col, 0);
                    }
                    for &(start, len) in tuple_runs {
                        for r in start..start + len {
                            out[r as usize] += c;
                        }
                    }
                }
            }
            ColumnGroup::Ole { dict, offsets, .. } => {
                for (t, offs) in offsets.iter().enumerate() {
                    let mut c = 0.0;
                    for (j, &col) in cols.iter().enumerate() {
                        c += dict[t * w + j] * v.get(col, 0);
                    }
                    for &r in offs {
                        out[r as usize] += c;
                    }
                }
            }
            ColumnGroup::Uncompressed { data, .. } => {
                let grows = g.rows();
                for (j, &col) in cols.iter().enumerate() {
                    let vj = v.get(col, 0);
                    if vj != 0.0 {
                        for (r, slot) in out.iter_mut().enumerate() {
                            *slot += data[j * grows + r] * vj;
                        }
                    }
                }
            }
        }
    }
    Matrix::dense(DenseMatrix::new(rows, 1, out))
}

impl CompressedMatrix {
    /// Applies `f` to every group dictionary; returns false (leaving a
    /// partial update unexposed to callers via the `map_unary` wrapper) if
    /// any group is uncompressed.
    pub(crate) fn map_dicts(&mut self, f: impl Fn(f64) -> f64 + Copy) -> bool {
        // Check first so we never partially mutate.
        if self.groups().iter().any(|g| matches!(g, ColumnGroup::Uncompressed { .. })) {
            return false;
        }
        for g in self.groups_mut() {
            let ok = g.map_dict(f);
            debug_assert!(ok);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compress;
    use fusedml_linalg::generate;
    use fusedml_linalg::ops as lops;
    use fusedml_linalg::ops::AggDir;

    fn airline() -> (Matrix, CompressedMatrix) {
        let m = generate::airline_like(400, 5, 7, 21);
        let cm = compress(&m);
        (m, cm)
    }

    #[test]
    fn sum_matches_uncompressed() {
        let (m, cm) = airline();
        let expect = lops::agg(&m, AggOp::Sum, AggDir::Full).get(0, 0);
        assert!(fusedml_linalg::approx_eq(sum(&cm), expect, 1e-9));
    }

    #[test]
    fn sum_sq_matches_uncompressed() {
        let (m, cm) = airline();
        let expect = lops::agg(&m, AggOp::SumSq, AggDir::Full).get(0, 0);
        assert!(fusedml_linalg::approx_eq(sum_sq(&cm), expect, 1e-9));
    }

    #[test]
    fn sum_sq_on_sparse_data() {
        let m = generate::rand_matrix(500, 8, 1.0, 2.0, 0.05, 5);
        let cm = compress(&m);
        let expect = lops::agg(&m, AggOp::SumSq, AggDir::Full).get(0, 0);
        assert!(fusedml_linalg::approx_eq(sum_sq(&cm), expect, 1e-9));
    }

    #[test]
    fn agg_value_fn_min_max() {
        let (m, cm) = airline();
        let emin = lops::agg(&m, AggOp::Min, AggDir::Full).get(0, 0);
        let emax = lops::agg(&m, AggOp::Max, AggDir::Full).get(0, 0);
        assert_eq!(agg_value_fn(&cm, |v| v, AggOp::Min), emin);
        assert_eq!(agg_value_fn(&cm, |v| v, AggOp::Max), emax);
    }

    #[test]
    fn col_sums_match() {
        let (m, cm) = airline();
        let expect = lops::agg(&m, AggOp::Sum, AggDir::Col);
        let got = col_sums(&cm);
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn map_unary_squares_dictionary() {
        let (m, cm) = airline();
        let sq = map_unary(&cm, UnaryOp::Pow2).expect("all groups compressed");
        let expect = lops::unary(&m, UnaryOp::Pow2);
        assert!(Matrix::dense(sq.decompress()).approx_eq(&expect, 1e-9));
    }

    #[test]
    fn map_unary_rejects_unsafe_ops() {
        let (_, cm) = airline();
        assert!(map_unary(&cm, UnaryOp::Exp).is_none());
    }

    #[test]
    fn map_unary_rejects_uncompressed_groups() {
        let m = generate::rand_dense(300, 2, 0.0, 1.0, 9);
        let cm = compress(&m); // random unique values → uncompressed groups
        assert!(map_unary(&cm, UnaryOp::Pow2).is_none());
    }

    #[test]
    fn mat_vect_matches_uncompressed() {
        let (m, cm) = airline();
        let v = generate::rand_dense(m.cols(), 1, -1.0, 1.0, 77);
        let expect = lops::matmult(&m, &v);
        let got = mat_vect_mult(&cm, &v);
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn mat_vect_on_mixed_encodings() {
        // Mix: sorted column (RLE), low-card (DDC), sparse (OLE), unique (UC).
        let rows = 600;
        let mut data = vec![0.0f64; rows * 4];
        for r in 0..rows {
            data[r * 4] = (r / 100) as f64; // sorted → RLE
            data[r * 4 + 1] = (r % 5) as f64; // low-card → DDC
            data[r * 4 + 2] = if r % 50 == 0 { 3.0 } else { 0.0 }; // sparse → OLE-ish
            data[r * 4 + 3] = r as f64 * 0.1; // unique → UC
        }
        let m = Matrix::dense(fusedml_linalg::DenseMatrix::new(rows, 4, data));
        let cm = compress(&m);
        let v = generate::rand_dense(4, 1, -1.0, 1.0, 3);
        assert!(mat_vect_mult(&cm, &v).approx_eq(&lops::matmult(&m, &v), 1e-9));
    }
}
