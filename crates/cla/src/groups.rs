//! Column-group encodings: DDC, RLE, OLE, and uncompressed.
//!
//! A group covers one or more columns ("co-coding"); its dictionary stores
//! distinct *tuples* of per-column values, flattened row-major
//! (`dict[t * ncols + j]` is the `j`-th column's value of tuple `t`).

use fusedml_linalg::DenseMatrix;

/// Encoding discriminant, used for statistics and plan reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Encoding {
    Ddc,
    Rle,
    Ole,
    Uncompressed,
}

/// One column group of a [`crate::CompressedMatrix`].
#[derive(Clone, Debug)]
pub enum ColumnGroup {
    /// Dense dictionary coding: `codes[r]` indexes the dictionary tuple of
    /// row `r`.
    Ddc { cols: Vec<usize>, dict: Vec<f64>, codes: Vec<u32> },
    /// Run-length encoding: per tuple `t`, `runs[t]` is a list of
    /// `(start_row, length)` runs. Rows not covered by any run hold zeros
    /// (zero is not stored in the dictionary).
    Rle { cols: Vec<usize>, dict: Vec<f64>, runs: Vec<Vec<(u32, u32)>>, rows: usize },
    /// Offset-list encoding: per tuple `t`, `offsets[t]` lists the rows
    /// containing that tuple. Uncovered rows hold zeros.
    Ole { cols: Vec<usize>, dict: Vec<f64>, offsets: Vec<Vec<u32>>, rows: usize },
    /// Dense fallback, stored column-major per group column.
    Uncompressed { cols: Vec<usize>, data: Vec<f64> },
}

impl ColumnGroup {
    /// Builds an uncompressed group from column-major data
    /// (`data[j * rows + r]`).
    pub fn uncompressed(cols: Vec<usize>, data: Vec<f64>) -> Self {
        assert!(!cols.is_empty());
        assert_eq!(data.len() % cols.len(), 0, "column-major geometry");
        ColumnGroup::Uncompressed { cols, data }
    }

    /// The matrix columns this group covers.
    pub fn columns(&self) -> &[usize] {
        match self {
            ColumnGroup::Ddc { cols, .. }
            | ColumnGroup::Rle { cols, .. }
            | ColumnGroup::Ole { cols, .. }
            | ColumnGroup::Uncompressed { cols, .. } => cols,
        }
    }

    /// Number of columns in the group.
    pub fn width(&self) -> usize {
        self.columns().len()
    }

    /// Number of rows covered.
    pub fn rows(&self) -> usize {
        match self {
            ColumnGroup::Ddc { codes, .. } => codes.len(),
            ColumnGroup::Rle { rows, .. } | ColumnGroup::Ole { rows, .. } => *rows,
            ColumnGroup::Uncompressed { cols, data } => data.len() / cols.len(),
        }
    }

    /// The encoding discriminant.
    pub fn encoding(&self) -> Encoding {
        match self {
            ColumnGroup::Ddc { .. } => Encoding::Ddc,
            ColumnGroup::Rle { .. } => Encoding::Rle,
            ColumnGroup::Ole { .. } => Encoding::Ole,
            ColumnGroup::Uncompressed { .. } => Encoding::Uncompressed,
        }
    }

    /// Number of distinct dictionary tuples (0 for uncompressed).
    pub fn num_distinct(&self) -> usize {
        match self {
            ColumnGroup::Ddc { dict, cols, .. }
            | ColumnGroup::Rle { dict, cols, .. }
            | ColumnGroup::Ole { dict, cols, .. } => dict.len() / cols.len(),
            ColumnGroup::Uncompressed { .. } => 0,
        }
    }

    /// Value of local column `j` (position within the group) at row `r`.
    pub fn get(&self, r: usize, j: usize) -> f64 {
        let w = self.width();
        match self {
            ColumnGroup::Ddc { dict, codes, .. } => dict[codes[r] as usize * w + j],
            ColumnGroup::Rle { dict, runs, .. } => {
                for (t, tuple_runs) in runs.iter().enumerate() {
                    for &(start, len) in tuple_runs {
                        if (r as u32) >= start && (r as u32) < start + len {
                            return dict[t * w + j];
                        }
                    }
                }
                0.0
            }
            ColumnGroup::Ole { dict, offsets, .. } => {
                for (t, offs) in offsets.iter().enumerate() {
                    if offs.binary_search(&(r as u32)).is_ok() {
                        return dict[t * w + j];
                    }
                }
                0.0
            }
            ColumnGroup::Uncompressed { data, .. } => data[j * self.rows() + r],
        }
    }

    /// Writes the group's columns into a dense output.
    pub fn decompress_into(&self, out: &mut DenseMatrix) {
        let w = self.width();
        let ocols = out.cols();
        let cols = self.columns().to_vec();
        match self {
            ColumnGroup::Ddc { dict, codes, .. } => {
                let data = out.values_mut();
                for (r, &code) in codes.iter().enumerate() {
                    let tuple = &dict[code as usize * w..(code as usize + 1) * w];
                    for (j, &c) in cols.iter().enumerate() {
                        data[r * ocols + c] = tuple[j];
                    }
                }
            }
            ColumnGroup::Rle { dict, runs, .. } => {
                let data = out.values_mut();
                for (t, tuple_runs) in runs.iter().enumerate() {
                    let tuple = &dict[t * w..(t + 1) * w];
                    for &(start, len) in tuple_runs {
                        for r in start..start + len {
                            for (j, &c) in cols.iter().enumerate() {
                                data[r as usize * ocols + c] = tuple[j];
                            }
                        }
                    }
                }
            }
            ColumnGroup::Ole { dict, offsets, .. } => {
                let data = out.values_mut();
                for (t, offs) in offsets.iter().enumerate() {
                    let tuple = &dict[t * w..(t + 1) * w];
                    for &r in offs {
                        for (j, &c) in cols.iter().enumerate() {
                            data[r as usize * ocols + c] = tuple[j];
                        }
                    }
                }
            }
            ColumnGroup::Uncompressed { data, .. } => {
                let rows = self.rows();
                let odata = out.values_mut();
                for (j, &c) in cols.iter().enumerate() {
                    for r in 0..rows {
                        odata[r * ocols + c] = data[j * rows + r];
                    }
                }
            }
        }
    }

    /// `(value, count)` pairs over all cells of the group (per column of the
    /// tuple). For compressed encodings this is dictionary-driven and cheap;
    /// the uncompressed fallback scans its data. Implicit zeros of RLE/OLE
    /// are included with their exact counts.
    pub fn value_counts(&self) -> Vec<(f64, usize)> {
        let w = self.width();
        match self {
            ColumnGroup::Ddc { dict, codes, .. } => {
                let ndist = dict.len() / w;
                let mut counts = vec![0usize; ndist];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                let mut out = Vec::with_capacity(ndist * w);
                for (t, &n) in counts.iter().enumerate() {
                    for j in 0..w {
                        out.push((dict[t * w + j], n));
                    }
                }
                out
            }
            ColumnGroup::Rle { dict, runs, rows, .. } => {
                let mut out = Vec::new();
                let mut covered = 0usize;
                for (t, tuple_runs) in runs.iter().enumerate() {
                    let n: usize = tuple_runs.iter().map(|&(_, len)| len as usize).sum();
                    covered += n;
                    for j in 0..w {
                        out.push((dict[t * w + j], n));
                    }
                }
                if covered < *rows {
                    for _ in 0..w {
                        out.push((0.0, rows - covered));
                    }
                }
                out
            }
            ColumnGroup::Ole { dict, offsets, rows, .. } => {
                let mut out = Vec::new();
                let mut covered = 0usize;
                for (t, offs) in offsets.iter().enumerate() {
                    covered += offs.len();
                    for j in 0..w {
                        out.push((dict[t * w + j], offs.len()));
                    }
                }
                if covered < *rows {
                    for _ in 0..w {
                        out.push((0.0, rows - covered));
                    }
                }
                out
            }
            ColumnGroup::Uncompressed { data, .. } => data.iter().map(|&v| (v, 1usize)).collect(),
        }
    }

    /// Applies `f` to every dictionary value in place — the "shallow-copy
    /// dictionary op" that makes sparse-safe scalar operations nearly free on
    /// compressed data (paper Figure 9: `X^2` over CLA). Not valid for
    /// uncompressed groups (returns false so callers can fall back).
    pub fn map_dict(&mut self, f: impl Fn(f64) -> f64) -> bool {
        match self {
            ColumnGroup::Ddc { dict, .. }
            | ColumnGroup::Rle { dict, .. }
            | ColumnGroup::Ole { dict, .. } => {
                for v in dict.iter_mut() {
                    *v = f(*v);
                }
                true
            }
            ColumnGroup::Uncompressed { .. } => false,
        }
    }

    /// Estimated in-memory size in bytes.
    pub fn size_in_bytes(&self) -> usize {
        let base = 32 + 8 * self.width();
        match self {
            ColumnGroup::Ddc { dict, codes, .. } => {
                // Code width: 1 or 4 bytes depending on dictionary size
                // (DDC1 vs DDC2 in the CLA paper).
                let ndist = dict.len() / self.width().max(1);
                let code_bytes = if ndist <= 256 { 1 } else { 4 };
                base + 8 * dict.len() + code_bytes * codes.len()
            }
            ColumnGroup::Rle { dict, runs, .. } => {
                base + 8 * dict.len() + 8 * runs.iter().map(Vec::len).sum::<usize>()
            }
            ColumnGroup::Ole { dict, offsets, .. } => {
                base + 8 * dict.len() + 4 * offsets.iter().map(Vec::len).sum::<usize>()
            }
            ColumnGroup::Uncompressed { data, .. } => base + 8 * data.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ddc_group() -> ColumnGroup {
        // Column 0 with values [5, 7, 5, 5]
        ColumnGroup::Ddc { cols: vec![0], dict: vec![5.0, 7.0], codes: vec![0, 1, 0, 0] }
    }

    fn rle_group() -> ColumnGroup {
        // Column 0 with values [3, 3, 3, 0, 9] (runs: 3 at 0..3, 9 at 4..5)
        ColumnGroup::Rle {
            cols: vec![0],
            dict: vec![3.0, 9.0],
            runs: vec![vec![(0, 3)], vec![(4, 1)]],
            rows: 5,
        }
    }

    fn ole_group() -> ColumnGroup {
        // Column 0 with values [0, 2, 0, 2, 8]
        ColumnGroup::Ole {
            cols: vec![0],
            dict: vec![2.0, 8.0],
            offsets: vec![vec![1, 3], vec![4]],
            rows: 5,
        }
    }

    #[test]
    fn ddc_get_and_counts() {
        let g = ddc_group();
        assert_eq!(g.get(0, 0), 5.0);
        assert_eq!(g.get(1, 0), 7.0);
        assert_eq!(g.num_distinct(), 2);
        let vc = g.value_counts();
        assert_eq!(vc, vec![(5.0, 3), (7.0, 1)]);
    }

    #[test]
    fn rle_get_decompress_counts() {
        let g = rle_group();
        assert_eq!(g.get(0, 0), 3.0);
        assert_eq!(g.get(3, 0), 0.0);
        assert_eq!(g.get(4, 0), 9.0);
        let mut d = DenseMatrix::zeros(5, 1);
        g.decompress_into(&mut d);
        assert_eq!(d.values(), &[3.0, 3.0, 3.0, 0.0, 9.0]);
        let vc = g.value_counts();
        assert_eq!(vc, vec![(3.0, 3), (9.0, 1), (0.0, 1)]);
    }

    #[test]
    fn ole_get_decompress_counts() {
        let g = ole_group();
        assert_eq!(g.get(1, 0), 2.0);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(4, 0), 8.0);
        let vc = g.value_counts();
        assert_eq!(vc, vec![(2.0, 2), (8.0, 1), (0.0, 2)]);
    }

    #[test]
    fn map_dict_squares_values() {
        let mut g = ddc_group();
        assert!(g.map_dict(|v| v * v));
        assert_eq!(g.get(0, 0), 25.0);
        assert_eq!(g.get(1, 0), 49.0);
        let mut u = ColumnGroup::uncompressed(vec![0], vec![1.0]);
        assert!(!u.map_dict(|v| v * v));
    }

    #[test]
    fn cocoded_ddc_tuple_access() {
        // Two columns co-coded: tuples (1,10) and (2,20).
        let g = ColumnGroup::Ddc {
            cols: vec![0, 1],
            dict: vec![1.0, 10.0, 2.0, 20.0],
            codes: vec![0, 1, 1],
        };
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(0, 1), 10.0);
        assert_eq!(g.get(2, 1), 20.0);
        let mut d = DenseMatrix::zeros(3, 2);
        g.decompress_into(&mut d);
        assert_eq!(d.get(1, 0), 2.0);
        assert_eq!(d.get(1, 1), 20.0);
    }

    #[test]
    fn size_estimates_ddc1_vs_ddc2() {
        let small = ColumnGroup::Ddc { cols: vec![0], dict: vec![1.0], codes: vec![0; 100] };
        let large_dict: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let large = ColumnGroup::Ddc { cols: vec![0], dict: large_dict, codes: vec![0; 100] };
        // DDC1 codes are 1 byte, DDC2 4 bytes.
        assert!(small.size_in_bytes() < large.size_in_bytes());
        assert_eq!(small.size_in_bytes(), 32 + 8 + 8 + 100);
    }

    #[test]
    fn uncompressed_counts_scan() {
        let g = ColumnGroup::uncompressed(vec![0], vec![1.0, 1.0, 2.0]);
        assert_eq!(g.value_counts().len(), 3);
        assert_eq!(g.rows(), 3);
    }
}
