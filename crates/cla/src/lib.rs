//! # fusedml-cla
//!
//! Compressed Linear Algebra (CLA) substrate: column-group compression with
//! heterogeneous encodings, after Elgohary et al. (PVLDB 2016), which the
//! fusion paper's template skeletons execute over (paper §5.2, Figure 9).
//!
//! A [`CompressedMatrix`] partitions the columns of a matrix into
//! [`ColumnGroup`]s, each stored with one of four encodings:
//!
//! * **DDC** — dense dictionary coding: one small code per row indexing a
//!   dictionary of distinct tuples; ideal for low-cardinality columns,
//! * **RLE** — run-length encoding of per-value row runs; ideal for sorted
//!   or clustered data,
//! * **OLE** — offset-list encoding: per-value row-offset lists; ideal for
//!   sparse columns with repeated values,
//! * **Uncompressed** — fallback dense column storage.
//!
//! The key operations exploited by fused operators are *dictionary-only*
//! execution of sparse-safe value functions (`sum(X^2)` touches each distinct
//! value once and scales by its count) and value-count iteration
//! ([`CompressedMatrix::group_value_counts`]).

// Every unsafe block in this crate must discharge its obligations locally:
// `unsafe fn` bodies get no blanket license, and each block carries a
// `// SAFETY:` comment (enforced by the CI unsafe-audit grep gate).
#![deny(unsafe_op_in_unsafe_fn)]
// Tests and assertions use unwrap/expect freely; the targeted failure-path
// modules (`spill`, the runtime scheduler) re-deny at module level.
#![allow(clippy::disallowed_methods)]

pub mod cocode;
pub mod compress;
pub mod groups;
pub mod ops;

pub use compress::{compress, CompressionPlan, CompressionStats};
pub use groups::{ColumnGroup, Encoding};

use fusedml_linalg::{DenseMatrix, Matrix};

/// A column-compressed matrix.
#[derive(Clone, Debug)]
pub struct CompressedMatrix {
    rows: usize,
    cols: usize,
    groups: Vec<ColumnGroup>,
}

impl CompressedMatrix {
    /// Assembles a compressed matrix from column groups; the groups must
    /// cover every column exactly once.
    pub fn new(rows: usize, cols: usize, groups: Vec<ColumnGroup>) -> Self {
        let mut covered = vec![false; cols];
        for g in &groups {
            for &c in g.columns() {
                assert!(c < cols && !covered[c], "column {c} not covered exactly once");
                covered[c] = true;
            }
        }
        assert!(covered.iter().all(|&b| b), "all columns must be covered");
        CompressedMatrix { rows, cols, groups }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The column groups.
    pub fn groups(&self) -> &[ColumnGroup] {
        &self.groups
    }

    /// Mutable access to the column groups (crate-internal: invariants such
    /// as column coverage must be preserved by callers).
    pub(crate) fn groups_mut(&mut self) -> &mut [ColumnGroup] {
        &mut self.groups
    }

    /// Point lookup (slow path; used by tests and validation).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        for g in &self.groups {
            if let Some(pos) = g.columns().iter().position(|&gc| gc == c) {
                return g.get(r, pos);
            }
        }
        unreachable!("column {c} covered by construction")
    }

    /// Decompresses to a dense matrix.
    pub fn decompress(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for g in &self.groups {
            g.decompress_into(&mut out);
        }
        out
    }

    /// Compressed size estimate in bytes.
    pub fn size_in_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.size_in_bytes()).sum::<usize>() + 24
    }

    /// Size of the equivalent uncompressed dense matrix in bytes.
    pub fn uncompressed_size_in_bytes(&self) -> usize {
        8 * self.rows * self.cols
    }

    /// Achieved compression ratio (uncompressed ÷ compressed).
    pub fn compression_ratio(&self) -> f64 {
        self.uncompressed_size_in_bytes() as f64 / self.size_in_bytes() as f64
    }

    /// Iterates `(value, count)` pairs per group — the hook that lets fused
    /// sparse-safe operators with a single input run over distinct values
    /// only (paper §5.2 "Compressed Linear Algebra").
    pub fn group_value_counts(&self) -> impl Iterator<Item = Vec<(f64, usize)>> + '_ {
        self.groups.iter().map(|g| g.value_counts())
    }

    /// Wraps into the format-polymorphic matrix world by decompressing.
    /// (The runtime keeps compressed matrices compressed; this is for
    /// validation only.)
    pub fn to_matrix(&self) -> Matrix {
        Matrix::dense(self.decompress())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use groups::ColumnGroup;

    #[test]
    fn new_rejects_uncovered_columns() {
        let g = ColumnGroup::uncompressed(vec![0], vec![1.0, 2.0]);
        let r = std::panic::catch_unwind(|| CompressedMatrix::new(2, 2, vec![g]));
        assert!(r.is_err());
    }

    #[test]
    fn new_rejects_double_covered_columns() {
        let g1 = ColumnGroup::uncompressed(vec![0], vec![1.0, 2.0]);
        let g2 = ColumnGroup::uncompressed(vec![0], vec![1.0, 2.0]);
        let r = std::panic::catch_unwind(|| CompressedMatrix::new(2, 1, vec![g1, g2]));
        assert!(r.is_err());
    }

    #[test]
    fn get_and_decompress_roundtrip() {
        let g0 = ColumnGroup::uncompressed(vec![1], vec![10.0, 20.0]);
        let g1 = ColumnGroup::uncompressed(vec![0], vec![1.0, 2.0]);
        let cm = CompressedMatrix::new(2, 2, vec![g0, g1]);
        assert_eq!(cm.get(0, 0), 1.0);
        assert_eq!(cm.get(1, 1), 20.0);
        let d = cm.decompress();
        assert_eq!(d.get(0, 1), 10.0);
    }
}
