//! The compression planner: chooses per-column (or co-coded) encodings by
//! estimated compressed size, mirroring the CLA paper's sample-based plan.

use crate::cocode;
use crate::groups::{ColumnGroup, Encoding};
use crate::CompressedMatrix;
use fusedml_linalg::Matrix;
use std::collections::HashMap;

/// Per-column analysis gathered during planning.
#[derive(Clone, Debug)]
pub struct ColumnAnalysis {
    /// Column index.
    pub col: usize,
    /// Number of distinct non-zero values.
    pub num_distinct: usize,
    /// Number of zero cells.
    pub num_zeros: usize,
    /// Average run length of equal consecutive values.
    pub avg_run_len: f64,
}

/// The chosen encoding per produced group.
#[derive(Clone, Debug)]
pub struct CompressionPlan {
    /// `(columns, encoding)` per group, in output order.
    pub groups: Vec<(Vec<usize>, Encoding)>,
}

/// Compression statistics for reporting (Figure 9 harness).
#[derive(Clone, Debug)]
pub struct CompressionStats {
    pub compressed_bytes: usize,
    pub uncompressed_bytes: usize,
    pub ratio: f64,
    pub groups: Vec<(Vec<usize>, Encoding)>,
}

/// Analyzes a single column.
fn analyze_column(m: &Matrix, col: usize) -> ColumnAnalysis {
    let rows = m.rows();
    let mut distinct: HashMap<u64, usize> = HashMap::new();
    let mut zeros = 0usize;
    let mut runs = 0usize;
    let mut prev = f64::NAN;
    for r in 0..rows {
        let v = m.get(r, col);
        if v == 0.0 {
            zeros += 1;
        } else {
            *distinct.entry(v.to_bits()).or_insert(0) += 1;
        }
        if v != prev {
            runs += 1;
        }
        prev = v;
    }
    ColumnAnalysis {
        col,
        num_distinct: distinct.len(),
        num_zeros: zeros,
        avg_run_len: rows as f64 / runs.max(1) as f64,
    }
}

/// Estimated bytes for a candidate encoding of one column.
fn estimate_bytes(rows: usize, a: &ColumnAnalysis, enc: Encoding) -> usize {
    let nnz = rows - a.num_zeros;
    match enc {
        Encoding::Ddc => {
            // DDC stores zeros in the dictionary too (codes cover all rows).
            let ndist = a.num_distinct + usize::from(a.num_zeros > 0);
            let code_bytes = if ndist <= 256 { 1 } else { 4 };
            8 * ndist + code_bytes * rows
        }
        Encoding::Rle => {
            let est_runs = (rows as f64 / a.avg_run_len).ceil() as usize;
            8 * a.num_distinct + 8 * est_runs
        }
        Encoding::Ole => 8 * a.num_distinct + 4 * nnz,
        Encoding::Uncompressed => 8 * rows,
    }
}

/// Chooses the cheapest encoding for a column.
fn choose_encoding(rows: usize, a: &ColumnAnalysis) -> Encoding {
    let mut best = Encoding::Uncompressed;
    let mut best_sz = estimate_bytes(rows, a, Encoding::Uncompressed);
    for enc in [Encoding::Ddc, Encoding::Rle, Encoding::Ole] {
        // Columns with near-unique values do not compress; skip them early.
        if a.num_distinct * 2 > rows {
            continue;
        }
        let sz = estimate_bytes(rows, a, enc);
        if sz < best_sz {
            best = enc;
            best_sz = sz;
        }
    }
    best
}

/// Builds a concrete group for the chosen columns and encoding.
fn build_group(m: &Matrix, cols: &[usize], enc: Encoding) -> ColumnGroup {
    let rows = m.rows();
    match enc {
        Encoding::Uncompressed => {
            let mut data = Vec::with_capacity(rows * cols.len());
            for &c in cols {
                for r in 0..rows {
                    data.push(m.get(r, c));
                }
            }
            ColumnGroup::uncompressed(cols.to_vec(), data)
        }
        Encoding::Ddc => {
            let w = cols.len();
            let mut dict: Vec<f64> = Vec::new();
            let mut index: HashMap<Vec<u64>, u32> = HashMap::new();
            let mut codes = Vec::with_capacity(rows);
            let mut tuple = vec![0f64; w];
            for r in 0..rows {
                for (j, &c) in cols.iter().enumerate() {
                    tuple[j] = m.get(r, c);
                }
                let key: Vec<u64> = tuple.iter().map(|v| v.to_bits()).collect();
                let code = *index.entry(key).or_insert_with(|| {
                    let t = (dict.len() / w) as u32;
                    dict.extend_from_slice(&tuple);
                    t
                });
                codes.push(code);
            }
            ColumnGroup::Ddc { cols: cols.to_vec(), dict, codes }
        }
        Encoding::Rle => {
            let w = cols.len();
            let mut dict: Vec<f64> = Vec::new();
            let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
            let mut runs: Vec<Vec<(u32, u32)>> = Vec::new();
            let mut r = 0usize;
            let mut tuple = vec![0f64; w];
            while r < rows {
                for (j, &c) in cols.iter().enumerate() {
                    tuple[j] = m.get(r, c);
                }
                let mut end = r + 1;
                while end < rows && cols.iter().enumerate().all(|(j, &c)| m.get(end, c) == tuple[j])
                {
                    end += 1;
                }
                if tuple.iter().any(|&v| v != 0.0) {
                    let key: Vec<u64> = tuple.iter().map(|v| v.to_bits()).collect();
                    let t = *index.entry(key).or_insert_with(|| {
                        dict.extend_from_slice(&tuple);
                        runs.push(Vec::new());
                        runs.len() - 1
                    });
                    runs[t].push((r as u32, (end - r) as u32));
                }
                r = end;
            }
            ColumnGroup::Rle { cols: cols.to_vec(), dict, runs, rows }
        }
        Encoding::Ole => {
            let w = cols.len();
            let mut dict: Vec<f64> = Vec::new();
            let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
            let mut offsets: Vec<Vec<u32>> = Vec::new();
            let mut tuple = vec![0f64; w];
            for r in 0..rows {
                for (j, &c) in cols.iter().enumerate() {
                    tuple[j] = m.get(r, c);
                }
                if tuple.iter().all(|&v| v == 0.0) {
                    continue;
                }
                let key: Vec<u64> = tuple.iter().map(|v| v.to_bits()).collect();
                let t = *index.entry(key).or_insert_with(|| {
                    dict.extend_from_slice(&tuple);
                    offsets.push(Vec::new());
                    offsets.len() - 1
                });
                offsets[t].push(r as u32);
            }
            ColumnGroup::Ole { cols: cols.to_vec(), dict, offsets, rows }
        }
    }
}

/// Compresses a matrix: analyze columns, co-code compatible low-cardinality
/// columns, choose encodings, and build groups.
pub fn compress(m: &Matrix) -> CompressedMatrix {
    let rows = m.rows();
    let cols = m.cols();
    let analyses: Vec<ColumnAnalysis> = (0..cols).map(|c| analyze_column(m, c)).collect();
    let groups_cols = cocode::plan_cocoding(rows, &analyses);
    let mut groups = Vec::with_capacity(groups_cols.len());
    for gc in groups_cols {
        let enc = if gc.len() == 1 {
            choose_encoding(rows, &analyses[gc[0]])
        } else {
            // Co-coded groups always use DDC (tuple dictionaries).
            Encoding::Ddc
        };
        groups.push(build_group(m, &gc, enc));
    }
    CompressedMatrix::new(rows, cols, groups)
}

/// Compresses and reports statistics.
pub fn compress_with_stats(m: &Matrix) -> (CompressedMatrix, CompressionStats) {
    let cm = compress(m);
    let stats = CompressionStats {
        compressed_bytes: cm.size_in_bytes(),
        uncompressed_bytes: cm.uncompressed_size_in_bytes(),
        ratio: cm.compression_ratio(),
        groups: cm.groups().iter().map(|g| (g.columns().to_vec(), g.encoding())).collect(),
    };
    (cm, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_linalg::generate;
    use fusedml_linalg::DenseMatrix;

    #[test]
    fn roundtrip_random_dense() {
        let m = generate::rand_dense(50, 4, 0.0, 1.0, 42);
        let cm = compress(&m);
        let d = cm.decompress();
        assert!(Matrix::dense(d).approx_eq(&m, 0.0));
    }

    #[test]
    fn roundtrip_low_cardinality() {
        let m = generate::airline_like(200, 5, 8, 7);
        let cm = compress(&m);
        assert!(Matrix::dense(cm.decompress()).approx_eq(&m, 0.0));
        // Low-cardinality data must actually compress.
        assert!(cm.compression_ratio() > 2.0, "ratio {}", cm.compression_ratio());
    }

    #[test]
    fn roundtrip_sparse() {
        let m = generate::rand_matrix(300, 6, 1.0, 3.0, 0.05, 13);
        let cm = compress(&m);
        assert!(Matrix::dense(cm.decompress()).approx_eq(&m, 0.0));
    }

    #[test]
    fn sorted_column_uses_rle() {
        // A sorted low-cardinality column has long runs → RLE.
        let mut data = Vec::new();
        for block in 0..10 {
            data.extend(std::iter::repeat_n(block as f64 + 1.0, 100));
        }
        let m = Matrix::dense(DenseMatrix::new(1000, 1, data));
        let cm = compress(&m);
        assert_eq!(cm.groups()[0].encoding(), Encoding::Rle);
        assert!(Matrix::dense(cm.decompress()).approx_eq(&m, 0.0));
    }

    #[test]
    fn random_unique_column_stays_uncompressed() {
        let m = generate::rand_dense(500, 1, 0.0, 1.0, 3);
        let cm = compress(&m);
        assert_eq!(cm.groups()[0].encoding(), Encoding::Uncompressed);
    }

    #[test]
    fn low_cardinality_prefers_ddc() {
        // Unsorted low-cardinality dense column → DDC beats RLE/OLE.
        let m = generate::airline_like(1000, 1, 5, 11);
        let cm = compress(&m);
        assert_eq!(cm.groups()[0].encoding(), Encoding::Ddc);
    }

    #[test]
    fn stats_report_groups() {
        let m = generate::airline_like(500, 4, 6, 99);
        let (_, stats) = compress_with_stats(&m);
        assert!(stats.ratio > 1.0);
        let covered: usize = stats.groups.iter().map(|(c, _)| c.len()).sum();
        assert_eq!(covered, 4);
    }
}
