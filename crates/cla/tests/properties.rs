#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Property tests: compression must be lossless and compressed operations
//! must agree with uncompressed execution for arbitrary matrices.

use fusedml_cla::{compress, ops as cops};
use fusedml_linalg::ops::{self as lops, AggDir, AggOp};
use fusedml_linalg::{DenseMatrix, Matrix};
use proptest::prelude::*;

/// Matrices with a mix of repeated values (compressible), zeros, and noise.
fn matrix_strategy() -> impl Strategy<Value = DenseMatrix> {
    (2usize..40, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(
            prop_oneof![
                3 => (0u8..4).prop_map(|v| v as f64),      // low-cardinality
                1 => Just(0.0),                            // zeros
                1 => -3.0..3.0f64,                         // noise
            ],
            r * c,
        )
        .prop_map(move |data| DenseMatrix::new(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compression_is_lossless(d in matrix_strategy()) {
        let m = Matrix::dense(d.clone());
        let cm = compress(&m);
        prop_assert_eq!(cm.decompress(), d);
    }

    #[test]
    fn compressed_sum_agrees(d in matrix_strategy()) {
        let m = Matrix::dense(d);
        let cm = compress(&m);
        let expect = lops::agg(&m, AggOp::Sum, AggDir::Full).get(0, 0);
        prop_assert!(fusedml_linalg::approx_eq(cops::sum(&cm), expect, 1e-9));
    }

    #[test]
    fn compressed_sumsq_agrees(d in matrix_strategy()) {
        let m = Matrix::dense(d);
        let cm = compress(&m);
        let expect = lops::agg(&m, AggOp::SumSq, AggDir::Full).get(0, 0);
        prop_assert!(fusedml_linalg::approx_eq(cops::sum_sq(&cm), expect, 1e-9));
    }

    #[test]
    fn compressed_colsums_agree(d in matrix_strategy()) {
        let m = Matrix::dense(d);
        let cm = compress(&m);
        let expect = lops::agg(&m, AggOp::Sum, AggDir::Col);
        prop_assert!(cops::col_sums(&cm).approx_eq(&expect, 1e-9));
    }

    #[test]
    fn compressed_matvect_agrees(d in matrix_strategy()) {
        let m = Matrix::dense(d.clone());
        let cm = compress(&m);
        let v_data: Vec<f64> = (0..d.cols()).map(|i| (i as f64) - 1.5).collect();
        let v = Matrix::dense(DenseMatrix::col_vector(&v_data));
        let expect = lops::matmult(&m, &v);
        prop_assert!(cops::mat_vect_mult(&cm, &v).approx_eq(&expect, 1e-9));
    }
}
