#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Differential property tests for the band-lowered Row backend: random
//! Row register programs executed through the block path (per-band
//! contexts, invariant hoisting, zero-copy dense side views, sparse rows
//! over non-zeros, mv-chain fast path) must agree with the per-row
//! interpreter (the oracle) across dense/sparse mains and sides, every
//! `RowOut` variant, all three `RowExecMode`s, and ragged band tails
//! (row counts that don't divide the thread-band size) — mirroring
//! `block_vs_scalar_property.rs` for the Cell/MAgg templates.
//!
//! Aggregating outputs reassociate across non-zeros and bands, so results
//! agree to 1e-9; elementwise (NoAgg) rows agree to 1e-11.

use fusedml_core::spoof::{Instr, Program, RowExecMode, RowOut, RowSpec, SideAccess};
use fusedml_linalg::ops::{AggOp, BinaryOp, TernaryOp, UnaryOp};
use fusedml_linalg::{generate, Matrix};
use fusedml_runtime::side::SideInput;
use fusedml_runtime::spoof::rowwise::{self, RowBackend};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Side layout (fixed across cases; densities vary):
/// 0: m×k matrix (VecMatMult), 1: m×1 column vector (whole-vector loads),
/// 2: n×m row-aligned matrix (side-row slices), 3: n×1 column (Col loads).
const N_SCALARS: usize = 2;

struct Shape {
    n: usize,
    m: usize,
    k: usize,
}

/// Register state tracked during generation.
struct Gen {
    instrs: Vec<Instr>,
    n_sregs: u16,
    vreg_lens: Vec<usize>,
    /// Vector registers of main-row length m.
    m_vecs: Vec<u16>,
    /// Vector registers of VecMatMult-output length k.
    k_vecs: Vec<u16>,
}

impl Gen {
    fn sreg(&mut self) -> u16 {
        let r = self.n_sregs;
        self.n_sregs += 1;
        r
    }
    fn vreg(&mut self, len: usize) -> u16 {
        self.vreg_lens.push(len);
        (self.vreg_lens.len() - 1) as u16
    }
}

/// Generates a random, well-typed Row program. The operator set is
/// restricted to operations whose NaN/∞ behaviour is order-independent so
/// the differential comparison stays tolerance-tight.
fn random_row_program(rng: &mut StdRng, sh: &Shape) -> Gen {
    let mut g = Gen {
        instrs: Vec::new(),
        n_sregs: 0,
        vreg_lens: Vec::new(),
        m_vecs: Vec::new(),
        k_vecs: Vec::new(),
    };
    // Always start from the main row.
    let main = g.vreg(sh.m);
    g.instrs.push(Instr::LoadMainRow { out: main });
    g.m_vecs.push(main);

    let n_extra = rng.gen_range(1..10usize);
    for _ in 0..n_extra {
        let have_scalars = g.n_sregs > 0;
        match rng.gen_range(0..10u32) {
            // Whole-vector load of the m×1 side.
            0 => {
                let v = g.vreg(sh.m);
                g.instrs.push(Instr::LoadSideRow { out: v, side: 1, cl: 0, cu: sh.m });
                g.m_vecs.push(v);
            }
            // Row slice of the row-aligned n×m side.
            1 => {
                let v = g.vreg(sh.m);
                g.instrs.push(Instr::LoadSideRow { out: v, side: 2, cl: 0, cu: sh.m });
                g.m_vecs.push(v);
            }
            // Scalar loads: bound scalar / constant / Col- or Scalar-access.
            2 => {
                let out = g.sreg();
                g.instrs.push(match rng.gen_range(0..4u32) {
                    0 => Instr::LoadScalar { out, idx: rng.gen_range(0..N_SCALARS) },
                    1 => Instr::LoadConst { out, value: rng.gen_range(-1.5..1.5) },
                    2 => Instr::LoadSide { out, side: 3, access: SideAccess::Col },
                    _ => Instr::LoadSide { out, side: 3, access: SideAccess::Scalar },
                });
            }
            // Vector unary over an m-vector.
            3 => {
                let a = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let out = g.vreg(sh.m);
                let ops = [UnaryOp::Abs, UnaryOp::Neg, UnaryOp::Pow2, UnaryOp::Sigmoid];
                g.instrs.push(Instr::VecUnary { out, op: ops[rng.gen_range(0..ops.len())], a });
                g.m_vecs.push(out);
            }
            // Vector-vector binary over two m-vectors.
            4 => {
                let a = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let b = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let out = g.vreg(sh.m);
                let ops = [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mult, BinaryOp::Max];
                g.instrs.push(Instr::VecBinaryVV {
                    out,
                    op: ops[rng.gen_range(0..ops.len())],
                    a,
                    b,
                });
                g.m_vecs.push(out);
            }
            // Vector-scalar binary.
            5 if have_scalars => {
                let a = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let b = rng.gen_range(0..g.n_sregs);
                let out = g.vreg(sh.m);
                let ops = [BinaryOp::Add, BinaryOp::Mult, BinaryOp::Min];
                g.instrs.push(Instr::VecBinaryVS {
                    out,
                    op: ops[rng.gen_range(0..ops.len())],
                    a,
                    b,
                    scalar_left: rng.gen_bool(0.5),
                });
                g.m_vecs.push(out);
            }
            // vectMatMult: m-vector × (m×k side) → k-vector.
            6 => {
                let a = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let out = g.vreg(sh.k);
                g.instrs.push(Instr::VecMatMult { out, a, side: 0 });
                g.k_vecs.push(out);
            }
            // Dot of two m-vectors.
            7 => {
                let a = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let b = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let out = g.sreg();
                g.instrs.push(Instr::Dot { out, a, b });
            }
            // Vector aggregate to scalar.
            8 => {
                let a = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let out = g.sreg();
                let ops = [AggOp::Sum, AggOp::SumSq, AggOp::Min, AggOp::Max, AggOp::Mean];
                g.instrs.push(Instr::VecAgg { out, op: ops[rng.gen_range(0..ops.len())], a });
            }
            // Scalar compute over existing scalar registers.
            _ if have_scalars => {
                let pick = |rng: &mut StdRng, n: u16| rng.gen_range(0..n);
                let out = g.sreg();
                if rng.gen_bool(0.3) {
                    g.instrs.push(Instr::Ternary {
                        out,
                        op: [TernaryOp::PlusMult, TernaryOp::MinusMult, TernaryOp::IfElse]
                            [rng.gen_range(0..3usize)],
                        a: pick(rng, out),
                        b: pick(rng, out),
                        c: pick(rng, out),
                    });
                } else {
                    let ops = [BinaryOp::Add, BinaryOp::Mult, BinaryOp::Sub, BinaryOp::Max];
                    g.instrs.push(Instr::Binary {
                        out,
                        op: ops[rng.gen_range(0..ops.len())],
                        a: pick(rng, out),
                        b: pick(rng, out),
                    });
                }
            }
            // Fallback when no scalars exist yet: another VecAgg.
            _ => {
                let a = g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
                let out = g.sreg();
                g.instrs.push(Instr::VecAgg { out, op: AggOp::Sum, a });
            }
        }
    }
    g
}

/// Picks a random output variant compatible with the generated registers.
fn random_out(rng: &mut StdRng, g: &Gen, sh: &Shape) -> (RowOut, usize, usize) {
    let m_vec = |rng: &mut StdRng| g.m_vecs[rng.gen_range(0..g.m_vecs.len())];
    loop {
        match rng.gen_range(0..6u32) {
            0 => {
                let src = m_vec(rng);
                return (RowOut::NoAgg { src }, sh.n, sh.m);
            }
            1 if g.n_sregs > 0 => {
                let src = rng.gen_range(0..g.n_sregs);
                return (RowOut::RowAgg { src }, sh.n, 1);
            }
            2 => {
                let src = m_vec(rng);
                return (RowOut::ColAgg { src }, 1, sh.m);
            }
            3 if g.n_sregs > 0 => {
                let src = rng.gen_range(0..g.n_sregs);
                return (RowOut::FullAgg { src }, 1, 1);
            }
            4 => {
                // m×m outer, or m×k against a VecMatMult result.
                let left = m_vec(rng);
                if !g.k_vecs.is_empty() && rng.gen_bool(0.5) {
                    let right = g.k_vecs[rng.gen_range(0..g.k_vecs.len())];
                    return (RowOut::OuterColAgg { left, right }, sh.m, sh.k);
                }
                let right = m_vec(rng);
                return (RowOut::OuterColAgg { left, right }, sh.m, sh.m);
            }
            5 if g.n_sregs > 0 => {
                let vec = m_vec(rng);
                let scalar = rng.gen_range(0..g.n_sregs);
                return (RowOut::ColAggMultAdd { vec, scalar }, sh.m, 1);
            }
            _ => {}
        }
    }
}

struct Inputs {
    dense_main: Matrix,
    sparse_main: Matrix,
    sides: Vec<Matrix>,
    scalars: Vec<f64>,
}

fn random_inputs(rng: &mut StdRng, sh: &Shape, seed: u64) -> Inputs {
    let sp = |rng: &mut StdRng| if rng.gen_bool(0.4) { Some(0.3) } else { None };
    let side = |rng: &mut StdRng, r: usize, c: usize, s: u64| match sp(rng) {
        Some(d) => generate::rand_matrix(r, c, -1.5, 1.5, d, s),
        None => generate::rand_dense(r, c, -1.5, 1.5, s),
    };
    Inputs {
        dense_main: generate::rand_dense(sh.n, sh.m, -1.5, 1.5, seed * 31 + 1),
        sparse_main: generate::rand_matrix(sh.n, sh.m, -1.5, 1.5, 0.25, seed * 31 + 2),
        sides: vec![
            side(rng, sh.m, sh.k, seed * 7 + 10),
            side(rng, sh.m, 1, seed * 7 + 11),
            side(rng, sh.n, sh.m, seed * 7 + 12),
            side(rng, sh.n, 1, seed * 7 + 13),
        ],
        scalars: (0..N_SCALARS).map(|_| rng.gen_range(-1.5..1.5)).collect(),
    }
}

#[test]
fn row_block_backend_matches_interpreter_on_random_programs() {
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Row counts straddle thread-band boundaries (ragged tails); m is
        // kept moderate so nnz²-style outputs stay cheap.
        let sh = Shape {
            n: *[2, 7, 61, 64, 127, 350].get(rng.gen_range(0..6usize)).unwrap(),
            m: *[3, 17, 40, 97].get(rng.gen_range(0..4usize)).unwrap(),
            k: rng.gen_range(1..6usize),
        };
        let g = random_row_program(&mut rng, &sh);
        let (out, out_rows, out_cols) = random_out(&mut rng, &g, &sh);
        let inputs = random_inputs(&mut rng, &sh, seed);
        let prog =
            Program { instrs: g.instrs.clone(), n_regs: g.n_sregs, vreg_lens: g.vreg_lens.clone() };
        let sides: Vec<SideInput> = inputs.sides.iter().map(SideInput::bind).collect();
        let mode = [RowExecMode::Vectorized, RowExecMode::Inlined, RowExecMode::InterpretedNoJit]
            [seed as usize % 3];
        let spec = RowSpec { prog, out, out_rows, out_cols, exec_mode: mode };
        let tol = if matches!(spec.out, RowOut::NoAgg { .. }) { 1e-11 } else { 1e-9 };
        for main in [&inputs.dense_main, &inputs.sparse_main] {
            let oracle =
                rowwise::execute_with(&spec, main, &sides, &inputs.scalars, RowBackend::Interp);
            let got =
                rowwise::execute_with(&spec, main, &sides, &inputs.scalars, RowBackend::Block);
            assert!(
                got.approx_eq(&oracle, tol),
                "seed {seed}: block diverges from interpreter (out {:?}, mode {:?}, \
                 sparse={}, {}x{}, prog {:?})",
                spec.out,
                mode,
                main.is_sparse(),
                sh.n,
                sh.m,
                spec.prog
            );
        }
    }
}

/// The mv-chain fast path (Vectorized) and the generic body (other modes)
/// must agree with each other and the oracle on the mlogreg-style pattern
/// `t(X) %*% (w ⊙ (X %*% v))` — dense and sparse X, dense and sparse v.
#[test]
fn mlogreg_pattern_all_modes_and_densities_agree() {
    let (n, m) = (211, 37); // ragged everywhere
    let spec = |mode| RowSpec {
        prog: Program {
            instrs: vec![
                Instr::LoadMainRow { out: 0 },
                Instr::LoadSideRow { out: 1, side: 0, cl: 0, cu: m },
                Instr::Dot { out: 0, a: 0, b: 1 },
                Instr::LoadSide { out: 1, side: 1, access: SideAccess::Col },
                Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            ],
            n_regs: 3,
            vreg_lens: vec![m, m],
        },
        out: RowOut::ColAggMultAdd { vec: 0, scalar: 2 },
        out_rows: m,
        out_cols: 1,
        exec_mode: mode,
    };
    let w = generate::rand_dense(n, 1, 0.1, 1.0, 3);
    for x in
        [generate::rand_dense(n, m, -1.0, 1.0, 1), generate::rand_matrix(n, m, -1.0, 1.0, 0.08, 2)]
    {
        for v in [
            generate::rand_dense(m, 1, -1.0, 1.0, 4),
            generate::rand_matrix(m, 1, -1.0, 1.0, 0.5, 5),
        ] {
            let sides = [SideInput::bind(&v), SideInput::bind(&w)];
            let oracle = rowwise::execute_with(
                &spec(RowExecMode::Vectorized),
                &x,
                &sides,
                &[],
                RowBackend::Interp,
            );
            for mode in
                [RowExecMode::Vectorized, RowExecMode::Inlined, RowExecMode::InterpretedNoJit]
            {
                let got = rowwise::execute_with(&spec(mode), &x, &sides, &[], RowBackend::Block);
                assert!(
                    got.approx_eq(&oracle, 1e-9),
                    "mode {mode:?}, sparse_x={}, sparse_v={}",
                    x.is_sparse(),
                    v.is_sparse()
                );
            }
        }
    }
}
