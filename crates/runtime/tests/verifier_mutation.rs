#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Verifier mutation suite: corrupt each invariant class of a known-good
//! compiled artifact and assert the verifier rejects it with the *specific*
//! typed [`VerifyError`] variant — not just any error. Together with
//! `verifier_fuzz.rs` (no false positives) this pins the verifier from both
//! sides: it accepts everything the compiler produces and rejects every
//! class of corruption it claims to check.

use std::sync::Arc;

use fusedml_core::optimizer::{optimize, FusionPlan};
use fusedml_core::spoof::block::compile_row_kernel;
use fusedml_core::spoof::{FusedSpec, Instr, Program, RowExecMode, RowOut, RowSpec};
use fusedml_hop::liveness::{self, Liveness};
use fusedml_hop::{DagBuilder, HopDag, HopId};
use fusedml_linalg::ops::{AggOp, UnaryOp};
use fusedml_runtime::schedule::{self, TaskGraph};
use fusedml_runtime::verify::{
    check_residency_trace, check_row_kernel, verify_compiled, SlotState, SlotTransition,
};
use fusedml_runtime::{FusionMode, VerifyError};

/// `sum(exp(X)) + sum(X^2)`-style artifact set: one fused operator in Gen
/// mode (exp is *not* sparse-safe, which the sparse-claim mutation relies
/// on), everything basic in Base mode.
struct Artifacts {
    dag: HopDag,
    plan: Option<FusionPlan>,
    graph: TaskGraph,
    facts: Liveness,
    /// The exp hop (live, non-leaf) for shape mutations.
    exp: HopId,
}

fn artifacts(mode: FusionMode) -> Artifacts {
    let mut b = DagBuilder::new();
    let x = b.read("X", 40, 20, 1.0);
    let e = b.exp(x);
    let s = b.sum(e);
    let q = b.sum_sq(x);
    let dag = b.build(vec![s, q]);
    let plan = match mode {
        FusionMode::Base => None,
        _ => Some(optimize(&dag, mode)),
    };
    let graph = schedule::prepare(&dag, plan.as_ref(), None);
    let facts = liveness::analyze(&dag);
    Artifacts { dag, plan, graph, facts, exp: e }
}

fn verify(a: &Artifacts) -> Result<(), VerifyError> {
    verify_compiled(&a.dag, a.plan.as_ref(), &a.graph, &a.facts)
}

/// Baseline: the uncorrupted artifacts verify clean in both modes, so every
/// failure below is attributable to its mutation alone.
#[test]
fn clean_artifacts_verify_ok() {
    for mode in [FusionMode::Base, FusionMode::Gen] {
        let a = artifacts(mode);
        if matches!(mode, FusionMode::Gen) {
            assert!(
                a.plan.as_ref().is_some_and(|p| !p.operators.is_empty()),
                "Gen mode must fuse sum(exp(X)) — the mutations below corrupt that operator"
            );
        }
        verify(&a).unwrap_or_else(|e| panic!("{mode:?} baseline rejected: {e}"));
    }
}

/// Corruption 1 — register program reads a register no instruction defined.
#[test]
fn dangling_register_rejected() {
    let mut a = artifacts(FusionMode::Gen);
    {
        let plan = a.plan.as_mut().unwrap();
        let op = Arc::make_mut(&mut plan.operators[0].op);
        let prog = match &mut op.spec {
            FusedSpec::Cell(c) => &mut c.prog,
            FusedSpec::MAgg(m) => &mut m.prog,
            FusedSpec::Row(r) => &mut r.prog,
            FusedSpec::Outer(o) => &mut o.prog,
        };
        // A brand-new register nothing defines, read immediately.
        let undefined = prog.n_regs;
        prog.n_regs += 1;
        prog.instrs.push(Instr::Unary { out: 0, op: UnaryOp::Abs, a: undefined });
    }
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::DanglingRegister { .. }), "got {err:?}");
}

/// Corruption 2 — cached liveness facts drift from the DAG they describe.
#[test]
fn stale_liveness_rejected() {
    let mut a = artifacts(FusionMode::Base);
    a.facts.consumers[0] += 1;
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::StaleLiveness { .. }), "got {err:?}");
}

/// Corruption 3 — a fused operator claims sparse safety for a program that
/// is not zero-preserving (`exp(0) = 1`).
#[test]
fn sparse_overclaim_rejected() {
    let mut a = artifacts(FusionMode::Gen);
    {
        let plan = a.plan.as_mut().unwrap();
        let op = Arc::make_mut(&mut plan.operators[0].op);
        match &mut op.spec {
            FusedSpec::Cell(c) => c.sparse_safe = true,
            FusedSpec::MAgg(m) => m.sparse_safe = true,
            FusedSpec::Outer(o) => o.sparse_safe = true,
            FusedSpec::Row(_) => panic!("sum(exp(X)) must not compile as a Row operator"),
        }
    }
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::SparseClaim { .. }), "got {err:?}");
}

/// Corruption 4 — a task-graph read-occurrence refcount is off by one.
#[test]
fn refcount_mismatch_rejected() {
    let mut a = artifacts(FusionMode::Base);
    a.graph.reads_mut()[0] += 1;
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::RefcountMismatch { hop: 0, .. }), "got {err:?}");
}

/// Corruption 5 — a leaf input marked spill-eligible (leaves are pinned:
/// they are caller-owned and must never enter the eviction pool).
#[test]
fn leaf_spill_eligibility_rejected() {
    let mut a = artifacts(FusionMode::Base);
    a.graph.spill_ok_mut()[0] = true; // hop 0 is the Read leaf
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::SpillEligibility { hop: 0, .. }), "got {err:?}");
}

/// Corruption 6 — a task's output-byte estimate disagrees with the size
/// estimator the spill planner uses.
#[test]
fn task_bytes_mismatch_rejected() {
    let mut a = artifacts(FusionMode::Base);
    a.graph.task_out_bytes_mut()[0] += 8;
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::TaskBytesMismatch { task: 0, .. }), "got {err:?}");
}

/// Corruption 7 — a stored hop size drifts from what re-inference gives
/// (the compile-once/execute-many hazard `FusionPlan::matches` guards).
#[test]
fn shape_drift_rejected() {
    let mut a = artifacts(FusionMode::Base);
    let exp = a.exp;
    a.dag.hop_mut(exp).size.rows += 1;
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::ShapeDrift { .. }), "got {err:?}");
}

/// Corruption 8 — two fused operators both claim the same output hop.
#[test]
fn overlapping_fused_write_rejected() {
    let mut a = artifacts(FusionMode::Gen);
    {
        let plan = a.plan.as_mut().unwrap();
        let dup = plan.operators[0].clone();
        plan.operators.push(dup);
    }
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::OverlappingFusedWrite { .. }), "got {err:?}");
}

/// Corruption 9 — the plan's structural hash no longer matches the DAG it
/// is bound to (geometry changed after costing).
#[test]
fn plan_geometry_mismatch_rejected() {
    let mut a = artifacts(FusionMode::Gen);
    a.plan.as_mut().unwrap().dag_hash ^= 1;
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::PlanGeometryMismatch { .. }), "got {err:?}");
}

/// Corruption 10 — task-graph side tables truncated (field-length drift).
#[test]
fn truncated_reads_rejected() {
    let mut a = artifacts(FusionMode::Base);
    a.graph.reads_mut().pop();
    let err = verify(&a).unwrap_err();
    assert!(matches!(err, VerifyError::TaskGraphMalformed { .. }), "got {err:?}");
}

/// Corruption 11 — a residency trace records a transition the slot state
/// machine forbids (`Resident → Loading` skips the eviction protocol).
#[test]
fn illegal_residency_transition_rejected() {
    let trace = vec![
        SlotTransition { slot: 0, from: SlotState::Empty, to: SlotState::Resident },
        SlotTransition { slot: 0, from: SlotState::Resident, to: SlotState::Loading },
    ];
    let err = check_residency_trace(1, &trace).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::ResidencyViolation {
                slot: 0,
                from: SlotState::Resident,
                to: SlotState::Loading,
                step: 1,
            }
        ),
        "got {err:?}"
    );
}

/// Corruption 12 — a trace whose replayed state disagrees with a recorded
/// from-state (the recorder lost an event).
#[test]
fn residency_state_drift_rejected() {
    // Slot 0 was never made Resident, yet the trace claims to evict it.
    let trace =
        vec![SlotTransition { slot: 0, from: SlotState::Resident, to: SlotState::Evicting }];
    let err = check_residency_trace(1, &trace).unwrap_err();
    assert!(matches!(err, VerifyError::ResidencyViolation { slot: 0, step: 0, .. }), "got {err:?}");
}

/// Corruption 13 — a trace that ends with a non-empty slot (a leaked
/// residency: the run finished but a value never left its slot).
#[test]
fn leaked_final_residency_rejected() {
    let trace = vec![SlotTransition { slot: 0, from: SlotState::Empty, to: SlotState::Resident }];
    let err = check_residency_trace(1, &trace).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::ResidencyViolation {
                slot: 0,
                from: SlotState::Resident,
                to: SlotState::Empty,
                step: 1,
            }
        ),
        "got {err:?}"
    );
}

/// A hand-built Row spec whose per-row body consumes the main row
/// element-wise: `rowSums(abs(X))`.
fn dense_main_row_spec(n: usize, m: usize) -> RowSpec {
    RowSpec {
        prog: Program {
            instrs: vec![
                Instr::LoadMainRow { out: 0 },
                Instr::VecUnary { out: 1, op: UnaryOp::Abs, a: 0 },
                Instr::VecAgg { out: 0, op: AggOp::Sum, a: 1 },
            ],
            n_regs: 1,
            vreg_lens: vec![m, m],
        },
        out: RowOut::RowAgg { src: 0 },
        out_rows: n,
        out_cols: 1,
        exec_mode: RowExecMode::Vectorized,
    }
}

/// Corruption 14 — a Row kernel claims `sparse_main_ok` although its
/// per-row body consumes the main row element-wise (missing zeros would be
/// skipped on sparse inputs).
#[test]
fn row_kernel_sparse_overclaim_rejected() {
    let spec = dense_main_row_spec(8, 6);
    let mut kernel = compile_row_kernel(&spec, &[]);
    assert!(!kernel.sparse_main_ok, "abs consumes the main row densely");
    check_row_kernel(0, &spec, &[], &kernel).expect("honest kernel verifies");
    kernel.sparse_main_ok = true;
    let err = check_row_kernel(0, &spec, &[], &kernel).unwrap_err();
    assert!(matches!(err, VerifyError::SparseClaim { .. }), "got {err:?}");
}

/// Corruption 15 — a per-row instruction hoisted into the invariant
/// section (a main-row load is never loop-invariant).
#[test]
fn row_kernel_hoisted_main_load_rejected() {
    let spec = dense_main_row_spec(8, 6);
    let mut kernel = compile_row_kernel(&spec, &[]);
    kernel.invariant.insert(0, Instr::LoadMainRow { out: 0 });
    let err = check_row_kernel(0, &spec, &[], &kernel).unwrap_err();
    assert!(matches!(err, VerifyError::NotLoopInvariant { .. }), "got {err:?}");
}

/// The corrupted-artifact rejection also surfaces through the public
/// engine path: `Engine::try_compile` folds [`VerifyError`] into
/// [`fusedml_runtime::ExecError::Verify`] instead of panicking.
#[test]
fn engine_surfaces_verify_error_as_typed_exec_error() {
    // A healthy DAG compiles fine; this guards the plumbing, not a
    // corruption (the engine never produces corrupt artifacts itself, which
    // is exactly what the fuzz suite asserts).
    let mut b = DagBuilder::new();
    let x = b.read("X", 10, 10, 1.0);
    let e = b.exp(x);
    let s = b.sum(e);
    let dag = b.build(vec![s]);
    let engine = fusedml_runtime::EngineBuilder::new(FusionMode::Gen).verify_plans(true).build();
    assert!(engine.try_compile(&dag).is_ok());
}
