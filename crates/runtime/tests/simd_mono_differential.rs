#![allow(clippy::disallowed_methods)] // test code may unwrap freely
//! Differential tests for the SIMD tile primitives and the monomorphized
//! kernel backend, pinned to the rounding policy documented in
//! `fusedml_linalg::simd` (DESIGN.md substitution X10):
//!
//! * **Map-class** work (elementwise NoAgg results) must be **bitwise
//!   identical** across the scalar interpreter, the generic tile backend,
//!   the closure-specialized backend, and the monomorphized backend — no
//!   FMA contraction, no reassociation. This holds through NaN, ±0.0, and
//!   ±∞ inputs and through every ragged tail length `n % 8 ∈ {0..7}`.
//! * **Reduction-class** work (aggregates) may reassociate lane/chunk sums
//!   (backend-defined association), but must agree with the scalar oracle
//!   to 1e-12 relative per tile chain; we assert 1e-11 end-to-end.

use fusedml_core::spoof::block::CellBackend;
use fusedml_core::spoof::mono::{classify, ShapeClass};
use fusedml_core::spoof::{block, CellAgg, CellSpec, Instr, Program, SideAccess};
use fusedml_linalg::ops::{AggOp, BinaryOp, TernaryOp, UnaryOp};
use fusedml_linalg::{simd, DenseMatrix, Matrix, SparseMatrix};
use fusedml_runtime::side::SideInput;
use fusedml_runtime::spoof::cellwise;
use rand::{rngs::StdRng, Rng, SeedableRng};

const ALL_BACKENDS: [CellBackend; 4] =
    [CellBackend::Scalar, CellBackend::Block, CellBackend::BlockFast, CellBackend::Mono];

/// `main * exp(side + scalar)` — classifies as the `MulUnBin` shape family
/// (the Figure 8(h) inner expression).
fn mul_un_bin_prog() -> Program {
    Program {
        instrs: vec![
            Instr::LoadMain { out: 0 },
            Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
            Instr::LoadScalar { out: 2, idx: 0 },
            Instr::Binary { out: 3, op: BinaryOp::Add, a: 1, b: 2 },
            Instr::Unary { out: 4, op: UnaryOp::Exp, a: 3 },
            Instr::Binary { out: 5, op: BinaryOp::Mult, a: 0, b: 4 },
        ],
        n_regs: 6,
        vreg_lens: vec![],
    }
}

/// `sigmoid(main * side0) +* (side1, main)` — a deeper body that classifies
/// as a `TreeMap` (too irregular for the single-loop families).
fn tree_prog() -> Program {
    Program {
        instrs: vec![
            Instr::LoadMain { out: 0 },
            Instr::LoadSide { out: 1, side: 0, access: SideAccess::Cell },
            Instr::Binary { out: 2, op: BinaryOp::Mult, a: 0, b: 1 },
            Instr::Unary { out: 3, op: UnaryOp::Sigmoid, a: 2 },
            Instr::LoadSide { out: 4, side: 1, access: SideAccess::Cell },
            Instr::Ternary { out: 5, op: TernaryOp::PlusMult, a: 3, b: 4, c: 0 },
        ],
        n_regs: 6,
        vreg_lens: vec![],
    }
}

fn dense(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            data.push(f(r, c));
        }
    }
    Matrix::dense(DenseMatrix::new(rows, cols, data))
}

fn run(
    spec: &CellSpec,
    main: &Matrix,
    sides: &[SideInput],
    scalars: &[f64],
    backend: CellBackend,
) -> Matrix {
    cellwise::execute_with(spec, Some(main), sides, scalars, main.rows(), main.cols(), backend)
}

fn assert_bitwise(a: &Matrix, b: &Matrix, what: &str) {
    let (ad, bd) = (a.to_dense(), b.to_dense());
    assert_eq!(ad.rows(), bd.rows(), "{what}: row mismatch");
    assert_eq!(ad.cols(), bd.cols(), "{what}: col mismatch");
    for (i, (x, y)) in ad.values().iter().zip(bd.values()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: cell {i} differs bitwise ({x:?} vs {y:?})");
    }
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f64, what: &str) {
    let (ad, bd) = (a.to_dense(), b.to_dense());
    for (i, (x, y)) in ad.values().iter().zip(bd.values()).enumerate() {
        let scale = x.abs().max(y.abs()).max(1.0);
        assert!((x - y).abs() <= tol * scale, "{what}: cell {i}: {x} vs {y} (tol {tol})");
    }
}

/// Map-class results are bitwise identical across all four backends for
/// every tail length `cols % 8 ∈ {0..7}` — the maskload/gather tail paths
/// must not diverge from the full-lane paths.
#[test]
fn map_class_is_bitwise_across_backends_and_ragged_tails() {
    for (name, prog) in [("mul_un_bin", mul_un_bin_prog()), ("tree", tree_prog())] {
        let bp = block::lower(&prog);
        let class = classify(&bp, prog.n_regs - 1).map(|m| m.class());
        assert!(
            class.is_some_and(|c| c.is_specialized()),
            "{name} must monomorphize, got {class:?}"
        );
        for cols in 256..264usize {
            // cols % 8 covers 0..=7
            let rows = 5;
            let main = dense(rows, cols, |r, c| ((r * 31 + c) % 23) as f64 * 0.37 - 3.0);
            let s0 = dense(rows, cols, |r, c| ((r * 17 + c) % 19) as f64 * 0.21 - 1.5);
            let s1 = dense(rows, cols, |r, c| ((r * 13 + c) % 29) as f64 * 0.11 - 1.0);
            let sides = [SideInput::bind(&s0), SideInput::bind(&s1)];
            let spec = CellSpec {
                prog: prog.clone(),
                result: prog.n_regs - 1,
                agg: CellAgg::NoAgg,
                sparse_safe: false,
            };
            let oracle = run(&spec, &main, &sides, &[0.25], CellBackend::Scalar);
            for backend in ALL_BACKENDS {
                let got = run(&spec, &main, &sides, &[0.25], backend);
                assert_bitwise(&got, &oracle, &format!("{name} cols={cols} {backend:?}"));
            }
        }
    }
}

/// NaN, ±0.0, and ±∞ flow through map-class kernels bit-for-bit: the SIMD
/// lanes and the monomorphized loops apply IEEE semantics identically to
/// the scalar interpreter.
#[test]
fn nan_and_signed_zero_propagate_identically() {
    let specials = [f64::NAN, 0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1.5, -2.25];
    let (rows, cols) = (4, 259); // ragged tail: 259 % 8 == 3
    let main = dense(rows, cols, |r, c| specials[(r * cols + c) % specials.len()]);
    let s0 = dense(rows, cols, |r, c| specials[(r * cols + c * 3 + 1) % specials.len()]);
    let s1 = dense(rows, cols, |r, c| ((r + c) % 7) as f64 - 3.0);
    let sides = [SideInput::bind(&s0), SideInput::bind(&s1)];
    for prog in [mul_un_bin_prog(), tree_prog()] {
        let spec = CellSpec {
            prog: prog.clone(),
            result: prog.n_regs - 1,
            agg: CellAgg::NoAgg,
            sparse_safe: false,
        };
        let oracle = run(&spec, &main, &sides, &[0.5], CellBackend::Scalar);
        for backend in ALL_BACKENDS {
            let got = run(&spec, &main, &sides, &[0.5], backend);
            assert_bitwise(&got, &oracle, &format!("specials {backend:?}"));
        }
    }
}

/// Aggregates over sparse banded mains (runs of contiguous non-zeros with
/// empty gaps, exercising the non-zero-batched gather path) agree with the
/// scalar oracle under the documented reduction policy.
#[test]
fn sparse_banded_mains_agree_across_backends() {
    let (rows, cols) = (24, 517);
    let mut triples = Vec::new();
    for r in 0..rows {
        // A band of 40 + r contiguous non-zeros starting at a varying
        // offset, so chunk boundaries land everywhere in the band.
        let start = (r * 37) % 300;
        for c in start..(start + 40 + r).min(cols) {
            triples.push((r, c, ((r * 7 + c) % 13) as f64 * 0.4 - 2.0));
        }
    }
    let main = Matrix::sparse(SparseMatrix::from_triples(rows, cols, triples));
    let s0 = dense(rows, cols, |r, c| ((r * 11 + c) % 17) as f64 * 0.3 - 1.2);
    let s1 = dense(rows, cols, |r, c| ((r * 5 + c) % 23) as f64 * 0.17 - 1.9);
    let sides = [SideInput::bind(&s0), SideInput::bind(&s1)];
    for prog in [mul_un_bin_prog(), tree_prog()] {
        for agg in [AggOp::Sum, AggOp::SumSq, AggOp::Min, AggOp::Max] {
            let spec = CellSpec {
                prog: prog.clone(),
                result: prog.n_regs - 1,
                agg: CellAgg::FullAgg(agg),
                sparse_safe: true,
            };
            let oracle = run(&spec, &main, &sides, &[0.25], CellBackend::Scalar);
            for backend in ALL_BACKENDS {
                let got = run(&spec, &main, &sides, &[0.25], backend);
                assert_close(&got, &oracle, 1e-11, &format!("{agg:?} {backend:?}"));
            }
        }
    }
}

/// Random programs: map-class (NoAgg) bitwise, reductions to 1e-11, across
/// all four backends, with column counts that sweep the tail residues.
#[test]
fn random_programs_agree_across_backends() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed * 131 + 7);
        let prog = random_program(&mut rng);
        let result = prog.n_regs - 1;
        let rows = rng.gen_range(2..9usize);
        let cols = *[63, 256, 257, 260, 263, 300].get(rng.gen_range(0..6usize)).unwrap();
        let main = dense(rows, cols, |r, c| ((r * 31 + c * 7) % 41) as f64 * 0.1 - 2.0);
        let s0 = dense(rows, cols, |r, c| ((r * 3 + c) % 31) as f64 * 0.13 - 2.0);
        let s1 = dense(rows, cols, |r, c| ((r * 23 + c) % 37) as f64 * 0.09 - 1.7);
        let sides = [SideInput::bind(&s0), SideInput::bind(&s1)];
        let scalars = [rng.gen_range(-1.5..1.5), rng.gen_range(-1.5..1.5)];
        for (agg, tol) in [
            (CellAgg::NoAgg, 0.0),
            (CellAgg::FullAgg(AggOp::Sum), 1e-11),
            (CellAgg::RowAgg(AggOp::Max), 1e-11),
            (CellAgg::ColAgg(AggOp::Sum), 1e-11),
        ] {
            let spec = CellSpec { prog: prog.clone(), result, agg, sparse_safe: false };
            let oracle = run(&spec, &main, &sides, &scalars, CellBackend::Scalar);
            for backend in ALL_BACKENDS {
                let got = run(&spec, &main, &sides, &scalars, backend);
                if agg == CellAgg::NoAgg {
                    assert_bitwise(&got, &oracle, &format!("seed {seed} {backend:?}"));
                } else {
                    assert_close(&got, &oracle, tol, &format!("seed {seed} {backend:?} {agg:?}"));
                }
            }
        }
    }
}

/// Forcing the scalar tile primitives (the `FUSEDML_FORCE_SCALAR` path) must
/// not change map-class results bitwise, and reductions stay within policy —
/// the scalar twins mirror the AVX2 accumulator shapes exactly.
#[test]
fn forced_scalar_fallback_matches_vector_paths() {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            simd::force_scalar(self.0);
        }
    }
    let _restore = Restore(simd::forced_scalar());

    let (rows, cols) = (6, 261);
    let main = dense(rows, cols, |r, c| ((r * 31 + c) % 23) as f64 * 0.37 - 3.0);
    let s0 = dense(rows, cols, |r, c| ((r * 17 + c) % 19) as f64 * 0.21 - 1.5);
    let s1 = dense(rows, cols, |r, c| ((r * 13 + c) % 29) as f64 * 0.11 - 1.0);
    let sides = [SideInput::bind(&s0), SideInput::bind(&s1)];
    for prog in [mul_un_bin_prog(), tree_prog()] {
        let map_spec = CellSpec {
            prog: prog.clone(),
            result: prog.n_regs - 1,
            agg: CellAgg::NoAgg,
            sparse_safe: false,
        };
        let agg_spec = CellSpec { agg: CellAgg::FullAgg(AggOp::Sum), ..map_spec.clone() };

        simd::force_scalar(false);
        let map_vec = run(&map_spec, &main, &sides, &[0.25], CellBackend::Mono);
        let agg_vec = run(&agg_spec, &main, &sides, &[0.25], CellBackend::Mono);
        simd::force_scalar(true);
        let map_sca = run(&map_spec, &main, &sides, &[0.25], CellBackend::Mono);
        let agg_sca = run(&agg_spec, &main, &sides, &[0.25], CellBackend::Mono);
        simd::force_scalar(false);

        assert_bitwise(&map_vec, &map_sca, "forced-scalar map class");
        assert_close(&agg_vec, &agg_sca, 1e-11, "forced-scalar reduction class");
    }
}

/// The shape taxonomy covers the fixtures the fig8 panels rely on.
#[test]
fn fixture_programs_classify_as_expected() {
    let p = mul_un_bin_prog();
    let bp = block::lower(&p);
    assert_eq!(classify(&bp, p.n_regs - 1).map(|m| m.class()), Some(ShapeClass::MulUnBin));
    let t = tree_prog();
    let bt = block::lower(&t);
    assert_eq!(classify(&bt, t.n_regs - 1).map(|m| m.class()), Some(ShapeClass::TreeMap));
}

/// Random scalar programs restricted to operations whose NaN/∞ behaviour is
/// order-independent (mirrors the block property-test generator).
fn random_program(rng: &mut StdRng) -> Program {
    let n_instrs = rng.gen_range(1..12usize);
    let mut instrs: Vec<Instr> = Vec::with_capacity(n_instrs);
    let mut next = 0u16;
    for _ in 0..n_instrs {
        let have = next;
        let pick = |rng: &mut StdRng, have: u16| rng.gen_range(0..have);
        let kind = if have == 0 { 0 } else { rng.gen_range(0..8u32) };
        let out = next;
        next += 1;
        let ins = match kind {
            0 => match rng.gen_range(0..4u32) {
                0 => Instr::LoadMain { out },
                1 => {
                    let access = match rng.gen_range(0..4u32) {
                        0 => SideAccess::Cell,
                        1 => SideAccess::Col,
                        2 => SideAccess::Row,
                        _ => SideAccess::Scalar,
                    };
                    Instr::LoadSide { out, side: rng.gen_range(0..2usize), access }
                }
                2 => Instr::LoadScalar { out, idx: rng.gen_range(0..2usize) },
                _ => Instr::LoadConst { out, value: rng.gen_range(-2.0..2.0) },
            },
            1 | 2 => {
                let ops = [
                    UnaryOp::Abs,
                    UnaryOp::Neg,
                    UnaryOp::Sigmoid,
                    UnaryOp::Pow2,
                    UnaryOp::Sprop,
                    UnaryOp::Round,
                    UnaryOp::Sign,
                    UnaryOp::Exp,
                ];
                Instr::Unary { out, op: ops[rng.gen_range(0..ops.len())], a: pick(rng, have) }
            }
            3 => {
                let ops = [TernaryOp::PlusMult, TernaryOp::MinusMult, TernaryOp::IfElse];
                Instr::Ternary {
                    out,
                    op: ops[rng.gen_range(0..ops.len())],
                    a: pick(rng, have),
                    b: pick(rng, have),
                    c: pick(rng, have),
                }
            }
            _ => {
                let ops = [
                    BinaryOp::Mult,
                    BinaryOp::Mult,
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Min,
                    BinaryOp::Max,
                    BinaryOp::Lt,
                    BinaryOp::Ge,
                ];
                Instr::Binary {
                    out,
                    op: ops[rng.gen_range(0..ops.len())],
                    a: pick(rng, have),
                    b: pick(rng, have),
                }
            }
        };
        instrs.push(ins);
    }
    Program { instrs, n_regs: next, vreg_lens: vec![] }
}
