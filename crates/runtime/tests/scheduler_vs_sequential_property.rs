#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Differential property test for the scheduled execution engine: random
//! DAGs (mixed dense/sparse inputs, shared subexpressions, multiple roots)
//! executed by the liveness-aware parallel scheduler must produce results
//! *bitwise-equal* to the retained sequential oracle, across every
//! `FusionMode` — and the tracked peak footprint must never exceed the
//! hold-everything sum of all materialized values.

use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag, HopId};
use fusedml_linalg::generate;
use fusedml_linalg::matrix::Value;
use fusedml_runtime::{Engine, FusionMode};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomDag {
    ops: Vec<u8>,
    rows: usize,
    cols: usize,
    sparse_main: bool,
}

fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    (proptest::collection::vec(0u8..10, 2..10), 20usize..80, 10usize..40, 0u8..2)
        .prop_map(|(ops, rows, cols, sm)| RandomDag { ops, rows, cols, sparse_main: sm == 1 })
}

/// Builds a DAG with shared subexpressions (every second op reuses an
/// earlier value) and three roots of mixed shapes.
fn build(e: &RandomDag) -> (HopDag, Bindings) {
    let mut b = DagBuilder::new();
    let x = b.read("X", e.rows, e.cols, if e.sparse_main { 0.05 } else { 1.0 });
    let y = b.read("Y", e.rows, e.cols, 1.0);
    let v = b.read("v", e.rows, 1, 1.0);
    let mut cur: HopId = x;
    let mut prev: HopId = y; // shared-subexpression pool
    for (i, &op) in e.ops.iter().enumerate() {
        let next = match op {
            0 => b.mult(cur, y),
            1 => b.add(cur, prev),
            2 => b.sub(cur, v),
            3 => b.abs(cur),
            4 => b.sq(cur),
            5 => b.exp(cur),
            6 => b.mult(cur, prev), // reuse an earlier intermediate twice
            7 => {
                let c = b.lit(0.5 + i as f64 * 0.25);
                b.mult(cur, c)
            }
            8 => b.div(cur, v),
            _ => b.max(cur, y),
        };
        if i % 2 == 0 {
            prev = cur;
        }
        cur = next;
    }
    let s = b.sum(cur);
    let rs = b.row_sums(cur);
    let sp = b.sum(prev); // keeps the shared intermediate live to the end
    let dag = b.build(vec![s, rs, sp]);
    let mut bindings = Bindings::new();
    let xm = if e.sparse_main {
        generate::rand_matrix(e.rows, e.cols, 0.5, 1.5, 0.05, 1)
    } else {
        generate::rand_dense(e.rows, e.cols, 0.5, 1.5, 1)
    };
    bindings.insert("X".into(), xm);
    bindings.insert("Y".into(), generate::rand_dense(e.rows, e.cols, 0.5, 1.5, 2));
    bindings.insert("v".into(), generate::rand_dense(e.rows, 1, 1.0, 2.0, 3));
    (dag, bindings)
}

/// Bitwise equality of two value lists (NaNs must match bit patterns too).
fn assert_bitwise_eq(got: &[Value], expect: &[Value], mode: FusionMode, ops: &[u8]) {
    assert_eq!(got.len(), expect.len());
    for (i, (g, x)) in got.iter().zip(expect).enumerate() {
        match (g, x) {
            (Value::Scalar(a), Value::Scalar(b)) => {
                assert!(a.to_bits() == b.to_bits(), "{mode:?} root {i}: {a} vs {b} (ops {ops:?})");
            }
            _ => {
                let (gm, xm) = (g.as_matrix(), x.as_matrix());
                assert_eq!((gm.rows(), gm.cols()), (xm.rows(), xm.cols()), "{mode:?} root {i}");
                for r in 0..gm.rows() {
                    for c in 0..gm.cols() {
                        assert!(
                            gm.get(r, c).to_bits() == xm.get(r, c).to_bits(),
                            "{mode:?} root {i} at ({r},{c}): {} vs {} (ops {ops:?})",
                            gm.get(r, c),
                            xm.get(r, c)
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scheduled_equals_sequential_bitwise(e in dag_strategy()) {
        let (dag, bindings) = build(&e);
        for mode in [
            FusionMode::Base,
            FusionMode::Fused,
            FusionMode::Gen,
            FusionMode::GenFA,
            FusionMode::GenFNR,
        ] {
            let exec = Engine::new(mode);
            let expect = exec.execute_sequential(&dag, &bindings);
            let got = exec.execute(&dag, &bindings).into_values();
            assert_bitwise_eq(&got, &expect, mode, &e.ops);
            // The liveness-tracked peak can never exceed the hold-everything
            // resident set (inputs + every materialized intermediate).
            let sched = exec.stats().scheduler_snapshot();
            prop_assert!(
                sched.peak_bytes <= sched.resident_all_bytes,
                "{mode:?}: peak {} > hold-everything {}",
                sched.peak_bytes,
                sched.resident_all_bytes
            );
        }
    }
}

/// Deterministic multi-intermediate chain: the tracked peak must drop ≥ 2×
/// below hold-everything (the acceptance bar for this refactor) in Base
/// mode, where every chain link materializes.
#[test]
fn chain_footprint_drops_at_least_2x() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 400, 300, 1.0);
    let mut cur = x;
    for _ in 0..12 {
        cur = b.exp(cur);
    }
    let s = b.sum(cur);
    let dag = b.build(vec![s]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(400, 300, -0.01, 0.01, 9));
    let exec = Engine::new(FusionMode::Base);
    let _ = exec.execute(&dag, &bindings);
    let sched = exec.stats().scheduler_snapshot();
    assert!(
        sched.footprint_reduction() >= 2.0,
        "chain peak {} vs hold-everything {} (reduction {:.2}×)",
        sched.peak_bytes,
        sched.resident_all_bytes,
        sched.footprint_reduction()
    );
    assert!(sched.bytes_freed_early > 0);
}

/// Independent branches actually execute in parallel (scheduler event
/// counters observe overlapping operators).
#[test]
fn independent_branches_run_in_parallel() {
    if fusedml_linalg::par::num_threads() < 2 {
        return; // single-core CI runner: nothing to observe
    }
    let mut b = DagBuilder::new();
    let x = b.read("X", 300, 300, 1.0);
    let y = b.read("Y", 300, 300, 1.0);
    // Four independent branches of real work.
    let e1 = b.exp(x);
    let e2 = b.sq(y);
    let e3 = b.mult(x, y);
    let e4 = b.add(x, y);
    let s1 = b.sum(e1);
    let s2 = b.sum(e2);
    let s3 = b.sum(e3);
    let s4 = b.sum(e4);
    let dag = b.build(vec![s1, s2, s3, s4]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(300, 300, 0.0, 1.0, 4));
    bindings.insert("Y".into(), generate::rand_dense(300, 300, 0.0, 1.0, 5));
    let exec = Engine::new(FusionMode::Base);
    let base = exec.execute_sequential(&dag, &bindings);
    let got = exec.execute(&dag, &bindings).into_values();
    assert_bitwise_eq(&got, &base, FusionMode::Base, &[]);
    let sched = exec.stats().scheduler_snapshot();
    assert!(sched.parallel_ops > 0, "independent branches must overlap");
}

/// Sparse mains flow through the scheduler unchanged (formats preserved).
#[test]
fn sparse_roots_keep_format() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 200, 200, 0.02);
    let y = b.read("Y", 200, 200, 1.0);
    let m = b.mult(x, y); // sparse-safe: stays sparse
    let dag = b.build(vec![m]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_matrix(200, 200, 1.0, 2.0, 0.02, 6));
    bindings.insert("Y".into(), generate::rand_dense(200, 200, 1.0, 2.0, 7));
    let exec = Engine::new(FusionMode::Base);
    let seq = exec.execute_sequential(&dag, &bindings);
    let got = exec.execute(&dag, &bindings).into_values();
    assert_bitwise_eq(&got, &seq, FusionMode::Base, &[]);
    match (&got[0], &seq[0]) {
        (Value::Matrix(a), Value::Matrix(b)) => assert_eq!(a.is_sparse(), b.is_sparse()),
        _ => panic!("matrix roots expected"),
    }
}
