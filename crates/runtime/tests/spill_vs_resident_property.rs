#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Differential property test for the spill tier: the same random
//! multi-root DAG executed by an engine with an unbounded budget and by an
//! engine with a budget far below the working set must produce *bitwise
//! equal* results — spilling is invisible except in the counters. The
//! counters themselves are pinned (evictions > 0 under the tight budget,
//! exactly 0 under the loose one) and the engine-owned temp files must be
//! gone when the `Engine` drops.

use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag, HopId};
use fusedml_linalg::generate;
use fusedml_linalg::matrix::Value;
use fusedml_runtime::{Engine, FusionMode};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomDag {
    ops: Vec<u8>,
    rows: usize,
    cols: usize,
}

/// Dense-only DAGs with every value comfortably above `MIN_SPILL_BYTES`
/// (40×20×8 = 6400 bytes at the minimum), so the tight budget always has an
/// eligible victim once a shared intermediate is live.
fn dag_strategy() -> impl Strategy<Value = RandomDag> {
    (proptest::collection::vec(0u8..10, 4..12), 40usize..100, 20usize..60)
        .prop_map(|(ops, rows, cols)| RandomDag { ops, rows, cols })
}

/// A chain with shared subexpressions and three roots; `prev` (a full-size
/// intermediate once `ops.len() >= 4`) stays live to the very end, so a
/// budget of two value-sizes must evict it mid-run and fault it back for the
/// final `sum(prev)`.
fn build(e: &RandomDag) -> (HopDag, Bindings) {
    let mut b = DagBuilder::new();
    let x = b.read("X", e.rows, e.cols, 1.0);
    let y = b.read("Y", e.rows, e.cols, 1.0);
    let v = b.read("v", e.rows, 1, 1.0);
    let mut cur: HopId = x;
    let mut prev: HopId = y;
    for (i, &op) in e.ops.iter().enumerate() {
        let next = match op {
            0 => b.mult(cur, y),
            1 => b.add(cur, prev),
            2 => b.sub(cur, v),
            3 => b.abs(cur),
            4 => b.sq(cur),
            5 => b.exp(cur),
            6 => b.mult(cur, prev),
            7 => {
                let c = b.lit(0.5 + i as f64 * 0.25);
                b.mult(cur, c)
            }
            8 => b.div(cur, v),
            _ => b.max(cur, y),
        };
        if i % 2 == 0 {
            prev = cur;
        }
        cur = next;
    }
    let s = b.sum(cur);
    let rs = b.row_sums(cur);
    let sp = b.sum(prev);
    let dag = b.build(vec![s, rs, sp]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(e.rows, e.cols, 0.5, 1.5, 1));
    bindings.insert("Y".into(), generate::rand_dense(e.rows, e.cols, 0.5, 1.5, 2));
    bindings.insert("v".into(), generate::rand_dense(e.rows, 1, 1.0, 2.0, 3));
    (dag, bindings)
}

/// A tight engine: budget of two value-sizes, one worker so victim selection
/// is deterministic enough to pin the counters.
fn tight_engine(mode: FusionMode, rows: usize, cols: usize) -> Engine {
    Engine::builder(mode).memory_budget(2 * 8 * rows * cols).workers(1).build()
}

fn assert_bitwise_eq(got: &[Value], expect: &[Value], mode: FusionMode, ops: &[u8]) {
    assert_eq!(got.len(), expect.len());
    for (i, (g, x)) in got.iter().zip(expect).enumerate() {
        match (g, x) {
            (Value::Scalar(a), Value::Scalar(b)) => {
                assert!(a.to_bits() == b.to_bits(), "{mode:?} root {i}: {a} vs {b} (ops {ops:?})");
            }
            _ => {
                let (gm, xm) = (g.as_matrix(), x.as_matrix());
                assert_eq!((gm.rows(), gm.cols()), (xm.rows(), xm.cols()), "{mode:?} root {i}");
                for r in 0..gm.rows() {
                    for c in 0..gm.cols() {
                        assert!(
                            gm.get(r, c).to_bits() == xm.get(r, c).to_bits(),
                            "{mode:?} root {i} at ({r},{c}): {} vs {} (ops {ops:?})",
                            gm.get(r, c),
                            xm.get(r, c)
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn spilled_run_is_bitwise_equal_to_resident_run(e in dag_strategy()) {
        let (dag, bindings) = build(&e);
        for mode in [FusionMode::Base, FusionMode::Gen, FusionMode::GenFA] {
            let loose = Engine::new(mode); // default budget: nothing spills
            let expect = loose.execute(&dag, &bindings).into_values();
            prop_assert_eq!(
                loose.stats().scheduler_snapshot().spilled_bytes, 0,
                "{:?}: the unbounded engine must never spill", mode
            );
            prop_assert!(loose.spill_dir().is_none(), "no spill ⇒ no temp dir");

            let tight = tight_engine(mode, e.rows, e.cols);
            let got = tight.execute(&dag, &bindings).into_values();
            assert_bitwise_eq(&got, &expect, mode, &e.ops);
            if mode == FusionMode::Base {
                // Every op materializes in Base mode, so the shared
                // intermediate must have been evicted and faulted back.
                let sched = tight.stats().scheduler_snapshot();
                prop_assert!(sched.spilled_bytes > 0, "tight budget must evict (ops {:?})", e.ops);
                prop_assert!(sched.reloaded_bytes > 0, "evicted values must fault back");
                prop_assert!(sched.spill_faults + sched.prefetch_hits > 0);
            }
        }
    }
}

/// Deterministic out-of-core chain on the default worker pool: spills occur,
/// every spilled value is faulted back (no orphan files), and the tracked
/// peak sits below the unbounded run's peak.
#[test]
fn deterministic_chain_spills_and_reloads_everything() {
    let (rows, cols) = (300, 200); // 480 KB per value
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let anchor = b.exp(x); // stays live to the end
    let mut cur = anchor;
    for _ in 0..8 {
        cur = b.sq(cur);
    }
    let s = b.sum(cur);
    let sa = b.sum(anchor);
    let dag = b.build(vec![s, sa]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(rows, cols, 0.9, 1.1, 7));

    let loose = Engine::new(FusionMode::Base);
    let expect = loose.execute(&dag, &bindings).into_values();
    let loose_peak = loose.stats().scheduler_snapshot().peak_bytes;

    let budget = 2 * 8 * rows * cols + 8 * rows * cols / 2; // 2.5 values
    let tight = Engine::builder(FusionMode::Base).memory_budget(budget).build();
    let got = tight.execute(&dag, &bindings).into_values();
    assert_bitwise_eq(&got, &expect, FusionMode::Base, &[]);

    let sched = tight.stats().scheduler_snapshot();
    assert!(sched.spilled_bytes > 0, "anchor must spill under a 2.5-value budget");
    assert_eq!(
        sched.spilled_bytes, sched.reloaded_bytes,
        "every spilled value is live and must be read back before its last use"
    );
    assert!(sched.peak_bytes < loose_peak, "spilling must lower the tracked peak");
    let spill = tight.spill_stats();
    assert_eq!(spill.spill_events, spill.reload_events, "no orphan spill files after a run");
    assert!(spill.bytes_spilled > 0);
}

/// The engine-owned temp directory honors the `spill_dir` knob and is swept
/// when the engine drops.
#[test]
fn spill_files_deleted_on_engine_drop() {
    let parent = std::env::temp_dir().join("fusedml-spill-knob-test");
    std::fs::create_dir_all(&parent).unwrap();
    let (rows, cols) = (200, 200);
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let anchor = b.abs(x);
    let mut cur = anchor;
    for _ in 0..4 {
        cur = b.sq(cur);
    }
    let s = b.sum(cur);
    let sa = b.sum(anchor);
    let dag = b.build(vec![s, sa]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(rows, cols, 0.9, 1.1, 11));

    let engine = Engine::builder(FusionMode::Base)
        .memory_budget(2 * 8 * rows * cols)
        .spill_dir(&parent)
        .workers(1)
        .build();
    let _ = engine.execute(&dag, &bindings);
    assert!(engine.spill_stats().spill_events > 0, "workload must spill");
    let dir = engine.spill_dir().expect("spill dir exists after first spill");
    assert!(dir.starts_with(&parent), "spill_dir knob places temp files under the given parent");
    assert!(dir.exists());
    drop(engine);
    assert!(!dir.exists(), "Engine drop must delete its spill directory and files");
    let _ = std::fs::remove_dir_all(&parent);
}
