#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Differential property tests for the tile-vectorized block backend:
//! random scalar register programs executed through the Cell and MultiAgg
//! skeletons must agree with the per-cell scalar interpreter (the oracle)
//! across dense/sparse mains, every `SideAccess` kind, every aggregation
//! variant, and ragged tail tiles (rows/cols not a multiple of the tile
//! width).
//!
//! Elementwise (NoAgg) results agree to 1e-12 (bitwise in the generic path;
//! the closure-specialized product chains may hoist constant factors);
//! aggregates are reassociated tile-wise, so they agree to a slightly looser
//! 1e-11.

use fusedml_core::spoof::block::CellBackend;
use fusedml_core::spoof::{CellAgg, CellSpec, Instr, MAggSpec, Program, SideAccess};
use fusedml_linalg::ops::{AggOp, BinaryOp, TernaryOp, UnaryOp};
use fusedml_linalg::{generate, Matrix};
use fusedml_runtime::side::SideInput;
use fusedml_runtime::spoof::{cellwise, multiagg};
use rand::{rngs::StdRng, Rng, SeedableRng};

const N_SIDES: usize = 3;
const N_SCALARS: usize = 2;

/// Generates a random scalar program over the main input, `N_SIDES` sides
/// with random access kinds, bound scalars, and constants. The operator set
/// is restricted to operations whose NaN/∞ behaviour is order-independent,
/// so the differential comparison stays exact-by-construction.
fn random_program(rng: &mut StdRng) -> Program {
    let n_instrs = rng.gen_range(1..14usize);
    let mut instrs: Vec<Instr> = Vec::with_capacity(n_instrs);
    let mut next = 0u16;
    for _ in 0..n_instrs {
        let have = next;
        let pick = |rng: &mut StdRng, have: u16| rng.gen_range(0..have);
        let kind = if have == 0 { 0 } else { rng.gen_range(0..8u32) };
        let out = next;
        next += 1;
        let ins = match kind {
            // Loads.
            0 => match rng.gen_range(0..5u32) {
                0 => Instr::LoadMain { out },
                1 => {
                    let access = match rng.gen_range(0..4u32) {
                        0 => SideAccess::Cell,
                        1 => SideAccess::Col,
                        2 => SideAccess::Row,
                        _ => SideAccess::Scalar,
                    };
                    Instr::LoadSide { out, side: rng.gen_range(0..N_SIDES), access }
                }
                2 => Instr::LoadScalar { out, idx: rng.gen_range(0..N_SCALARS) },
                3 => Instr::LoadConst { out, value: rng.gen_range(-2.0..2.0) },
                _ => Instr::LoadMain { out },
            },
            // Unary over an existing register.
            1 | 2 => {
                let ops = [
                    UnaryOp::Abs,
                    UnaryOp::Neg,
                    UnaryOp::Sigmoid,
                    UnaryOp::Pow2,
                    UnaryOp::Sprop,
                    UnaryOp::Round,
                    UnaryOp::Floor,
                    UnaryOp::Ceil,
                    UnaryOp::Sign,
                    UnaryOp::Exp,
                ];
                Instr::Unary { out, op: ops[rng.gen_range(0..ops.len())], a: pick(rng, have) }
            }
            // Ternary.
            3 => {
                let ops = [TernaryOp::PlusMult, TernaryOp::MinusMult, TernaryOp::IfElse];
                Instr::Ternary {
                    out,
                    op: ops[rng.gen_range(0..ops.len())],
                    a: pick(rng, have),
                    b: pick(rng, have),
                    c: pick(rng, have),
                }
            }
            // Binary (weighted towards Mult so product chains appear).
            _ => {
                let ops = [
                    BinaryOp::Mult,
                    BinaryOp::Mult,
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Min,
                    BinaryOp::Max,
                    BinaryOp::Eq,
                    BinaryOp::Neq,
                    BinaryOp::Lt,
                    BinaryOp::Le,
                    BinaryOp::Gt,
                    BinaryOp::Ge,
                ];
                Instr::Binary {
                    out,
                    op: ops[rng.gen_range(0..ops.len())],
                    a: pick(rng, have),
                    b: pick(rng, have),
                }
            }
        };
        instrs.push(ins);
    }
    Program { instrs, n_regs: next, vreg_lens: vec![] }
}

struct Inputs {
    dense_main: Matrix,
    sparse_main: Matrix,
    sides: Vec<Matrix>,
    scalars: Vec<f64>,
    rows: usize,
    cols: usize,
}

fn random_inputs(rng: &mut StdRng, seed: u64) -> Inputs {
    let rows = rng.gen_range(2..28usize);
    // Mix of tiny, sub-tile, and multi-tile-with-ragged-tail widths.
    let cols = *[3, 17, 255, 256, 300, 517].get(rng.gen_range(0..6usize)).unwrap();
    let dense = generate::rand_dense(rows, cols, -1.5, 1.5, seed.wrapping_mul(31) + 1);
    let sp = generate::rand_matrix(rows, cols, -1.5, 1.5, 0.25, seed.wrapping_mul(31) + 2);
    let sides = (0..N_SIDES)
        .map(|i| {
            if rng.gen_bool(0.3) {
                generate::rand_matrix(rows, cols, -1.5, 1.5, 0.3, seed * 7 + i as u64)
            } else {
                generate::rand_dense(rows, cols, -1.5, 1.5, seed * 7 + i as u64)
            }
        })
        .collect();
    let scalars = (0..N_SCALARS).map(|_| rng.gen_range(-1.5..1.5)).collect();
    Inputs { dense_main: dense, sparse_main: sp, sides, scalars, rows, cols }
}

fn random_agg(rng: &mut StdRng) -> AggOp {
    [AggOp::Sum, AggOp::SumSq, AggOp::Min, AggOp::Max, AggOp::Mean][rng.gen_range(0..5usize)]
}

#[test]
fn cell_block_backends_match_scalar_oracle_on_random_programs() {
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let inputs = random_inputs(&mut rng, seed);
        let result = prog.n_regs - 1;
        let agg = match rng.gen_range(0..4u32) {
            0 => CellAgg::NoAgg,
            1 => CellAgg::RowAgg(random_agg(&mut rng)),
            2 => CellAgg::ColAgg(random_agg(&mut rng)),
            _ => CellAgg::FullAgg(random_agg(&mut rng)),
        };
        let tol = if agg == CellAgg::NoAgg { 1e-12 } else { 1e-11 };
        // Exercise both the dense iteration order and (claiming sparse
        // safety for the comparison) the non-zero-batched order.
        for (main, sparse_safe) in
            [(&inputs.dense_main, false), (&inputs.sparse_main, true), (&inputs.sparse_main, false)]
        {
            // NoAgg over claimed-sparse-safe programs only emits non-zeros
            // in both backends; programs here are generally not sparse-safe,
            // so restrict that combination to aggregating variants.
            if sparse_safe && agg == CellAgg::NoAgg {
                continue;
            }
            let spec = CellSpec { prog: prog.clone(), result, agg, sparse_safe };
            let sides: Vec<SideInput> = inputs.sides.iter().map(SideInput::bind).collect();
            let oracle = cellwise::execute_with(
                &spec,
                Some(main),
                &sides,
                &inputs.scalars,
                inputs.rows,
                inputs.cols,
                CellBackend::Scalar,
            );
            for backend in [CellBackend::Block, CellBackend::BlockFast, CellBackend::Mono] {
                let got = cellwise::execute_with(
                    &spec,
                    Some(main),
                    &sides,
                    &inputs.scalars,
                    inputs.rows,
                    inputs.cols,
                    backend,
                );
                assert!(
                    got.approx_eq(&oracle, tol),
                    "seed {seed}: {backend:?} diverges from scalar oracle \
                     (agg {agg:?}, sparse_safe {sparse_safe}, {}x{}, prog {:?})",
                    inputs.rows,
                    inputs.cols,
                    prog
                );
            }
        }
    }
}

#[test]
fn multiagg_block_backends_match_scalar_oracle_on_random_programs() {
    for seed in 1000..1080u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let prog = random_program(&mut rng);
        let inputs = random_inputs(&mut rng, seed);
        let k = rng.gen_range(1..4usize);
        let results: Vec<(u16, AggOp)> =
            (0..k).map(|_| (rng.gen_range(0..prog.n_regs), random_agg(&mut rng))).collect();
        for (main, sparse_safe) in
            [(&inputs.dense_main, false), (&inputs.sparse_main, true), (&inputs.sparse_main, false)]
        {
            let spec = MAggSpec { prog: prog.clone(), results: results.clone(), sparse_safe };
            let sides: Vec<SideInput> = inputs.sides.iter().map(SideInput::bind).collect();
            let oracle = multiagg::execute_with(
                &spec,
                Some(main),
                &sides,
                &inputs.scalars,
                inputs.rows,
                inputs.cols,
                CellBackend::Scalar,
            );
            for backend in [CellBackend::Block, CellBackend::BlockFast, CellBackend::Mono] {
                let got = multiagg::execute_with(
                    &spec,
                    Some(main),
                    &sides,
                    &inputs.scalars,
                    inputs.rows,
                    inputs.cols,
                    backend,
                );
                for (g, o) in got.iter().zip(&oracle) {
                    assert!(
                        fusedml_linalg::approx_eq(g.get(0, 0), o.get(0, 0), 1e-11),
                        "seed {seed}: {backend:?} diverges ({} vs {}, sparse_safe \
                         {sparse_safe}, prog {:?})",
                        g.get(0, 0),
                        o.get(0, 0),
                        prog
                    );
                }
            }
        }
    }
}

/// Sweeping the tile width (including widths far from the default and ones
/// that never divide the column counts) must not change results. Widths are
/// per-engine configuration now: each sweep point installs a fresh
/// [`KernelCaches`] scope instead of mutating process globals.
#[test]
fn tile_width_sweep_preserves_results() {
    use fusedml_core::plancache::KernelCaches;
    let mut rng = StdRng::seed_from_u64(9000);
    let prog = random_program(&mut rng);
    let inputs = random_inputs(&mut rng, 9000);
    let spec = CellSpec {
        prog: prog.clone(),
        result: prog.n_regs - 1,
        agg: CellAgg::FullAgg(AggOp::Sum),
        sparse_safe: false,
    };
    let sides: Vec<SideInput> = inputs.sides.iter().map(SideInput::bind).collect();
    let oracle = cellwise::execute_with(
        &spec,
        Some(&inputs.dense_main),
        &sides,
        &inputs.scalars,
        inputs.rows,
        inputs.cols,
        CellBackend::Scalar,
    );
    for width in [8, 33, 100, 256, 1024] {
        for backend in [CellBackend::BlockFast, CellBackend::Mono] {
            let caches = KernelCaches::with_config(16, width, backend);
            let _scope = fusedml_runtime::spoof::enter_kernels(&caches);
            let got = cellwise::execute_with(
                &spec,
                Some(&inputs.dense_main),
                &sides,
                &inputs.scalars,
                inputs.rows,
                inputs.cols,
                backend,
            );
            assert!(got.approx_eq(&oracle, 1e-11), "width {width} backend {backend:?}");
        }
    }
}
