#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Engine reuse after failure: the recovery half of the failure-safety
//! contract. A worker panic or an exhausted spill-I/O retry must leave the
//! engine's pool, caches, and spill directory fully reusable — pinned by
//! executing again on the *same* engine and demanding bitwise-correct
//! results — and a poisoned request must never take down sibling serving
//! threads.

use fusedml_hop::interp::{bind, Bindings};
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::fault::{FaultPlan, FaultSite};
use fusedml_linalg::generate;
use fusedml_linalg::matrix::Value;
use fusedml_runtime::{Engine, EngineBuilder, ExecError, FusionMode};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A chain whose anchor stays live to the end: under a two-value budget the
/// anchor must spill and fault back, so the spill-I/O fault sites are
/// guaranteed to be visited.
fn spilling_workload(rows: usize, cols: usize) -> (HopDag, Bindings) {
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let anchor = b.exp(x);
    let mut cur = anchor;
    for _ in 0..6 {
        cur = b.sq(cur);
    }
    let s = b.sum(cur);
    let sa = b.sum(anchor);
    let dag = b.build(vec![s, sa]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(rows, cols, 0.9, 1.1, 7));
    (dag, bindings)
}

fn assert_bitwise_eq(got: &[Value], expect: &[Value], tag: &str) {
    assert_eq!(got.len(), expect.len(), "{tag}");
    for (i, (g, x)) in got.iter().zip(expect).enumerate() {
        let (gm, xm) = (g.as_matrix(), x.as_matrix());
        assert_eq!((gm.rows(), gm.cols()), (xm.rows(), xm.cols()), "{tag} root {i}");
        for r in 0..gm.rows() {
            for c in 0..gm.cols() {
                assert!(
                    gm.get(r, c).to_bits() == xm.get(r, c).to_bits(),
                    "{tag} root {i} at ({r},{c})"
                );
            }
        }
    }
}

/// A worker panic becomes `ExecError::WorkerPanic` naming the op, and the
/// same engine executes bitwise-correctly afterwards.
#[test]
fn worker_panic_leaves_engine_reusable() {
    std::panic::set_hook(Box::new(|_| {}));
    let (dag, bindings) = spilling_workload(80, 60);
    let reference = Engine::new(FusionMode::Gen).execute(&dag, &bindings).into_values();

    let plan = Arc::new(FaultPlan::seeded(3).rate(FaultSite::TaskPanic, 1.0).max_faults(1));
    let engine = EngineBuilder::new(FusionMode::Gen)
        .fault_plan(Arc::clone(&plan))
        .verify_plans(true)
        .build();
    match engine.try_execute(&dag, &bindings) {
        Err(ExecError::WorkerPanic { op, message }) => {
            assert!(!op.is_empty(), "the error names the failing op");
            assert!(message.contains("injected task panic"), "payload preserved: {message}");
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    drop(std::panic::take_hook());
    assert_eq!(engine.stats().failed_executions(), 1);
    assert_eq!(engine.stats().scheduler_snapshot().injected_faults, 1);

    // The fault budget is spent: no disarm needed, the engine just works.
    let out = engine.try_execute(&dag, &bindings).expect("engine reusable after a panic");
    assert_bitwise_eq(out.values(), &reference, "post-panic");
    assert_eq!(engine.store().spill_file_count(), 0);
}

/// Exhausted spill-read retries surface as `SpillIo { during: "read" }` with
/// the `io::Error` source preserved; disarming and re-executing on the same
/// engine is bitwise-correct and leaks no temp files.
#[test]
fn spill_read_failure_leaves_engine_reusable() {
    let (rows, cols) = (120, 80);
    let (dag, bindings) = spilling_workload(rows, cols);
    let reference = Engine::new(FusionMode::Base).execute(&dag, &bindings).into_values();

    let plan = Arc::new(FaultPlan::seeded(11).rate(FaultSite::SpillRead, 1.0));
    let engine = EngineBuilder::new(FusionMode::Base)
        .memory_budget(2 * 8 * rows * cols)
        .workers(1)
        .fault_plan(Arc::clone(&plan))
        .verify_plans(true)
        .build();
    match engine.try_execute(&dag, &bindings) {
        Err(e @ ExecError::SpillIo { during: "read", .. }) => {
            assert!(std::error::Error::source(&e).is_some(), "io source preserved");
        }
        other => panic!("expected a spill read failure, got {other:?}"),
    }
    let sched = engine.stats().scheduler_snapshot();
    assert!(sched.spill_retries > 0, "reads must retry before giving up");
    assert_eq!(engine.store().spill_file_count(), 0, "failed run discards its spill files");

    plan.disarm();
    let out = engine.try_execute(&dag, &bindings).expect("engine reusable after spill I/O loss");
    assert_bitwise_eq(out.values(), &reference, "post-spill-failure");
    assert_eq!(engine.store().spill_file_count(), 0);
}

/// Spill *write* failures never fail the run: after the retries exhaust, the
/// engine degrades to resident-only execution and still answers bitwise-
/// correctly (the value was never lost — it is still in memory).
#[test]
fn spill_write_failure_degrades_to_resident() {
    let (rows, cols) = (120, 80);
    let (dag, bindings) = spilling_workload(rows, cols);
    let reference = Engine::new(FusionMode::Base).execute(&dag, &bindings).into_values();

    let plan = Arc::new(FaultPlan::seeded(13).rate(FaultSite::SpillWrite, 1.0));
    let engine = EngineBuilder::new(FusionMode::Base)
        .memory_budget(2 * 8 * rows * cols)
        .workers(1)
        .fault_plan(Arc::clone(&plan))
        .verify_plans(true)
        .build();
    let out = engine.try_execute(&dag, &bindings).expect("write loss degrades, not fails");
    assert_bitwise_eq(out.values(), &reference, "degraded run");
    let sched = engine.stats().scheduler_snapshot();
    assert!(sched.spill_retries > 0, "writes must retry before degrading");
    assert_eq!(sched.degraded, 1, "the run records its degrade to resident-only");
    assert_eq!(sched.spilled_bytes, 0, "nothing landed on disk");
    assert_eq!(engine.store().spill_file_count(), 0);
}

/// The serving regression: eight threads share one engine; a fault budget of
/// one panic poisons exactly one request. The other threads' requests — and
/// later requests on the poisoned thread — all serve bitwise-correctly.
#[test]
fn poisoned_request_spares_sibling_threads() {
    std::panic::set_hook(Box::new(|_| {}));
    let (batch, features, classes) = (64, 32, 8);
    let mut b = DagBuilder::new();
    let x = b.read("X", batch, features, 1.0);
    let w = b.read("W", features, classes, 1.0);
    let scores = b.mm(x, w);
    let best = b.row_maxs(scores);
    let dag = b.build(vec![scores, best]);
    let weights = generate::rand_dense(features, classes, -0.5, 0.5, 42);

    let plan = Arc::new(FaultPlan::seeded(17).rate(FaultSite::TaskPanic, 1.0).max_faults(1));
    let engine = EngineBuilder::new(FusionMode::Gen)
        .fault_plan(Arc::clone(&plan))
        .verify_plans(true)
        .build();
    let script = engine.compile(&dag);
    let reference_engine = Engine::new(FusionMode::Gen);

    let threads = 8;
    let per_thread = 12;
    let failed = AtomicUsize::new(0);
    let served = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let script = script.clone();
            let weights = weights.clone();
            let reference_engine = reference_engine.clone();
            let (failed, served, dag) = (&failed, &served, &dag);
            s.spawn(move || {
                for r in 0..per_thread {
                    let seed = (t * per_thread + r + 1) as u64;
                    let batch_x = generate::rand_dense(batch, features, -1.0, 1.0, seed);
                    let bindings = bind(&[("X", batch_x), ("W", weights.clone())]);
                    match script.try_execute(&bindings) {
                        Ok(out) => {
                            let expect = reference_engine.execute(dag, &bindings).into_values();
                            assert_bitwise_eq(
                                out.values(),
                                &expect,
                                &format!("thread {t} request {r}"),
                            );
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ExecError::WorkerPanic { .. }) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
    });
    drop(std::panic::take_hook());
    assert_eq!(failed.load(Ordering::Relaxed), 1, "exactly one poisoned request");
    assert_eq!(served.load(Ordering::Relaxed), threads * per_thread - 1);
    assert_eq!(engine.stats().failed_executions(), 1);
}

/// Binding defects are typed, not panics: a missing input and a mis-shaped
/// input each come back as their own error variant, and neither perturbs
/// the engine.
#[test]
fn binding_defects_are_typed() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 32, 16, 1.0);
    let y = b.read("Y", 32, 16, 1.0);
    let m = b.mult(x, y);
    let s = b.sum(m);
    let dag = b.build(vec![s]);
    let engine = Engine::new(FusionMode::Gen);

    let only_x = bind(&[("X", generate::rand_dense(32, 16, 0.0, 1.0, 1))]);
    match engine.try_execute(&dag, &only_x) {
        Err(ExecError::UnboundInput { name }) => assert_eq!(name, "Y"),
        other => panic!("expected UnboundInput, got {other:?}"),
    }

    // The explicit-plan path validates shapes against the DAG as given.
    let plan = engine.plan_for(&dag);
    let wrong_shape = bind(&[
        ("X", generate::rand_dense(32, 16, 0.0, 1.0, 1)),
        ("Y", generate::rand_dense(8, 4, 0.0, 1.0, 2)),
    ]);
    match engine.try_execute_with_plan(&dag, &plan, &wrong_shape) {
        Err(ExecError::ShapeMismatch { name, expected, bound }) => {
            assert_eq!(name, "Y");
            assert_eq!(expected, (32, 16));
            assert_eq!(bound, (8, 4));
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // Neither defect perturbed the engine.
    let good = bind(&[
        ("X", generate::rand_dense(32, 16, 0.0, 1.0, 1)),
        ("Y", generate::rand_dense(32, 16, 0.0, 1.0, 2)),
    ]);
    let out = engine.try_execute(&dag, &good).expect("engine unaffected by rejected bindings");
    assert_eq!(out.len(), 1);
}
