#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! The compile-once / execute-concurrently contract of the engine API:
//!
//! * one `CompiledScript` executed from N threads on distinct bindings must
//!   agree **bitwise** with the sequential oracle on every one of them;
//! * repeated `execute` calls perform **zero re-optimization** (`plan_for` /
//!   codegen run exactly once, pinned via optimizer and plan-cache stats);
//! * the shape-revalidation guard recompiles exactly once per new input
//!   geometry instead of trusting the stale plan;
//! * two engines with different configurations coexist without sharing
//!   pools or caches.

use fusedml_hop::interp::{bind, Bindings};
use fusedml_hop::{DagBuilder, HopDag};
use fusedml_linalg::generate;
use fusedml_linalg::matrix::Value;
use fusedml_runtime::{Engine, EngineBuilder, FusionMode};

/// The MLogreg-core expression (paper Expression 2) — compiles to a Row
/// operator under Gen.
fn mlogreg_dag(n: usize, m: usize, k: usize) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, 1.0);
    let v = b.read("V", m, k, 1.0);
    let p = b.read("P", n, k + 1, 1.0);
    let xv = b.mm(x, v);
    let pk = b.rix(p, None, Some((0, k)));
    let q = b.mult(pk, xv);
    let rs = b.row_sums(q);
    let prs = b.mult(pk, rs);
    let diff = b.sub(q, prs);
    let xt = b.t(x);
    let h = b.mm(xt, diff);
    b.build(vec![h])
}

fn mlogreg_bindings(n: usize, m: usize, k: usize, seed: u64) -> Bindings {
    bind(&[
        ("X", generate::rand_dense(n, m, -1.0, 1.0, seed)),
        ("V", generate::rand_dense(m, k, -1.0, 1.0, seed + 1000)),
        ("P", generate::rand_dense(n, k + 1, 0.0, 1.0, seed + 2000)),
    ])
}

/// Bitwise equality (NaN bit patterns included).
fn assert_bitwise_eq(got: &[Value], expect: &[Value], what: &str) {
    assert_eq!(got.len(), expect.len(), "{what}: root count");
    for (i, (g, x)) in got.iter().zip(expect).enumerate() {
        let (gm, xm) = (g.as_matrix(), x.as_matrix());
        assert_eq!((gm.rows(), gm.cols()), (xm.rows(), xm.cols()), "{what} root {i}");
        for r in 0..gm.rows() {
            for c in 0..gm.cols() {
                assert!(
                    gm.get(r, c).to_bits() == xm.get(r, c).to_bits(),
                    "{what} root {i} at ({r},{c}): {} vs {}",
                    gm.get(r, c),
                    xm.get(r, c)
                );
            }
        }
    }
}

/// N threads hammer one compiled script with *distinct* bindings; every
/// result must be bitwise-equal to the sequential oracle, and the optimizer
/// must have run exactly once.
#[test]
fn concurrent_executes_agree_bitwise_with_sequential() {
    const THREADS: usize = 8;
    let (n, m, k) = (120, 24, 3);
    let dag = mlogreg_dag(n, m, k);
    for mode in [FusionMode::Base, FusionMode::Fused, FusionMode::Gen] {
        let engine = Engine::new(mode);
        let script = engine.compile(&dag);
        let compiled_dags = engine.optimizer().stats.snapshot().dags_optimized;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let script = script.clone();
                s.spawn(move || {
                    let bindings = mlogreg_bindings(n, m, k, 100 * t as u64 + 1);
                    let expect = script.execute_sequential(&bindings);
                    for round in 0..3 {
                        let got = script.execute(&bindings);
                        assert_bitwise_eq(
                            got.values(),
                            &expect,
                            &format!("{mode:?} thread {t} round {round}"),
                        );
                    }
                });
            }
        });
        let snap = engine.optimizer().stats.snapshot();
        assert_eq!(
            snap.dags_optimized, compiled_dags,
            "{mode:?}: no thread may re-run the optimizer"
        );
        if mode == FusionMode::Gen {
            assert_eq!(snap.dags_optimized, 1, "Gen compiles the DAG exactly once");
            let (fused, _, _) = engine.stats().snapshot();
            assert!(fused >= THREADS, "every thread executed the fused operator");
        }
        assert_eq!(engine.stats().plan_recompiles(), 0, "{mode:?}: no shape recompiles");
    }
}

/// Repeated `execute` calls (including through freshly rebuilt DAGs, as an
/// iterative algorithm would issue) hit the engine's plan/script caches with
/// a 100% hit rate after the first call: zero re-optimization, zero new
/// codegen, zero new kernel lowering.
#[test]
fn repeated_execute_is_compile_free() {
    let (n, m, k) = (90, 16, 3);
    let engine = Engine::new(FusionMode::Gen);
    let bindings = mlogreg_bindings(n, m, k, 7);
    let _ = engine.execute(&mlogreg_dag(n, m, k), &bindings); // cold: compiles
    let opt_after_first = engine.optimizer().stats.snapshot();
    let plan_cache_after_first = engine.plan_cache().stats();
    let block_after_first = engine.kernel_caches().block.stats();
    let row_after_first = engine.kernel_caches().row.stats();
    assert_eq!(opt_after_first.dags_optimized, 1);

    for round in 0..10 {
        // Rebuild the DAG each round — same structure, fresh object — like
        // an iterative driver re-emitting its update rule.
        let _ = engine.execute(&mlogreg_dag(n, m, k), &bindings);
        let snap = engine.optimizer().stats.snapshot();
        assert_eq!(snap.dags_optimized, 1, "round {round}: plan cache must absorb the call");
    }
    assert_eq!(
        engine.plan_cache().stats().1,
        plan_cache_after_first.1,
        "no new operator compilations after the first call (100% hit rate)"
    );
    assert_eq!(
        engine.kernel_caches().block.stats().1,
        block_after_first.1,
        "no new block-kernel lowering after the first call"
    );
    assert_eq!(
        engine.kernel_caches().row.stats().1,
        row_after_first.1,
        "no new row-kernel lowering after the first call"
    );
}

/// Binding a different input geometry than the script was costed under must
/// not silently trust the stale plan: the guard recompiles — exactly once
/// per distinct geometry — and the results match the oracle.
#[test]
fn shape_revalidation_recompiles_once_per_geometry() {
    let (n, m, k) = (64, 16, 3);
    let engine = Engine::new(FusionMode::Gen);
    let script = engine.compile(&mlogreg_dag(n, m, k));

    // Declared geometry: no recompile.
    let b0 = mlogreg_bindings(n, m, k, 1);
    let expect0 = script.execute_sequential(&b0);
    assert_bitwise_eq(script.execute(&b0).values(), &expect0, "declared geometry");
    assert_eq!(engine.stats().plan_recompiles(), 0);

    // New row count: the costed plan's iteration spaces are stale — the
    // guard must recompile, once, and keep serving the new geometry.
    let big = 256;
    let b1 = mlogreg_bindings(big, m, k, 2);
    let expect1 = script.execute_sequential(&b1);
    for _ in 0..4 {
        assert_bitwise_eq(script.execute(&b1).values(), &expect1, "reshaped geometry");
    }
    assert_eq!(engine.stats().plan_recompiles(), 1, "one recompile per new geometry");
    assert_eq!(script.recompiled_variants(), 1);

    // The original geometry still runs against the base plan.
    assert_bitwise_eq(script.execute(&b0).values(), &expect0, "declared geometry again");
    assert_eq!(engine.stats().plan_recompiles(), 1);
}

/// A *dead* node whose stale geometry becomes incompatible with the new
/// bound shapes must not break the revalidation recompile — only live
/// nodes are re-propagated (regression: `with_read_geometry` used to
/// re-infer dead hops and panic on a valid execution).
#[test]
fn shape_revalidation_ignores_dead_nodes() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 8, 4, 1.0);
    let a = b.read("A", 3, 8, 1.0);
    let _dead = b.mm(a, x); // unreachable from roots; inner dim pins X to 8 rows
    let s = b.sum(x);
    let dag = b.build(vec![s]);
    let engine = Engine::new(FusionMode::Gen);
    let script = engine.compile(&dag);
    // X grows to 16 rows: valid (the dead matmult never runs).
    let bindings = bind(&[
        ("X", generate::rand_dense(16, 4, 0.0, 1.0, 11)),
        ("A", generate::rand_dense(3, 8, 0.0, 1.0, 12)),
    ]);
    let expect = script.execute_sequential(&bindings);
    assert_bitwise_eq(script.execute(&bindings).values(), &expect, "dead-node reshape");
    assert_eq!(engine.stats().plan_recompiles(), 1);
}

/// Two engines with different configurations coexist in one process with
/// fully isolated pools and caches.
#[test]
fn engines_are_isolated() {
    let (n, m, k) = (80, 16, 3);
    let a = EngineBuilder::new(FusionMode::Gen).workers(1).memory_budget(1 << 20).build();
    let b = EngineBuilder::new(FusionMode::Gen).workers(4).build();
    let bindings = mlogreg_bindings(n, m, k, 3);
    let _ = a.execute(&mlogreg_dag(n, m, k), &bindings);

    // Engine A did work; engine B's caches and pool never saw any of it.
    assert_eq!(a.optimizer().stats.snapshot().dags_optimized, 1);
    assert_eq!(b.optimizer().stats.snapshot().dags_optimized, 0);
    assert_eq!(b.plan_cache().stats(), (0, 0));
    assert_eq!(b.kernel_caches().block.stats(), (0, 0));
    assert_eq!(b.kernel_caches().row.stats(), (0, 0));
    let bp = b.pool_stats();
    assert_eq!((bp.hits, bp.misses, bp.returns), (0, 0, 0), "pools are engine-owned");
    assert_eq!(b.stats().snapshot(), (0, 0, 0));

    // B still works independently, with its own budget.
    let out_a = a.execute(&mlogreg_dag(n, m, k), &bindings);
    let out_b = b.execute(&mlogreg_dag(n, m, k), &bindings);
    assert_bitwise_eq(out_b.values(), out_a.values(), "engines agree on results");
    assert!(a.pool().max_bytes() != b.pool().max_bytes());
}

/// Per-call scheduler deltas come back on `Outputs` (satellite: SchedSnapshot
/// deltas per execute), and the multi-intermediate chain's delta shows early
/// frees on every call, not just cumulative totals.
#[test]
fn per_call_sched_deltas_are_reported() {
    let mut b = DagBuilder::new();
    let x = b.read("X", 300, 200, 1.0);
    let mut cur = x;
    for _ in 0..8 {
        cur = b.exp(cur);
    }
    let s = b.sum(cur);
    let dag = b.build(vec![s]);
    let engine = Engine::new(FusionMode::Base);
    let script = engine.compile(&dag);
    let bindings = bind(&[("X", generate::rand_dense(300, 200, -0.01, 0.01, 5))]);
    let first = script.execute(&bindings).sched();
    let second = script.execute(&bindings).sched();
    for (i, snap) in [first, second].into_iter().enumerate() {
        assert!(snap.bytes_freed_early > 0, "call {i}: chain frees early");
        assert!(snap.peak_bytes > 0 && snap.peak_bytes <= snap.resident_all_bytes);
    }
    // Warm call recycles through the engine pool.
    assert!(second.pool_hits > 0, "warm executions must hit the engine pool");
}
