#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Differential property suite for the sharded runtime (DESIGN.md
//! substitution X11): random multi-root DAGs × every fusion mode × 2/4/8
//! shards with ragged row counts, executed by the sharded engine
//! (`force_shard` pins the data path open on cost-unfavorable test
//! geometries) against the plain local scheduler.
//!
//! Contract:
//!
//! * **map-class roots** (per-row outputs merged by row concatenation —
//!   elementwise maps and row aggregates) are **bitwise equal** to local:
//!   row partitioning never touches their per-element evaluation order;
//! * **reduction roots** (full/column aggregates merged elementwise across
//!   shard partials) agree within **1e-11 relative** — only the f64 add
//!   association changes, never the operand set;
//! * a seeded shard panic surfaces as the typed
//!   [`ExecError::ShardFailure`], sibling requests on the same pool are
//!   unaffected, no spill temp files leak, and the engine stays reusable;
//! * the planner picks **local for small** and **sharded for large**
//!   operators (the plan-choice pin for the cost-model integration).

use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag, HopId};
use fusedml_linalg::generate;
use fusedml_linalg::matrix::Value;
use fusedml_runtime::{shard, Engine, ExecError, FaultPlan, FaultSite, FusionMode};
use std::sync::Arc;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seed-derived random multi-root DAG: an elementwise chain with shared
/// subexpressions, a map-class matrix root, a row-aggregate root, a
/// column-aggregate root, and two full-reduction scalars. Row counts are
/// deliberately ragged (odd, never a multiple of 8) so shard partitions
/// are unequal.
fn random_dag(seed: u64) -> (HopDag, Bindings, usize) {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
    let rows = 51 + 2 * (splitmix64(&mut s) % 80) as usize; // odd: 51..=209
    let cols = 8 + (splitmix64(&mut s) % 24) as usize;
    let n_ops = 3 + (splitmix64(&mut s) % 7) as usize;
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let y = b.read("Y", rows, cols, 1.0);
    let v = b.read("v", rows, 1, 1.0);
    let mut cur: HopId = x;
    let mut prev: HopId = y;
    for i in 0..n_ops {
        let next = match splitmix64(&mut s) % 10 {
            0 => b.mult(cur, y),
            1 => b.add(cur, prev),
            2 => b.sub(cur, v),
            3 => b.abs(cur),
            4 => b.sq(cur),
            5 => b.exp(cur),
            6 => b.mult(cur, prev),
            7 => {
                let c = b.lit(0.5 + i as f64 * 0.25);
                b.mult(cur, c)
            }
            8 => b.div(cur, v),
            _ => b.max(cur, y),
        };
        if i % 2 == 0 {
            prev = cur;
        }
        cur = next;
    }
    let map_root = b.abs(cur); // map-class: full rows × cols, concat merge
    let rs = b.row_sums(cur); // map-class: per-row aggregate, concat merge
    let cs = b.col_sums(cur); // reduction: column partials merged with Add
    let sum = b.sum(cur); // reduction: full-aggregate scalar
    let sp = b.sum(prev); // reduction over the shared intermediate
    let dag = b.build(vec![map_root, rs, cs, sum, sp]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(rows, cols, 0.5, 1.5, seed + 1));
    bindings.insert("Y".into(), generate::rand_dense(rows, cols, 0.5, 1.5, seed + 2));
    bindings.insert("v".into(), generate::rand_dense(rows, 1, 1.0, 2.0, seed + 3));
    (dag, bindings, rows)
}

/// Map-class roots (full row count) must match bitwise; reduction roots
/// (scalars, column aggregates) within 1e-11 relative.
fn assert_shard_eq(got: &[Value], expect: &[Value], main_rows: usize, tag: &str) {
    assert_eq!(got.len(), expect.len(), "{tag}");
    for (i, (g, x)) in got.iter().zip(expect).enumerate() {
        let (gm, xm) = (g.as_matrix(), x.as_matrix());
        assert_eq!((gm.rows(), gm.cols()), (xm.rows(), xm.cols()), "{tag} root {i}");
        let map_class = matches!(g, Value::Matrix(_)) && gm.rows() == main_rows;
        for r in 0..gm.rows() {
            for c in 0..gm.cols() {
                let (a, b) = (gm.get(r, c), xm.get(r, c));
                if map_class {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "{tag} map-class root {i} at ({r},{c}): {a} vs {b} must be bitwise"
                    );
                } else {
                    let tol = 1e-11 * a.abs().max(b.abs()).max(1.0);
                    assert!(
                        (a - b).abs() <= tol,
                        "{tag} reduction root {i} at ({r},{c}): {a} vs {b} beyond 1e-11 relative"
                    );
                }
            }
        }
    }
}

/// The headline differential: 8 random DAGs × all five fusion modes ×
/// 2/4/8 shards, force-sharded, against the unsharded engine of the same
/// mode. At least one (seed, mode, shards) cell must actually run sharded
/// or the property is vacuous.
#[test]
fn sharded_equals_local_across_modes_and_shard_counts() {
    let mut sharded_runs = 0usize;
    for seed in 0..8u64 {
        let (dag, bindings, rows) = random_dag(seed);
        for mode in [
            FusionMode::Base,
            FusionMode::Fused,
            FusionMode::Gen,
            FusionMode::GenFA,
            FusionMode::GenFNR,
        ] {
            let local = Engine::new(mode).execute(&dag, &bindings).into_values();
            for shards in [2usize, 4, 8] {
                let tag = format!("seed {seed} mode {mode:?} shards {shards}");
                let engine = Engine::builder(mode)
                    .shards(shards)
                    .shard_threads(1)
                    .force_shard(true)
                    .verify_plans(true)
                    .build();
                let out = engine.try_execute(&dag, &bindings).unwrap_or_else(|e| {
                    panic!("{tag}: sharded execution failed: {e}");
                });
                sharded_runs += out.sched().sharded_ops;
                assert_shard_eq(out.values(), &local, rows, &tag);
            }
        }
    }
    assert!(sharded_runs > 0, "no operator ever ran sharded — the property was vacuous");
}

/// Chaos leg: a seeded `ShardExec` fault panics one shard worker
/// mid-request. The run fails with the typed [`ExecError::ShardFailure`],
/// a concurrent sibling run on the same pool completes correctly, no spill
/// temp files survive, and the disarmed engine is bitwise-correct again —
/// the worker that panicked is still serving.
#[test]
fn shard_panic_is_typed_siblings_unaffected_and_engine_survives() {
    // The injected panic fires inside the worker's catch; keep the default
    // hook from spraying backtraces over the test output.
    std::panic::set_hook(Box::new(|_| {}));
    let (dag, bindings, rows) = random_dag(42);
    let reference = Engine::new(FusionMode::Gen).execute(&dag, &bindings).into_values();

    let plan = Arc::new(FaultPlan::seeded(11).rate(FaultSite::ShardExec, 1.0).max_faults(1));
    let engine = Engine::builder(FusionMode::Gen)
        .shards(4)
        .shard_threads(1)
        .force_shard(true)
        .verify_plans(true)
        .fault_plan(Arc::clone(&plan))
        .build();
    let script = engine.compile(&dag);

    // Two concurrent executions race on the shard pool; the single-fault
    // budget fails exactly one of them. The sibling must not notice.
    let (a, b) = std::thread::scope(|s| {
        let ta = s.spawn(|| script.try_execute(&bindings));
        let tb = s.spawn(|| script.try_execute(&bindings));
        (ta.join().expect("runner thread lives"), tb.join().expect("runner thread lives"))
    });
    let (failed, survived): (Vec<_>, Vec<_>) = [a, b].into_iter().partition(Result::is_err);
    assert_eq!(failed.len(), 1, "exactly one run absorbs the single-fault budget");
    match failed.into_iter().next().unwrap() {
        Err(e @ ExecError::ShardFailure { shard, .. }) => {
            assert_eq!(shard, 0, "injection targets shard 0");
            let _ = e.to_string(); // renders as a clean typed error
        }
        other => panic!("expected a typed shard failure, got {other:?}"),
    }
    let ok = survived.into_iter().next().unwrap().expect("sibling run unaffected");
    assert_shard_eq(ok.values(), &reference, rows, "sibling during fault");
    assert_eq!(plan.total_injected(), 1);
    assert_eq!(engine.store().spill_file_count(), 0, "no leaked spill files after the failure");

    // Recovery: the pool's workers survived the panic; disarmed, the same
    // engine (and the same compiled script) is correct again — twice.
    plan.disarm();
    for round in 0..2 {
        let out = script
            .try_execute(&bindings)
            .unwrap_or_else(|e| panic!("fault-free re-execute {round} failed: {e}"));
        assert_shard_eq(out.values(), &reference, rows, &format!("re-exec {round}"));
        assert_eq!(engine.store().spill_file_count(), 0, "re-exec {round}");
    }
    drop(std::panic::take_hook());
}

/// `t(X) %*% (w ⊙ (X %*% v))` — the mv-chain the planner sees in MLogreg.
fn mv_chain_dag(n: usize, m: usize) -> HopDag {
    let mut b = DagBuilder::new();
    let x = b.read("X", n, m, 1.0);
    let w = b.read("w", n, 1, 1.0);
    let v = b.read("v", m, 1, 1.0);
    let xv = b.mm(x, v);
    let wxv = b.mult(w, xv);
    let xt = b.t(x);
    let g = b.mm(xt, wxv);
    b.build(vec![g])
}

/// Plan-choice pin: with the real cost model (no forcing), the planner
/// keeps small operators local and shards large ones — at the planner
/// level (no data needed for the large geometry) and end-to-end for the
/// small one.
#[test]
fn planner_picks_local_for_small_and_sharded_for_large() {
    let engine = Engine::builder(FusionMode::Gen).shards(4).shard_threads(1).build();
    let model = &engine.optimizer().model;

    // Small: 200×50 — dispatch + merge overhead dwarfs the saved compute.
    let small = mv_chain_dag(200, 50);
    let small_plan = engine.plan_for(&small);
    let specs = shard::plan_shards(&small, &small_plan, 4, model);
    assert!(specs.iter().all(Option::is_none), "a 200x50 mv-chain must stay local, got {specs:?}");
    // …and end-to-end: the snapshot reports zero sharded operators.
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(200, 50, 0.0, 1.0, 1));
    bindings.insert("w".into(), generate::rand_dense(200, 1, 0.0, 1.0, 2));
    bindings.insert("v".into(), generate::rand_dense(50, 1, 0.0, 1.0, 3));
    let out = engine.execute(&small, &bindings);
    assert_eq!(out.sched().sharded_ops, 0, "small geometry must execute locally");

    // Large: 1M×100 — partitioned scans and divided compute win despite
    // broadcast and merge costs. Planner-level only; no 800 MB input here.
    let large = mv_chain_dag(1_000_000, 100);
    let large_plan = engine.plan_for(&large);
    let specs = shard::plan_shards(&large, &large_plan, 4, model);
    let sharded = specs.iter().flatten().count();
    assert!(sharded > 0, "a 1Mx100 mv-chain must shard, got {specs:?}");
    for spec in specs.iter().flatten() {
        assert_eq!(spec.shards, 4);
    }
}
