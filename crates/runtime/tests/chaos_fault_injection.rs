#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Chaos property suite: random DAGs × fusion modes × seeded fault
//! schedules. The failure-safety contract under test:
//!
//! * an execution with faults injected either returns `Ok` **bitwise equal**
//!   to the fault-free run (transient faults retried or degraded away) or a
//!   clean typed `Err` — never a process panic, never a wrong answer;
//! * after any outcome, a fault-free re-execute **on the same engine** is
//!   bitwise-correct — failed runs sweep their slots, return pooled
//!   buffers, and discard spill tokens;
//! * no spill temp files leak: the engine's spill directory is empty after
//!   every execution, successful or failed.
//!
//! The fault schedules are deterministic in the plan seed (decisions hash
//! `(seed, site, draw-index)`), so a failing seed reproduces.

use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag, HopId};
use fusedml_linalg::fault::{FaultPlan, FaultSite};
use fusedml_linalg::generate;
use fusedml_linalg::matrix::Value;
use fusedml_runtime::{Engine, ExecError, FusionMode};
use std::sync::Arc;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seed-derived random DAG in the same family as the spill differential
/// property test: a chain with shared subexpressions and three roots, every
/// value large enough to be spill-eligible under a two-value budget.
fn random_dag(seed: u64) -> (HopDag, Bindings, usize, usize) {
    let mut s = seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
    let rows = 40 + (splitmix64(&mut s) % 60) as usize;
    let cols = 20 + (splitmix64(&mut s) % 40) as usize;
    let n_ops = 4 + (splitmix64(&mut s) % 8) as usize;
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, 1.0);
    let y = b.read("Y", rows, cols, 1.0);
    let v = b.read("v", rows, 1, 1.0);
    let mut cur: HopId = x;
    let mut prev: HopId = y;
    for i in 0..n_ops {
        let next = match splitmix64(&mut s) % 10 {
            0 => b.mult(cur, y),
            1 => b.add(cur, prev),
            2 => b.sub(cur, v),
            3 => b.abs(cur),
            4 => b.sq(cur),
            5 => b.exp(cur),
            6 => b.mult(cur, prev),
            7 => {
                let c = b.lit(0.5 + i as f64 * 0.25);
                b.mult(cur, c)
            }
            8 => b.div(cur, v),
            _ => b.max(cur, y),
        };
        if i % 2 == 0 {
            prev = cur;
        }
        cur = next;
    }
    let sum = b.sum(cur);
    let rs = b.row_sums(cur);
    let sp = b.sum(prev);
    let dag = b.build(vec![sum, rs, sp]);
    let mut bindings = Bindings::new();
    bindings.insert("X".into(), generate::rand_dense(rows, cols, 0.5, 1.5, seed + 1));
    bindings.insert("Y".into(), generate::rand_dense(rows, cols, 0.5, 1.5, seed + 2));
    bindings.insert("v".into(), generate::rand_dense(rows, 1, 1.0, 2.0, seed + 3));
    (dag, bindings, rows, cols)
}

fn assert_bitwise_eq(got: &[Value], expect: &[Value], tag: &str) {
    assert_eq!(got.len(), expect.len(), "{tag}");
    for (i, (g, x)) in got.iter().zip(expect).enumerate() {
        let (gm, xm) = (g.as_matrix(), x.as_matrix());
        assert_eq!((gm.rows(), gm.cols()), (xm.rows(), xm.cols()), "{tag} root {i}");
        for r in 0..gm.rows() {
            for c in 0..gm.cols() {
                assert!(
                    gm.get(r, c).to_bits() == xm.get(r, c).to_bits(),
                    "{tag} root {i} at ({r},{c}): {} vs {}",
                    gm.get(r, c),
                    xm.get(r, c)
                );
            }
        }
    }
}

/// The headline property over a fixed seed matrix: 20 fault schedules × 3
/// fusion modes, each under a tight budget (so the spill sites actually get
/// visited) with two workers (so panic isolation crosses threads).
#[test]
fn chaos_matrix_ok_is_bitwise_err_is_clean_and_engine_survives() {
    // The injected panic fires inside the engine's catch; keep the default
    // hook from spraying backtraces over the test output.
    std::panic::set_hook(Box::new(|_| {}));
    let mut injected_total = 0u64;
    let mut failures = 0usize;
    let mut successes = 0usize;
    for seed in 0..20u64 {
        let (dag, bindings, rows, cols) = random_dag(seed);
        for mode in [FusionMode::Base, FusionMode::Gen, FusionMode::GenFA] {
            let tag = format!("seed {seed} mode {mode:?}");
            // Fault-free reference from a pristine engine.
            let reference = Engine::new(mode).execute(&dag, &bindings).into_values();

            let plan = Arc::new(
                FaultPlan::seeded(seed)
                    .rate(FaultSite::SpillWrite, 0.3)
                    .rate(FaultSite::SpillRead, 0.2)
                    .rate(FaultSite::Alloc, 0.05)
                    .rate(FaultSite::TaskExec, 0.1)
                    .rate(FaultSite::TaskPanic, 0.1),
            );
            let engine = Engine::builder(mode)
                .memory_budget(2 * 8 * rows * cols)
                .workers(2)
                .fault_plan(Arc::clone(&plan))
                .verify_plans(true)
                .build();

            match engine.try_execute(&dag, &bindings) {
                Ok(out) => {
                    successes += 1;
                    assert_bitwise_eq(out.values(), &reference, &tag);
                }
                Err(e) => {
                    failures += 1;
                    // A clean typed error, not a panic: rendering it and
                    // taking its source must both work.
                    let _ = e.to_string();
                    let _ = std::error::Error::source(&e);
                }
            }
            assert_eq!(
                engine.store().spill_file_count(),
                0,
                "{tag}: no spill temp files may survive an execution"
            );

            // Recovery invariant: disarm the faults and the *same* engine
            // must produce bitwise-correct results — twice, to catch state
            // corrupted by the first recovery itself.
            plan.disarm();
            for round in 0..2 {
                let out = engine
                    .try_execute(&dag, &bindings)
                    .unwrap_or_else(|e| panic!("{tag}: fault-free re-execute {round} failed: {e}"));
                assert_bitwise_eq(out.values(), &reference, &format!("{tag} re-exec {round}"));
                assert_eq!(engine.store().spill_file_count(), 0, "{tag} re-exec {round}");
            }
            injected_total += plan.total_injected();
        }
    }
    drop(std::panic::take_hook());
    assert!(injected_total > 0, "the fault matrix must actually inject faults");
    assert!(failures > 0, "some schedules must fail (otherwise the rates are too low to test)");
    assert!(successes > 0, "some schedules must survive (retry/degrade paths must matter)");
}

/// Rate 1.0 on the non-panicking task site with an unlimited budget: every
/// schedule fails, deterministically, with the typed `Injected` error.
#[test]
fn saturated_task_faults_always_err() {
    let (dag, bindings, _, _) = random_dag(99);
    let plan = Arc::new(FaultPlan::seeded(7).rate(FaultSite::TaskExec, 1.0));
    let engine =
        Engine::builder(FusionMode::Gen).fault_plan(Arc::clone(&plan)).verify_plans(true).build();
    for _ in 0..3 {
        match engine.try_execute(&dag, &bindings) {
            Err(ExecError::Injected { site: FaultSite::TaskExec, .. }) => {}
            other => panic!("expected an injected task failure, got {other:?}"),
        }
    }
    assert_eq!(engine.stats().failed_executions(), 3);
    plan.disarm();
    let reference = Engine::new(FusionMode::Gen).execute(&dag, &bindings).into_values();
    let out = engine.try_execute(&dag, &bindings).expect("disarmed engine executes");
    assert_bitwise_eq(out.values(), &reference, "post-saturation recovery");
}

/// An armed plan whose rates are all zero must be invisible: `Ok`, bitwise
/// equal, zero injections.
#[test]
fn zero_rate_plan_is_invisible() {
    let (dag, bindings, rows, cols) = random_dag(5);
    let plan = Arc::new(FaultPlan::seeded(1));
    let engine = Engine::builder(FusionMode::Gen)
        .memory_budget(2 * 8 * rows * cols)
        .fault_plan(Arc::clone(&plan))
        .verify_plans(true)
        .build();
    let reference = Engine::new(FusionMode::Gen).execute(&dag, &bindings).into_values();
    let out = engine.try_execute(&dag, &bindings).expect("zero rates never fail");
    assert_bitwise_eq(out.values(), &reference, "zero-rate plan");
    assert_eq!(plan.total_injected(), 0);
    assert_eq!(engine.stats().scheduler_snapshot().injected_faults, 0);
}
