#![allow(clippy::disallowed_methods)] // test/bench code may unwrap freely
//! Verifier fuzz suite: randomly generated, *well-formed* DAGs across every
//! fusion mode must compile verified-clean under `verify_plans(true)`. The
//! verifier's job is rejecting corrupted artifacts (see
//! `verifier_mutation.rs`); this suite pins down the complementary property
//! — zero false positives on everything the compiler actually produces —
//! and spot-checks that verified plans still execute bitwise-identically to
//! the sequential oracle.

use fusedml_hop::interp::Bindings;
use fusedml_hop::{DagBuilder, HopDag, HopId};
use fusedml_linalg::generate;
use fusedml_linalg::matrix::Value;
use fusedml_runtime::{EngineBuilder, FusionMode};

const MODES: [FusionMode; 5] =
    [FusionMode::Base, FusionMode::Fused, FusionMode::Gen, FusionMode::GenFA, FusionMode::GenFNR];

/// Deterministic xorshift* generator: the suite must replay identically in
/// CI, so seeds are explicit and no ambient entropy is used.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A shape-tracked node pool: ops only combine compatible operands, so
/// every generated DAG is well-formed by construction (the property under
/// test is verifier cleanliness, not builder robustness).
struct Pool {
    nodes: Vec<(HopId, usize, usize)>,
}

impl Pool {
    fn same_shape_pair(&self, rng: &mut XorShift) -> Option<((HopId, usize, usize), HopId)> {
        for _ in 0..8 {
            let a = self.nodes[rng.pick(self.nodes.len())];
            let candidates: Vec<HopId> = self
                .nodes
                .iter()
                .filter(|&&(id, r, c)| r == a.1 && c == a.2 && id != a.0)
                .map(|&(id, _, _)| id)
                .collect();
            if !candidates.is_empty() {
                return Some((a, candidates[rng.pick(candidates.len())]));
            }
        }
        None
    }
}

fn random_dag(seed: u64) -> (HopDag, Bindings) {
    let mut rng = XorShift::new(seed);
    let rows = 16 + rng.pick(48);
    let cols = 4 + rng.pick(20);
    let sparse_main = rng.pick(4) == 0;
    let mut b = DagBuilder::new();
    let x = b.read("X", rows, cols, if sparse_main { 0.05 } else { 1.0 });
    let y = b.read("Y", rows, cols, 1.0);
    let v = b.read("v", cols, 1, 1.0);
    let w = b.read("w", rows, 1, 1.0);
    let mut pool =
        Pool { nodes: vec![(x, rows, cols), (y, rows, cols), (v, cols, 1), (w, rows, 1)] };
    let n_ops = 3 + rng.pick(10);
    for i in 0..n_ops {
        let choice = rng.pick(12);
        let next = match choice {
            // Element-wise binaries over a same-shape pair.
            0..=3 => pool.same_shape_pair(&mut rng).map(|((a, r, c), other)| {
                let id = match rng.pick(4) {
                    0 => b.add(a, other),
                    1 => b.mult(a, other),
                    2 => b.sub(a, other),
                    _ => b.max(a, other),
                };
                (id, r, c)
            }),
            // Unaries on anything.
            4..=6 => {
                let (a, r, c) = pool.nodes[rng.pick(pool.nodes.len())];
                let id = match rng.pick(5) {
                    0 => b.abs(a),
                    1 => b.sq(a),
                    2 => b.exp(a),
                    3 => b.sigmoid(a),
                    _ => {
                        let abs = b.abs(a); // keep the sqrt domain non-negative
                        b.sqrt(abs)
                    }
                };
                Some((id, r, c))
            }
            // Scalar broadcast.
            7 => {
                let (a, r, c) = pool.nodes[rng.pick(pool.nodes.len())];
                let lit = b.lit(0.25 + i as f64 * 0.5);
                Some((b.mult(a, lit), r, c))
            }
            // Matrix-vector multiply when a compatible pair exists.
            8 | 9 => {
                let mats: Vec<(HopId, usize, usize)> =
                    pool.nodes.iter().copied().filter(|&(_, r, c)| r > 1 && c > 1).collect();
                if mats.is_empty() {
                    None
                } else {
                    let (m, r, c) = mats[rng.pick(mats.len())];
                    let vecs: Vec<HopId> = pool
                        .nodes
                        .iter()
                        .filter(|&&(_, vr, vc)| vr == c && vc == 1)
                        .map(|&(id, _, _)| id)
                        .collect();
                    if vecs.is_empty() {
                        None
                    } else {
                        Some((b.mm(m, vecs[rng.pick(vecs.len())]), r, 1))
                    }
                }
            }
            // Row / column aggregates (keeps Row-template patterns flowing).
            10 => {
                let mats: Vec<(HopId, usize, usize)> =
                    pool.nodes.iter().copied().filter(|&(_, r, c)| r > 1 && c > 1).collect();
                if mats.is_empty() {
                    None
                } else {
                    let (m, r, _) = mats[rng.pick(mats.len())];
                    Some((b.row_sums(m), r, 1))
                }
            }
            // Transpose-multiply chain t(X) %*% u → cols×1.
            _ => {
                let mats: Vec<(HopId, usize, usize)> =
                    pool.nodes.iter().copied().filter(|&(_, r, c)| r > 1 && c > 1).collect();
                if mats.is_empty() {
                    None
                } else {
                    let (m, r, c) = mats[rng.pick(mats.len())];
                    let vecs: Vec<HopId> = pool
                        .nodes
                        .iter()
                        .filter(|&&(_, vr, vc)| vr == r && vc == 1)
                        .map(|&(id, _, _)| id)
                        .collect();
                    if vecs.is_empty() {
                        None
                    } else {
                        let t = b.t(m);
                        Some((b.mm(t, vecs[rng.pick(vecs.len())]), c, 1))
                    }
                }
            }
        };
        if let Some(n) = next {
            pool.nodes.push(n);
        }
    }
    // Roots: a full aggregate of the last node plus one or two extra shapes
    // so multi-root plans (MAgg candidates, shared intermediates) appear.
    let last = pool.nodes[pool.nodes.len() - 1].0;
    let mut roots = vec![b.sum(last)];
    if rng.pick(2) == 0 {
        let (m, _, _) = pool.nodes[rng.pick(pool.nodes.len())];
        roots.push(b.sum_sq(m));
    }
    if rng.pick(2) == 0 {
        let mats: Vec<HopId> =
            pool.nodes.iter().filter(|&&(_, r, c)| r > 1 && c > 1).map(|&(id, _, _)| id).collect();
        if !mats.is_empty() {
            roots.push(b.row_sums(mats[rng.pick(mats.len())]));
        }
    }
    let dag = b.build(roots);
    let mut bindings = Bindings::new();
    let xm = if sparse_main {
        generate::rand_matrix(rows, cols, 0.5, 1.5, 0.05, seed)
    } else {
        generate::rand_dense(rows, cols, 0.5, 1.5, seed)
    };
    bindings.insert("X".into(), xm);
    bindings.insert("Y".into(), generate::rand_dense(rows, cols, 0.5, 1.5, seed + 1));
    bindings.insert("v".into(), generate::rand_dense(cols, 1, 0.5, 1.5, seed + 2));
    bindings.insert("w".into(), generate::rand_dense(rows, 1, 0.5, 1.5, seed + 3));
    (dag, bindings)
}

/// Every random DAG × every fusion mode must compile verified-clean: the
/// verifier rejecting a compiler-produced artifact is a bug in one or the
/// other, and either way a hard failure here.
#[test]
fn random_dags_compile_verified_clean() {
    for seed in 0..40u64 {
        let (dag, _) = random_dag(seed);
        for mode in MODES {
            let engine = EngineBuilder::new(mode).verify_plans(true).build();
            if let Err(e) = engine.try_compile(&dag) {
                panic!("seed {seed} mode {mode:?}: verifier rejected a clean compile: {e}");
            }
        }
    }
}

/// A subset of the fuzz corpus also executes: verified plans must still
/// agree bitwise with the sequential oracle (verification is observation-
/// only — it cannot perturb results).
#[test]
fn verified_plans_execute_bitwise_equal() {
    for seed in [0u64, 3, 7, 11, 19, 29, 31, 37] {
        let (dag, bindings) = random_dag(seed);
        for mode in MODES {
            let engine = EngineBuilder::new(mode).verify_plans(true).build();
            let expect = engine.execute_sequential(&dag, &bindings);
            let got = engine.execute(&dag, &bindings).into_values();
            assert_eq!(got.len(), expect.len(), "seed {seed} {mode:?}");
            for (i, (g, x)) in got.iter().zip(&expect).enumerate() {
                match (g, x) {
                    (Value::Scalar(a), Value::Scalar(b)) => {
                        assert!(
                            a.to_bits() == b.to_bits(),
                            "seed {seed} {mode:?} root {i}: {a} vs {b}"
                        );
                    }
                    _ => {
                        let (gm, xm) = (g.as_matrix(), x.as_matrix());
                        assert_eq!((gm.rows(), gm.cols()), (xm.rows(), xm.cols()));
                        for r in 0..gm.rows() {
                            for c in 0..gm.cols() {
                                assert!(
                                    gm.get(r, c).to_bits() == xm.get(r, c).to_bits(),
                                    "seed {seed} {mode:?} root {i} at ({r},{c})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The Outer template (sparsity-exploiting `sum(X * (U %*% t(V)))` family)
/// compiles verified-clean too — it carries the most intricate invariants
/// (UV binding agreement, rank checks, sparse-safety claims).
#[test]
fn outer_template_compiles_verified_clean() {
    for &(n, m, k) in &[(60usize, 40usize, 4usize), (30, 30, 8)] {
        let mut b = DagBuilder::new();
        let x = b.read("X", n, m, 0.05);
        let u = b.read("U", n, k, 1.0);
        let v = b.read("V", m, k, 1.0);
        let vt = b.t(v);
        let uv = b.mm(u, vt);
        let prod = b.mult(x, uv);
        let s = b.sum(prod);
        let dag = b.build(vec![s]);
        for mode in MODES {
            let engine = EngineBuilder::new(mode).verify_plans(true).build();
            engine.try_compile(&dag).unwrap_or_else(|e| {
                panic!("outer {n}x{m} rank {k} mode {mode:?}: {e}");
            });
        }
    }
}
