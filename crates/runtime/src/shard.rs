//! Sharded multi-worker execution: the real counterpart of the simulated
//! cluster in [`crate::dist`] (DESIGN.md substitution X11).
//!
//! A [`ShardPool`] owns `k` persistent worker shards — threads with their own
//! kernel scope sharing the engine's buffer pool — pinned NUMA-aware where
//! the topology is detectable (`/sys/devices/system/node`), falling back to
//! plain round-robin CPU pinning. The driver row-partitions a fused
//! operator's bound inputs across the shards, broadcasts row-invariant side
//! inputs (an `Arc` clone in-process), executes the *same* fused skeletons
//! (`spoof::execute`) per shard, and merges the partial outputs:
//!
//! * map-class operators (`NoAgg`, `RowAgg`) concatenate partial rows, which
//!   is bitwise-identical to local execution because every skeleton's output
//!   format is a pure function of the main-input format and sparse-safety,
//! * reductions (`ColAgg`, `FullAgg`, MultiAgg) merge element-wise with the
//!   aggregate's combiner ([`MergeOp`]); `Mean` aggregates are not sharded
//!   because their finalization divides by a shard-local count.
//!
//! Whether an operator runs locally or sharded is a cost decision
//! ([`plan_operator`]): the same Boehm-2017-style estimator
//! ([`fusedml_core::opt::cost::CostModel::shard_op_seconds`] under
//! [`DistConfig::in_process`]) serves the planner and `table6`'s modeled
//! column, so modeled and measured execution share one code path.
//!
//! Failure semantics: a panicking shard fails only its own request —
//! first-failure-wins cancellation reaches sibling shards through a shared
//! flag, every shard always replies (ok / panicked / cancelled), and the
//! driver surfaces one typed [`ShardError`]. The shard threads survive and
//! keep serving later requests.

use crate::error::panic_message;
use crate::side::SideInput;
use crate::spoof;
use fusedml_core::codegen::GeneratedOperator;
use fusedml_core::opt::cost::{compute_costs, CostModel, DistConfig};
use fusedml_core::optimizer::{FusedOperator, FusionPlan};
use fusedml_core::plancache::KernelCaches;
use fusedml_core::spoof::{CellAgg, FusedSpec, Instr, RowOut, SideAccess};
use fusedml_hop::{HopDag, HopId};
use fusedml_linalg::ops::AggOp;
use fusedml_linalg::pool::PoolHandle;
use fusedml_linalg::{par, pool, Matrix};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Shard plans
// ---------------------------------------------------------------------------

/// How one side input travels to the shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SideDisp {
    /// Row-aligned with the main input: each shard receives its row slice.
    Partition,
    /// Row-invariant: every shard receives the whole matrix (`Arc` clone).
    Broadcast,
}

/// Element-wise combiner for one partially-aggregated output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOp {
    Add,
    Min,
    Max,
}

/// How the driver merges per-shard partial outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergePlan {
    /// Map-class outputs: stack the row partitions back in shard order.
    ConcatRows,
    /// Aggregated outputs: fold element-wise, one combiner per output.
    Elementwise(Vec<MergeOp>),
}

/// A verified sharding decision for one fused operator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Number of shards the planner assumed (the driver clamps to the pool).
    pub shards: usize,
    /// Disposition per side input, in CPlan binding order.
    pub sides: Vec<SideDisp>,
    /// Partial-output merge semantics.
    pub merge: MergePlan,
}

/// The combiner matching an aggregate, or `None` when partial aggregates
/// cannot be merged element-wise (`Mean` divides by a shard-local count).
fn merge_op_for(op: AggOp) -> Option<MergeOp> {
    match op {
        AggOp::Sum | AggOp::SumSq => Some(MergeOp::Add),
        AggOp::Min => Some(MergeOp::Min),
        AggOp::Max => Some(MergeOp::Max),
        AggOp::Mean => None,
    }
}

/// Derives the legal sharding of a fused operator, or `None` when row
/// partitioning cannot be proven safe. Pure function of the operator spec
/// and CPlan geometry — the plan verifier re-derives it to cross-check
/// whatever the planner recorded.
///
/// Legality rules (each also documented in DESIGN.md §4 X11):
/// * a main input must exist (it carries the row partitioning),
/// * `iter_rows >= shards` so every shard receives at least one row,
/// * Outer operators never shard (their U/V factors are indexed by both the
///   row and the column of the main cell, so row partitioning is not
///   shuffle-free),
/// * every side access must resolve to a disposition: row-aligned accesses
///   (`Cell`/`Col`, row slices) partition and require `side.rows ==
///   iter_rows`; row-invariant accesses (`Row`/`Scalar`, whole-matrix
///   `VecMatMult`, single-row slices) broadcast; a side demanded both ways
///   disables sharding,
/// * the output aggregation must merge: concat for map-class, an
///   element-wise combiner for reductions, never `Mean`.
pub fn derive_spec(
    spec: &FusedSpec,
    cplan: &fusedml_core::cplan::CPlan,
    shards: usize,
) -> Option<ShardSpec> {
    if shards < 2 || cplan.main.is_none() || cplan.iter_rows < shards {
        return None;
    }
    let merge = match spec {
        FusedSpec::Outer(_) => return None,
        FusedSpec::Cell(c) => match c.agg {
            CellAgg::NoAgg | CellAgg::RowAgg(_) => MergePlan::ConcatRows,
            CellAgg::ColAgg(op) | CellAgg::FullAgg(op) => {
                MergePlan::Elementwise(vec![merge_op_for(op)?])
            }
        },
        FusedSpec::MAgg(m) => MergePlan::Elementwise(
            m.results.iter().map(|&(_, op)| merge_op_for(op)).collect::<Option<Vec<_>>>()?,
        ),
        FusedSpec::Row(r) => match r.out {
            RowOut::NoAgg { .. } | RowOut::RowAgg { .. } => MergePlan::ConcatRows,
            RowOut::ColAgg { .. }
            | RowOut::FullAgg { .. }
            | RowOut::OuterColAgg { .. }
            | RowOut::ColAggMultAdd { .. } => MergePlan::Elementwise(vec![MergeOp::Add]),
        },
    };
    // RowAgg(Mean) finalizes per row by `iter_cols`, which row partitioning
    // preserves; Cell NoAgg/RowAgg outputs are per-row pure. Both concat.
    let mut sides: Vec<Option<SideDisp>> = vec![None; cplan.sides.len()];
    let mut want = |i: usize, d: SideDisp| -> bool {
        match sides[i] {
            None => {
                sides[i] = Some(d);
                true
            }
            Some(prev) => prev == d,
        }
    };
    for instr in &spec.program().instrs {
        let ok = match *instr {
            Instr::LoadSide { side, access, .. } => match access {
                SideAccess::Cell | SideAccess::Col => want(side, SideDisp::Partition),
                SideAccess::Row | SideAccess::Scalar => want(side, SideDisp::Broadcast),
            },
            Instr::LoadSideRow { side, cl, cu, .. } => {
                // Row-invariant loads — a single-row side, or a whole
                // vector-side load (the hoisted `v` of an mv-chain) — read
                // the same lanes for every rix and broadcast; everything
                // else slices row rix of the side and must be partitioned
                // with the main.
                let invariant = cplan.side_dims.get(side).is_some_and(|&(r, c)| {
                    r == 1 || fusedml_core::spoof::block::whole_vector_load(r, c, cl, cu)
                });
                if invariant {
                    want(side, SideDisp::Broadcast)
                } else {
                    want(side, SideDisp::Partition)
                }
            }
            Instr::VecMatMult { side, .. } => want(side, SideDisp::Broadcast),
            _ => true,
        };
        if !ok {
            return None;
        }
    }
    let sides: Vec<SideDisp> = sides
        .into_iter()
        // Sides never touched by the program broadcast (cheap and safe).
        .map(|d| d.unwrap_or(SideDisp::Broadcast))
        .collect();
    for (i, d) in sides.iter().enumerate() {
        if *d == SideDisp::Partition && cplan.side_dims[i].0 != cplan.iter_rows {
            return None;
        }
    }
    Some(ShardSpec { shards, sides, merge })
}

/// Local and sharded wall-time estimates for one fused operator.
#[derive(Clone, Debug)]
pub struct OpEstimate {
    /// Template + geometry label for reports.
    pub label: String,
    /// Eq. 4 single-node estimate.
    pub local_seconds: f64,
    /// Sharded estimate, `None` when the operator is not shardable.
    pub sharded_seconds: Option<f64>,
}

/// Modeled execution times of a whole fusion plan, local vs planner-chosen.
#[derive(Clone, Debug)]
pub struct PlanEstimate {
    /// Σ over operators of the local estimate.
    pub local_seconds: f64,
    /// Σ over operators of `min(local, sharded)` — what the planner picks.
    pub chosen_seconds: f64,
    /// Operators the planner shards under `chosen_seconds`.
    pub sharded_ops: usize,
    /// Per-operator breakdown.
    pub ops: Vec<OpEstimate>,
}

fn operator_bytes(dag: &HopDag, f: &FusedOperator, spec: &ShardSpec) -> (f64, f64, f64) {
    let main_bytes = f.cplan.main.map(|m| dag.hop(m).size.bytes()).unwrap_or(0.0);
    let mut part = main_bytes;
    let mut bcast = 0.0;
    for (&s, d) in f.cplan.sides.iter().zip(&spec.sides) {
        let b = dag.hop(s).size.bytes();
        match d {
            SideDisp::Partition => part += b,
            SideDisp::Broadcast => bcast += b,
        }
    }
    let out: f64 = f.roots.iter().map(|&r| dag.hop(r).size.bytes()).sum();
    (part, bcast, out)
}

fn operator_flops(f: &FusedOperator, compute: &[f64]) -> f64 {
    let mut ids: Vec<HopId> = f.cplan.covered.clone();
    ids.extend_from_slice(&f.roots);
    ids.sort_unstable();
    ids.dedup();
    ids.iter().map(|h| compute[h.index()]).sum()
}

/// Estimates one fused operator both ways and returns the estimate pair.
pub fn estimate_operator(
    dag: &HopDag,
    f: &FusedOperator,
    compute: &[f64],
    shards: usize,
    model: &CostModel,
) -> OpEstimate {
    let flops = operator_flops(f, compute);
    let in_bytes: f64 =
        f.cplan.main.iter().chain(f.cplan.sides.iter()).map(|&h| dag.hop(h).size.bytes()).sum();
    let out_bytes: f64 = f.roots.iter().map(|&r| dag.hop(r).size.bytes()).sum();
    let local_seconds = model.local_op_seconds(in_bytes, out_bytes, flops);
    let sharded_seconds = derive_spec(&f.op.spec, &f.cplan, shards).map(|spec| {
        let (part, bcast, out) = operator_bytes(dag, f, &spec);
        model.shard_op_seconds(&DistConfig::in_process(shards), part, bcast, out, flops, shards)
    });
    let label =
        format!("{}[{}x{}]", f.op.spec.template_name(), f.cplan.iter_rows, f.cplan.iter_cols);
    OpEstimate { label, local_seconds, sharded_seconds }
}

/// The planner's local-vs-sharded choice for one fused operator: shard
/// exactly when it is legal *and* the modeled sharded time beats local.
pub fn plan_operator(
    dag: &HopDag,
    f: &FusedOperator,
    compute: &[f64],
    shards: usize,
    model: &CostModel,
) -> Option<ShardSpec> {
    let spec = derive_spec(&f.op.spec, &f.cplan, shards)?;
    let est = estimate_operator(dag, f, compute, shards, model);
    match est.sharded_seconds {
        Some(s) if s < est.local_seconds => Some(spec),
        _ => None,
    }
}

/// Plans every operator of a fusion plan; index-aligned with
/// `plan.operators`.
pub fn plan_shards(
    dag: &HopDag,
    plan: &FusionPlan,
    shards: usize,
    model: &CostModel,
) -> Vec<Option<ShardSpec>> {
    let compute = compute_costs(dag);
    plan.operators.iter().map(|f| plan_operator(dag, f, &compute, shards, model)).collect()
}

/// Shards every legally-shardable operator of a plan unconditionally,
/// skipping the cost comparison (`EngineBuilder::force_shard`; differential
/// tests exercise the sharded data path on cost-unfavorable geometries).
pub fn force_shards(plan: &FusionPlan, shards: usize) -> Vec<Option<ShardSpec>> {
    plan.operators.iter().map(|f| derive_spec(&f.op.spec, &f.cplan, shards)).collect()
}

/// Models a whole plan's fused operators local vs planner-chosen — the
/// `table6` modeled column. Shares the estimator with [`plan_operator`].
pub fn estimate_plan(
    dag: &HopDag,
    plan: &FusionPlan,
    shards: usize,
    model: &CostModel,
) -> PlanEstimate {
    let compute = compute_costs(dag);
    let mut ops = Vec::with_capacity(plan.operators.len());
    let (mut local, mut chosen, mut sharded_ops) = (0.0, 0.0, 0usize);
    for f in &plan.operators {
        let e = estimate_operator(dag, f, &compute, shards, model);
        local += e.local_seconds;
        match e.sharded_seconds {
            Some(s) if s < e.local_seconds => {
                chosen += s;
                sharded_ops += 1;
            }
            _ => chosen += e.local_seconds,
        }
        ops.push(e);
    }
    PlanEstimate { local_seconds: local, chosen_seconds: chosen, sharded_ops, ops }
}

// ---------------------------------------------------------------------------
// NUMA detection and CPU pinning
// ---------------------------------------------------------------------------

/// Parses a kernel cpulist ("0-3,8,10-11") into CPU indices.
fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for part in s.trim().split(',') {
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    cpus.extend(lo..=hi.min(lo + 4096));
                }
            }
            None => {
                if let Ok(c) = part.trim().parse::<usize>() {
                    cpus.push(c);
                }
            }
        }
    }
    cpus
}

/// Per-NUMA-node CPU lists from sysfs; empty when the topology is not
/// exposed (non-Linux, restricted container).
fn numa_node_cpus() -> Vec<Vec<usize>> {
    let mut nodes = Vec::new();
    for ix in 0..64usize {
        let path = format!("/sys/devices/system/node/node{ix}/cpulist");
        match std::fs::read_to_string(&path) {
            Ok(s) => {
                let cpus = parse_cpulist(&s);
                if !cpus.is_empty() {
                    nodes.push(cpus);
                }
            }
            Err(_) => break,
        }
    }
    nodes
}

/// The CPUs shard `ix` should pin to: a whole NUMA node round-robin when
/// multiple nodes are detectable, else a plain contiguous block modulo the
/// hardware thread count. Empty = leave scheduling to the OS.
fn shard_cpus(nodes: &[Vec<usize>], ix: usize, threads: usize) -> Vec<usize> {
    if nodes.len() > 1 {
        return nodes[ix % nodes.len()].clone();
    }
    let total = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if total <= 1 {
        return Vec::new();
    }
    let t = threads.max(1);
    (0..t).map(|j| (ix * t + j) % total).collect()
}

#[cfg(target_os = "linux")]
mod affinity {
    /// Mirrors glibc's `cpu_set_t`: a 1024-bit CPU mask.
    #[repr(C)]
    struct CpuSet {
        bits: [u64; 16],
    }

    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }

    /// Best-effort pin of the calling thread to `cpus`; never fails (a
    /// denied or invalid mask just leaves OS scheduling in place).
    pub fn pin_current_thread(cpus: &[usize]) {
        let mut set = CpuSet { bits: [0; 16] };
        let mut any = false;
        for &c in cpus {
            if c < 1024 {
                set.bits[c / 64] |= 1u64 << (c % 64);
                any = true;
            }
        }
        if !any {
            return;
        }
        // SAFETY: `set` is a properly initialized, repr(C) bitmask whose
        // layout matches the kernel's sched_setaffinity ABI, passed by
        // pointer with its exact size; pid 0 targets the calling thread
        // only. The call writes nothing through the pointer and the return
        // value is deliberately ignored (pinning is advisory).
        let _ = unsafe { sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set) };
    }
}

#[cfg(not(target_os = "linux"))]
mod affinity {
    pub fn pin_current_thread(_cpus: &[usize]) {}
}

// ---------------------------------------------------------------------------
// The shard pool
// ---------------------------------------------------------------------------

/// One sharded-execution request: the full (Arc-shared) inputs plus this
/// shard's row range. The *worker* slices its own partition — the row-block
/// copies then run on every shard's pinned CPUs in parallel instead of
/// serializing on the driver thread.
struct Request {
    op: Arc<GeneratedOperator>,
    main: Matrix,
    /// This shard's half-open row range of the main (and partitioned sides).
    rows: (usize, usize),
    sides: Vec<Matrix>,
    /// Per side: `true` = slice `rows` out of it, `false` = use broadcast
    /// whole.
    partition: Vec<bool>,
    scalars: Vec<f64>,
    iter_cols: usize,
    shard_ix: usize,
    cancel: Arc<AtomicBool>,
    inject_panic: bool,
    reply: mpsc::Sender<(usize, Reply, u64)>,
}

enum Reply {
    Ok(Vec<Matrix>),
    Panicked(String),
    Cancelled,
}

struct Worker {
    /// `mpsc::Sender` is `!Sync`; the mutex wrapper restores `Sync` so the
    /// pool can live inside the engine's `Send + Sync` inner state. Taken
    /// (dropped) on pool drop to hang up the worker.
    sender: Mutex<Option<mpsc::Sender<Request>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Observed counters of one sharded operator execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardRunStats {
    /// Shards that actually received a slice (≤ pool size, ≤ main rows).
    pub shards_used: usize,
    /// Bytes of side inputs broadcast (counted once per receiving shard).
    pub broadcast_bytes: usize,
    /// Bytes of per-shard partial outputs merged by the driver.
    pub partial_bytes: usize,
    /// Driver-side merge wall time.
    pub merge_nanos: u64,
    /// Skew: slowest shard time over mean shard time, ×1000.
    pub skew_milli: u64,
}

/// A failed sharded execution: which shard failed first, and why.
#[derive(Clone, Debug)]
pub struct ShardError {
    pub shard: usize,
    pub message: String,
}

/// A pool of persistent worker shards (see the module docs).
pub struct ShardPool {
    workers: Vec<Worker>,
}

impl ShardPool {
    /// Spawns `shards` worker threads, each entering the engine's buffer
    /// pool and kernel caches once for its lifetime and capping its internal
    /// band parallelism at `shard_threads`.
    pub fn new(
        shards: usize,
        shard_threads: usize,
        pool: PoolHandle,
        kernels: Arc<KernelCaches>,
    ) -> ShardPool {
        let shards = shards.max(1);
        let nodes = numa_node_cpus();
        let workers = (0..shards)
            .map(|ix| {
                let (tx, rx) = mpsc::channel::<Request>();
                let cpus = shard_cpus(&nodes, ix, shard_threads);
                let pool = pool.clone();
                let kernels = Arc::clone(&kernels);
                let handle = std::thread::Builder::new()
                    .name(format!("fusedml-shard-{ix}"))
                    .spawn(move || {
                        affinity::pin_current_thread(&cpus);
                        let _limit = par::limit_current_thread(shard_threads.max(1));
                        // Persistent scopes for the thread's lifetime: the
                        // pool scope is entered plain (not tallied) because
                        // the shard thread outlives any single engine run.
                        let _pool = pool::enter(&pool);
                        let _kernels = spoof::enter_kernels(&kernels);
                        worker_loop(&rx);
                    })
                    .expect("spawn shard worker");
                Worker { sender: Mutex::new(Some(tx)), handle: Some(handle) }
            })
            .collect();
        ShardPool { workers }
    }

    /// Number of worker shards.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Executes one fused operator across the shards: slices the main input
    /// (and partitioned sides) into balanced row blocks, broadcasts the
    /// rest, collects every shard's reply, and merges the partials per the
    /// spec. First failure wins: one panicked shard cancels its siblings'
    /// outstanding work and surfaces as a single [`ShardError`]; the pool
    /// stays fully usable.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &self,
        op: &Arc<GeneratedOperator>,
        spec: &ShardSpec,
        main: &Matrix,
        sides: &[Matrix],
        scalars: &[f64],
        iter_cols: usize,
        inject_panic: bool,
    ) -> Result<(Vec<Matrix>, ShardRunStats), ShardError> {
        let rows = main.rows();
        let k = spec.shards.min(self.workers.len()).min(rows).max(1);
        let cancel = Arc::new(AtomicBool::new(false));
        let (reply_tx, reply_rx) = mpsc::channel();
        let base = rows / k;
        let rem = rows % k;
        let mut broadcast_bytes = 0usize;
        let mut start = 0usize;
        let mut sent = 0usize;
        let mut dead_shard: Option<usize> = None;
        let partition: Vec<bool> = spec.sides.iter().map(|d| *d == SideDisp::Partition).collect();
        for ix in 0..k {
            let end = start + base + usize::from(ix < rem);
            for (s, d) in sides.iter().zip(&spec.sides) {
                if *d == SideDisp::Broadcast {
                    broadcast_bytes += s.size_in_bytes();
                }
            }
            let req = Request {
                op: Arc::clone(op),
                main: main.clone(),
                rows: (start, end),
                sides: sides.to_vec(),
                partition: partition.clone(),
                scalars: scalars.to_vec(),
                iter_cols,
                shard_ix: ix,
                cancel: Arc::clone(&cancel),
                inject_panic: inject_panic && ix == 0,
                reply: reply_tx.clone(),
            };
            let delivered = match self.workers[ix].sender.lock().as_ref() {
                Some(tx) => tx.send(req).is_ok(),
                None => false,
            };
            if !delivered {
                cancel.store(true, Ordering::Relaxed);
                dead_shard = Some(ix);
                break;
            }
            sent += 1;
            start = end;
        }
        drop(reply_tx);

        let mut parts: Vec<Option<Vec<Matrix>>> = (0..k).map(|_| None).collect();
        let mut times = vec![0u64; k];
        let mut first_err: Option<ShardError> = None;
        for _ in 0..sent {
            let Ok((ix, reply, nanos)) = reply_rx.recv() else { break };
            times[ix] = nanos;
            match reply {
                Reply::Ok(outs) => parts[ix] = Some(outs),
                Reply::Panicked(message) => {
                    cancel.store(true, Ordering::Relaxed);
                    first_err.get_or_insert(ShardError { shard: ix, message });
                }
                Reply::Cancelled => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if let Some(ix) = dead_shard {
            return Err(ShardError { shard: ix, message: "shard worker unavailable".into() });
        }
        let parts: Vec<Vec<Matrix>> = match parts.into_iter().collect() {
            Some(p) => p,
            None => {
                return Err(ShardError {
                    shard: 0,
                    message: "shard reply channel closed early".into(),
                })
            }
        };
        let partial_bytes: usize =
            parts.iter().flat_map(|p| p.iter().map(Matrix::size_in_bytes)).sum();
        let merge_start = Instant::now();
        let outs = merge_parts(&spec.merge, &parts);
        let merge_nanos = merge_start.elapsed().as_nanos() as u64;
        let used: Vec<u64> = times[..k].to_vec();
        let max = used.iter().copied().max().unwrap_or(0);
        let mean = used.iter().sum::<u64>() / k as u64;
        let skew_milli = max.saturating_mul(1000).checked_div(mean).unwrap_or(1000);
        Ok((
            outs,
            ShardRunStats {
                shards_used: k,
                broadcast_bytes,
                partial_bytes,
                merge_nanos,
                skew_milli,
            },
        ))
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for w in &self.workers {
            w.sender.lock().take();
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The shard worker body: serve requests until the channel hangs up. Every
/// request is answered exactly once — ok, panicked (message captured under
/// `catch_unwind`), or cancelled — so the driver can always count replies.
fn worker_loop(rx: &mpsc::Receiver<Request>) {
    while let Ok(req) = rx.recv() {
        let started = Instant::now();
        let reply = if req.cancel.load(Ordering::Relaxed) {
            Reply::Cancelled
        } else {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if req.inject_panic {
                    panic!("injected shard panic");
                }
                // Slice this shard's partition here, on the shard's own
                // (pinned) CPUs: the row-block copies of all shards run in
                // parallel instead of serializing on the driver.
                let (r0, r1) = req.rows;
                let main = req.main.row_slice(r0, r1);
                let side_mats: Vec<Matrix> = req
                    .sides
                    .iter()
                    .zip(&req.partition)
                    .map(|(s, &p)| if p { s.row_slice(r0, r1) } else { s.clone() })
                    .collect();
                let sides: Vec<SideInput> = side_mats.iter().map(SideInput::bind).collect();
                let outs = spoof::execute(
                    &req.op.spec,
                    Some(&main),
                    &sides,
                    &req.scalars,
                    main.rows(),
                    req.iter_cols,
                );
                drop(sides);
                outs
            }));
            match outcome {
                Ok(outs) => Reply::Ok(outs),
                Err(payload) => Reply::Panicked(panic_message(&*payload)),
            }
        };
        let nanos = started.elapsed().as_nanos() as u64;
        let _ = req.reply.send((req.shard_ix, reply, nanos));
    }
}

/// Merges per-shard partial outputs. Concat keeps the partials' shared
/// format class (all-sparse stays CSR, bitwise-identical to unsharded
/// execution); element-wise merges fold dense partial aggregates.
fn merge_parts(plan: &MergePlan, parts: &[Vec<Matrix>]) -> Vec<Matrix> {
    let n_outs = parts.first().map(Vec::len).unwrap_or(0);
    match plan {
        MergePlan::ConcatRows => (0..n_outs)
            .map(|j| {
                let ms: Vec<Matrix> = parts.iter().map(|p| p[j].clone()).collect();
                Matrix::concat_rows(&ms)
            })
            .collect(),
        MergePlan::Elementwise(ops) => (0..n_outs)
            .map(|j| {
                let op = ops.get(j).copied().unwrap_or(MergeOp::Add);
                let mut acc = parts[0][j].to_dense();
                for p in &parts[1..] {
                    let d = p[j].to_dense();
                    for (a, &b) in acc.values_mut().iter_mut().zip(d.values()) {
                        *a = match op {
                            MergeOp::Add => *a + b,
                            MergeOp::Min => a.min(b),
                            MergeOp::Max => a.max(b),
                        };
                    }
                }
                Matrix::dense(acc)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::{CellSpec, Program};
    use fusedml_linalg::pool::BufferPool;
    use fusedml_linalg::DenseMatrix;

    fn sum_operator() -> Arc<GeneratedOperator> {
        // sum(X): LoadMain → FullAgg(Sum).
        let prog =
            Program { instrs: vec![Instr::LoadMain { out: 0 }], n_regs: 1, vreg_lens: Vec::new() };
        Arc::new(GeneratedOperator {
            name: "TMPSUM".into(),
            source: String::new(),
            spec: FusedSpec::Cell(CellSpec {
                prog,
                result: 0,
                agg: CellAgg::FullAgg(AggOp::Sum),
                sparse_safe: true,
            }),
            plan_hash: 0,
            code_size: 1,
        })
    }

    fn square_operator() -> Arc<GeneratedOperator> {
        // X^2 map-class: LoadMain, multiply by itself.
        let prog = Program {
            instrs: vec![
                Instr::LoadMain { out: 0 },
                Instr::Binary { out: 1, op: fusedml_linalg::ops::BinaryOp::Mult, a: 0, b: 0 },
            ],
            n_regs: 2,
            vreg_lens: Vec::new(),
        };
        Arc::new(GeneratedOperator {
            name: "TMPSQ".into(),
            source: String::new(),
            spec: FusedSpec::Cell(CellSpec {
                prog,
                result: 1,
                agg: CellAgg::NoAgg,
                sparse_safe: true,
            }),
            plan_hash: 0,
            code_size: 2,
        })
    }

    fn test_pool(k: usize) -> ShardPool {
        ShardPool::new(k, 1, BufferPool::handle(), Arc::new(KernelCaches::default()))
    }

    fn seq_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::dense(DenseMatrix::new(
            rows,
            cols,
            (0..rows * cols).map(|i| (i % 97) as f64 - 11.0).collect(),
        ))
    }

    #[test]
    fn sharded_full_agg_matches_local() {
        let op = sum_operator();
        let x = seq_matrix(1003, 8);
        let pool = test_pool(4);
        let spec = ShardSpec {
            shards: 4,
            sides: Vec::new(),
            merge: MergePlan::Elementwise(vec![MergeOp::Add]),
        };
        let (outs, stats) =
            pool.execute(&op, &spec, &x, &[], &[], 8, false).expect("sharded execute");
        let local = spoof::execute(&op.spec, Some(&x), &[], &[], 1003, 8);
        assert_eq!(stats.shards_used, 4);
        assert_eq!(outs.len(), 1);
        let (got, want) = (outs[0].as_dense().values()[0], local[0].as_dense().values()[0]);
        assert!((got - want).abs() <= 1e-11 * want.abs().max(1.0), "{got} vs {want}");
    }

    #[test]
    fn sharded_map_class_is_bitwise_equal() {
        let op = square_operator();
        let x = seq_matrix(517, 5);
        let pool = test_pool(3);
        let spec = ShardSpec { shards: 3, sides: Vec::new(), merge: MergePlan::ConcatRows };
        let (outs, stats) =
            pool.execute(&op, &spec, &x, &[], &[], 5, false).expect("sharded execute");
        let local = spoof::execute(&op.spec, Some(&x), &[], &[], 517, 5);
        assert_eq!(stats.shards_used, 3);
        assert_eq!(
            outs[0].as_dense().values(),
            local[0].as_dense().values(),
            "map-class shard merge must be bitwise identical"
        );
    }

    #[test]
    fn injected_shard_panic_fails_request_but_not_pool() {
        let op = sum_operator();
        let x = seq_matrix(64, 4);
        let pool = test_pool(2);
        let spec = ShardSpec {
            shards: 2,
            sides: Vec::new(),
            merge: MergePlan::Elementwise(vec![MergeOp::Add]),
        };
        let err = pool
            .execute(&op, &spec, &x, &[], &[], 4, true)
            .expect_err("injected panic must fail the request");
        assert_eq!(err.shard, 0);
        assert!(err.message.contains("injected shard panic"), "{}", err.message);
        // The pool survives and serves the next request cleanly.
        let (outs, _) = pool.execute(&op, &spec, &x, &[], &[], 4, false).expect("pool reusable");
        let local = spoof::execute(&op.spec, Some(&x), &[], &[], 64, 4);
        assert_eq!(outs[0].as_dense().values()[0], local[0].as_dense().values()[0]);
    }

    #[test]
    fn merge_ops_fold_correctly() {
        let a = vec![Matrix::dense(DenseMatrix::new(1, 3, vec![1.0, 5.0, -2.0]))];
        let b = vec![Matrix::dense(DenseMatrix::new(1, 3, vec![4.0, 2.0, -7.0]))];
        let parts = vec![a, b];
        let add = merge_parts(&MergePlan::Elementwise(vec![MergeOp::Add]), &parts);
        assert_eq!(add[0].as_dense().values(), &[5.0, 7.0, -9.0]);
        let min = merge_parts(&MergePlan::Elementwise(vec![MergeOp::Min]), &parts);
        assert_eq!(min[0].as_dense().values(), &[1.0, 2.0, -7.0]);
        let max = merge_parts(&MergePlan::Elementwise(vec![MergeOp::Max]), &parts);
        assert_eq!(max[0].as_dense().values(), &[4.0, 5.0, -2.0]);
    }

    #[test]
    fn parse_cpulist_handles_ranges_and_singles() {
        assert_eq!(parse_cpulist("0-3,8,10-11\n"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        assert_eq!(parse_cpulist("5"), vec![5]);
    }

    #[test]
    fn mean_aggregates_are_not_merged() {
        assert_eq!(merge_op_for(AggOp::Mean), None);
        assert_eq!(merge_op_for(AggOp::Sum), Some(MergeOp::Add));
        assert_eq!(merge_op_for(AggOp::SumSq), Some(MergeOp::Add));
        assert_eq!(merge_op_for(AggOp::Min), Some(MergeOp::Min));
        assert_eq!(merge_op_for(AggOp::Max), Some(MergeOp::Max));
    }
}
