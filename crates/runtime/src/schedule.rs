//! The scheduled execution engine: liveness-aware, pool-backed, and
//! parallel across independent operators.
//!
//! This replaces the seed's recursive lazy materializer (which held every
//! intermediate alive for the whole DAG and recursed serially) with an
//! explicit task graph:
//!
//! * every demanded hop maps to one task — a **basic** operator, a
//!   **generated fused** operator from the fusion plan (one task per
//!   operator, covering all its roots), or a **hand-coded** pattern
//!   instance — with explicit input dependencies;
//! * value slots are **refcounted by read occurrences**: the last reader
//!   takes the value owned, the slot is freed immediately, and uniquely
//!   held dense buffers return to the engine's buffer pool (or are reused
//!   *in place* as the output of same-shape element-wise operators);
//! * a **ready set** of tasks with no unmet dependencies is drained by a
//!   small worker pool (scoped threads sharing the engine's buffer pool),
//!   so independent DAG branches execute concurrently while each kernel
//!   keeps its internal row-band parallelism;
//! * **roots are moved** (never cloned) out of their slots at the end;
//! * resident bytes are tracked on every store/free, yielding the
//!   per-execution peak footprint surfaced through [`ExecStats`] and the
//!   per-call [`SchedSnapshot`].
//!
//! The task graph is **built once at compile time** ([`prepare`]) and
//! **executed many times** ([`run`]): `Engine::compile` prepares the graph
//! for a `CompiledScript`, whose `execute` only allocates the per-call
//! mutable state — which is why one compiled script can execute from many
//! threads simultaneously.
//!
//! The seed's sequential materializer survives as
//! [`crate::exec::Executor::execute_with_plan_sequential`], the oracle the
//! differential property tests compare against (results must be
//! *bitwise* equal).

use crate::exec::{ExecStats, SchedSnapshot};
use crate::handcoded::{self, HcOperator};
use crate::side::SideInput;
use crate::spoof;
use fusedml_core::optimizer::FusionPlan;
use fusedml_core::plancache::KernelCaches;
use fusedml_core::util::FxHashMap;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::{HopDag, HopId, OpKind};
use fusedml_linalg::matrix::Value;
use fusedml_linalg::ops as lops;
use fusedml_linalg::pool::PoolHandle;
use fusedml_linalg::{par, pool, Matrix};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Default upper bound on scheduler workers: kernels parallelize internally
/// over row bands, so inter-operator parallelism beyond a few ways
/// oversubscribes. Engines can override via `EngineBuilder::workers`.
pub const DEFAULT_MAX_WORKERS: usize = 4;

/// What one task executes.
enum TaskKind {
    /// A single basic operator.
    Basic(HopId),
    /// A generated fused operator (index into the plan's operator list).
    Fused { op_ix: usize },
    /// A hand-coded fused pattern instance (owned, so the graph outlives the
    /// match pass and can be reused across executions).
    Handcoded(HcOperator),
}

/// One schedulable unit.
struct Task {
    kind: TaskKind,
    /// Input hops in gather order (for fused ops: main, sides, scalars).
    deps: Vec<HopId>,
    /// Tasks reading at least one of this task's outputs.
    consumers: Vec<usize>,
    /// Dependency depth (tasks at equal depth are mutually independent).
    level: usize,
}

/// The demand-driven task graph for one DAG under one fusion plan: the
/// immutable, shareable product of [`prepare`]. All per-execution state
/// lives in [`run`]'s local scheduler state, so one graph serves concurrent
/// executions.
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// Demanded leaf hops, materialized inline before scheduling.
    leaves: Vec<HopId>,
    /// Per hop: total read occurrences across tasks, +1 for DAG roots.
    reads: Vec<u32>,
    /// Per task: number of distinct producer tasks that must finish first.
    n_producers: Vec<u32>,
    /// Widest set of same-level tasks (parallelism upper bound).
    max_width: usize,
}

/// Builds the task graph for a DAG: the compile-time half of the scheduled
/// engine. `plan` carries generated fused operators (Gen modes); `patterns`
/// carries hand-coded instances (`Fused` mode); with neither, every live hop
/// schedules as a basic task (`Base`).
pub fn prepare(
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    patterns: Option<&FxHashMap<HopId, HcOperator>>,
) -> TaskGraph {
    let mut op_roots: FxHashMap<HopId, usize> = FxHashMap::default();
    if let Some(plan) = plan {
        for (i, f) in plan.operators.iter().enumerate() {
            for &r in &f.roots {
                op_roots.insert(r, i);
            }
        }
    }
    let mut tasks: Vec<Task> = Vec::new();
    let mut leaves: Vec<HopId> = Vec::new();
    let mut reads = vec![0u32; dag.len()];
    // hop → producing task (leaves have none).
    let mut producer: Vec<Option<usize>> = vec![None; dag.len()];
    let mut demanded = vec![false; dag.len()];
    let mut fused_task: FxHashMap<usize, usize> = FxHashMap::default();
    let mut stack: Vec<HopId> = dag.roots().to_vec();
    while let Some(h) = stack.pop() {
        if demanded[h.index()] {
            continue;
        }
        demanded[h.index()] = true;
        let hop = dag.hop(h);
        if hop.kind.is_leaf() {
            leaves.push(h);
            continue;
        }
        if let Some(&op_ix) = op_roots.get(&h) {
            let f = &plan.expect("op_roots implies a plan").operators[op_ix];
            if let Some(&t) = fused_task.get(&op_ix) {
                // Another root of the same operator was demanded first; the
                // existing task already covers this hop.
                producer[h.index()] = Some(t);
                continue;
            }
            let mut deps: Vec<HopId> = Vec::new();
            deps.extend(f.cplan.main.iter());
            deps.extend(f.cplan.sides.iter());
            deps.extend(f.cplan.scalars.iter());
            let t = tasks.len();
            fused_task.insert(op_ix, t);
            for &r in &f.roots {
                producer[r.index()] = Some(t);
                demanded[r.index()] = true;
            }
            demanded[h.index()] = true;
            stack.extend(deps.iter().copied());
            tasks.push(Task {
                kind: TaskKind::Fused { op_ix },
                deps,
                consumers: Vec::new(),
                level: 0,
            });
            continue;
        }
        if let Some(hc) = patterns.and_then(|p| p.get(&h)) {
            let t = tasks.len();
            producer[h.index()] = Some(t);
            stack.extend(hc.inputs.iter().copied());
            tasks.push(Task {
                kind: TaskKind::Handcoded(hc.clone()),
                deps: hc.inputs.clone(),
                consumers: Vec::new(),
                level: 0,
            });
            continue;
        }
        let t = tasks.len();
        producer[h.index()] = Some(t);
        stack.extend(hop.inputs.iter().copied());
        tasks.push(Task {
            kind: TaskKind::Basic(h),
            deps: hop.inputs.clone(),
            consumers: Vec::new(),
            level: 0,
        });
    }
    // Read occurrences (+1 per DAG root so outputs survive the execution).
    for t in &tasks {
        for &d in &t.deps {
            reads[d.index()] += 1;
        }
    }
    for &r in dag.roots() {
        reads[r.index()] += 1;
    }
    // Producer→consumer edges over distinct producer tasks.
    let n = tasks.len();
    let mut n_producers = vec![0u32; n];
    let mut seen: Vec<usize> = Vec::new();
    for t in 0..n {
        seen.clear();
        for di in 0..tasks[t].deps.len() {
            let d = tasks[t].deps[di];
            if let Some(p) = producer[d.index()] {
                if !seen.contains(&p) {
                    seen.push(p);
                    n_producers[t] += 1;
                    tasks[p].consumers.push(t);
                }
            }
        }
    }
    // Levels by fixpoint: tasks were created roots-first (demand order), so a
    // producer can appear after its consumers in `tasks` and a single sweep
    // is not enough. Task counts are small; this is compile-side work.
    loop {
        let mut changed = false;
        for t in 0..n {
            let lvl = tasks[t].level + 1;
            for ci in 0..tasks[t].consumers.len() {
                let c = tasks[t].consumers[ci];
                if tasks[c].level < lvl {
                    tasks[c].level = lvl;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut width: FxHashMap<usize, usize> = FxHashMap::default();
    for t in &tasks {
        *width.entry(t.level).or_insert(0) += 1;
    }
    let max_width = width.values().copied().max().unwrap_or(0);
    TaskGraph { tasks, leaves, reads, n_producers, max_width }
}

/// A gathered task input: the value plus whether this task took the last
/// read (and therefore owns the value and may consume or recycle it).
struct SlotIn {
    val: Value,
    owned: bool,
}

/// Shared mutable scheduler state — one instance per [`run`] call, so
/// concurrent executions of the same graph never interfere.
struct EngineState {
    slots: Vec<Option<Value>>,
    reads_left: Vec<u32>,
    producers_left: Vec<u32>,
    ready: Vec<usize>,
    remaining: usize,
    running: usize,
    resident_bytes: usize,
    peak_bytes: usize,
    resident_all_bytes: usize,
    freed_early_bytes: usize,
    parallel_ops: usize,
    poisoned: bool,
}

/// Executes a prepared task graph over bound inputs: the run-time half of
/// the scheduled engine. Workers draw buffers from `pool` and resolve
/// lowered kernels from `kernels` (both engine-owned). Returns the root
/// values in root order plus this call's [`SchedSnapshot`] delta; the same
/// events are also accumulated into `stats`.
#[allow(clippy::too_many_arguments)] // the engine's full execution context
pub fn run(
    graph: &TaskGraph,
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    bindings: &Bindings,
    stats: &ExecStats,
    max_workers: usize,
    pool_handle: &PoolHandle,
    kernels: &Arc<KernelCaches>,
) -> (Vec<Value>, SchedSnapshot) {
    // Per-call tally: pooled requests made by this call's workers (and their
    // band threads) are attributed here, so the returned delta stays exact
    // even when other executions run concurrently on the same engine pool.
    let tally = Arc::new(pool::PoolTally::default());
    let mut st = EngineState {
        slots: vec![None; dag.len()],
        reads_left: graph.reads.clone(),
        producers_left: graph.n_producers.clone(),
        ready: Vec::new(),
        remaining: graph.tasks.len(),
        running: 0,
        resident_bytes: 0,
        peak_bytes: 0,
        resident_all_bytes: 0,
        freed_early_bytes: 0,
        parallel_ops: 0,
        poisoned: false,
    };
    // Materialize demanded leaves inline (cheap: Arc clones of bindings).
    for &l in &graph.leaves {
        let v = interp::eval_op_inputs(dag, l, &[], bindings);
        st.resident_bytes += v.size_in_bytes();
        st.slots[l.index()] = Some(v);
    }
    st.peak_bytes = st.resident_bytes;
    st.resident_all_bytes = st.resident_bytes;
    for (t, &np) in graph.n_producers.iter().enumerate() {
        if np == 0 {
            st.ready.push(t);
        }
    }
    let workers = graph
        .max_width
        .min(par::num_threads())
        .clamp(1, max_workers.max(1))
        .min(graph.tasks.len().max(1));
    let shared = Mutex::new(st);
    let cvar = Condvar::new();
    let run_worker = |w: &Mutex<EngineState>| {
        let _pool = pool::enter_tallied(pool_handle, &tally);
        let _kern = spoof::enter_kernels(kernels);
        worker_loop(w, &cvar, graph, dag, plan, bindings, stats);
    };
    if workers <= 1 {
        run_worker(&shared);
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| run_worker(&shared));
            }
        });
    }
    let mut st = lock(&shared);
    assert!(!st.poisoned, "scheduler worker panicked");
    let snapshot = SchedSnapshot {
        parallel_ops: st.parallel_ops,
        bytes_freed_early: st.freed_early_bytes,
        peak_bytes: st.peak_bytes,
        resident_all_bytes: st.resident_all_bytes,
        pool_hits: tally.hits() as usize,
        pool_misses: tally.misses() as usize,
    };
    stats.record_sched(&snapshot);
    // Roots are moved out, never cloned.
    let roots =
        dag.roots().iter().map(|r| st.slots[r.index()].take().expect("root computed")).collect();
    (roots, snapshot)
}

fn lock<'a>(m: &'a Mutex<EngineState>) -> MutexGuard<'a, EngineState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[allow(clippy::too_many_arguments)] // threads the whole engine through the worker
fn worker_loop(
    shared: &Mutex<EngineState>,
    cvar: &Condvar,
    graph: &TaskGraph,
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    bindings: &Bindings,
    stats: &ExecStats,
) {
    let mut st = lock(shared);
    loop {
        let t = loop {
            if st.remaining == 0 || st.poisoned {
                cvar.notify_all();
                return;
            }
            if let Some(t) = st.ready.pop() {
                break t;
            }
            st = cvar.wait(st).unwrap_or_else(|e| e.into_inner());
        };
        let task = &graph.tasks[t];
        st.running += 1;
        if st.running > 1 {
            st.parallel_ops += 1;
        }
        // Gather inputs; the last reader takes the value owned and frees the
        // slot immediately (liveness-driven early free). The *bytes* of dying
        // inputs stay counted until the task completes: during execution the
        // input and output buffers coexist, and the tracked peak must cover
        // that spike (for in-place reuse this over-counts one buffer — the
        // conservative direction for the footprint gate).
        let mut dying_bytes = 0usize;
        let mut ins: Vec<SlotIn> = Vec::with_capacity(task.deps.len());
        for &d in &task.deps {
            let di = d.index();
            st.reads_left[di] -= 1;
            let dying = st.reads_left[di] == 0;
            let slot = &mut st.slots[di];
            let val = if dying {
                let v = slot.take().expect("input computed");
                dying_bytes += v.size_in_bytes();
                v
            } else {
                slot.clone().expect("input computed")
            };
            ins.push(SlotIn { val, owned: dying });
        }
        drop(st);

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_task(task, ins, dag, plan, bindings, stats)
        }));

        st = lock(shared);
        match result {
            Ok(outs) => {
                for (h, v) in outs {
                    if st.reads_left[h.index()] == 0 {
                        // An undemanded extra output of a multi-root fused
                        // operator: recycle it instead of keeping it resident.
                        v.recycle();
                        continue;
                    }
                    st.resident_bytes += v.size_in_bytes();
                    st.resident_all_bytes += v.size_in_bytes();
                    if st.resident_bytes > st.peak_bytes {
                        st.peak_bytes = st.resident_bytes;
                    }
                    st.slots[h.index()] = Some(v);
                }
                // Now the dying inputs are really gone.
                st.resident_bytes -= dying_bytes;
                if st.remaining > 1 {
                    st.freed_early_bytes += dying_bytes;
                }
                for &c in &task.consumers {
                    st.producers_left[c] -= 1;
                    if st.producers_left[c] == 0 {
                        st.ready.push(c);
                    }
                }
                st.running -= 1;
                st.remaining -= 1;
                cvar.notify_all();
            }
            Err(payload) => {
                st.poisoned = true;
                st.remaining = 0;
                cvar.notify_all();
                drop(st);
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Runs one task over its gathered inputs; returns `(hop, value)` stores.
fn run_task(
    task: &Task,
    ins: Vec<SlotIn>,
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    bindings: &Bindings,
    stats: &ExecStats,
) -> Vec<(HopId, Value)> {
    match &task.kind {
        TaskKind::Basic(h) => {
            stats.basic_ops.fetch_add(1, Ordering::Relaxed);
            let v = eval_basic(dag, *h, ins, bindings);
            vec![(*h, v)]
        }
        TaskKind::Handcoded(hc) => {
            stats.handcoded_ops.fetch_add(1, Ordering::Relaxed);
            let vals: Vec<Value> = ins.iter().map(|s| s.val.clone()).collect();
            let v = handcoded::exec_operator(hc, &vals);
            // Drop the clones first, or the owned inputs are never uniquely
            // held and recycling silently degrades to a plain drop.
            drop(vals);
            recycle_all(ins);
            vec![(hc.root, v)]
        }
        TaskKind::Fused { op_ix } => {
            stats.fused_ops.fetch_add(1, Ordering::Relaxed);
            let f = &plan.expect("fused task implies a plan").operators[*op_ix];
            let n_main = usize::from(f.cplan.main.is_some());
            let n_sides = f.cplan.sides.len();
            let main_val = ins.first().filter(|_| n_main == 1).map(|s| s.val.as_matrix());
            let side_mats: Vec<Matrix> =
                ins[n_main..n_main + n_sides].iter().map(|s| s.val.as_matrix()).collect();
            let sides: Vec<SideInput> = side_mats.iter().map(SideInput::bind).collect();
            let scalars: Vec<f64> =
                ins[n_main + n_sides..].iter().map(|s| s.val.as_scalar()).collect();
            let outs = spoof::execute(
                &f.op.spec,
                main_val.as_ref(),
                &sides,
                &scalars,
                f.cplan.iter_rows,
                f.cplan.iter_cols,
            );
            drop(sides);
            drop(side_mats);
            drop(main_val);
            recycle_all(ins);
            f.roots
                .iter()
                .enumerate()
                .map(|(slot, &r)| {
                    let m = &outs[slot];
                    let v = if dag.hop(r).is_scalar() && m.is_scalar_shaped() {
                        Value::Scalar(m.get(0, 0))
                    } else {
                        Value::Matrix(m.clone())
                    };
                    (r, v)
                })
                .collect()
        }
    }
}

/// Returns the dense buffers of owned (dying) inputs to the pool.
fn recycle_all(ins: Vec<SlotIn>) {
    for s in ins {
        if s.owned {
            s.val.recycle();
        }
    }
}

/// Evaluates a basic operator, reusing a dying dense input buffer in place
/// for the dominant same-shape element-wise operators. The in-place variants
/// are bitwise-identical to the out-of-place kernels `eval_op` dispatches to,
/// so scheduled results match the sequential oracle exactly.
fn eval_basic(dag: &HopDag, h: HopId, mut ins: Vec<SlotIn>, bindings: &Bindings) -> Value {
    let kind = &dag.hop(h).kind;
    let in_place_candidate =
        !ins.is_empty() && ins[0].owned && matches!(ins[0].val, Value::Matrix(Matrix::Dense(_)));
    if in_place_candidate {
        match kind {
            OpKind::Binary { op } => {
                let op = *op;
                let a = match std::mem::replace(&mut ins[0].val, Value::Scalar(0.0)) {
                    Value::Matrix(m) => m,
                    Value::Scalar(_) => unreachable!("checked above"),
                };
                match a.try_into_dense() {
                    Ok(ad) => {
                        let out = lops::binary_assign(ad, &ins[1].val.as_matrix(), op);
                        ins.swap_remove(0);
                        recycle_all(ins);
                        return Value::Matrix(out);
                    }
                    Err(m) => ins[0].val = Value::Matrix(m),
                }
            }
            OpKind::Unary { op } => {
                let op = *op;
                let a = match std::mem::replace(&mut ins[0].val, Value::Scalar(0.0)) {
                    Value::Matrix(m) => m,
                    Value::Scalar(_) => unreachable!("checked above"),
                };
                match a.try_into_dense() {
                    Ok(ad) => {
                        recycle_all(ins);
                        return Value::Matrix(lops::unary_assign(ad, op));
                    }
                    Err(m) => ins[0].val = Value::Matrix(m),
                }
            }
            _ => {}
        }
    }
    let vals: Vec<Value> = ins.iter().map(|s| s.val.clone()).collect();
    let v = interp::eval_op_inputs(dag, h, &vals, bindings);
    drop(vals);
    recycle_all(ins);
    v
}
