//! The scheduled execution engine: liveness-aware, pool-backed, parallel
//! across independent operators — and out-of-core under a memory budget.
//!
//! This replaces the seed's recursive lazy materializer (which held every
//! intermediate alive for the whole DAG and recursed serially) with an
//! explicit task graph:
//!
//! * every demanded hop maps to one task — a **basic** operator, a
//!   **generated fused** operator from the fusion plan (one task per
//!   operator, covering all its roots), or a **hand-coded** pattern
//!   instance — with explicit input dependencies;
//! * value slots are **refcounted by read occurrences**: the last reader
//!   takes the value owned, the slot is freed immediately, and uniquely
//!   held dense buffers return to the engine's buffer pool (or are reused
//!   *in place* as the output of same-shape element-wise operators);
//! * a **ready set** of jobs with no unmet dependencies is drained by a
//!   small worker pool (scoped threads sharing the engine's buffer pool),
//!   so independent DAG branches execute concurrently while each kernel
//!   keeps its internal row-band parallelism;
//! * **roots are moved** (never cloned) out of their slots at the end;
//! * resident bytes are tracked on every store/free, yielding the
//!   per-execution peak footprint surfaced through [`ExecStats`] and the
//!   per-call [`SchedSnapshot`].
//!
//! ## Slot residency and the spill tier
//!
//! Each slot is a small state machine (`Slot`): `Resident` values live in
//! memory, `Spilled` values live in the engine's
//! [`fusedml_linalg::spill::TieredStore`] as temp files, and
//! `Loading`/`Evicting` mark in-flight byte movement (file I/O never runs
//! under the scheduler lock — waiters block on the condvar). Before a task
//! dispatches, the scheduler **reserves** its output estimate plus any
//! spilled inputs against the store's budget, evicting victims by
//! **farthest next use** (the compile-time ready-set level of the nearest
//! unfinished consumer; DAG roots nothing will read again evict first).
//! Only uniquely held values are victims — spilling a shared `Arc` (a leaf
//! binding, an input some running task gathered) would free nothing.
//!
//! When a task becomes ready with spilled inputs, **reload jobs** are pushed
//! onto the same ready queue, so the worker pool overlaps those reads with
//! execution of the rest of the level (async prefetch, bounded by the
//! engine's prefetch depth); a consumer that outruns its prefetch faults the
//! input back synchronously. Leaf bindings larger than the whole budget are
//! not charged against it at all (`Slot::Streamed`): they are caller-owned
//! `Arc` clones that kernels already walk band-by-band by reference, so
//! spilling them would double their footprint instead of shrinking it.
//!
//! The task graph is **built once at compile time** ([`prepare`]) and
//! **executed many times** ([`run`]): `Engine::compile` prepares the graph
//! for a `CompiledScript`, whose `execute` only allocates the per-call
//! mutable state — which is why one compiled script can execute from many
//! threads simultaneously. Spilling changes *where* values wait, never what
//! they contain: the spill tier round-trips bit-exactly, so a run under a
//! tight budget is bitwise-identical to an unbounded one (pinned by the
//! `spill_vs_resident_property` differential test).
//!
//! The seed's sequential materializer survives as
//! `Engine::execute_with_plan_sequential`, the oracle the differential
//! property tests compare against (results must be *bitwise* equal).
//!
//! ## Failure semantics
//!
//! [`run`] returns `Result`: a worker panic, an exhausted spill retry, or an
//! injected fault becomes a typed [`ExecError`] instead of tearing down the
//! process. The first failure wins (`fail`): it cancels every pending job,
//! zeroes `remaining`, and wakes all condvar waiters, who observe the
//! failure and bail instead of blocking on I/O that will never complete.
//! In-flight tasks drain normally (their outputs are recycled), and after
//! the workers join, a cleanup sweep returns every surviving slot value to
//! the buffer pool, discards this run's spill tokens, and sweeps orphaned
//! temp files — so the engine is bitwise-correct for the next execution and
//! one poisoned request never kills sibling serving threads.
//!
//! Transient spill-tier failures don't surface at all when avoidable: writes
//! and reads retry with backoff ([`SPILL_RETRIES`]); exhausted *write*
//! retries degrade the run to resident-only execution; exhausted *read*
//! retries are fatal to the run (the value exists nowhere else) but still
//! typed. All fault-injection sites ([`fusedml_linalg::fault::FaultSite`])
//! draw their decisions under the scheduler lock, so a seeded `FaultPlan`
//! replays deterministically per site-visit index.

// The scheduler is the one module where a stray unwrap can strand a worker
// pool: panics here cross the containment boundary the error module
// promises. The workspace bans `unwrap`/`expect` via `clippy.toml`
// (disallowed-methods); this module opts into enforcement at deny level.
#![deny(clippy::disallowed_methods)]

use crate::error::{panic_message, ExecError};
use crate::exec::{ExecStats, SchedSnapshot};
use crate::handcoded::{self, HcOperator};
use crate::side::SideInput;
use crate::spoof;
use fusedml_core::optimizer::FusionPlan;
use fusedml_core::plancache::KernelCaches;
use fusedml_core::util::FxHashMap;
use fusedml_hop::interp::{self, Bindings};
use fusedml_hop::{HopDag, HopId, OpKind};
use fusedml_linalg::fault::{FaultPlan, FaultSite};
use fusedml_linalg::matrix::Value;
use fusedml_linalg::ops as lops;
use fusedml_linalg::spill::{SpillToken, TieredStore, MIN_SPILL_BYTES};
use fusedml_linalg::{par, pool, Matrix};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default upper bound on scheduler workers: kernels parallelize internally
/// over row bands, so inter-operator parallelism beyond a few ways
/// oversubscribes. Engines can override via `EngineBuilder::workers`.
pub const DEFAULT_MAX_WORKERS: usize = 4;

/// Default bound on queued/in-flight asynchronous reload jobs. Beyond this,
/// consumers fault their spilled inputs back synchronously.
pub const DEFAULT_PREFETCH_DEPTH: usize = 4;

/// Retries (beyond the first attempt) for a failing spill-tier read or
/// write, with exponential backoff, before the failure is treated as
/// permanent: writes then degrade the run to resident-only, reads surface a
/// typed [`ExecError::SpillIo`].
pub const SPILL_RETRIES: usize = 3;

/// Sleeps briefly before spill-retry attempt `attempt` (1-based): 100µs,
/// 200µs, 400µs, … — enough to ride out transient contention without
/// stalling a run that is going to fail anyway.
fn backoff(attempt: usize) {
    std::thread::sleep(Duration::from_micros(50u64 << attempt.min(6)));
}

/// The engine-owned execution context threaded through [`run`]: statistics,
/// the two-tier store (pool + spill files), kernel caches, and the worker /
/// prefetch limits. Bundling these keeps the `run` signature stable as the
/// engine grows.
pub struct ExecCtx<'a> {
    pub stats: &'a ExecStats,
    pub max_workers: usize,
    pub store: &'a TieredStore,
    pub kernels: &'a Arc<KernelCaches>,
    pub prefetch_depth: usize,
    /// Engine-level fault-injection plan (chaos testing); `None` in
    /// production. The scheduler draws its `Alloc`/`TaskExec`/`TaskPanic`/
    /// `ShardExec` decisions here; the store draws the spill-I/O sites
    /// itself.
    pub faults: Option<&'a Arc<FaultPlan>>,
    /// The engine's shard pool; `None` runs every operator locally. Fused
    /// tasks whose graph entry carries a [`crate::shard::ShardSpec`] execute
    /// across it.
    pub shards: Option<&'a crate::shard::ShardPool>,
}

/// What one task executes.
pub(crate) enum TaskKind {
    /// A single basic operator.
    Basic(HopId),
    /// A generated fused operator (index into the plan's operator list).
    Fused { op_ix: usize },
    /// A hand-coded fused pattern instance (owned, so the graph outlives the
    /// match pass and can be reused across executions).
    Handcoded(HcOperator),
}

/// One schedulable unit.
pub(crate) struct Task {
    pub(crate) kind: TaskKind,
    /// Input hops in gather order (for fused ops: main, sides, scalars).
    pub(crate) deps: Vec<HopId>,
    /// Tasks reading at least one of this task's outputs.
    consumers: Vec<usize>,
    /// Dependency depth (tasks at equal depth are mutually independent).
    pub(crate) level: usize,
}

/// The demand-driven task graph for one DAG under one fusion plan: the
/// immutable, shareable product of [`prepare`]. All per-execution state
/// lives in [`run`]'s local scheduler state, so one graph serves concurrent
/// executions.
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    /// Demanded leaf hops, materialized inline before scheduling.
    leaves: Vec<HopId>,
    /// Per hop: total read occurrences across tasks, +1 for DAG roots.
    pub(crate) reads: Vec<u32>,
    /// Per task: number of distinct producer tasks that must finish first.
    pub(crate) n_producers: Vec<u32>,
    /// Widest set of same-level tasks (parallelism upper bound).
    max_width: usize,
    /// Per hop: the tasks reading it. Victim scoring derives a value's next
    /// use from the levels of its unfinished consumers.
    pub(crate) consumers_of: Vec<Vec<usize>>,
    /// Per task: compile-time estimate of its output bytes (from the hop
    /// size facts), used for pre-dispatch budget reservation.
    pub(crate) task_out_bytes: Vec<usize>,
    /// Per hop: statically spill-eligible — a non-leaf value at least
    /// [`MIN_SPILL_BYTES`] large by the compile-time estimate. Leaf bindings
    /// are caller-owned `Arc` clones (spilling frees nothing), and
    /// sub-threshold values churn the spill tier for no relief. The victim
    /// picker re-checks the dynamic conditions (unique ownership, actual
    /// size) at eviction time; this flag is the static precondition the
    /// verifier re-derives.
    pub(crate) spill_ok: Vec<bool>,
    /// Per task: the planner's sharding decision (`None` = run locally).
    /// Only ever `Some` for fused tasks; the verifier re-derives each spec
    /// from the operator to reject a corrupted plan.
    pub(crate) shard: Vec<Option<crate::shard::ShardSpec>>,
}

impl TaskGraph {
    /// Mutable refcount access for verifier mutation tests only: lets a test
    /// corrupt a compiled graph to prove the verifier rejects it.
    #[doc(hidden)]
    pub fn reads_mut(&mut self) -> &mut Vec<u32> {
        &mut self.reads
    }

    /// See [`TaskGraph::reads_mut`].
    #[doc(hidden)]
    pub fn task_out_bytes_mut(&mut self) -> &mut Vec<usize> {
        &mut self.task_out_bytes
    }

    /// See [`TaskGraph::reads_mut`].
    #[doc(hidden)]
    pub fn spill_ok_mut(&mut self) -> &mut Vec<bool> {
        &mut self.spill_ok
    }

    /// Installs the planner's sharding decisions, index-aligned with the
    /// plan's operator list (see [`crate::shard::plan_shards`]); fused tasks
    /// pick up their operator's spec, everything else stays local.
    pub fn set_shard_specs(&mut self, per_op: &[Option<crate::shard::ShardSpec>]) {
        for (t, task) in self.tasks.iter().enumerate() {
            if let TaskKind::Fused { op_ix } = task.kind {
                self.shard[t] = per_op.get(op_ix).cloned().flatten();
            }
        }
    }

    /// The per-task sharding decisions (`None` = local execution).
    pub fn shard_specs(&self) -> &[Option<crate::shard::ShardSpec>] {
        &self.shard
    }
}

/// Builds the task graph for a DAG: the compile-time half of the scheduled
/// engine. `plan` carries generated fused operators (Gen modes); `patterns`
/// carries hand-coded instances (`Fused` mode); with neither, every live hop
/// schedules as a basic task (`Base`).
pub fn prepare(
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    patterns: Option<&FxHashMap<HopId, HcOperator>>,
) -> TaskGraph {
    let plan_ops = plan.map_or(&[][..], |p| &p.operators[..]);
    let mut op_roots: FxHashMap<HopId, usize> = FxHashMap::default();
    for (i, f) in plan_ops.iter().enumerate() {
        for &r in &f.roots {
            op_roots.insert(r, i);
        }
    }
    let mut tasks: Vec<Task> = Vec::new();
    let mut leaves: Vec<HopId> = Vec::new();
    let mut reads = vec![0u32; dag.len()];
    // hop → producing task (leaves have none).
    let mut producer: Vec<Option<usize>> = vec![None; dag.len()];
    let mut demanded = vec![false; dag.len()];
    let mut fused_task: FxHashMap<usize, usize> = FxHashMap::default();
    let mut stack: Vec<HopId> = dag.roots().to_vec();
    while let Some(h) = stack.pop() {
        if demanded[h.index()] {
            continue;
        }
        demanded[h.index()] = true;
        let hop = dag.hop(h);
        if hop.kind.is_leaf() {
            leaves.push(h);
            continue;
        }
        if let Some(&op_ix) = op_roots.get(&h) {
            let f = &plan_ops[op_ix];
            if let Some(&t) = fused_task.get(&op_ix) {
                // Another root of the same operator was demanded first; the
                // existing task already covers this hop.
                producer[h.index()] = Some(t);
                continue;
            }
            let mut deps: Vec<HopId> = Vec::new();
            deps.extend(f.cplan.main.iter());
            deps.extend(f.cplan.sides.iter());
            deps.extend(f.cplan.scalars.iter());
            let t = tasks.len();
            fused_task.insert(op_ix, t);
            for &r in &f.roots {
                producer[r.index()] = Some(t);
                demanded[r.index()] = true;
            }
            demanded[h.index()] = true;
            stack.extend(deps.iter().copied());
            tasks.push(Task {
                kind: TaskKind::Fused { op_ix },
                deps,
                consumers: Vec::new(),
                level: 0,
            });
            continue;
        }
        if let Some(hc) = patterns.and_then(|p| p.get(&h)) {
            let t = tasks.len();
            producer[h.index()] = Some(t);
            stack.extend(hc.inputs.iter().copied());
            tasks.push(Task {
                kind: TaskKind::Handcoded(hc.clone()),
                deps: hc.inputs.clone(),
                consumers: Vec::new(),
                level: 0,
            });
            continue;
        }
        let t = tasks.len();
        producer[h.index()] = Some(t);
        stack.extend(hop.inputs.iter().copied());
        tasks.push(Task {
            kind: TaskKind::Basic(h),
            deps: hop.inputs.clone(),
            consumers: Vec::new(),
            level: 0,
        });
    }
    // Read occurrences (+1 per DAG root so outputs survive the execution).
    for t in &tasks {
        for &d in &t.deps {
            reads[d.index()] += 1;
        }
    }
    for &r in dag.roots() {
        reads[r.index()] += 1;
    }
    // Producer→consumer edges over distinct producer tasks.
    let n = tasks.len();
    let mut n_producers = vec![0u32; n];
    let mut seen: Vec<usize> = Vec::new();
    for t in 0..n {
        seen.clear();
        for di in 0..tasks[t].deps.len() {
            let d = tasks[t].deps[di];
            if let Some(p) = producer[d.index()] {
                if !seen.contains(&p) {
                    seen.push(p);
                    n_producers[t] += 1;
                    tasks[p].consumers.push(t);
                }
            }
        }
    }
    // Levels by fixpoint: tasks were created roots-first (demand order), so a
    // producer can appear after its consumers in `tasks` and a single sweep
    // is not enough. Task counts are small; this is compile-side work.
    loop {
        let mut changed = false;
        for t in 0..n {
            let lvl = tasks[t].level + 1;
            for ci in 0..tasks[t].consumers.len() {
                let c = tasks[t].consumers[ci];
                if tasks[c].level < lvl {
                    tasks[c].level = lvl;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let mut width: FxHashMap<usize, usize> = FxHashMap::default();
    for t in &tasks {
        *width.entry(t.level).or_insert(0) += 1;
    }
    let max_width = width.values().copied().max().unwrap_or(0);
    // Spill-side compile facts: who reads each hop, and how large each
    // task's output is expected to be.
    let mut consumers_of: Vec<Vec<usize>> = vec![Vec::new(); dag.len()];
    for (t, task) in tasks.iter().enumerate() {
        for &d in &task.deps {
            if consumers_of[d.index()].last() != Some(&t) {
                consumers_of[d.index()].push(t);
            }
        }
    }
    let est = |h: HopId| dag.hop(h).size.bytes().max(0.0) as usize;
    let task_out_bytes = tasks
        .iter()
        .map(|t| match &t.kind {
            TaskKind::Basic(h) => est(*h),
            TaskKind::Handcoded(hc) => est(hc.root),
            TaskKind::Fused { op_ix } => plan_ops[*op_ix].roots.iter().map(|&r| est(r)).sum(),
        })
        .collect();
    let spill_ok = dag
        .iter()
        .map(|h| !h.kind.is_leaf() && h.size.bytes().max(0.0) as usize >= MIN_SPILL_BYTES)
        .collect();
    let shard = vec![None; n];
    TaskGraph {
        tasks,
        leaves,
        reads,
        n_producers,
        max_width,
        consumers_of,
        task_out_bytes,
        spill_ok,
        shard,
    }
}

/// A gathered task input: the value plus whether this task took the last
/// read (and therefore owns the value and may consume or recycle it).
struct SlotIn {
    val: Value,
    owned: bool,
}

/// One unit of work on the ready queue: execute a task, or reload a spilled
/// slot ahead of its consumer (async prefetch on the same worker pool).
enum Job {
    Exec(usize),
    Reload(usize),
}

/// The residency state machine of one value slot. File I/O (`Loading`,
/// `Evicting`) always happens with the scheduler lock released; readers that
/// hit an in-flight state wait on the condvar.
enum Slot {
    Empty,
    /// In memory, charged against the resident budget.
    Resident(Value),
    /// A caller-owned leaf binding larger than the whole budget: kernels
    /// stream it band-by-band by reference, so it is neither charged nor
    /// ever picked as a spill victim (the caller's `Arc` keeps it alive
    /// regardless — spilling it would *add* a file without freeing bytes).
    Streamed(Value),
    /// On disk in the engine's spill tier.
    Spilled(SpillToken),
    /// A worker is reading it back from the spill tier.
    Loading,
    /// A worker is serializing it out to the spill tier.
    Evicting,
}

/// Shared mutable scheduler state — one instance per [`run`] call, so
/// concurrent executions of the same graph never interfere.
struct EngineState {
    slots: Vec<Slot>,
    reads_left: Vec<u32>,
    producers_left: Vec<u32>,
    ready: Vec<Job>,
    remaining: usize,
    running: usize,
    resident_bytes: usize,
    peak_bytes: usize,
    resident_all_bytes: usize,
    freed_early_bytes: usize,
    parallel_ops: usize,
    /// The first failure of this run. Once set, `remaining` is zeroed and
    /// the ready queue cleared: workers drain in-flight tasks (discarding
    /// their outputs) and exit; condvar waiters observe it and bail.
    failure: Option<ExecError>,
    /// Per task: completed (its outputs' next-use levels are settled).
    tasks_done: Vec<bool>,
    /// Reload jobs queued or in flight (bounds prefetch).
    reloads_queued: usize,
    /// Set when a spill write fails (disk full): degrade to best-effort
    /// resident execution instead of failing the run.
    spill_disabled: bool,
    spilled_bytes: usize,
    reloaded_bytes: usize,
    spill_faults: usize,
    prefetch_hits: usize,
    spill_stall_us: usize,
    streamed_leaf_bytes: usize,
    /// Spill I/O attempts that failed and were retried (whether or not a
    /// later attempt succeeded).
    spill_retries: usize,
    /// Faults the engine's `FaultPlan` injected into this run.
    injected_faults: usize,
    /// Fused operators executed across the shard pool this run.
    sharded_ops: usize,
    /// High-water shards used by any single sharded operator this run.
    shards_used: usize,
    /// Bytes of side inputs broadcast to shards this run.
    shard_broadcast_bytes: usize,
    /// Bytes of per-shard partial outputs merged this run.
    shard_partial_bytes: usize,
    /// Microseconds spent merging shard partials this run.
    shard_merge_us: usize,
    /// High-water shard skew (slowest/mean ×1000) this run.
    shard_skew_milli: usize,
    /// Debug-build residency event trace: every slot transition, recorded
    /// under the scheduler lock (totally ordered), replayed against the
    /// state-machine spec ([`crate::verify::check_residency_trace`]) after
    /// the run. `None` in release builds — zero cost on the hot path.
    trace: Option<Vec<crate::verify::SlotTransition>>,
}

impl EngineState {
    /// Notes slot `slot` moving from its current state to `to`. Callers
    /// invoke this immediately before mutating the slot, while they hold the
    /// scheduler lock (or before workers start), so `from` is read off the
    /// live slot and the trace stays totally ordered.
    #[inline]
    fn note(&mut self, slot: usize, to: crate::verify::SlotState) {
        if let Some(trace) = self.trace.as_mut() {
            trace.push(crate::verify::SlotTransition {
                slot,
                from: slot_state(&self.slots[slot]),
                to,
            });
        }
    }
}

/// The observable state of a slot (payloads erased) for the trace recorder.
fn slot_state(s: &Slot) -> crate::verify::SlotState {
    use crate::verify::SlotState as S;
    match s {
        Slot::Empty => S::Empty,
        Slot::Resident(_) => S::Resident,
        Slot::Streamed(_) => S::Streamed,
        Slot::Spilled(_) => S::Spilled,
        Slot::Loading => S::Loading,
        Slot::Evicting => S::Evicting,
    }
}

/// Everything a worker needs, borrowed for the scope of one [`run`] call.
struct Ctx<'a> {
    shared: &'a Mutex<EngineState>,
    cvar: &'a Condvar,
    graph: &'a TaskGraph,
    dag: &'a HopDag,
    plan: Option<&'a FusionPlan>,
    bindings: &'a Bindings,
    exec: &'a ExecCtx<'a>,
}

type Guard<'a> = MutexGuard<'a, EngineState>;

/// Executes a prepared task graph over bound inputs: the run-time half of
/// the scheduled engine. Workers draw buffers from the context's store
/// (pool + spill tier) and resolve lowered kernels from its caches. Returns
/// the root values in root order plus this call's [`SchedSnapshot`] delta;
/// the same events are also accumulated into the context's stats.
///
/// On failure (worker panic, exhausted spill-read retries, injected fault)
/// returns the first [`ExecError`] — after sweeping every slot back to the
/// pool and discarding this run's spill files, so the engine stays correct
/// for subsequent executions.
pub fn run(
    graph: &TaskGraph,
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    bindings: &Bindings,
    cx: &ExecCtx<'_>,
) -> Result<(Vec<Value>, SchedSnapshot), ExecError> {
    // Per-call tally: pooled requests made by this call's workers (and their
    // band threads) are attributed here, so the returned delta stays exact
    // even when other executions run concurrently on the same engine pool.
    let tally = Arc::new(pool::PoolTally::default());
    let mut st = EngineState {
        slots: (0..dag.len()).map(|_| Slot::Empty).collect(),
        reads_left: graph.reads.clone(),
        producers_left: graph.n_producers.clone(),
        ready: Vec::new(),
        remaining: graph.tasks.len(),
        running: 0,
        resident_bytes: 0,
        peak_bytes: 0,
        resident_all_bytes: 0,
        freed_early_bytes: 0,
        parallel_ops: 0,
        failure: None,
        tasks_done: vec![false; graph.tasks.len()],
        reloads_queued: 0,
        spill_disabled: false,
        spilled_bytes: 0,
        reloaded_bytes: 0,
        spill_faults: 0,
        prefetch_hits: 0,
        spill_stall_us: 0,
        streamed_leaf_bytes: 0,
        spill_retries: 0,
        injected_faults: 0,
        sharded_ops: 0,
        shards_used: 0,
        shard_broadcast_bytes: 0,
        shard_partial_bytes: 0,
        shard_merge_us: 0,
        shard_skew_milli: 0,
        trace: cfg!(debug_assertions).then(Vec::new),
    };
    // Materialize demanded leaves inline (cheap: Arc clones of bindings).
    // Leaves larger than the entire budget are streamed, not charged (see
    // `Slot::Streamed`); everything else is resident like any other value.
    let spill_on = cx.store.enabled();
    for &l in &graph.leaves {
        let v = interp::eval_op_inputs(dag, l, &[], bindings);
        let sz = v.size_in_bytes();
        if spill_on && sz > cx.store.threshold() {
            st.streamed_leaf_bytes += sz;
            st.note(l.index(), crate::verify::SlotState::Streamed);
            st.slots[l.index()] = Slot::Streamed(v);
        } else {
            st.resident_bytes += sz;
            st.note(l.index(), crate::verify::SlotState::Resident);
            st.slots[l.index()] = Slot::Resident(v);
        }
    }
    st.peak_bytes = st.resident_bytes;
    st.resident_all_bytes = st.resident_bytes;
    for (t, &np) in graph.n_producers.iter().enumerate() {
        if np == 0 {
            st.ready.push(Job::Exec(t));
        }
    }
    let workers = graph
        .max_width
        .min(par::num_threads())
        .clamp(1, cx.max_workers.max(1))
        .min(graph.tasks.len().max(1));
    let shared = Mutex::new(st);
    let cvar = Condvar::new();
    let wcx = Ctx { shared: &shared, cvar: &cvar, graph, dag, plan, bindings, exec: cx };
    let run_worker = || {
        let _pool = pool::enter_tallied(cx.store.pool(), &tally);
        let _kern = spoof::enter_kernels(cx.kernels);
        worker_loop(&wcx);
    };
    if workers <= 1 {
        run_worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(run_worker);
            }
        });
    }
    let mut st = lock(&shared);
    // Roots are moved out, never cloned — faulting back any that were
    // evicted (a held root's next use is "after the DAG", so under pressure
    // roots are the first victims). Root reloads retry like any other spill
    // read; exhausted retries fail the run.
    let mut roots = Vec::with_capacity(dag.roots().len());
    if st.failure.is_none() {
        for &r in dag.roots() {
            st.note(r.index(), crate::verify::SlotState::Empty);
            match std::mem::replace(&mut st.slots[r.index()], Slot::Empty) {
                Slot::Resident(v) | Slot::Streamed(v) => roots.push(v),
                Slot::Spilled(tok) => {
                    let mut retries = 0usize;
                    let loaded = loop {
                        match cx.store.reload(&tok) {
                            Ok(m) => break Ok(m),
                            Err(_) if retries < SPILL_RETRIES => {
                                retries += 1;
                                backoff(retries);
                            }
                            Err(e) => break Err(e),
                        }
                    };
                    st.spill_retries += retries;
                    match loaded {
                        Ok(m) => {
                            st.spill_faults += 1;
                            st.reloaded_bytes += tok.file_bytes();
                            roots.push(Value::Matrix(m));
                        }
                        Err(e) => {
                            cx.store.discard(&tok);
                            st.failure = Some(ExecError::SpillIo {
                                op: format!("root hop {}", r.index()),
                                during: "read",
                                source: e,
                            });
                            break;
                        }
                    }
                }
                _ => unreachable!("root computed"),
            }
        }
    }
    if st.failure.is_some() {
        // Failed run: leave the engine exactly as reusable as before the
        // call. Every surviving value goes back to the pool, every spill
        // token of this run is discarded, and any orphaned temp file (e.g.
        // from a worker killed mid-write) is swept.
        let _pool = pool::enter_tallied(cx.store.pool(), &tally);
        for v in roots.drain(..) {
            v.recycle();
        }
        for i in 0..st.slots.len() {
            if !matches!(st.slots[i], Slot::Empty) {
                st.note(i, crate::verify::SlotState::Empty);
            }
            match std::mem::replace(&mut st.slots[i], Slot::Empty) {
                Slot::Resident(v) | Slot::Streamed(v) => v.recycle(),
                Slot::Spilled(tok) => cx.store.discard(&tok),
                Slot::Empty | Slot::Loading | Slot::Evicting => {}
            }
        }
        cx.store.sweep_orphans();
    }
    // Replay the residency trace against the state-machine spec. The trace
    // is only recorded in debug builds, so this can never fire in release;
    // in tests a violated lifecycle invariant aborts loudly.
    if let Some(trace) = st.trace.take() {
        if let Err(e) = crate::verify::check_residency_trace(st.slots.len(), &trace) {
            panic!("residency trace violation: {e}");
        }
    }
    let snapshot = SchedSnapshot {
        parallel_ops: st.parallel_ops,
        bytes_freed_early: st.freed_early_bytes,
        peak_bytes: st.peak_bytes,
        resident_all_bytes: st.resident_all_bytes,
        pool_hits: tally.hits() as usize,
        pool_misses: tally.misses() as usize,
        spilled_bytes: st.spilled_bytes,
        reloaded_bytes: st.reloaded_bytes,
        spill_faults: st.spill_faults,
        prefetch_hits: st.prefetch_hits,
        spill_stall_us: st.spill_stall_us,
        streamed_leaf_bytes: st.streamed_leaf_bytes,
        spill_retries: st.spill_retries,
        injected_faults: st.injected_faults,
        degraded: usize::from(st.spill_disabled),
        sharded_ops: st.sharded_ops,
        shards_used: st.shards_used,
        shard_broadcast_bytes: st.shard_broadcast_bytes,
        shard_partial_bytes: st.shard_partial_bytes,
        shard_merge_us: st.shard_merge_us,
        shard_skew_milli: st.shard_skew_milli,
    };
    cx.stats.record_sched(&snapshot);
    match st.failure.take() {
        Some(err) => {
            cx.stats.failed_executions.fetch_add(1, Ordering::Relaxed);
            Err(err)
        }
        None => Ok((roots, snapshot)),
    }
}

/// Marks the run failed: records the first error, cancels every pending
/// job, and wakes all waiters so workers exit and condvar waiters bail
/// instead of blocking on movement that will never complete.
fn fail(cx: &Ctx<'_>, st: &mut Guard<'_>, err: ExecError) {
    if st.failure.is_none() {
        st.failure = Some(err);
    }
    st.remaining = 0;
    st.ready.clear();
    cx.cvar.notify_all();
}

/// Names a task's operator for error reports: enough identity to find the
/// failing op in a log without parsing panic strings.
fn task_label(cx: &Ctx<'_>, task: &Task) -> String {
    match &task.kind {
        TaskKind::Basic(h) => format!("basic {:?} (hop {})", cx.dag.hop(*h).kind, h.index()),
        TaskKind::Handcoded(hc) => format!("handcoded pattern (hop {})", hc.root.index()),
        TaskKind::Fused { op_ix } => format!("fused operator #{op_ix}"),
    }
}

fn lock<'a>(m: &'a Mutex<EngineState>) -> MutexGuard<'a, EngineState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(cx: &Ctx<'_>) {
    let mut st = lock(cx.shared);
    loop {
        let t = loop {
            if st.remaining == 0 || st.failure.is_some() {
                cx.cvar.notify_all();
                return;
            }
            match st.ready.pop() {
                Some(Job::Exec(t)) => break t,
                Some(Job::Reload(h)) => {
                    st = prefetch_reload(cx, st, h);
                }
                None => st = cx.cvar.wait(st).unwrap_or_else(|e| e.into_inner()),
            }
        };
        let task = &cx.graph.tasks[t];
        // Fault site: the pre-dispatch reservation. An injected allocation
        // failure surfaces as a typed budget-exhaustion error (the real
        // reservation path degrades over budget instead of failing).
        if let Some(f) = cx.exec.faults {
            if f.should_inject(FaultSite::Alloc) {
                st.injected_faults += 1;
                let err = ExecError::BudgetExhausted {
                    op: task_label(cx, task),
                    needed: cx.graph.task_out_bytes[t],
                    budget: cx.exec.store.threshold(),
                };
                fail(cx, &mut st, err);
                continue;
            }
        }
        // Reserve budget for this task's output plus any spilled inputs it
        // is about to fault back in, evicting colder slots to make room.
        // (Best effort: concurrent reservations can overlap, and with no
        // eligible victims the task proceeds over budget.)
        if cx.exec.store.enabled() {
            let mut need = cx.graph.task_out_bytes[t];
            for &d in &task.deps {
                if let Slot::Spilled(tok) = &st.slots[d.index()] {
                    need += tok.mem_bytes();
                }
            }
            st = reserve(cx, st, need, &task.deps);
        }
        st.running += 1;
        if st.running > 1 {
            st.parallel_ops += 1;
        }
        // Gather inputs; the last reader takes the value owned and frees the
        // slot immediately (liveness-driven early free). The *bytes* of dying
        // inputs stay counted until the task completes: during execution the
        // input and output buffers coexist, and the tracked peak must cover
        // that spike (for in-place reuse this over-counts one buffer — the
        // conservative direction for the footprint gate).
        let mut dying_bytes = 0usize;
        let mut ins: Vec<SlotIn> = Vec::with_capacity(task.deps.len());
        let mut aborted = false;
        for &d in &task.deps {
            let di = d.index();
            st = ensure_resident(cx, st, di);
            if st.failure.is_some() {
                // The run failed while this task was gathering (possibly
                // while it waited on a reload that will never finish): stop
                // gathering and hand back what it already took.
                aborted = true;
                break;
            }
            st.reads_left[di] -= 1;
            let dying = st.reads_left[di] == 0;
            let val = if dying {
                st.note(di, crate::verify::SlotState::Empty);
                match std::mem::replace(&mut st.slots[di], Slot::Empty) {
                    Slot::Resident(v) => {
                        dying_bytes += v.size_in_bytes();
                        v
                    }
                    // Caller-owned and never charged; nothing to subtract.
                    Slot::Streamed(v) => v,
                    _ => unreachable!("ensure_resident leaves the slot resident"),
                }
            } else {
                match &st.slots[di] {
                    Slot::Resident(v) | Slot::Streamed(v) => v.clone(),
                    _ => unreachable!("ensure_resident leaves the slot resident"),
                }
            };
            ins.push(SlotIn { val, owned: dying });
        }
        // The planner's sharding decision for this task (fused tasks only,
        // and only when the engine actually owns a shard pool).
        let shard_ctx = match &task.kind {
            TaskKind::Fused { .. } => {
                cx.exec.shards.and_then(|pool| cx.graph.shard[t].as_ref().map(|spec| (spec, pool)))
            }
            _ => None,
        };
        // Fault sites: task execution. Decisions are drawn under the lock
        // (atomic with the per-site draw counters), the effects happen in
        // the execution below. `TaskPanic` exercises the full
        // panic-isolation path; `TaskExec` is the non-panicking variant;
        // `ShardExec` (drawn only for sharded tasks) panics one worker shard
        // mid-kernel, exercising cross-shard cancellation.
        let (inject_exec, inject_panic, inject_shard) = match cx.exec.faults {
            Some(f) if !aborted => {
                let p = f.should_inject(FaultSite::TaskPanic);
                let x = !p && f.should_inject(FaultSite::TaskExec);
                let s = shard_ctx.is_some() && !p && !x && f.should_inject(FaultSite::ShardExec);
                if p || x || s {
                    st.injected_faults += 1;
                }
                (x, p, s)
            }
            _ => (false, false, false),
        };
        if aborted || inject_exec {
            st.resident_bytes = st.resident_bytes.saturating_sub(dying_bytes);
            st.running -= 1;
            if inject_exec {
                let err =
                    ExecError::Injected { site: FaultSite::TaskExec, op: task_label(cx, task) };
                fail(cx, &mut st, err);
            }
            drop(st);
            recycle_all(ins);
            st = lock(cx.shared);
            continue;
        }
        drop(st);

        let mut shard_stats: Option<crate::shard::ShardRunStats> = None;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected task panic");
            }
            run_task(
                task,
                ins,
                cx.dag,
                cx.plan,
                cx.bindings,
                cx.exec.stats,
                shard_ctx.map(|(spec, pool)| ShardCtx { spec, pool, inject: inject_shard }),
                &mut shard_stats,
            )
        }));

        st = lock(cx.shared);
        match result {
            Ok(Ok(outs)) => {
                if let Some(ss) = shard_stats {
                    st.sharded_ops += 1;
                    st.shards_used = st.shards_used.max(ss.shards_used);
                    st.shard_broadcast_bytes += ss.broadcast_bytes;
                    st.shard_partial_bytes += ss.partial_bytes;
                    st.shard_merge_us += (ss.merge_nanos / 1000) as usize;
                    st.shard_skew_milli = st.shard_skew_milli.max(ss.skew_milli as usize);
                }
                if st.failure.is_some() {
                    // The run failed while this task was executing: its
                    // outputs have no consumers anymore — recycle them.
                    st.running -= 1;
                    st.resident_bytes = st.resident_bytes.saturating_sub(dying_bytes);
                    drop(st);
                    for (_, v) in outs {
                        v.recycle();
                    }
                    st = lock(cx.shared);
                    continue;
                }
                for (h, v) in outs {
                    if st.reads_left[h.index()] == 0 {
                        // An undemanded extra output of a multi-root fused
                        // operator: recycle it instead of keeping it resident.
                        v.recycle();
                        continue;
                    }
                    st.resident_bytes += v.size_in_bytes();
                    st.resident_all_bytes += v.size_in_bytes();
                    if st.resident_bytes > st.peak_bytes {
                        st.peak_bytes = st.resident_bytes;
                    }
                    st.note(h.index(), crate::verify::SlotState::Resident);
                    st.slots[h.index()] = Slot::Resident(v);
                }
                // Now the dying inputs are really gone.
                st.resident_bytes -= dying_bytes;
                if st.remaining > 1 {
                    st.freed_early_bytes += dying_bytes;
                }
                st.tasks_done[t] = true;
                for &c in &task.consumers {
                    st.producers_left[c] -= 1;
                    if st.producers_left[c] == 0 {
                        st.ready.push(Job::Exec(c));
                        // Async prefetch: queue reloads for the newly ready
                        // task's spilled inputs (pushed after the exec job,
                        // so the LIFO queue starts the reads first) and let
                        // the pool overlap them with other execution.
                        if cx.exec.store.enabled() {
                            for &d in &cx.graph.tasks[c].deps {
                                if st.reloads_queued < cx.exec.prefetch_depth
                                    && matches!(st.slots[d.index()], Slot::Spilled(_))
                                {
                                    st.reloads_queued += 1;
                                    st.ready.push(Job::Reload(d.index()));
                                }
                            }
                        }
                    }
                }
                st.running -= 1;
                st.remaining -= 1;
                cx.cvar.notify_all();
            }
            Ok(Err(err)) => {
                // A typed task failure (a sharded operator's first-failing
                // shard): inputs were already recycled inside `run_task`,
                // siblings were cancelled, and the run fails with the typed
                // error instead of a stringly panic.
                st.running -= 1;
                st.resident_bytes = st.resident_bytes.saturating_sub(dying_bytes);
                fail(cx, &mut st, err);
            }
            Err(payload) => {
                // Contain the panic on this worker: it becomes a typed task
                // failure, never crosses to sibling threads, and the run's
                // post-join sweep restores the engine.
                st.running -= 1;
                st.resident_bytes = st.resident_bytes.saturating_sub(dying_bytes);
                let err = ExecError::WorkerPanic {
                    op: task_label(cx, task),
                    message: panic_message(payload.as_ref()),
                };
                fail(cx, &mut st, err);
            }
        }
    }
}

/// Blocks until slot `di` holds an in-memory value: faults `Spilled` slots
/// back synchronously (counted as a spill fault) and waits out in-flight
/// `Loading`/`Evicting` transitions (counted as stall time).
///
/// If the run fails while this waits, it returns with the slot untouched —
/// the caller observes `st.failure` and aborts its gather. Waiters *must
/// not* block forever on byte movement that will never complete, and must
/// not panic either: the failure is the task's result, not the waiter's.
fn ensure_resident<'a>(cx: &Ctx<'a>, mut st: Guard<'a>, di: usize) -> Guard<'a> {
    loop {
        if st.failure.is_some() {
            return st;
        }
        match &st.slots[di] {
            Slot::Resident(_) | Slot::Streamed(_) => return st,
            Slot::Spilled(_) => {
                st.note(di, crate::verify::SlotState::Loading);
                let tok = match std::mem::replace(&mut st.slots[di], Slot::Loading) {
                    Slot::Spilled(t) => t,
                    _ => unreachable!("just matched"),
                };
                st = fault_in(cx, st, di, tok, false);
            }
            Slot::Loading | Slot::Evicting => {
                let t0 = Instant::now();
                st = cx.cvar.wait(st).unwrap_or_else(|e| e.into_inner());
                st.spill_stall_us += t0.elapsed().as_micros() as usize;
            }
            Slot::Empty => unreachable!("input computed before its consumer"),
        }
    }
}

/// Services one queued reload job. The job may be stale — its consumer can
/// have faulted the slot in (or taken it) before a worker got here — in
/// which case it is a no-op.
fn prefetch_reload<'a>(cx: &Ctx<'a>, mut st: Guard<'a>, di: usize) -> Guard<'a> {
    st.reloads_queued -= 1;
    if !matches!(st.slots[di], Slot::Spilled(_)) {
        return st;
    }
    st.note(di, crate::verify::SlotState::Loading);
    let tok = match std::mem::replace(&mut st.slots[di], Slot::Loading) {
        Slot::Spilled(t) => t,
        _ => unreachable!("just matched"),
    };
    fault_in(cx, st, di, tok, true)
}

/// Reads a spilled slot back into memory (lock released around the file
/// read), reserving budget for the incoming bytes first. Transient read
/// failures retry with backoff; exhausted retries fail the run with a typed
/// error — a lost spill file is unrecoverable (the value exists nowhere
/// else), but it is a *run* failure, not a process one.
fn fault_in<'a>(
    cx: &Ctx<'a>,
    st: Guard<'a>,
    di: usize,
    tok: SpillToken,
    prefetch: bool,
) -> Guard<'a> {
    let mem = tok.mem_bytes();
    let file = tok.file_bytes();
    let mut st = reserve(cx, st, mem, &[]);
    drop(st);
    let mut retries = 0usize;
    let loaded = loop {
        match cx.exec.store.reload(&tok) {
            Ok(m) => break Ok(m),
            Err(_) if retries < SPILL_RETRIES => {
                retries += 1;
                backoff(retries);
            }
            Err(e) => break Err(e),
        }
    };
    st = lock(cx.shared);
    st.spill_retries += retries;
    match loaded {
        Ok(m) => {
            st.resident_bytes += mem;
            if st.resident_bytes > st.peak_bytes {
                st.peak_bytes = st.resident_bytes;
            }
            st.reloaded_bytes += file;
            if prefetch {
                st.prefetch_hits += 1;
            } else {
                st.spill_faults += 1;
            }
            st.note(di, crate::verify::SlotState::Resident);
            st.slots[di] = Slot::Resident(Value::Matrix(m));
            cx.cvar.notify_all();
            st
        }
        Err(e) => {
            cx.exec.store.discard(&tok);
            let err =
                ExecError::SpillIo { op: format!("spilled slot {di}"), during: "read", source: e };
            fail(cx, &mut st, err);
            st
        }
    }
}

/// Evicts farthest-next-use victims until `need` more bytes fit under the
/// store's budget (or no victim remains — the run then proceeds over
/// budget, best effort). `keep` shields the reserving task's own inputs.
fn reserve<'a>(cx: &Ctx<'a>, mut st: Guard<'a>, need: usize, keep: &[HopId]) -> Guard<'a> {
    let store = cx.exec.store;
    if !store.enabled() {
        return st;
    }
    let budget = store.threshold();
    while !st.spill_disabled && st.resident_bytes.saturating_add(need) > budget {
        let Some(h) = pick_victim(cx, &st, keep) else { break };
        st.note(h, crate::verify::SlotState::Evicting);
        let v = match std::mem::replace(&mut st.slots[h], Slot::Evicting) {
            Slot::Resident(v) => v,
            _ => unreachable!("victims are resident"),
        };
        let sz = v.size_in_bytes();
        st.resident_bytes -= sz;
        drop(st);
        let mat = match &v {
            Value::Matrix(m) => m,
            Value::Scalar(_) => unreachable!("victims are matrices"),
        };
        // Transient write failures retry with backoff; nothing is lost
        // either way (the value is still in memory), so exhausted retries
        // degrade the run to resident-only instead of failing it.
        let mut retries = 0usize;
        let res = loop {
            match store.spill(mat) {
                Ok(tok) => break Ok(tok),
                Err(_) if retries < SPILL_RETRIES => {
                    retries += 1;
                    backoff(retries);
                }
                Err(e) => break Err(e),
            }
        };
        st = lock(cx.shared);
        st.spill_retries += retries;
        match res {
            Ok(tok) => {
                st.spilled_bytes += tok.file_bytes();
                st.note(h, crate::verify::SlotState::Spilled);
                st.slots[h] = Slot::Spilled(tok);
                // The slot held the only reference: recycling hands the
                // buffers to the pool, where the eventual reload (or the
                // next output) picks them straight back up.
                v.recycle();
            }
            Err(_) => {
                // Spill tier unavailable (disk full, dir removed): put the
                // value back and degrade to resident-only for this run.
                st.resident_bytes += sz;
                st.note(h, crate::verify::SlotState::Resident);
                st.slots[h] = Slot::Resident(v);
                st.spill_disabled = true;
            }
        }
        cx.cvar.notify_all();
    }
    st
}

/// Picks the resident slot with the farthest next use: the minimum ready-set
/// level over unfinished consumers, `usize::MAX` for values only the root
/// collection will touch again (those evict first). Only uniquely held
/// matrix values at least [`MIN_SPILL_BYTES`] large qualify — shared
/// payloads (leaf bindings, inputs gathered by running tasks) free nothing
/// when dropped. Ties break toward the larger value.
fn pick_victim(cx: &Ctx<'_>, st: &EngineState, keep: &[HopId]) -> Option<usize> {
    let mut best: Option<(usize, usize, usize)> = None; // (next_use, bytes, slot)
    for (h, slot) in st.slots.iter().enumerate() {
        if !cx.graph.spill_ok[h] {
            continue;
        }
        let Slot::Resident(Value::Matrix(m)) = slot else { continue };
        if !m.is_uniquely_owned() {
            continue;
        }
        let bytes = m.size_in_bytes();
        if bytes < MIN_SPILL_BYTES {
            continue;
        }
        if keep.iter().any(|k| k.index() == h) {
            continue;
        }
        let next_use = cx.graph.consumers_of[h]
            .iter()
            .filter(|&&t| !st.tasks_done[t])
            .map(|&t| cx.graph.tasks[t].level)
            .min()
            .unwrap_or(usize::MAX);
        if best.is_none_or(|(bu, bb, _)| (next_use, bytes) > (bu, bb)) {
            best = Some((next_use, bytes, h));
        }
    }
    best.map(|(_, _, h)| h)
}

/// The planner's sharding decision for one fused task, resolved against the
/// engine's live shard pool by the worker loop.
struct ShardCtx<'a> {
    spec: &'a crate::shard::ShardSpec,
    pool: &'a crate::shard::ShardPool,
    /// `ShardExec` fault-injection flag: panic one worker shard mid-kernel.
    inject: bool,
}

/// Runs one task over its gathered inputs; returns `(hop, value)` stores, or
/// a typed error when a sharded operator's worker shard fails.
#[allow(clippy::too_many_arguments)]
fn run_task(
    task: &Task,
    ins: Vec<SlotIn>,
    dag: &HopDag,
    plan: Option<&FusionPlan>,
    bindings: &Bindings,
    stats: &ExecStats,
    shard_ctx: Option<ShardCtx<'_>>,
    shard_stats: &mut Option<crate::shard::ShardRunStats>,
) -> Result<Vec<(HopId, Value)>, ExecError> {
    match &task.kind {
        TaskKind::Basic(h) => {
            stats.basic_ops.fetch_add(1, Ordering::Relaxed);
            let v = eval_basic(dag, *h, ins, bindings);
            Ok(vec![(*h, v)])
        }
        TaskKind::Handcoded(hc) => {
            stats.handcoded_ops.fetch_add(1, Ordering::Relaxed);
            let vals: Vec<Value> = ins.iter().map(|s| s.val.clone()).collect();
            let v = handcoded::exec_operator(hc, &vals);
            // Drop the clones first, or the owned inputs are never uniquely
            // held and recycling silently degrades to a plain drop.
            drop(vals);
            recycle_all(ins);
            Ok(vec![(hc.root, v)])
        }
        TaskKind::Fused { op_ix } => {
            stats.fused_ops.fetch_add(1, Ordering::Relaxed);
            // A fused task without a plan is a compile bug; the panic is
            // contained by the worker's catch_unwind and surfaces as a typed
            // WorkerPanic rather than a process abort.
            let Some(plan) = plan else { unreachable!("fused task implies a plan") };
            let f = &plan.operators[*op_ix];
            let n_main = usize::from(f.cplan.main.is_some());
            let n_sides = f.cplan.sides.len();
            let main_val = ins.first().filter(|_| n_main == 1).map(|s| s.val.as_matrix());
            let side_mats: Vec<Matrix> =
                ins[n_main..n_main + n_sides].iter().map(|s| s.val.as_matrix()).collect();
            let scalars: Vec<f64> =
                ins[n_main + n_sides..].iter().map(|s| s.val.as_scalar()).collect();
            let side_dims: Vec<(usize, usize)> =
                side_mats.iter().map(|m| (m.rows(), m.cols())).collect();
            stats.record_fused_class(spoof::kernel_class(&f.op.spec, &side_dims));
            let outs = match (shard_ctx, &main_val) {
                (Some(sc), Some(main)) => {
                    // The planner chose sharded execution: row-partition the
                    // main, ship sides per the spec's dispositions, merge
                    // per-shard partials on this (driver) thread.
                    let res = sc.pool.execute(
                        &f.op,
                        sc.spec,
                        main,
                        &side_mats,
                        &scalars,
                        f.cplan.iter_cols,
                        sc.inject,
                    );
                    match res {
                        Ok((outs, ss)) => {
                            *shard_stats = Some(ss);
                            outs
                        }
                        Err(e) => {
                            drop(side_mats);
                            drop(main_val);
                            recycle_all(ins);
                            return Err(ExecError::ShardFailure {
                                op: format!("fused operator #{op_ix}"),
                                shard: e.shard,
                                message: e.message,
                            });
                        }
                    }
                }
                _ => {
                    let sides: Vec<SideInput> = side_mats.iter().map(SideInput::bind).collect();
                    let outs = spoof::execute(
                        &f.op.spec,
                        main_val.as_ref(),
                        &sides,
                        &scalars,
                        f.cplan.iter_rows,
                        f.cplan.iter_cols,
                    );
                    drop(sides);
                    outs
                }
            };
            drop(side_mats);
            drop(main_val);
            recycle_all(ins);
            Ok(f.roots
                .iter()
                .enumerate()
                .map(|(slot, &r)| {
                    let m = &outs[slot];
                    let v = if dag.hop(r).is_scalar() && m.is_scalar_shaped() {
                        Value::Scalar(m.get(0, 0))
                    } else {
                        Value::Matrix(m.clone())
                    };
                    (r, v)
                })
                .collect())
        }
    }
}

/// Returns the dense buffers of owned (dying) inputs to the pool.
fn recycle_all(ins: Vec<SlotIn>) {
    for s in ins {
        if s.owned {
            s.val.recycle();
        }
    }
}

/// Evaluates a basic operator, reusing a dying dense input buffer in place
/// for the dominant same-shape element-wise operators. The in-place variants
/// are bitwise-identical to the out-of-place kernels `eval_op` dispatches to,
/// so scheduled results match the sequential oracle exactly.
fn eval_basic(dag: &HopDag, h: HopId, mut ins: Vec<SlotIn>, bindings: &Bindings) -> Value {
    let kind = &dag.hop(h).kind;
    let in_place_candidate =
        !ins.is_empty() && ins[0].owned && matches!(ins[0].val, Value::Matrix(Matrix::Dense(_)));
    if in_place_candidate {
        match kind {
            OpKind::Binary { op } => {
                let op = *op;
                let a = match std::mem::replace(&mut ins[0].val, Value::Scalar(0.0)) {
                    Value::Matrix(m) => m,
                    Value::Scalar(_) => unreachable!("checked above"),
                };
                match a.try_into_dense() {
                    Ok(ad) => {
                        let out = lops::binary_assign(ad, &ins[1].val.as_matrix(), op);
                        ins.swap_remove(0);
                        recycle_all(ins);
                        return Value::Matrix(out);
                    }
                    Err(m) => ins[0].val = Value::Matrix(m),
                }
            }
            OpKind::Unary { op } => {
                let op = *op;
                let a = match std::mem::replace(&mut ins[0].val, Value::Scalar(0.0)) {
                    Value::Matrix(m) => m,
                    Value::Scalar(_) => unreachable!("checked above"),
                };
                match a.try_into_dense() {
                    Ok(ad) => {
                        recycle_all(ins);
                        return Value::Matrix(lops::unary_assign(ad, op));
                    }
                    Err(m) => ins[0].val = Value::Matrix(m),
                }
            }
            _ => {}
        }
    }
    let vals: Vec<Value> = ins.iter().map(|s| s.val.clone()).collect();
    let v = interp::eval_op_inputs(dag, h, &vals, bindings);
    drop(vals);
    recycle_all(ins);
    v
}
