//! The `SpoofRowwise` skeleton: iterates rows of the main input, evaluating
//! the vector register program per row with a preallocated per-thread
//! register buffer (the paper's ring buffer), and applies the Row output
//! variant (paper Table 1, Figure 3(c)).
//!
//! Three vector-execution modes implement the Figure 10 instruction-
//! footprint experiment (DESIGN.md substitution X4): `Vectorized` calls the
//! shared primitives; `Inlined` dispatches per element (inlined generated
//! code); `InterpretedNoJit` adds per-element re-resolution overhead (code
//! too large to JIT).

use crate::side::SideInput;
use fusedml_core::spoof::{Instr, Program, RowExecMode, RowOut, RowSpec};
use fusedml_linalg::ops::{AggOp, BinaryOp, UnaryOp};
use fusedml_linalg::{par, primitives as prim, DenseMatrix, Matrix};

/// Executes a Row operator over the main input's rows.
pub fn execute(spec: &RowSpec, main: &Matrix, sides: &[SideInput], scalars: &[f64]) -> Matrix {
    let n = main.rows();
    let m = main.cols();
    // Pre-densify side matrices used by VecMatMult (row-major access).
    let dense_sides: Vec<Option<Vec<f64>>> = (0..sides.len())
        .map(|s| {
            let used = spec
                .prog
                .instrs
                .iter()
                .any(|i| matches!(i, Instr::VecMatMult { side, .. } if *side == s));
            used.then(|| sides[s].to_dense_values().into_owned())
        })
        .collect();

    match &spec.out {
        RowOut::NoAgg { src } => {
            let k = spec.out_cols;
            let mut out = vec![0.0f64; n * k];
            par::par_rows_mut(&mut out, n, k, m.max(4) * 4, |r, orow| {
                let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                ctx.run_row(r);
                orow.copy_from_slice(&ctx.vregs[*src as usize]);
            });
            Matrix::dense(DenseMatrix::new(n, k, out))
        }
        RowOut::RowAgg { src } => {
            let mut out = vec![0.0f64; n];
            par::par_rows_mut(&mut out, n, 1, m.max(4) * 4, |r, slot| {
                let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                ctx.run_row(r);
                slot[0] = ctx.sregs[*src as usize];
            });
            Matrix::dense(DenseMatrix::new(n, 1, out))
        }
        RowOut::ColAgg { src } => {
            let k = spec.out_cols;
            let acc = par::par_map_reduce(
                n,
                m.max(4) * 4,
                vec![0.0f64; k],
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = vec![0.0f64; k];
                    for r in lo..hi {
                        ctx.run_row(r);
                        prim::vect_add(&ctx.vregs[*src as usize], &mut acc, 0, 0, k);
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(1, k, acc))
        }
        RowOut::FullAgg { src } => {
            let acc = par::par_map_reduce(
                n,
                m.max(4) * 4,
                0.0f64,
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = 0.0;
                    for r in lo..hi {
                        ctx.run_row(r);
                        acc += ctx.sregs[*src as usize];
                    }
                    acc
                },
                |a, b| a + b,
            );
            Matrix::dense(DenseMatrix::filled(1, 1, acc))
        }
        RowOut::OuterColAgg { left, right } => {
            let (orows, ocols) = (spec.out_rows, spec.out_cols);
            let acc = par::par_map_reduce(
                n,
                m.max(4) * 4,
                vec![0.0f64; orows * ocols],
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = vec![0.0f64; orows * ocols];
                    for r in lo..hi {
                        ctx.run_row(r);
                        let l = &ctx.vregs[*left as usize];
                        let rv = &ctx.vregs[*right as usize];
                        prim::vect_outer_mult_add(l, rv, &mut acc, 0, 0, 0, orows, ocols);
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(orows, ocols, acc))
        }
        RowOut::ColAggMultAdd { vec, scalar } => {
            let orows = spec.out_rows;
            let acc = par::par_map_reduce(
                n,
                m.max(4) * 4,
                vec![0.0f64; orows],
                |lo, hi| {
                    let mut ctx = RowCtx::new(spec, main, sides, scalars, &dense_sides);
                    let mut acc = vec![0.0f64; orows];
                    for r in lo..hi {
                        ctx.run_row(r);
                        let v = &ctx.vregs[*vec as usize];
                        let s = ctx.sregs[*scalar as usize];
                        prim::vect_mult_add(v, s, &mut acc, 0, 0, orows);
                    }
                    acc
                },
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
            Matrix::dense(DenseMatrix::new(orows, 1, acc))
        }
    }
}

/// Per-thread execution context: the register "ring buffer".
struct RowCtx<'a> {
    spec: &'a RowSpec,
    main: &'a Matrix,
    sides: &'a [SideInput],
    scalars: &'a [f64],
    dense_sides: &'a [Option<Vec<f64>>],
    sregs: Vec<f64>,
    vregs: Vec<Vec<f64>>,
    main_buf: Vec<f64>,
}

impl<'a> RowCtx<'a> {
    fn new(
        spec: &'a RowSpec,
        main: &'a Matrix,
        sides: &'a [SideInput],
        scalars: &'a [f64],
        dense_sides: &'a [Option<Vec<f64>>],
    ) -> Self {
        RowCtx {
            spec,
            main,
            sides,
            scalars,
            dense_sides,
            sregs: vec![0.0; spec.prog.n_regs as usize],
            vregs: spec.prog.vreg_lens.iter().map(|&l| vec![0.0; l]).collect(),
            main_buf: vec![0.0; main.cols()],
        }
    }

    /// Loads the main row into the context buffer (dense copy or sparse
    /// densification, the `genexecDense`/`genexecSparse` split of §2.2).
    fn load_main_row(&mut self, r: usize) {
        match self.main {
            Matrix::Dense(d) => self.main_buf.copy_from_slice(d.row(r)),
            Matrix::Sparse(s) => {
                self.main_buf.fill(0.0);
                for (c, v) in s.row_iter(r) {
                    self.main_buf[c] = v;
                }
            }
        }
    }

    fn run_row(&mut self, rix: usize) {
        self.load_main_row(rix);
        let prog: &Program = &self.spec.prog;
        let mode = self.spec.exec_mode;
        for ins in &prog.instrs {
            match *ins {
                Instr::LoadMain { out } => {
                    // Degenerate scalar main (not used by Row plans, but
                    // kept for completeness): first cell of the row.
                    self.sregs[out as usize] = self.main_buf.first().copied().unwrap_or(0.0)
                }
                Instr::LoadUVDot { .. } => panic!("UVDot in Row program"),
                Instr::LoadSide { out, side, access } => {
                    self.sregs[out as usize] = self.sides[side].value_at(access, rix, 0)
                }
                Instr::LoadScalar { out, idx } => self.sregs[out as usize] = self.scalars[idx],
                Instr::LoadConst { out, value } => self.sregs[out as usize] = value,
                Instr::Unary { out, op, a } => {
                    self.sregs[out as usize] = op.apply(self.sregs[a as usize])
                }
                Instr::Binary { out, op, a, b } => {
                    self.sregs[out as usize] =
                        op.apply(self.sregs[a as usize], self.sregs[b as usize])
                }
                Instr::Ternary { out, op, a, b, c } => {
                    self.sregs[out as usize] = op.apply(
                        self.sregs[a as usize],
                        self.sregs[b as usize],
                        self.sregs[c as usize],
                    )
                }
                Instr::LoadMainRow { out } => {
                    let dst = &mut self.vregs[out as usize];
                    dst.copy_from_slice(&self.main_buf);
                }
                Instr::LoadSideRow { out, side, cl, cu } => {
                    let s = &self.sides[side];
                    let dst = &mut self.vregs[out as usize];
                    // A col-vector side read at full length is a whole-vector
                    // view (`v` in `X %*% v`), not a row slice.
                    if s.cols() == 1 && cu - cl == s.rows() && s.rows() > 1 {
                        s.read_vector_into(dst);
                    } else {
                        s.read_row_into(rix, cl, cu, dst);
                    }
                }
                Instr::VecUnary { out, op, a } => {
                    let (dst, src) = two_vregs(&mut self.vregs, out, a);
                    vec_unary(mode, op, src, dst);
                }
                Instr::VecBinaryVV { out, op, a, b } => {
                    // Registers are SSA-allocated: `out` differs from both
                    // sources. Move `b` out to satisfy the borrow checker
                    // without copying, restoring it afterwards.
                    let b_vals = std::mem::take(&mut self.vregs[b as usize]);
                    let (dst, x) = two_vregs(&mut self.vregs, out, a);
                    let xs: &[f64] = if a == b { &b_vals } else { x };
                    vec_binary_vv(mode, op, xs, &b_vals, dst);
                    self.vregs[b as usize] = b_vals;
                }
                Instr::VecBinaryVS { out, op, a, b, scalar_left } => {
                    let s = self.sregs[b as usize];
                    let (dst, src) = two_vregs(&mut self.vregs, out, a);
                    vec_binary_vs(mode, op, src, s, scalar_left, dst);
                }
                Instr::VecMatMult { out, a, side } => {
                    let bvals =
                        self.dense_sides[side].as_deref().expect("side densified for VecMatMult");
                    let k = self.sides[side].cols();
                    let (dst, src) = two_vregs(&mut self.vregs, out, a);
                    let len = src.len();
                    dst.fill(0.0);
                    for (i, &av) in src.iter().enumerate().take(len) {
                        if av != 0.0 {
                            prim::vect_mult_add(&bvals[i * k..(i + 1) * k], av, dst, 0, 0, k);
                        }
                    }
                }
                Instr::Dot { out, a, b } => {
                    let x = &self.vregs[a as usize];
                    let y = &self.vregs[b as usize];
                    self.sregs[out as usize] = prim::dot_product(x, y, 0, 0, x.len());
                }
                Instr::VecAgg { out, op, a } => {
                    let v = &self.vregs[a as usize];
                    self.sregs[out as usize] = match op {
                        AggOp::Sum => prim::vect_sum(v, 0, v.len()),
                        AggOp::SumSq => prim::vect_sum_sq(v, 0, v.len()),
                        AggOp::Min => prim::vect_min(v, 0, v.len()),
                        AggOp::Max => prim::vect_max(v, 0, v.len()),
                        AggOp::Mean => prim::vect_sum(v, 0, v.len()) / v.len() as f64,
                    };
                }
                Instr::VecCumsum { out, a } => {
                    let src = self.vregs[a as usize].clone();
                    let dst = &mut self.vregs[out as usize];
                    dst.copy_from_slice(&src);
                    prim::vect_cumsum_inplace(dst);
                }
            }
        }
    }
}

/// Borrows two distinct vector registers mutably/immutably.
fn two_vregs(vregs: &mut [Vec<f64>], out: u16, a: u16) -> (&mut [f64], &[f64]) {
    assert_ne!(out, a, "vector registers are SSA-allocated");
    let (o, a) = (out as usize, a as usize);
    if o < a {
        let (lo, hi) = vregs.split_at_mut(a);
        (&mut lo[o], &hi[0])
    } else {
        let (lo, hi) = vregs.split_at_mut(o);
        (&mut hi[0], &lo[a])
    }
}

// ---- vector kernels per execution mode ------------------------------------

fn vec_unary(mode: RowExecMode, op: UnaryOp, src: &[f64], dst: &mut [f64]) {
    match mode {
        RowExecMode::Vectorized => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = op.apply(s);
            }
        }
        RowExecMode::Inlined => {
            for i in 0..src.len() {
                dst[i] = apply_unary_inlined(op, src[i]);
            }
        }
        RowExecMode::InterpretedNoJit => {
            for i in 0..src.len() {
                dst[i] = apply_unary_nojit(op, src[i]);
            }
        }
    }
}

fn vec_binary_vv(mode: RowExecMode, op: BinaryOp, a: &[f64], b: &[f64], dst: &mut [f64]) {
    match mode {
        RowExecMode::Vectorized => match op {
            BinaryOp::Add => dst.copy_from_slice(&prim::vect_add_write(a, b, 0, 0, a.len())),
            BinaryOp::Sub => dst.copy_from_slice(&prim::vect_minus_write(a, b, 0, 0, a.len())),
            BinaryOp::Mult => dst.copy_from_slice(&prim::vect_mult_write(a, b, 0, 0, a.len())),
            BinaryOp::Div => dst.copy_from_slice(&prim::vect_div_write(a, b, 0, 0, a.len())),
            _ => {
                for i in 0..a.len() {
                    dst[i] = op.apply(a[i], b[i]);
                }
            }
        },
        RowExecMode::Inlined => {
            for i in 0..a.len() {
                dst[i] = apply_binary_inlined(op, a[i], b[i]);
            }
        }
        RowExecMode::InterpretedNoJit => {
            for i in 0..a.len() {
                dst[i] = apply_binary_nojit(op, a[i], b[i]);
            }
        }
    }
}

fn vec_binary_vs(
    mode: RowExecMode,
    op: BinaryOp,
    a: &[f64],
    s: f64,
    scalar_left: bool,
    dst: &mut [f64],
) {
    match mode {
        RowExecMode::Vectorized => {
            if scalar_left {
                for (d, &x) in dst.iter_mut().zip(a) {
                    *d = op.apply(s, x);
                }
            } else {
                for (d, &x) in dst.iter_mut().zip(a) {
                    *d = op.apply(x, s);
                }
            }
        }
        RowExecMode::Inlined => {
            for i in 0..a.len() {
                dst[i] = if scalar_left {
                    apply_binary_inlined(op, s, a[i])
                } else {
                    apply_binary_inlined(op, a[i], s)
                };
            }
        }
        RowExecMode::InterpretedNoJit => {
            for i in 0..a.len() {
                dst[i] = if scalar_left {
                    apply_binary_nojit(op, s, a[i])
                } else {
                    apply_binary_nojit(op, a[i], s)
                };
            }
        }
    }
}

/// Per-element dispatch with inlining suppressed: models generated code
/// whose primitives were inlined (larger instruction footprint, no
/// vectorization across the row).
#[inline(never)]
fn apply_unary_inlined(op: UnaryOp, a: f64) -> f64 {
    op.apply(a)
}

#[inline(never)]
fn apply_binary_inlined(op: BinaryOp, a: f64, b: f64) -> f64 {
    op.apply(a, b)
}

/// Per-element dispatch through a dynamically resolved function, modelling
/// interpretation of code the JIT refused to compile.
#[inline(never)]
fn apply_unary_nojit(op: UnaryOp, a: f64) -> f64 {
    let f: fn(UnaryOp, f64) -> f64 = apply_unary_inlined;
    std::hint::black_box(f)(std::hint::black_box(op), std::hint::black_box(a))
}

#[inline(never)]
fn apply_binary_nojit(op: BinaryOp, a: f64, b: f64) -> f64 {
    let f: fn(BinaryOp, f64, f64) -> f64 = apply_binary_inlined;
    std::hint::black_box(f)(
        std::hint::black_box(op),
        std::hint::black_box(a),
        std::hint::black_box(b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_core::spoof::Program;
    use fusedml_linalg::generate;
    use fusedml_linalg::ops::{self, AggDir};

    /// Spec for `t(X) %*% (X %*% v)` — Row with ColAggMultAdd output.
    fn mv_chain_spec(m: usize) -> RowSpec {
        RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::LoadSideRow { out: 1, side: 0, cl: 0, cu: m },
                    Instr::Dot { out: 0, a: 0, b: 1 },
                ],
                n_regs: 1,
                vreg_lens: vec![m, m],
            },
            out: RowOut::ColAggMultAdd { vec: 0, scalar: 0 },
            out_rows: m,
            out_cols: 1,
            exec_mode: RowExecMode::Vectorized,
        }
    }

    #[test]
    fn mv_chain_matches_reference() {
        let (n, m) = (200, 30);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 1);
        let v = generate::rand_dense(m, 1, -1.0, 1.0, 2);
        let out = execute(&mv_chain_spec(m), &x, &[SideInput::bind(&v)], &[]);
        let xv = ops::matmult(&x, &v);
        let expect = ops::matmult(&ops::transpose(&x), &xv);
        assert!(out.approx_eq(&expect, 1e-9), "X^T(Xv) fused vs reference");
    }

    #[test]
    fn mv_chain_sparse_main_agrees() {
        let (n, m) = (300, 25);
        let xs = generate::rand_matrix(n, m, -1.0, 1.0, 0.1, 3);
        let v = generate::rand_dense(m, 1, -1.0, 1.0, 4);
        let out = execute(&mv_chain_spec(m), &xs, &[SideInput::bind(&v)], &[]);
        let expect = ops::matmult(&ops::transpose(&xs), &ops::matmult(&xs, &v));
        assert!(out.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn exec_modes_agree_numerically() {
        let (n, m) = (100, 40);
        let x = generate::rand_dense(n, m, 0.5, 2.0, 5);
        // X / rowSums(X), then row sums again: exercises VS + agg.
        let spec = |mode| RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::VecAgg { out: 0, op: AggOp::Sum, a: 0 },
                    Instr::VecBinaryVS {
                        out: 1,
                        op: BinaryOp::Div,
                        a: 0,
                        b: 0,
                        scalar_left: false,
                    },
                    Instr::VecAgg { out: 1, op: AggOp::Sum, a: 1 },
                ],
                n_regs: 2,
                vreg_lens: vec![m, m],
            },
            out: RowOut::RowAgg { src: 1 },
            out_rows: n,
            out_cols: 1,
            exec_mode: mode,
        };
        let a = execute(&spec(RowExecMode::Vectorized), &x, &[], &[]);
        let b = execute(&spec(RowExecMode::Inlined), &x, &[], &[]);
        let c = execute(&spec(RowExecMode::InterpretedNoJit), &x, &[], &[]);
        assert!(a.approx_eq(&b, 1e-12));
        assert!(a.approx_eq(&c, 1e-12));
        // Every row sums to 1 after normalization.
        for r in 0..n {
            assert!(fusedml_linalg::approx_eq(a.get(r, 0), 1.0, 1e-9));
        }
    }

    #[test]
    fn no_agg_writes_rows() {
        let (n, m) = (50, 10);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 7);
        let spec = RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::LoadConst { out: 0, value: 2.0 },
                    Instr::VecBinaryVS {
                        out: 1,
                        op: BinaryOp::Mult,
                        a: 0,
                        b: 0,
                        scalar_left: false,
                    },
                ],
                n_regs: 1,
                vreg_lens: vec![m, m],
            },
            out: RowOut::NoAgg { src: 1 },
            out_rows: n,
            out_cols: m,
            exec_mode: RowExecMode::Vectorized,
        };
        let out = execute(&spec, &x, &[], &[]);
        let expect = ops::binary_scalar(&x, 2.0, BinaryOp::Mult);
        assert!(out.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn col_agg_matches_colsums() {
        let (n, m) = (80, 12);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 8);
        let spec = RowSpec {
            prog: Program {
                instrs: vec![Instr::LoadMainRow { out: 0 }],
                n_regs: 0,
                vreg_lens: vec![m],
            },
            out: RowOut::ColAgg { src: 0 },
            out_rows: 1,
            out_cols: m,
            exec_mode: RowExecMode::Vectorized,
        };
        let out = execute(&spec, &x, &[], &[]);
        let expect = ops::agg(&x, AggOp::Sum, AggDir::Col);
        assert!(out.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn vect_mat_mult_instruction() {
        // X %*% V per row with OuterColAgg → t(X) %*% (X %*% V).
        let (n, m, k) = (60, 14, 3);
        let x = generate::rand_dense(n, m, -1.0, 1.0, 9);
        let v = generate::rand_dense(m, k, -1.0, 1.0, 10);
        let spec = RowSpec {
            prog: Program {
                instrs: vec![
                    Instr::LoadMainRow { out: 0 },
                    Instr::VecMatMult { out: 1, a: 0, side: 0 },
                ],
                n_regs: 0,
                vreg_lens: vec![m, k],
            },
            out: RowOut::OuterColAgg { left: 0, right: 1 },
            out_rows: m,
            out_cols: k,
            exec_mode: RowExecMode::Vectorized,
        };
        let out = execute(&spec, &x, &[SideInput::bind(&v)], &[]);
        let expect = ops::matmult(&ops::transpose(&x), &ops::matmult(&x, &v));
        assert!(out.approx_eq(&expect, 1e-9));
    }
}
